#!/bin/sh
# The one CI entry point: performance gate then robustness gate.
#
# Usage: scripts/ci_check.sh [--full]
#   --full   forwarded to bench_check.sh (full-sized benchmark)
#
# bench_check.sh runs the tier-1 suite (including the cost-model
# invariance tests), the throughput benchmark, and the slow-path
# regression floor; chaos_check.sh runs the seeded fault-injection soak
# and the fault-containment suites.  Exits non-zero if either gate fails.

set -eu

cd "$(dirname "$0")/.."

echo "==== performance gate (scripts/bench_check.sh) ===="
sh scripts/bench_check.sh "$@"

echo "==== robustness gate (scripts/chaos_check.sh) ===="
sh scripts/chaos_check.sh

echo "==== ci_check: all gates passed ===="
