#!/bin/sh
# The one CI entry point: static-analysis gate, performance gate, then
# robustness gate.
#
# Usage: scripts/ci_check.sh [--full]
#   --full   forwarded to bench_check.sh (full-sized benchmark)
#
# The static-analysis gate self-lints every built-in plugin (hot-path
# RP2xx and shard-safety RP4xx passes), sweeps the shard/batch layers
# themselves, warms and audits every generated loop shape (RP5xx), and
# verifies compiled/interpreted equivalence for the classifier DAG and
# all BMP engines (scripts/analyze.py --self-lint), plus ruff/mypy over
# the linted subsystems when those tools are installed.  bench_check.sh
# runs the tier-1 suite (including the cost-model invariance tests),
# the throughput benchmark, and the slow-path regression floor;
# chaos_check.sh runs the seeded fault-injection soak and the
# fault-containment suites; the attack gate runs the seeded
# adversarial-workload soaks against the overload governor.  Exits
# non-zero if any gate fails.

set -eu

cd "$(dirname "$0")/.."

echo "==== static-analysis gate (scripts/analyze.py --self-lint) ===="
python scripts/analyze.py --self-lint

echo "== SARIF output smoke (--self-lint --sarif | json.tool) =="
python scripts/analyze.py --self-lint --sarif | python -m json.tool > /dev/null
echo "ok: SARIF log is valid JSON"

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff (analysis + shard + topo + batch) =="
    ruff check src/repro/analysis src/repro/shard src/repro/topo \
        src/repro/core/batch.py scripts/analyze.py
else
    echo "== ruff skipped (not installed) =="
fi

if command -v mypy >/dev/null 2>&1; then
    echo "== mypy (analysis strict; shard/batch typed-where-annotated) =="
    mypy --config-file pyproject.toml
else
    echo "== mypy skipped (not installed) =="
fi

echo "==== telemetry gate (pmgr --json schema) ===="
# Every `pmgr show X --json` output must be machine-parseable: drive a
# configured router through the real command loop and pipe each topic's
# JSON through python -m json.tool.  (The on/off overhead ceiling lives
# in bench_check.sh, which runs next.)
PYTHONPATH=src python - <<'EOF' | python -m json.tool > /dev/null
import json
from repro import Router, PluginManager
from repro.mgr.format import topic_names
from repro.net import make_udp

lines = []
router = Router(name="ci")
router.add_interface("atm0", prefix="0.0.0.0/0")
mgr = PluginManager(router, output=lines.append)
mgr.run_script("""
modload drr
create drr drr0
bind drr0 - 10.*, *, UDP
telemetry on
trace on sample=1 capacity=16
overload on sample_interval=8
""")
for i in range(32):
    router.receive(make_udp(f"10.0.0.{i % 4 + 1}", "20.0.0.1", 1000 + i, 9000, iif="atm0"))
blobs = []
for topic in topic_names():
    lines.clear()
    mgr.run_command(f"show {topic} --json")
    blobs.append(json.loads("\n".join(lines)))
print(json.dumps(blobs))
EOF
echo "ok: all show topics emit valid JSON"

echo "==== performance gate (scripts/bench_check.sh) ===="
sh scripts/bench_check.sh "$@"

echo "==== robustness gate (scripts/chaos_check.sh) ===="
sh scripts/chaos_check.sh

echo "==== attack gate (seeded adversarial soak) ===="
# Overload protection under seeded attack scenarios (docs/ROBUSTNESS.md):
# bounded occupancy, >= 90% established-flow retention through a SYN
# flood / cache thrash, recovery to NORMAL, governor bit-invisible on
# healthy traffic — plus the flow-table occupancy bound property test.
PYTHONPATH=src python -m pytest -q -m attack tests/sim/test_attack_soak.py
PYTHONPATH=src python -m pytest -q tests/aiu/test_flow_table_bounds.py

echo "==== shard gate (sharded data-path differential suite) ===="
# The sharded front end must be provably equal to a single router:
# per-flow dispositions, ordering, flow stats, telemetry aggregation,
# control-plane fanout, and the mp backend's bit-equality with inline
# (tests/shard/, docs/PERFORMANCE.md "Sharded data path").
PYTHONPATH=src python -m pytest -q -m shard tests/shard/

echo "==== topo gate (multi-router topology suite) ===="
# A topology of one node must be packet-for-packet the bare router, an
# N-hop chain must equal the same hops run standalone, path traces must
# match the data path hop for hop, and the four multi-hop scenarios
# (IPsec tunnel, v6 options, H-FSC aggregation, quarantine reroute)
# must hold their delivery invariants scalar and batched
# (tests/topo/, docs/TOPOLOGY.md).
PYTHONPATH=src python -m pytest -q -m topo tests/topo/

echo "==== ci_check: all gates passed ===="
