#!/bin/sh
# The one CI entry point: static-analysis gate, performance gate, then
# robustness gate.
#
# Usage: scripts/ci_check.sh [--full]
#   --full   forwarded to bench_check.sh (full-sized benchmark)
#
# The static-analysis gate self-lints every built-in plugin and verifies
# compiled/interpreted equivalence for the classifier DAG and all BMP
# engines (scripts/analyze.py --self-lint), plus ruff/mypy over
# src/repro/analysis when those tools are installed.  bench_check.sh
# runs the tier-1 suite (including the cost-model invariance tests),
# the throughput benchmark, and the slow-path regression floor;
# chaos_check.sh runs the seeded fault-injection soak and the
# fault-containment suites.  Exits non-zero if any gate fails.

set -eu

cd "$(dirname "$0")/.."

echo "==== static-analysis gate (scripts/analyze.py --self-lint) ===="
python scripts/analyze.py --self-lint

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff (src/repro/analysis) =="
    ruff check src/repro/analysis scripts/analyze.py
else
    echo "== ruff skipped (not installed) =="
fi

if command -v mypy >/dev/null 2>&1; then
    echo "== mypy --strict (src/repro/analysis) =="
    mypy --config-file pyproject.toml
else
    echo "== mypy skipped (not installed) =="
fi

echo "==== performance gate (scripts/bench_check.sh) ===="
sh scripts/bench_check.sh "$@"

echo "==== robustness gate (scripts/chaos_check.sh) ===="
sh scripts/chaos_check.sh

echo "==== ci_check: all gates passed ===="
