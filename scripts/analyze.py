#!/usr/bin/env python
"""Static-analysis CLI for the plugin router (repro.analysis).

Modes:

    scripts/analyze.py --self-lint
        Lint every built-in plugin and verify compiled/interpreted
        equivalence for the DAG classifier and all BMP engines on a
        seeded filter set.  This is the CI gate.

    scripts/analyze.py <pmgr-script> [more scripts...]
        Run each pmgr configuration script on a scratch router and
        analyze the state it builds (shadowed/redundant filters,
        conflicting bindings, plugin lint, equivalence).

Options:

    --json      emit the machine-readable report instead of text
    --sarif     emit a SARIF 2.1.0 log (for code-scanning upload)
    --strict    exit non-zero on warnings too, not just errors

Exit status: 0 clean (or warnings without --strict), 1 findings at the
gating severity, 2 usage error.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.analysis import AnalysisReport, analyze_script, self_lint  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="analyze.py", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("scripts", nargs="*", help="pmgr configuration scripts")
    parser.add_argument("--self-lint", action="store_true",
                        help="lint built-in plugins + verify engine equivalence")
    parser.add_argument("--json", action="store_true", help="JSON output")
    parser.add_argument("--sarif", action="store_true",
                        help="SARIF 2.1.0 output (overrides --json)")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero on warnings as well")
    args = parser.parse_args(argv)

    if not args.self_lint and not args.scripts:
        parser.print_usage(sys.stderr)
        print("analyze.py: need --self-lint and/or at least one script",
              file=sys.stderr)
        return 2

    report = AnalysisReport()
    if args.self_lint:
        report.extend(self_lint())
    for path in args.scripts:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            print(f"analyze.py: cannot read {path}: {exc}", file=sys.stderr)
            return 2
        report.extend(analyze_script(text))

    if args.sarif:
        print(report.to_sarif_json())
    elif args.json:
        print(report.to_json())
    else:
        for line in report.render():
            print(line)

    if report.has_errors:
        return 1
    if args.strict and report.warnings():
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
