#!/bin/sh
# One-shot robustness gate: run the seeded chaos soak (deterministic
# fault injection through the plugin data path — see docs/ROBUSTNESS.md)
# plus the rest of the fault-containment suite.
#
# Usage: scripts/chaos_check.sh
#
# The soak's seeds are fixed in tests/sim/test_chaos_soak.py (STORM),
# so every run replays the same fault storm: ~5 % injected faults across
# three plugins over 10k packets, on both the metered and the fast data
# path, with packet-for-packet agreement asserted.  The same storm also
# runs through receive_batch (fused single-pass shape), pinning the
# mid-batch fault split/resume machinery against the scalar walk.
#
# Exits non-zero if containment fails: a fault escapes the router, a
# record fails to reconcile, a quarantine misbehaves, or the two data
# paths diverge.
#
# Multi-hop containment — quarantine rerouting across an ECMP topology
# and the seeded multi-hop attack soaks (IPsec spoofing, drop-action v6
# options) — runs in the topo gate (scripts/ci_check.sh, tests/topo/),
# which drives the same seeded scenarios through whole networks.

set -eu

cd "$(dirname "$0")/.."

echo "== chaos soak (seeded fault storm) =="
PYTHONPATH=src python -m pytest -q -m chaos tests/sim/test_chaos_soak.py

echo "== fault-domain unit + equivalence suites =="
PYTHONPATH=src python -m pytest -q \
    tests/core/test_faults.py \
    tests/core/test_unload_stale.py \
    tests/perf/test_fault_equivalence.py

echo "== done: containment holds =="
