#!/usr/bin/env python
"""cProfile harness for the classification slow path.

Profiles the flow-miss workloads of ``benchmarks/bench_throughput.py``
(the traffic shapes the compiled classifier exists for) and prints the
top functions by cumulative and internal time — the loop used to find
and verify every optimisation documented in docs/PERFORMANCE.md ("Slow
path").

Usage::

    PYTHONPATH=src python scripts/profile_slowpath.py                 # cache_miss
    PYTHONPATH=src python scripts/profile_slowpath.py miss_churn
    PYTHONPATH=src python scripts/profile_slowpath.py filters256 -n 50000
    PYTHONPATH=src python scripts/profile_slowpath.py --sort tottime
"""

from __future__ import annotations

import argparse
import cProfile
import importlib.util
import os
import pstats
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(HERE, "..", "src"))

_BENCH_PATH = os.path.join(HERE, "..", "benchmarks", "bench_throughput.py")

WORKLOADS = ("cache_miss", "miss_churn", "filters256")
WARMUP = 100  # packets run before profiling so lazy compiles don't skew


def _load_bench():
    spec = importlib.util.spec_from_file_location("bench_throughput", _BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def build(bench, workload: str, n: int):
    if workload == "cache_miss":
        router = bench.build_router()
        packets = bench.make_miss_packets(n + WARMUP)
    elif workload == "miss_churn":
        router = bench.build_router(max_flows=bench.CHURN_CAP)
        packets = bench.make_churn_packets(n + WARMUP)
    elif workload == "filters256":
        router = bench.build_router()
        bench.install_bench_filters(router)
        packets = bench.make_filter_packets(n + WARMUP)
    else:
        raise SystemExit(f"unknown workload {workload!r}; known: {WORKLOADS}")
    return router, packets


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "workload", nargs="?", default="cache_miss", choices=WORKLOADS
    )
    parser.add_argument("-n", type=int, default=20_000, help="packets to profile")
    parser.add_argument(
        "--sort",
        default="both",
        choices=("cumulative", "tottime", "both"),
        help="pstats sort order (default: print both)",
    )
    parser.add_argument("--top", type=int, default=25, help="rows per listing")
    parser.add_argument(
        "-o", "--output", default=None, help="also dump raw pstats to this file"
    )
    args = parser.parse_args(argv)

    bench = _load_bench()
    router, packets = build(bench, args.workload, args.n)
    router.receive_batch(packets[:WARMUP])

    profiler = cProfile.Profile()
    profiler.enable()
    router.receive_batch(packets[WARMUP:])
    profiler.disable()

    if args.output:
        profiler.dump_stats(args.output)
        print(f"raw profile written to {args.output}")

    orders = ("cumulative", "tottime") if args.sort == "both" else (args.sort,)
    for order in orders:
        print(f"\n== {args.workload}: top {args.top} by {order} ==")
        pstats.Stats(profiler, stream=sys.stdout).sort_stats(order).print_stats(
            args.top
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
