#!/bin/sh
# One-shot performance gate: run the tier-1 test suite (which includes
# the cost-model invariance tests in tests/perf/), then the CI-sized
# throughput benchmark, writing BENCH_throughput.json at the repo root.
#
# Usage: scripts/bench_check.sh [--full]
#   --full   run the full-sized benchmark instead of --quick
#
# Exits non-zero if the tests fail (including any modelled-cycle drift
# caught by tests/perf/test_cost_invariance.py) or the benchmark fails
# its internal forwarded-packet sanity checks.

set -eu

cd "$(dirname "$0")/.."

BENCH_ARGS="--quick"
if [ "${1:-}" = "--full" ]; then
    BENCH_ARGS=""
fi

echo "== tier-1 tests (incl. cost-model invariance) =="
PYTHONPATH=src python -m pytest -x -q

echo "== throughput benchmark =="
# shellcheck disable=SC2086  # intentional word splitting of BENCH_ARGS
PYTHONPATH=src python benchmarks/bench_throughput.py $BENCH_ARGS

echo "== slow-path regression floor =="
# The compiled slow path (PR 3) must not regress: cache_miss and
# miss_churn are gated against their pre-optimisation baselines.  Floors
# are set well below the measured speedups (cache_miss ~3x, miss_churn
# ~1.9x at time of writing) to absorb CI timing noise while still
# catching a real regression to the interpreted walk.
python - <<'EOF'
import json, sys

FLOORS = {"cache_miss": 2.0, "miss_churn": 1.2}
with open("BENCH_throughput.json") as fh:
    report = json.load(fh)
speedups = report.get("speedup", {})
failed = False
for workload, floor in FLOORS.items():
    got = speedups.get(workload)
    if got is None:
        print(f"FAIL: no speedup recorded for {workload}")
        failed = True
    elif got < floor:
        print(f"FAIL: {workload} speedup {got} below floor {floor}")
        failed = True
    else:
        print(f"ok: {workload} speedup {got} >= {floor}")
sys.exit(1 if failed else 0)
EOF

echo "== telemetry overhead ceiling =="
# The metrics registry must be near-free on the data path: the on/off
# workload pairs (cached-hit shaped and cache-miss shaped) may differ by
# at most 5% packets-per-second (docs/OBSERVABILITY.md).
python - <<'EOF'
import json, sys

PAIRS = [
    ("telemetry_off", "telemetry_on"),
    ("telemetry_off_miss", "telemetry_on_miss"),
]
CEILING = 1.05
with open("BENCH_throughput.json") as fh:
    pps = json.load(fh)["packets_per_second"]
failed = False
for off, on in PAIRS:
    if off not in pps or on not in pps:
        print(f"FAIL: missing workload pair {off}/{on}")
        failed = True
        continue
    ratio = pps[off] / pps[on]
    if ratio > CEILING:
        print(f"FAIL: {on} overhead {ratio:.3f}x exceeds {CEILING}x ceiling")
        failed = True
    else:
        print(f"ok: {on} overhead {ratio:.3f}x <= {CEILING}x")
sys.exit(1 if failed else 0)
EOF

echo "== done: see BENCH_throughput.json =="
