#!/bin/sh
# One-shot performance gate: run the tier-1 test suite (which includes
# the cost-model invariance tests in tests/perf/), then the CI-sized
# throughput benchmark, writing BENCH_throughput.json at the repo root.
#
# Usage: scripts/bench_check.sh [--full]
#   --full   run the full-sized benchmark instead of --quick
#
# Exits non-zero if the tests fail (including any modelled-cycle drift
# caught by tests/perf/test_cost_invariance.py) or the benchmark fails
# its internal forwarded-packet sanity checks.

set -eu

cd "$(dirname "$0")/.."

BENCH_ARGS="--quick"
if [ "${1:-}" = "--full" ]; then
    BENCH_ARGS=""
fi

echo "== tier-1 tests (incl. cost-model invariance) =="
PYTHONPATH=src python -m pytest -x -q

echo "== throughput benchmark =="
# shellcheck disable=SC2086  # intentional word splitting of BENCH_ARGS
PYTHONPATH=src python benchmarks/bench_throughput.py $BENCH_ARGS

echo "== done: see BENCH_throughput.json =="
