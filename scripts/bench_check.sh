#!/bin/sh
# One-shot performance gate: run the tier-1 test suite (which includes
# the cost-model invariance tests in tests/perf/), then the CI-sized
# throughput benchmark, writing BENCH_throughput.json at the repo root.
#
# Usage: scripts/bench_check.sh [--full]
#   --full   run the full-sized benchmark instead of --quick
#
# Exits non-zero if the tests fail (including any modelled-cycle drift
# caught by tests/perf/test_cost_invariance.py) or the benchmark fails
# its internal forwarded-packet sanity checks.

set -eu

cd "$(dirname "$0")/.."

BENCH_ARGS="--quick"
if [ "${1:-}" = "--full" ]; then
    BENCH_ARGS=""
fi

echo "== tier-1 tests (incl. cost-model invariance) =="
PYTHONPATH=src python -m pytest -x -q

echo "== throughput benchmark =="
# shellcheck disable=SC2086  # intentional word splitting of BENCH_ARGS
PYTHONPATH=src python benchmarks/bench_throughput.py $BENCH_ARGS

echo "== fast/slow/batch-path regression floors =="
# Speedup floors against the committed baselines: the compiled slow
# path (cache_miss, miss_churn), the scalar fast path (cached_hit,
# gates3), and the compiled batch loops (batch_cached, batch_miss,
# gated against the pre-batch receive_batch).  Floors sit well below
# the measured speedups (cached_hit ~9.9x, gates3 ~8.9x, cache_miss
# ~9x, miss_churn ~4.3x after the churn-path fixes — route memo,
# slotted FlowKey reuse, recycle-in-place — batch_cached ~2.6x,
# batch_miss ~2.6x at time of writing) to absorb CI timing noise
# while still catching a real regression to the interpreted/scalar
# paths.
python - <<'EOF'
import json, sys

FLOORS = {
    "cached_hit": 5.0,
    "gates3": 4.5,
    "cache_miss": 2.0,
    "miss_churn": 2.8,
    "batch_cached": 1.5,
    "batch_miss": 1.5,
}
with open("BENCH_throughput.json") as fh:
    report = json.load(fh)
speedups = report.get("speedup", {})
failed = False
for workload, floor in FLOORS.items():
    got = speedups.get(workload)
    if got is None:
        print(f"FAIL: no speedup recorded for {workload}")
        failed = True
    elif got < floor:
        print(f"FAIL: {workload} speedup {got} below floor {floor}")
        failed = True
    else:
        print(f"ok: {workload} speedup {got} >= {floor}")
sys.exit(1 if failed else 0)
EOF

echo "== sharded data-path scaling floors =="
# The shard section's ratios are self-relative (mp / dispatch arm vs
# the one-shard single-process arm in the same run), so they need no
# stored baseline.  dispatch_ratio is core-count independent — the
# parent-side RSS pipeline must be able to feed >= 2.5 single-router
# equivalents (measured ~4.6x cached / ~8x miss) — and always gates.
# real_ratio is wall-clock parallel speedup and only means anything
# with as many usable cores as workers; on smaller machines (CI
# containers are often 1-2 cores) it is reported but not gated.
python - <<'EOF'
import json, sys

DISPATCH_FLOOR = 2.5
REAL_FLOOR = 2.5
with open("BENCH_throughput.json") as fh:
    shard = json.load(fh).get("shard")
if not shard:
    print("FAIL: no shard section in BENCH_throughput.json")
    sys.exit(1)
cores, nshards = shard["usable_cpus"], shard["nshards"]
failed = False
for kind in ("shard_cached", "shard_miss"):
    row = shard.get(kind) or {}
    ratio = row.get("dispatch_ratio")
    if ratio is None:
        print(f"FAIL: no dispatch_ratio for {kind}")
        failed = True
    elif ratio < DISPATCH_FLOOR:
        print(f"FAIL: {kind} dispatch_ratio {ratio} below {DISPATCH_FLOOR}")
        failed = True
    else:
        print(f"ok: {kind} dispatch_ratio {ratio} >= {DISPATCH_FLOOR}")
    real = row.get("real_ratio")
    if cores >= nshards:
        if real is None:
            print(f"FAIL: no real_ratio for {kind} with {cores} cores")
            failed = True
        elif real < REAL_FLOOR:
            print(f"FAIL: {kind} real_ratio {real} below {REAL_FLOOR}")
            failed = True
        else:
            print(f"ok: {kind} real_ratio {real} >= {REAL_FLOOR}")
    else:
        print(f"note: {kind} real_ratio {real} not gated "
              f"({cores} usable cores < {nshards} shards)")
sys.exit(1 if failed else 0)
EOF

echo "== telemetry overhead ceiling =="
# The metrics registry must be near-free on the data path
# (docs/OBSERVABILITY.md).  The cached-hit pair gates at 5%: its batch
# loop has no telemetry work at all.  The all-miss pair gates at 8%:
# its seam (one staging-list increment per flow install, ~100ns) is
# already minimal, but the compiled batch loops roughly halved the
# per-packet denominator it is measured against.
python - <<'EOF'
import json, sys

PAIRS = [
    ("telemetry_off", "telemetry_on", 1.05),
    ("telemetry_off_miss", "telemetry_on_miss", 1.08),
]
with open("BENCH_throughput.json") as fh:
    pps = json.load(fh)["packets_per_second"]
failed = False
for off, on, ceiling in PAIRS:
    if off not in pps or on not in pps:
        print(f"FAIL: missing workload pair {off}/{on}")
        failed = True
        continue
    ratio = pps[off] / pps[on]
    if ratio > ceiling:
        print(f"FAIL: {on} overhead {ratio:.3f}x exceeds {ceiling}x ceiling")
        failed = True
    else:
        print(f"ok: {on} overhead {ratio:.3f}x <= {ceiling}x")
sys.exit(1 if failed else 0)
EOF

echo "== done: see BENCH_throughput.json =="
