"""The chaos soak (docs/ROBUSTNESS.md): a seeded fault storm through two
identically configured routers — one on the metered specification path,
one on the unmetered fast path.

Acceptance criteria pinned here:

* the router never raises, whatever the plugins do;
* every injected fault reconciles to exactly one FaultRecord;
* quarantined plugins degrade per their policy (drop / bypass / unload);
* fast-path and metered-path dispositions agree packet-for-packet, and
  so do counters, fault totals, and FaultRecord signatures.

Run standalone via ``scripts/chaos_check.sh`` (``-m chaos``).
"""

import pytest

from repro.core import (
    DEGRADE_BYPASS,
    DEGRADE_DROP,
    DEGRADE_UNLOAD,
    FaultPolicy,
    GATE_IP_OPTIONS,
    GATE_IP_SECURITY,
    GATE_PACKET_SCHEDULING,
    Router,
    STATE_UNLOADED,
)
from repro.net.packet import make_udp
from repro.sim import ChaosPlugin
from repro.sim.cost import CycleMeter
from repro.stats import StatisticsPlugin

PACKETS = 10_000
FAULT_RATE = 0.05

#: (name, gate, action, chaos config) — three plugins, three policies.
STORM = [
    ("chaos-a", GATE_IP_OPTIONS, DEGRADE_DROP,
     dict(fault_rate=FAULT_RATE, seed=11)),
    ("chaos-b", GATE_IP_SECURITY, DEGRADE_BYPASS,
     dict(fault_rate=FAULT_RATE, corrupt_rate=0.02, seed=22)),
    ("chaos-c", GATE_PACKET_SCHEDULING, DEGRADE_UNLOAD,
     dict(fault_rate=FAULT_RATE, delay_rate=0.01, seed=33)),
]


def _build(name, max_flows=None):
    """One router + three chaos plugins; returns (router, instances)."""
    router = Router(name=name, flow_buckets=512, max_flows=max_flows)
    router.add_interface("atm0", prefix="10.0.0.0/8")
    router.add_interface("atm1", prefix="20.0.0.0/8")
    instances = {}
    for plugin_name, gate, action, config in STORM:
        inner = StatisticsPlugin() if gate == GATE_IP_OPTIONS else None
        plugin = ChaosPlugin(inner=inner, name=plugin_name)
        router.pcu.load(plugin)
        instance = plugin.create_instance(**config)
        plugin.register_instance(instance, "*, *, UDP", gate=gate)
        router.faults.set_policy(
            plugin_name,
            FaultPolicy(
                threshold=3, window=0.1, action=action,
                cooldown=0.05, ring_size=PACKETS,
            ),
        )
        instances[plugin_name] = instance
    return router, instances


def _workload():
    """Deterministic flow mix: 40 flows revisited plus periodic fresh
    flows, one packet per simulated millisecond."""
    for i in range(PACKETS):
        if i % 97 == 0:
            pkt = make_udp(
                "10.0.3.1", "20.0.3.1", 10_000 + i % 5000, 9000, iif="atm0"
            )
        else:
            pkt = make_udp(
                f"10.0.0.{i % 8 + 1}", f"20.0.0.{i % 5 + 1}",
                5000 + i % 40, 9000, iif="atm0",
            )
        yield pkt, i * 0.001


def _observed(router):
    return {
        "counters": dict(router.counters),
        "fault_totals": {
            name: dom.total for name, dom in router.faults.domains().items()
        },
        "signatures": [r.signature() for r in router.faults.records()],
        "health": router.faults.health(),
    }


@pytest.mark.chaos
def test_chaos_soak():
    metered, spec_instances = _build("spec")
    fast, fast_instances = _build("fast")

    spec_disp = [
        metered.receive(p, now=now, cycles=CycleMeter())
        for p, now in _workload()
    ]
    fast_disp = [fast.receive(p, now=now) for p, now in _workload()]

    # -- never raises, packet-for-packet agreement ---------------------
    assert len(spec_disp) == len(fast_disp) == PACKETS
    assert fast_disp == spec_disp
    assert _observed(fast) == _observed(metered)

    for router, instances in ((metered, spec_instances), (fast, fast_instances)):
        # -- every injected fault reconciles to exactly one record -----
        injected = sum(i.injected_faults for i in instances.values())
        assert injected > 0
        assert injected == router.counters["plugin_faults"]
        assert injected == router.faults.total_faults()
        assert injected == len(router.faults.records())  # ring kept all
        for name, instance in instances.items():
            assert instance.injected_faults == router.faults.domain(name).total

        # -- the storm was a storm: trips, probes, re-trips ------------
        assert router.counters["plugin_quarantines"] >= 3
        assert router.counters["plugin_reinstatements"] >= 1
        health = router.faults.health()
        for name, _, _, _ in (s[:4] for s in STORM):
            assert health[name]["quarantine_count"] >= 1

        # -- degradation per policy ------------------------------------
        assert router.faults.domain("chaos-a").dropped > 0
        assert router.faults.domain("chaos-b").bypassed > 0
        dom_c = router.faults.domain("chaos-c")
        assert dom_c.state == STATE_UNLOADED
        assert not router.pcu.is_loaded("chaos-c")
        assert router.aiu._gate_filter_counts[GATE_PACKET_SCHEDULING] == 0
        # The unloaded instance was never called again after unload.
        c_calls = instances["chaos-c"].packets_processed
        router.receive(make_udp("10.0.0.1", "20.0.0.1", 5000, 9000, iif="atm0"),
                       now=999.0)
        assert instances["chaos-c"].packets_processed == c_calls


@pytest.mark.chaos
def test_chaos_soak_batched():
    """The same storm through ``receive_batch``: mid-batch faults must
    split, quarantine, and resume without diverging from the scalar
    walk.  Fault windows and cooldowns are time-based, so the scalar
    reference quantizes every packet's clock to its batch's start time —
    after that the comparison is packet-identical.

    The routers use a bounded flow table: that selects the fused
    single-pass batch shape, which preserves scalar order through any
    number of mid-batch faults.  (The multi-pass lanes shape documents
    bounded divergence for multiple faults per batch — see the
    ``batch.py`` module docstring — and this storm averages several.)"""
    batch_size = 64
    scalar, _ = _build("scalar-ref", max_flows=512)
    batched, batch_instances = _build("batched", max_flows=512)

    workload = list(_workload())
    scalar_disp = []
    batched_disp = []
    for start in range(0, PACKETS, batch_size):
        chunk = workload[start:start + batch_size]
        t0 = chunk[0][1]
        scalar_disp.extend(scalar.receive(p, now=t0) for p, _t in chunk)
    fresh = list(_workload())  # routers mutate packets; never share them
    for start in range(0, PACKETS, batch_size):
        chunk = fresh[start:start + batch_size]
        batched_disp.extend(
            batched.receive_batch([p for p, _t in chunk], now=chunk[0][1])
        )

    assert len(batched_disp) == PACKETS
    assert batched_disp == scalar_disp
    assert _observed(batched) == _observed(scalar)
    # The storm really crossed the batch pipeline: loops were compiled
    # and faults were injected mid-batch (then handled, not raised).
    assert batched._batch_loops
    assert sum(i.injected_faults for i in batch_instances.values()) > 0
    assert batched.counters["plugin_quarantines"] >= 3


@pytest.mark.chaos
def test_chaos_soak_is_deterministic():
    """Same seeds, same storm: a re-run reproduces dispositions and
    fault signatures exactly."""
    first, _ = _build("first")
    second, _ = _build("second")
    d1 = [first.receive(p, now=now) for p, now in _workload()]
    d2 = [second.receive(p, now=now) for p, now in _workload()]
    assert d1 == d2
    assert [r.signature() for r in first.faults.records()] == [
        r.signature() for r in second.faults.records()
    ]
