"""Attack soaks (docs/ROBUSTNESS.md "Overload protection"): seeded
adversarial workloads from ``repro.workloads.adversarial`` driven through
a governed router.

Acceptance criteria pinned here:

* flow-table occupancy never exceeds capacity, attack or no attack;
* established flows retain >= 90% of their delivery and cached fast
  path through a SYN flood / cache-thrash storm;
* the governor walks back to NORMAL within the recovery window;
* the same storms demonstrably wreck an ungoverned router (the attack
  is real — the checks are not vacuous);
* a legitimate flash crowd is *served*, not shed;
* a governor on healthy traffic is bit-identical to no governor at all.

Run standalone via the attack gate in ``scripts/ci_check.sh``
(``-m attack``).
"""

import random

import pytest

from repro.core import Router, TIER_NORMAL
from repro.net.packet import make_udp
from repro.sim.cost import CycleMeter
from repro.workloads import scenario, run_scenario, scenario_names

SEED = 7
MAX_FLOWS = 96

#: Soak-speed governor: tight sampling so detection latency is small
#: relative to the scenarios' few-thousand-packet phases.
GOV = dict(sample_interval=64, escalate_after=2, shed_after=2, recover_after=2)


def _build(governed=True, max_flows=MAX_FLOWS, **config):
    router = Router(max_flows=max_flows, flow_eviction="lru")
    router.add_interface("atm0", prefix="10.0.0.0/8")
    router.add_interface("eth0", prefix="20.0.0.0/8")
    router.routing_table.add("0.0.0.0/0", "eth0")
    if governed:
        router.attach_overload_governor(**{**GOV, **config})
    return router


@pytest.mark.attack
@pytest.mark.parametrize("batch_size", [0, 64], ids=["scalar", "batched"])
@pytest.mark.parametrize("name", ["syn_flood", "cache_thrash"])
def test_floods_are_survived(name, batch_size):
    """The headline soak: bounded memory, >= 90% established-flow
    retention, full recovery — scalar and batched entry points."""
    sc = scenario(name, seed=SEED)
    router = _build()
    report = run_scenario(router, sc, batch_size=batch_size)
    assert sc.check(report) == []
    assert report["max_active"] <= MAX_FLOWS
    attack = report["phases"]["attack"]
    assert attack["background_hit_ratio"] >= 0.9
    assert attack["shed"] > 0  # the governor actually fought back
    assert report["tier_after_recovery"] == TIER_NORMAL
    gov = router._overload
    assert gov.tier == TIER_NORMAL
    assert gov.escalations >= 1 and gov.deescalations >= 1


@pytest.mark.attack
@pytest.mark.parametrize("name", ["syn_flood", "cache_thrash"])
def test_floods_wreck_an_ungoverned_router(name):
    """The control arm: without the governor the same storm destroys
    established flows' fast path — proving the soak measures something."""
    sc = scenario(name, seed=SEED)
    report = run_scenario(_build(governed=False), sc)
    violations = sc.check(report)
    assert violations, "storm had no effect; soak parameters are too soft"
    assert report["phases"]["attack"]["background_hit_ratio"] < 0.9


@pytest.mark.attack
@pytest.mark.parametrize("name", sorted(scenario_names()))
def test_every_scenario_holds_under_governor(name):
    """Registry-wide invariance sweep, one seed per scenario."""
    sc = scenario(name, seed=SEED)
    report = run_scenario(_build(), sc)
    assert sc.check(report) == []


@pytest.mark.attack
def test_flash_crowd_is_served_not_shed():
    """Legitimate overload: crowd flows repeat, so persistence admits
    them — the governor may apply pressure but must not drop."""
    sc = scenario("flash_crowd", seed=SEED)
    router = _build()
    report = run_scenario(router, sc)
    assert sc.check(report) == []
    assert report["phases"]["attack"]["shed"] == 0
    crowd = report["phases"]["attack"]
    assert crowd["attack_forwarded"] == crowd["attack_sent"]


@pytest.mark.attack
def test_scenarios_are_deterministic_and_replayable():
    """Same seed, same storm; a scenario can be replayed against any
    number of routers (packets are cloned per run)."""
    sc = scenario("syn_flood", seed=SEED)
    first = run_scenario(_build(), sc)
    second = run_scenario(_build(), sc)
    assert first == second
    assert scenario("syn_flood", seed=SEED + 1).attack != sc.attack


@pytest.mark.attack
def test_memory_budget_bounds_unbounded_table():
    """An unbounded flow table under a governor memory budget: degraded
    admission stops growth and idle reclaim walks it back down."""
    budget = 128
    sc = scenario("cache_thrash", seed=SEED)
    governed = _build(max_flows=None, memory_budget=budget, idle_reclaim=0.01)
    report = run_scenario(governed, sc)
    unbounded = run_scenario(_build(governed=False, max_flows=None), sc)
    # Detection latency admits a brief overshoot, after which the budget
    # holds; an ungoverned unbounded table just swallows the storm.
    assert report["max_active"] <= budget + 4 * GOV["sample_interval"]
    assert report["max_active"] < unbounded["max_active"]
    assert governed.aiu.flow_table.active <= budget
    assert report["tier_after_recovery"] == TIER_NORMAL


def _healthy_workload():
    """2000 packets over 30 stable flows — the cache-friendly traffic
    the governor must be invisible on."""
    rng = random.Random(3)
    for i in range(2000):
        flow = rng.randrange(30)
        yield make_udp(
            f"10.0.0.{flow + 1}", f"20.0.0.{flow % 10 + 1}",
            5000 + flow, 9000, iif="atm0",
        ), i * 0.001


@pytest.mark.attack
@pytest.mark.parametrize("metered", [False, True], ids=["fast", "metered"])
def test_governor_is_invisible_on_healthy_traffic(metered):
    """Bit-identical dispositions, counters, flow-table accounting and
    modelled cycles with the governor attached vs absent — on both the
    unmetered fast path and the metered specification path."""
    plain, governed = _build(governed=False), _build()
    runs = {}
    for label, router in (("plain", plain), ("governed", governed)):
        dispositions, cycles = [], []
        for packet, now in _healthy_workload():
            if metered:
                meter = CycleMeter()
                dispositions.append(router.receive(packet, now=now, cycles=meter))
                cycles.append(meter.total)
            else:
                dispositions.append(router.receive(packet, now=now))
        runs[label] = (dispositions, cycles, dict(router.counters),
                       router.aiu.flow_table.stats())
    assert runs["plain"] == runs["governed"]
    gov = governed._overload
    assert gov.tier == TIER_NORMAL and gov.samples > 0
    assert gov.shed_total == 0 and gov.bypassed == 0


@pytest.mark.attack
def test_governor_is_invisible_on_healthy_batches():
    """Same invariance through receive_batch (compiled loops stay in
    play at NORMAL: loop_for only bails out when degraded)."""
    from repro.core.batch import loop_for

    plain, governed = _build(governed=False), _build()
    runs = {}
    for label, router in (("plain", plain), ("governed", governed)):
        assert loop_for(router) is not None
        dispositions = []
        pending = []
        for packet, now in _healthy_workload():
            pending.append((packet, now))
            if len(pending) == 50:
                dispositions.extend(
                    router.receive_batch([p for p, _ in pending],
                                         now=pending[0][1])
                )
                pending = []
        runs[label] = (dispositions, dict(router.counters),
                       router.aiu.flow_table.stats())
    assert runs["plain"] == runs["governed"]
    assert governed._overload.tier == TIER_NORMAL


@pytest.mark.attack
def test_health_surfaces_overload_state():
    """Router.health() reports flow-table occupancy and governor tier."""
    router = _build()
    sc = scenario("syn_flood", seed=SEED)
    for t, packet, _ in sc.warmup[:200]:
        router.receive(packet, now=t)
    health = router.health()
    ft = health["flow_table"]
    assert ft["active"] > 0 and ft["max_records"] == MAX_FLOWS
    assert 0.0 < ft["occupancy"] <= 1.0
    assert health["overload"]["enabled"] is True
    assert health["overload"]["tier"] == TIER_NORMAL
    bare = _build(governed=False).health()
    assert bare["overload"] == {"enabled": False, "tier": TIER_NORMAL}
