"""Tests for the cycle / memory-access cost model."""

import pytest

from repro.sim.cost import (
    CPU_HZ,
    CYCLES_PER_MEMORY_ACCESS,
    Costs,
    CycleMeter,
    MemoryMeter,
    NULL_METER,
    cycles_to_us,
    memory_accesses_to_us,
    us_to_cycles,
)


class TestConversions:
    def test_paper_anchor_6460_cycles_is_27_73_us(self):
        # Table 3 row 1: 6460 cycles == 27.73 us on the P6/233.
        assert cycles_to_us(6460) == pytest.approx(27.73, abs=0.01)

    def test_us_to_cycles_inverse(self):
        assert us_to_cycles(cycles_to_us(12345)) == pytest.approx(12345)

    def test_memory_access_conversion(self):
        # Table 2: 24 accesses * 60 ns = 1.44 us ~ the paper's "1.4 us".
        assert memory_accesses_to_us(24) == pytest.approx(1.44)

    def test_memory_access_cycles_consistent(self):
        # 60 ns at 233 MHz is ~14 cycles.
        assert CYCLES_PER_MEMORY_ACCESS == round(60e-9 * CPU_HZ)


class TestCalibration:
    def test_best_effort_path_sums_to_table3_row1(self):
        assert Costs.BEST_EFFORT_PATH == 6460

    def test_flow_hash_is_papers_17_cycles(self):
        assert Costs.FLOW_HASH == 17


class TestCycleMeter:
    def test_charges_accumulate(self):
        meter = CycleMeter()
        meter.charge(100, "rx")
        meter.charge(50, "rx")
        meter.charge(25, "tx")
        assert meter.total == 175
        assert meter.breakdown() == {"rx": 150, "tx": 25}

    def test_charge_memory(self):
        meter = CycleMeter()
        meter.charge_memory(2, "lookup")
        assert meter.total == 2 * Costs.MEMORY_ACCESS

    def test_microseconds(self):
        meter = CycleMeter()
        meter.charge(233)  # 233 cycles at 233 MHz is exactly 1 us
        assert meter.microseconds == pytest.approx(1.0)

    def test_reset(self):
        meter = CycleMeter()
        meter.charge(10)
        meter.reset()
        assert meter.total == 0
        assert meter.breakdown() == {}


class TestMemoryMeter:
    def test_counts_accesses(self):
        meter = MemoryMeter()
        meter.access(3, "dag")
        meter.access(1, "hash")
        assert meter.accesses == 4
        assert meter.breakdown() == {"dag": 3, "hash": 1}

    def test_mirrors_into_cycle_meter(self):
        cycles = CycleMeter()
        meter = MemoryMeter(cycle_meter=cycles, label="classify")
        meter.access(2)
        assert cycles.total == 2 * Costs.MEMORY_ACCESS
        assert cycles.breakdown() == {"classify": 2 * Costs.MEMORY_ACCESS}

    def test_reset(self):
        meter = MemoryMeter()
        meter.access(5)
        meter.reset()
        assert meter.accesses == 0


class TestNullMeter:
    def test_accepts_everything_and_stays_zero(self):
        NULL_METER.access(10)
        NULL_METER.charge(10)
        NULL_METER.charge_memory(10)
        assert NULL_METER.accesses == 0
        assert NULL_METER.total == 0
        assert NULL_METER.breakdown() == {}
