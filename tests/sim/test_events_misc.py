"""Additional event-loop and curve edge cases."""

import pytest

from repro.sched.curves import RuntimeCurve, ServiceCurve
from repro.sim.events import Event, EventLoop


class TestEventMisc:
    def test_call_soon_runs_at_current_time(self):
        loop = EventLoop()
        loop.schedule(5.0, lambda: None)
        loop.run_until_idle()
        fired = []
        loop.call_soon(lambda: fired.append(loop.now))
        loop.run_until_idle()
        assert fired == [5.0]

    def test_event_repr_states(self):
        loop = EventLoop()
        event = loop.schedule(1.0, lambda: None)
        assert "pending" in repr(event)
        event.cancel()
        assert "cancelled" in repr(event)

    def test_events_run_counter(self):
        loop = EventLoop()
        for _ in range(3):
            loop.schedule(1.0, lambda: None)
        loop.run_until_idle()
        assert loop.events_run == 3

    def test_loop_repr(self):
        loop = EventLoop()
        loop.schedule(1.0, lambda: None)
        assert "pending=1" in repr(loop)

    def test_ordering_is_stable_under_cancel(self):
        loop = EventLoop()
        order = []
        first = loop.schedule(1.0, order.append, "a")
        loop.schedule(1.0, order.append, "b")
        loop.schedule(1.0, order.append, "c")
        first.cancel()
        loop.run_until_idle()
        assert order == ["b", "c"]


class TestCurveMisc:
    def test_segments_introspection(self):
        curve = RuntimeCurve.from_service_curve(
            ServiceCurve.two_piece(16e6, 1.0, 8e6), 2.0, 100.0
        )
        segments = curve.segments()
        assert len(segments) == 2
        assert segments[0][0] == 2.0
        assert segments[0][1] == 100.0
        assert segments[1][0] == 3.0

    def test_linear_curve_single_segment(self):
        curve = RuntimeCurve.from_service_curve(ServiceCurve.linear(8e6), 0.0, 0.0)
        assert len(curve.segments()) == 1

    def test_is_concave(self):
        assert ServiceCurve.two_piece(10e6, 1, 1e6).is_concave
        assert not ServiceCurve.two_piece(1e6, 1, 10e6).is_concave
        assert not ServiceCurve.linear(5e6).is_concave

    def test_value_at_breakpoint(self):
        sc = ServiceCurve.two_piece(16e6, 0.5, 8e6)
        # Continuous at the knee.
        assert sc.value(0.5) == pytest.approx(sc.m1 * 0.5)

    def test_min_with_same_curve_is_identity(self):
        sc = ServiceCurve.two_piece(16e6, 1.0, 8e6)
        curve = RuntimeCurve.from_service_curve(sc, 0.0, 0.0)
        curve.min_with(sc, 0.0, 0.0)
        reference = RuntimeCurve.from_service_curve(sc, 0.0, 0.0)
        for t in (0.0, 0.5, 1.0, 2.0, 10.0):
            assert curve.y_at_x(t) == pytest.approx(reference.y_at_x(t))
