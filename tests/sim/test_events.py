"""Tests for the discrete-event loop."""

import pytest

from repro.sim.events import EventLoop


class TestScheduling:
    def test_events_fire_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.schedule(2.0, order.append, "b")
        loop.schedule(1.0, order.append, "a")
        loop.schedule(3.0, order.append, "c")
        loop.run_until_idle()
        assert order == ["a", "b", "c"]

    def test_same_time_fifo(self):
        loop = EventLoop()
        order = []
        for label in "abc":
            loop.schedule(1.0, order.append, label)
        loop.run_until_idle()
        assert order == ["a", "b", "c"]

    def test_clock_advances(self):
        loop = EventLoop()
        times = []
        loop.schedule(1.5, lambda: times.append(loop.now))
        loop.run_until_idle()
        assert times == [1.5]
        assert loop.now == 1.5

    def test_nested_scheduling(self):
        loop = EventLoop()
        seen = []

        def first():
            seen.append("first")
            loop.schedule(1.0, lambda: seen.append("second"))

        loop.schedule(1.0, first)
        loop.run_until_idle()
        assert seen == ["first", "second"]
        assert loop.now == 2.0

    def test_cannot_schedule_in_past(self):
        loop = EventLoop()
        loop.schedule(1.0, lambda: None)
        loop.run_until_idle()
        with pytest.raises(ValueError):
            loop.schedule_at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventLoop().schedule(-1.0, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        loop = EventLoop()
        fired = []
        event = loop.schedule(1.0, fired.append, "x")
        event.cancel()
        loop.run_until_idle()
        assert fired == []

    def test_pending_excludes_cancelled(self):
        loop = EventLoop()
        event = loop.schedule(1.0, lambda: None)
        assert loop.pending == 1
        event.cancel()
        assert loop.pending == 0


class TestRunUntil:
    def test_run_until_stops_before_later_events(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, fired.append, "early")
        loop.schedule(5.0, fired.append, "late")
        loop.run(until=2.0)
        assert fired == ["early"]
        assert loop.now == 2.0
        loop.run_until_idle()
        assert fired == ["early", "late"]

    def test_run_until_advances_clock_when_idle(self):
        loop = EventLoop()
        loop.run(until=7.0)
        assert loop.now == 7.0

    def test_runaway_guard(self):
        loop = EventLoop()

        def respawn():
            loop.schedule(0.001, respawn)

        loop.schedule(0.0, respawn)
        with pytest.raises(RuntimeError):
            loop.run_until_idle(max_events=100)

    def test_step_returns_false_when_idle(self):
        assert EventLoop().step() is False
