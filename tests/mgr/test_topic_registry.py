"""The pluggable management-topic registry (satellite of the topology PR).

Pins the redesigned ``repro.mgr.format`` surface: ``register_topic``
validation and replacement, the versioned schema envelope on query
results, the named merge strategies, and the one-release deprecation
shims for the pre-registry module globals (``TOPICS``/``_RENDERERS``)
and envelope-less rendering.
"""

import json

import pytest

import repro  # noqa: F401  (registers the topo topics on import)
from repro import PluginManager, Router, register_topic
from repro.core.errors import ConfigurationError
from repro.mgr import format as fmt

pytestmark = pytest.mark.topo


@pytest.fixture()
def scratch_topic():
    """Yield a unique topic name, unregistered on teardown."""
    name = "scratchtopic"
    yield name
    fmt._REGISTRY.pop(name, None)


def _noop_query(library, **filters):
    return {"value": 1}


def _noop_render(data):
    return [f"value: {data['value']}"]


class TestRegisterTopic:
    def test_registered_topic_is_immediately_queryable(self, scratch_topic):
        register_topic(scratch_topic, _noop_query, _noop_render,
                       schema_version=3)
        assert scratch_topic in fmt.topic_names()
        spec = fmt.get_topic(scratch_topic)
        assert spec.envelope() == {"topic": scratch_topic, "version": 3}
        assert fmt.render_topic(
            scratch_topic, fmt.attach_schema(spec, {"value": 1})
        ) == ["value: 1"]

    def test_duplicate_requires_replace(self, scratch_topic):
        register_topic(scratch_topic, _noop_query, _noop_render)
        with pytest.raises(ConfigurationError, match="already registered"):
            register_topic(scratch_topic, _noop_query, _noop_render)
        spec = register_topic(scratch_topic, _noop_query, _noop_render,
                              schema_version=2, replace=True)
        assert fmt.get_topic(scratch_topic) is spec
        assert spec.schema_version == 2

    @pytest.mark.parametrize("kwargs,match", [
        ({"merge": "no-such-strategy"}, "unknown merge strategy"),
        ({"schema_version": 0}, "positive int"),
        ({"renderer": None}, "must be callable"),
    ])
    def test_validation(self, scratch_topic, kwargs, match):
        full = {"query_fn": _noop_query, "renderer": _noop_render}
        full.update(kwargs)
        with pytest.raises(ConfigurationError, match=match):
            register_topic(scratch_topic, **full)

    def test_bad_name_rejected(self):
        with pytest.raises(ConfigurationError, match="bad topic name"):
            register_topic("no spaces!", _noop_query, _noop_render)

    def test_unknown_topic_lookup(self):
        with pytest.raises(KeyError, match="no_such"):
            fmt.get_topic("no_such")


class TestSchemaEnvelope:
    def test_query_results_are_enveloped(self):
        router = Router(name="env")
        router.add_interface("atm0", prefix="0.0.0.0/0")
        lib = PluginManager(router).library
        for topic in fmt.topic_names():
            data = lib.query(topic)
            assert data["schema"]["topic"] == topic, topic
            assert data["schema"]["version"] >= 1, topic
            json.dumps(data)

    def test_strip_schema(self):
        assert fmt.strip_schema({"a": 1, "schema": {}}) == {"a": 1}
        assert fmt.strip_schema({"a": 1}) == {"a": 1}

    def test_merge_strips_schema_first(self):
        """Version ints must never be summed across nodes."""
        spec = fmt.get_topic("flows")
        per_node = [
            fmt.attach_schema(spec, {"active": 2}),
            fmt.attach_schema(spec, {"active": 3}),
        ]
        assert fmt.merge_topic("flows", per_node) == {"active": 5}


class TestMergeStrategies:
    def test_sum(self):
        assert fmt.merge_topic("flows", [{"a": 1}, {"a": 2}]) == {"a": 3}

    def test_worst_wins(self):
        merged = fmt.merge_topic("overload", [
            {"enabled": True, "tier": "normal",
             "window": {"packets": 10, "miss_ratio": 0.1,
                        "evict_frac": 0.0, "occupancy": 0.2},
             "counters": {"dropped": 0}, "transitions": []},
            {"enabled": True, "tier": "thrash",
             "window": {"packets": 5, "miss_ratio": 0.9,
                        "evict_frac": 0.5, "occupancy": 0.8},
             "counters": {"dropped": 7}, "transitions": []},
        ])
        assert merged["tier"] == "thrash"
        assert merged["window"]["packets"] == 15
        assert merged["window"]["miss_ratio"] == 0.9
        assert merged["counters"]["dropped"] == 7

    def test_concat(self):
        strategy = fmt.MERGE_STRATEGIES["concat"]
        merged = strategy([{"paths": [1], "n": 1}, {"paths": [2], "n": 2}])
        assert merged == {"paths": [1, 2], "n": 3}

    def test_shard0(self):
        strategy = fmt.MERGE_STRATEGIES["shard0"]
        assert strategy([{"a": 1}, {"a": 9}]) == {"a": 1}
        assert strategy([]) == {}

    def test_frontend_topics_refuse_payload_merge(self):
        for topic in ("shards", "topology", "paths", "health"):
            with pytest.raises(ConfigurationError, match="front end"):
                fmt.merge_topic(topic, [{}])


class TestDeprecationShims:
    def test_module_TOPICS(self):
        with pytest.deprecated_call(match="topic_names"):
            names = fmt.TOPICS
        assert names == fmt.topic_names()

    def test_module_RENDERERS(self):
        with pytest.deprecated_call(match="get_topic"):
            renderers = fmt._RENDERERS
        assert renderers["flows"] is fmt.get_topic("flows").renderer

    def test_render_topic_warns_on_bare_dict(self):
        spec = fmt.get_topic("flows")
        with pytest.deprecated_call(match="schema"):
            bare = fmt.render_topic("flows", {"active": 0, "flows": []})
        enveloped = fmt.render_topic(
            "flows", fmt.attach_schema(spec, {"active": 0, "flows": []})
        )
        assert bare == enveloped


class TestPlainRouterDegenerateViews:
    """show topology / show paths on a single bare router: the registry
    makes the topics available everywhere, with a one-node view."""

    def _mgr(self):
        router = Router(name="solo")
        router.add_interface("atm0", prefix="0.0.0.0/0")
        lines = []
        return PluginManager(router, output=lines.append), lines

    def test_show_topology_degenerate(self):
        mgr, lines = self._mgr()
        mgr.run_command("show topology --json")
        data = json.loads("\n".join(lines))
        assert data["schema"] == {"topic": "topology", "version": 1}
        body = fmt.strip_schema(data)
        assert [n["name"] for n in body["nodes"]] == ["solo"]
        assert body["links"] == []

    def test_show_paths_empty(self):
        mgr, lines = self._mgr()
        mgr.run_command("show paths --json")
        data = json.loads("\n".join(lines))
        assert fmt.strip_schema(data) == {"paths": []}
        lines.clear()
        mgr.run_command("show paths")
        assert any("no traced paths" in line for line in lines)
