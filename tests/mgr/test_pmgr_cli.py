"""Tests for the pmgr CLI entry point."""

import pytest

from repro.mgr.pmgr import main


class TestCli:
    def test_help(self, capsys):
        assert main(["--help"]) == 0
        assert "modload" in capsys.readouterr().out

    def test_no_args_prints_usage(self, capsys):
        assert main([]) == 0
        assert "pmgr" in capsys.readouterr().out

    def test_script_file(self, tmp_path, capsys):
        script = tmp_path / "router.conf"
        script.write_text(
            """
            # demo configuration
            modload drr
            create drr drr0 quantum=2000
            bind drr0 - *, *, UDP
            show plugins
            """
        )
        assert main([str(script)]) == 0
        output = capsys.readouterr().out
        assert "loaded drr" in output
        assert "created drr0" in output
        assert "bound drr0" in output

    def test_script_error_propagates(self, tmp_path):
        script = tmp_path / "bad.conf"
        script.write_text("modload warp-drive\n")
        with pytest.raises(Exception):
            main([str(script)])

    def test_script_error_names_line(self, tmp_path):
        from repro.core.errors import ScriptError

        script = tmp_path / "bad.conf"
        script.write_text("modload drr\nmodload warp-drive\n")
        with pytest.raises(ScriptError) as excinfo:
            main([str(script)])
        assert excinfo.value.lineno == 2

    def test_continue_on_error_flag(self, tmp_path, capsys):
        script = tmp_path / "mixed.conf"
        script.write_text("modload warp-drive\nmodload drr\nshow plugins\n")
        assert main(["-k", str(script)]) == 1  # errors occurred, but ran on
        output = capsys.readouterr().out
        assert "error: line 1" in output
        assert "drr" in output


class TestMrouteCommand:
    def test_mroute(self, tmp_path, capsys):
        script = tmp_path / "mc.conf"
        script.write_text("mroute 232.1.1.1 atm0 10.0.0.0/8\n")
        assert main([str(script)]) == 0
        assert "mroute" in capsys.readouterr().out

    def test_mroute_usage_error(self, tmp_path):
        from repro.core import Router
        from repro.core.errors import ConfigurationError
        from repro.mgr import PluginManager

        router = Router(flow_buckets=64)
        router.add_interface("atm0", prefix="0.0.0.0/0")
        manager = PluginManager(router)
        with pytest.raises(ConfigurationError):
            manager.run_command("mroute 232.1.1.1")
        manager.run_command("mroute 232.1.1.1 atm0 * atm0")
        assert len(router.multicast_table) == 1
