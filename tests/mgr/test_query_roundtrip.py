"""query() is the API, text is a formatter: for every show topic, the
``--json`` output re-rendered through ``render_topic`` must equal the
legacy text output, and the JSON itself must survive a dumps/loads
round-trip without changing the rendering (so ``pmgr show X --json``
piped to another tool sees exactly what the text view describes)."""

import json

import pytest

from repro.core.router import Router
from repro.mgr import PluginManager, RouterPluginLibrary, TOPICS, render_topic
from repro.mgr.format import _RENDERERS
from repro.net.packet import make_udp


@pytest.fixture
def configured():
    """A router with plugins, filters, faults, telemetry, and traffic —
    every topic has something non-trivial to report."""
    lines = []
    router = Router(name="rt")
    router.add_interface("atm0", prefix="10.0.0.0/8")
    router.add_interface("atm1", prefix="20.0.0.0/8")
    mgr = PluginManager(router, output=lines.append)
    mgr.run_script("""
    modload drr
    modload firewall
    create drr drr0
    create firewall fw0 default_verdict=continue
    bind drr0 - 10.*, *, UDP
    bind fw0 ip_security 10.0.9.*, *, UDP
    telemetry on
    trace on sample=1 capacity=16
    overload on sample_interval=8
    """)
    for i in range(24):
        router.receive(
            make_udp(f"10.0.0.{i % 4 + 1}", "20.0.0.1", 1000 + i, 9000, iif="atm0"),
            now=0.001 * i,
        )
    return router, mgr, lines


def _run(mgr, lines, command):
    lines.clear()
    mgr.run_command(command)
    return list(lines)


class TestRoundTrip:
    def test_every_topic_has_a_renderer(self):
        assert set(TOPICS) == set(_RENDERERS)

    @pytest.mark.parametrize("topic", TOPICS)
    def test_json_rerendered_equals_text(self, configured, topic):
        router, mgr, lines = configured
        text = _run(mgr, lines, f"show {topic}")
        blob = "\n".join(_run(mgr, lines, f"show {topic} --json"))
        data = json.loads(blob)
        assert render_topic(topic, data) == text

    @pytest.mark.parametrize("topic", TOPICS)
    def test_query_dict_is_json_stable(self, configured, topic):
        """dumps -> loads must not change what the formatter renders
        (no non-JSON types leaking into the query dicts)."""
        router, _mgr, _lines = configured
        library = RouterPluginLibrary(router)
        data = library.query(topic)
        round_tripped = json.loads(json.dumps(data))
        assert render_topic(topic, round_tripped) == render_topic(topic, data)

    def test_show_methods_are_formatters_over_query(self, configured):
        router, _mgr, _lines = configured
        library = RouterPluginLibrary(router)
        assert library.show_plugins() == render_topic(
            "plugins", library.query("plugins")
        )
        assert library.show_aiu() == render_topic("aiu", library.query("aiu"))
        assert library.show_faults() == render_topic(
            "faults", library.query("faults")
        )

    def test_unknown_topic_rejected(self, configured):
        router, mgr, lines = configured
        library = RouterPluginLibrary(router)
        from repro.core.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            library.query("nonsense")
        with pytest.raises(ConfigurationError, match="unknown show target"):
            mgr.run_command("show nonsense")

    def test_query_filters_by_gate(self, configured):
        router, _mgr, _lines = configured
        library = RouterPluginLibrary(router)
        everything = library.query("filters")["filters"]
        security_only = library.query("filters", gate="ip_security")["filters"]
        assert len(security_only) < len(everything)
        assert all(entry["gate"] == "ip_security" for entry in security_only)

    def test_query_faults_filter_by_plugin(self, configured):
        router, _mgr, _lines = configured
        library = RouterPluginLibrary(router)
        assert library.query("faults", plugin="not-there")["plugins"] == {}

    def test_bad_filter_rejected(self, configured):
        router, _mgr, _lines = configured
        library = RouterPluginLibrary(router)
        from repro.core.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            library.query("plugins", bogus=1)


class TestPmgrTelemetryCommands:
    def test_telemetry_on_off_status(self, configured):
        router, mgr, lines = configured
        assert _run(mgr, lines, "telemetry status") == ["telemetry enabled"]
        _run(mgr, lines, "telemetry off")
        assert router.telemetry is None
        assert _run(mgr, lines, "telemetry status") == ["telemetry disabled"]
        out = _run(mgr, lines, "telemetry on")
        assert out == ["telemetry enabled"]
        assert router.telemetry is not None

    def test_trace_on_off(self, configured):
        router, mgr, lines = configured
        _run(mgr, lines, "trace off")
        assert router._lifecycle is None
        out = _run(mgr, lines, "trace on sample=4 capacity=32")
        assert out == ["tracing enabled sample=1/4 capacity=32"]
        assert router._lifecycle.sample == 4

    def test_trace_rejects_unknown_option(self, configured):
        router, mgr, lines = configured
        from repro.core.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            mgr.run_command("trace on bogus=1")

    def test_show_telemetry_json_parses(self, configured):
        router, mgr, lines = configured
        data = json.loads("\n".join(_run(mgr, lines, "show telemetry --json")))
        assert data["enabled"] is True
        assert data["counters"]["router.rx"] == 24

    def test_show_usage_lists_topics(self, configured):
        router, mgr, lines = configured
        from repro.core.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="telemetry"):
            mgr.run_command("show")
