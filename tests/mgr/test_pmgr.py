"""Tests for the Plugin Manager and the Router Plugin Library."""

import pytest

from repro.core import Router
from repro.core.errors import ConfigurationError, UnknownPluginError
from repro.mgr import PLUGIN_REGISTRY, PluginManager, RouterPluginLibrary, run_script
from repro.net.packet import make_udp


@pytest.fixture
def router():
    r = Router(flow_buckets=256)
    r.add_interface("atm0", prefix="10.0.0.0/8")
    r.add_interface("atm1", prefix="20.0.0.0/8")
    return r


@pytest.fixture
def manager(router):
    return PluginManager(router)


class TestLibrary:
    def test_modload_known_plugins(self, router):
        library = RouterPluginLibrary(router)
        for name in PLUGIN_REGISTRY:
            if name in ("ah", "esp"):
                continue  # need SA config; loaded but not instantiated here
            library.modload(name)
        assert "drr" in library.show_plugins()

    def test_modload_idempotent(self, router):
        library = RouterPluginLibrary(router)
        first = library.modload("drr")
        assert library.modload("drr") is first

    def test_modload_unknown(self, router):
        with pytest.raises(UnknownPluginError):
            RouterPluginLibrary(router).modload("warp-drive")

    def test_create_and_bind(self, router):
        library = RouterPluginLibrary(router)
        library.modload("drr")
        library.create_instance("drr", "drr0", interface="atm1", quantum=2000)
        record = library.bind("drr0", "10.*, *, UDP")
        assert record.gate == "packet_scheduling"
        assert library.instance("drr0").quantum == 2000

    def test_duplicate_instance_name(self, router):
        library = RouterPluginLibrary(router)
        library.modload("fifo")
        library.create_instance("fifo", "q0")
        with pytest.raises(ConfigurationError):
            library.create_instance("fifo", "q0")

    def test_unbind(self, router):
        library = RouterPluginLibrary(router)
        library.modload("drr")
        library.create_instance("drr", "drr0")
        library.bind("drr0", "10.*, *, UDP")
        assert library.unbind("drr0")
        assert router.aiu.filter_count() == 0

    def test_free_instance(self, router):
        library = RouterPluginLibrary(router)
        library.modload("fifo")
        library.create_instance("fifo", "q0")
        library.free_instance("q0")
        assert library.instances() == []


class TestPmgrCommands:
    def test_paper_style_script(self, manager, router):
        """The §6.1 configuration sequence: load DRR, create an instance
        on an interface, bind flows — all while traffic could transit."""
        script = """
        # Load and configure the DRR plugin (paper §6.1)
        modload drr
        pmgr create drr drr0 interface=atm1 quantum=1500
        pmgr scheduler atm1 drr0
        pmgr bind drr0 - 10.*, *, UDP, *, *, *
        """
        executed = run_script(script, router).run_script("")
        manager2 = PluginManager(router)
        # run_script already applied it; verify effects on the router.
        assert router.pcu.is_loaded("drr")
        assert router.aiu.filter_count("packet_scheduling") == 1
        assert router.scheduler("atm1") is not None
        assert executed == 0 or executed is None or True

    def test_script_drives_traffic(self, router):
        run_script(
            """
            modload drr
            create drr drr0 interface=atm1
            scheduler atm1 drr0
            bind drr0 - *, *, UDP
            """,
            router,
        )
        pkt = make_udp("10.0.0.1", "20.0.0.1", 5000, 53, iif="atm0")
        assert router.receive(pkt) == "queued"
        assert router.interface("atm1").tx_packets == 1

    def test_unknown_command(self, manager):
        with pytest.raises(ConfigurationError):
            manager.run_command("fnord all the things")

    def test_usage_errors(self, manager):
        manager.run_command("modload drr")
        with pytest.raises(ConfigurationError):
            manager.run_command("create drr")
        with pytest.raises(ConfigurationError):
            manager.run_command("bind x")
        with pytest.raises(ConfigurationError):
            manager.run_command("show nonsense")

    def test_comments_and_blanks_skipped(self, manager):
        assert manager.run_script("\n# comment only\n\n") == 0

    def test_msg_command_resolves_instance(self, router):
        output = []
        manager = PluginManager(router, output=output.append)
        manager.run_script(
            """
            modload stats
            create stats s0
            msg stats set_collector instance=s0 collector=sizes
            """
        )
        assert manager.library.instance("s0").collector_name == "sizes"

    def test_show_commands(self, router):
        output = []
        manager = PluginManager(router, output=output.append)
        manager.run_script(
            """
            modload drr
            create drr drr0
            bind drr0 - 10.*, *, UDP
            show plugins
            show filters
            show flows
            """
        )
        assert any("drr" in line for line in output)
        assert any("packet_scheduling" in line for line in output)

    def test_route_command(self, manager, router):
        manager.run_command("route 30.0.0.0/8 atm1 20.0.0.2")
        assert router.routing_table.lookup("30.1.2.3").interface == "atm1"

    def test_modunload(self, manager, router):
        manager.run_command("modload drr")
        manager.run_command("modunload drr")
        assert not router.pcu.is_loaded("drr")


class TestScriptHardening:
    def test_script_error_names_line_and_command(self, manager):
        from repro.core.errors import ScriptError

        script = "modload drr\n\n# comment\nmodload warp-drive\n"
        with pytest.raises(ScriptError) as excinfo:
            manager.run_script(script)
        error = excinfo.value
        assert error.lineno == 4
        assert error.command == "modload warp-drive"
        assert "line 4" in str(error)
        assert "warp-drive" in str(error)
        # ScriptError is a ConfigurationError: existing handlers still work.
        assert isinstance(error, ConfigurationError)

    def test_continue_on_error_runs_remaining_lines(self, router):
        output = []
        manager = PluginManager(router, output=output.append)
        executed = manager.run_script(
            """
            modload warp-drive
            modload drr
            create drr drr0
            bogus-command
            bind drr0 - *, *, UDP
            """,
            continue_on_error=True,
        )
        assert executed == 3
        assert [e.lineno for e in manager.script_errors] == [2, 5]
        assert router.pcu.is_loaded("drr")
        assert router.aiu.filter_count("packet_scheduling") == 1
        assert sum(1 for line in output if line.startswith("error:")) == 2

    def test_script_errors_reset_between_runs(self, manager):
        manager.run_script("modload warp-drive", continue_on_error=True)
        assert len(manager.script_errors) == 1
        manager.run_script("modload drr", continue_on_error=True)
        assert manager.script_errors == []


class TestFaultCommands:
    @pytest.fixture
    def output_manager(self, router):
        output = []
        manager = PluginManager(router, output=output.append)
        manager.run_script(
            """
            modload stats
            create stats s0
            bind s0 ip_security *, *, UDP
            """
        )
        return manager, output

    def test_quarantine_and_reinstate(self, output_manager, router):
        manager, output = output_manager
        manager.run_command("quarantine stats")
        pkt = make_udp("10.0.0.1", "20.0.0.1", 5000, 53, iif="atm0")
        assert router.receive(pkt) == "dropped_by_plugin"
        manager.run_command("reinstate stats")
        pkt = make_udp("10.0.0.1", "20.0.0.1", 5000, 53, iif="atm0")
        assert router.receive(pkt) == "forwarded"
        assert any("quarantined stats" in line for line in output)
        assert any("reinstated stats" in line for line in output)

    def test_quarantine_with_action(self, output_manager, router):
        manager, _ = output_manager
        manager.run_command("quarantine stats bypass")
        pkt = make_udp("10.0.0.1", "20.0.0.1", 5000, 53, iif="atm0")
        assert router.receive(pkt) == "forwarded"
        assert manager.library.instance("s0").packets_processed == 0

    def test_faultpolicy_command(self, output_manager, router):
        manager, _ = output_manager
        manager.run_command(
            "faultpolicy stats threshold=7 window=2.5 action=bypass cooldown=10"
        )
        policy = router.faults.domain("stats").policy
        assert policy.threshold == 7
        assert policy.window == 2.5
        assert policy.action == "bypass"
        assert policy.cooldown == 10

    def test_faultpolicy_rejects_bad_values(self, output_manager):
        manager, _ = output_manager
        with pytest.raises(ConfigurationError):
            manager.run_command("faultpolicy stats threshold=0")
        with pytest.raises(ConfigurationError):
            manager.run_command("faultpolicy stats action=explode")

    def test_show_faults_empty(self, output_manager):
        manager, output = output_manager
        manager.run_command("show faults")
        assert "no plugin faults recorded" in output

    def test_show_faults_lists_records(self, output_manager, router):
        manager, output = output_manager

        def boom(packet, ctx):
            raise RuntimeError("stats exploded")

        manager.library.instance("s0").process = boom
        router.receive(make_udp("10.0.0.1", "20.0.0.1", 5000, 53, iif="atm0"))
        manager.run_command("show faults")
        assert any("stats: healthy" in line for line in output)
        assert any("stats exploded" in line for line in output)

    def test_show_health(self, output_manager):
        manager, output = output_manager
        manager.run_command("show health")
        assert any("'router'" in line for line in output)

    def test_show_aiu_counts_compiled_lookups(self, output_manager, router):
        manager, output = output_manager
        # Unmetered traffic: the flow miss classifies via the compiled
        # walk at the gate with the s0 filter, then the repeat packet
        # hits the flow cache (no further filter lookups).
        packet_args = ("10.0.0.1", "20.0.0.1", 5000, 53)
        router.receive(make_udp(*packet_args, iif="atm0"))
        router.receive(make_udp(*packet_args, iif="atm0"))
        manager.run_command("show aiu")
        gate_lines = [line for line in output if line.startswith("ip_security:")]
        assert gate_lines == [
            "ip_security: filters=1 lookups=1 compiled=1 matches=1"
        ]
        assert any(
            line.startswith("flow cache:") and "hits=1" in line and "misses=1" in line
            for line in output
        )

    def test_show_aiu_metered_lookups_not_compiled(self, output_manager, router):
        from repro.sim.cost import CycleMeter

        manager, output = output_manager
        router.receive(
            make_udp("10.0.0.1", "20.0.0.1", 5000, 53, iif="atm0"),
            cycles=CycleMeter(),
        )
        manager.run_command("show aiu")
        assert any(
            line == "ip_security: filters=1 lookups=1 compiled=0 matches=1"
            for line in output
        )


class TestDynamicReconfiguration:
    def test_plugins_swap_under_live_traffic(self, router):
        """§6.1: "these commands can be executed at any time, even when
        network traffic is transiting through the system"."""
        manager = PluginManager(router)
        manager.run_script("modload drr\ncreate drr drr0\nscheduler atm1 drr0\nbind drr0 - *, *, UDP")
        for i in range(5):
            router.receive(make_udp("10.0.0.1", "20.0.0.1", 5000, 53, iif="atm0"))
        # Swap in a second instance for a subset of traffic, live.
        manager.run_script("create drr gold\nbind gold - 10.0.0.9, *, UDP")
        gold_pkt = make_udp("10.0.0.9", "20.0.0.1", 5000, 53, iif="atm0")
        router.receive(gold_pkt)
        assert manager.library.instance("gold").packets_queued == 1
