"""Tests for the Router Plugin Library's parsing helpers."""

import pytest

from repro.core.errors import ConfigurationError
from repro.mgr.library import _coerce, parse_config_value, split_command


class TestCoerce:
    @pytest.mark.parametrize("text,expected", [
        ("true", True),
        ("False", False),
        ("42", 42),
        ("-7", -7),
        ("1.5", 1.5),
        ("2e6", 2e6),
        ("atm0", "atm0"),
        ("10.0.0.0/8", "10.0.0.0/8"),
    ])
    def test_typing(self, text, expected):
        assert _coerce(text) == expected

    def test_int_stays_int(self):
        assert isinstance(_coerce("3"), int)
        assert isinstance(_coerce("3.0"), float)


class TestParseConfigValue:
    def test_key_value(self):
        assert parse_config_value("quantum=1500") == ("quantum", 1500)

    def test_value_with_equals(self):
        key, value = parse_config_value("note=a=b")
        assert key == "note"
        assert value == "a=b"

    def test_missing_equals_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_config_value("justakey")


class TestSplitCommand:
    def test_plain_tokens(self):
        assert split_command("bind drr0 - 10.*, *, UDP") == [
            "bind", "drr0", "-", "10.*,", "*,", "UDP"
        ]

    def test_quoted_tokens(self):
        assert split_command('create drr "my instance"') == [
            "create", "drr", "my instance"
        ]

    def test_comments_stripped(self):
        assert split_command("modload drr # the scheduler") == ["modload", "drr"]

    def test_empty_line(self):
        assert split_command("   ") == []
