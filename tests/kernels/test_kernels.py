"""Tests for the Table 3 kernel rigs — the shape of the paper's headline
numbers is asserted here (exact reproduction lives in the benchmark)."""

import pytest

from repro.kernels import (
    build_all_table3_kernels,
    build_altq_kernel,
    build_besteffort_kernel,
    build_drr_plugin_kernel,
    build_plugin_kernel,
    format_table3,
    run_table3_workload,
)
from repro.sim.cost import CycleMeter
from repro.workloads import table3_flows


@pytest.fixture(scope="module")
def results():
    return [
        run_table3_workload(kernel, repetitions=2)
        for kernel in build_all_table3_kernels()
    ]


class TestBestEffort:
    def test_forwarding_works(self):
        kernel = build_besteffort_kernel()
        pkt = table3_flows()[0].packet()
        meter = CycleMeter()
        assert kernel.process(pkt, meter) == "forwarded"
        assert meter.total == 6460  # the paper's exact Table 3 row 1

    def test_ttl_and_route_drops(self):
        kernel = build_besteffort_kernel()
        expired = table3_flows()[0].packet(ttl=1)
        assert kernel.process(expired, CycleMeter()) == "dropped_ttl"
        from repro.net.packet import make_udp

        unroutable = make_udp("10.0.0.1", "99.0.0.1", 1, 2)
        assert kernel.process(unroutable, CycleMeter()) == "dropped_no_route"


class TestTable3Shape:
    def test_best_effort_is_exactly_6460(self, results):
        assert results[0].avg_cycles == pytest.approx(6460, abs=1)

    def test_plugin_overhead_near_8_percent(self, results):
        """The headline claim: ~8% / ~500 cycles over best-effort."""
        overhead = results[1].overhead_vs(results[0])
        assert 0.06 <= overhead <= 0.10
        assert 400 <= results[1].avg_cycles - results[0].avg_cycles <= 600

    def test_altq_drr_overhead_near_paper(self, results):
        # Paper: 8160 cycles, ~26% over best-effort.
        assert results[2].avg_cycles == pytest.approx(8160, rel=0.05)

    def test_plugin_drr_close_to_altq_but_not_slower(self, results):
        """§7.3: 'we benefit only from faster hashing' — the plugin DRR
        build is at least as fast as the ALTQ build."""
        assert results[3].avg_cycles <= results[2].avg_cycles
        assert results[3].avg_cycles == pytest.approx(results[2].avg_cycles, rel=0.1)

    def test_ordering_matches_paper(self, results):
        cycles = [r.avg_cycles for r in results]
        assert cycles[0] < cycles[1] < cycles[3] <= cycles[2]

    def test_throughput_column(self, results):
        # Paper row 1: 36 800 pkts/s at 233 MHz.
        assert results[0].throughput_pps == pytest.approx(36068, rel=0.05)

    def test_format_table3_has_all_rows(self, results):
        table = format_table3(results)
        assert "Unmodified NetBSD" in table
        assert "ALTQ" in table
        assert table.count("\n") == 4


class TestKernelBehaviour:
    def test_plugin_kernel_uses_flow_cache(self):
        kernel = build_plugin_kernel()
        flows = table3_flows()
        for _ in range(3):
            for flow in flows:
                kernel.process(flow.packet(), CycleMeter())
        stats = kernel.router.aiu.stats()
        assert stats["hits"] >= 6
        assert stats["misses"] == 3  # one per flow

    def test_plugin_kernel_first_packet_costs_more(self):
        kernel = build_plugin_kernel()
        flow = table3_flows()[0]
        first = CycleMeter()
        kernel.process(flow.packet(), first)
        second = CycleMeter()
        kernel.process(flow.packet(), second)
        assert first.total > second.total  # filter lookups amortized

    def test_drr_kernel_actually_schedules(self):
        kernel = build_drr_plugin_kernel()
        for flow in table3_flows():
            kernel.process(flow.packet(), CycleMeter())
        assert kernel.router.counters["queued"] == 3
        assert kernel.router.interface("atm1").tx_packets == 3

    def test_altq_kernel_classifies_and_forwards(self):
        kernel = build_altq_kernel()
        meter = CycleMeter()
        kernel.process(table3_flows()[0].packet(), meter)
        assert "altq_classify" in meter.breakdown()
        assert kernel.forwarded == 1

    def test_background_filters_installed(self):
        kernel = build_plugin_kernel(filter_count=16)
        # 16 background filters + 3 catch-all bindings.
        assert kernel.router.aiu.filter_count() == 19
