"""Tests for the Table 3 result arithmetic and formatting."""

import pytest

from repro.kernels.base import KernelResult, TABLE3_HEADER, format_table3
from repro.sim.cost import CPU_HZ


class TestKernelResult:
    def test_avg_us(self):
        result = KernelResult("x", avg_cycles=6460, packets=100)
        assert result.avg_us == pytest.approx(27.73, abs=0.01)

    def test_throughput(self):
        result = KernelResult("x", avg_cycles=6460, packets=100)
        assert result.throughput_pps == pytest.approx(CPU_HZ / 6460)

    def test_overhead_vs(self):
        base = KernelResult("base", avg_cycles=6460, packets=1)
        other = KernelResult("plugin", avg_cycles=6970, packets=1)
        assert other.overhead_vs(base) == pytest.approx(0.0789, abs=0.001)

    def test_row_formats_overhead(self):
        base = KernelResult("base", avg_cycles=1000, packets=1)
        other = KernelResult("double", avg_cycles=2000, packets=1)
        assert "+100.0%" in other.row(base)
        # 233 MHz / 2000 cycles = 116 500 pkts/s.
        assert other.row(None).strip().endswith("116500")

    def test_row_baseline_is_dash(self):
        base = KernelResult("base", avg_cycles=1000, packets=1)
        assert " -" in base.row(base)

    def test_format_table3(self):
        rows = [
            KernelResult("a", avg_cycles=1000, packets=1),
            KernelResult("b", avg_cycles=1100, packets=1),
        ]
        table = format_table3(rows)
        assert table.splitlines()[0] == TABLE3_HEADER
        assert "+10.0%" in table
