"""Tests for the Packet (mbuf analogue)."""

import pytest
from hypothesis import given, strategies as st

from repro.net.addresses import IPAddress
from repro.net.headers import (
    HeaderError,
    OPT_ROUTER_ALERT,
    OptionTLV,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
)
from repro.net.packet import PARSE_STATS, Packet, make_tcp, make_udp


class TestConstruction:
    def test_make_udp(self):
        pkt = make_udp("10.0.0.1", "10.0.0.2", 5000, 53, payload_size=100)
        assert pkt.protocol == PROTO_UDP
        assert pkt.version == 4
        assert len(pkt.payload) == 100

    def test_make_tcp_v6(self):
        pkt = make_tcp("2001:db8::1", "2001:db8::2", 1234, 80)
        assert pkt.is_ipv6
        assert pkt.version == 6

    def test_family_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Packet(
                src=IPAddress.parse("10.0.0.1"),
                dst=IPAddress.parse("::1"),
                protocol=PROTO_UDP,
            )

    def test_packet_ids_unique(self):
        a = make_udp("1.1.1.1", "2.2.2.2", 1, 2)
        b = make_udp("1.1.1.1", "2.2.2.2", 1, 2)
        assert a.packet_id != b.packet_id

    def test_copy_resets_mbuf_metadata(self):
        pkt = make_udp("1.1.1.1", "2.2.2.2", 1, 2)
        pkt.fix = object()
        dup = pkt.copy()
        assert dup.fix is None
        assert dup.packet_id != pkt.packet_id
        assert dup.five_tuple() == pkt.five_tuple()


class TestTuples:
    def test_five_tuple(self):
        pkt = make_udp("10.0.0.1", "10.0.0.2", 5000, 53)
        src, dst, proto, sport, dport = pkt.five_tuple()
        assert proto == PROTO_UDP
        assert (sport, dport) == (5000, 53)

    def test_six_tuple_includes_iif(self):
        pkt = make_udp("10.0.0.1", "10.0.0.2", 5000, 53, iif="atm0")
        assert pkt.six_tuple()[-1] == "atm0"

    def test_portless_protocol_ports_are_zero(self):
        pkt = Packet(
            src=IPAddress.parse("10.0.0.1"),
            dst=IPAddress.parse("10.0.0.2"),
            protocol=PROTO_ICMP,
        )
        assert pkt.five_tuple()[3:] == (0, 0)


class TestLengths:
    def test_v4_udp_length(self):
        pkt = make_udp("10.0.0.1", "10.0.0.2", 1, 2, payload_size=100)
        assert pkt.length == 20 + 8 + 100

    def test_v6_tcp_length(self):
        pkt = make_tcp("2001:db8::1", "2001:db8::2", 1, 2, payload_size=10)
        assert pkt.length == 40 + 20 + 10

    def test_length_matches_serialization(self):
        for pkt in [
            make_udp("10.0.0.1", "10.0.0.2", 1, 2, payload_size=64),
            make_tcp("2001:db8::1", "2001:db8::2", 1, 2, payload_size=64),
        ]:
            assert pkt.length == len(pkt.serialize())


class TestWireRoundtrip:
    def _roundtrip(self, pkt):
        parsed = Packet.parse(pkt.serialize(), iif="atm1")
        assert parsed.five_tuple() == pkt.five_tuple()
        assert parsed.payload == pkt.payload
        assert parsed.ttl == pkt.ttl
        assert parsed.iif == "atm1"
        return parsed

    def test_v4_udp(self):
        self._roundtrip(make_udp("10.0.0.1", "10.0.0.2", 5000, 53, payload_size=64, ttl=9))

    def test_v4_tcp(self):
        self._roundtrip(make_tcp("10.0.0.1", "10.0.0.2", 5000, 80, payload_size=1))

    def test_v6_udp_flow_label(self):
        pkt = make_udp("2001:db8::1", "2001:db8::2", 1, 2, flow_label=0x12345)
        assert self._roundtrip(pkt).flow_label == 0x12345

    def test_v6_hop_options(self):
        pkt = make_udp(
            "2001:db8::1",
            "2001:db8::2",
            1,
            2,
            hop_options=[OptionTLV(OPT_ROUTER_ALERT, b"\x00\x00")],
        )
        parsed = self._roundtrip(pkt)
        assert parsed.hop_options == pkt.hop_options

    def test_v4_hop_options_rejected(self):
        pkt = make_udp("10.0.0.1", "10.0.0.2", 1, 2)
        pkt.hop_options = [OptionTLV(OPT_ROUTER_ALERT, b"\x00\x00")]
        with pytest.raises(HeaderError):
            pkt.serialize()

    def test_empty_datagram_rejected(self):
        with pytest.raises(HeaderError):
            Packet.parse(b"")


@given(
    sport=st.integers(min_value=0, max_value=65535),
    dport=st.integers(min_value=0, max_value=65535),
    size=st.integers(min_value=0, max_value=512),
    proto=st.sampled_from([PROTO_UDP, PROTO_TCP]),
    v6=st.booleans(),
)
def test_wire_roundtrip_property(sport, dport, size, proto, v6):
    make = make_udp if proto == PROTO_UDP else make_tcp
    src, dst = ("2001:db8::1", "2001:db8::2") if v6 else ("10.0.0.1", "10.0.0.2")
    pkt = make(src, dst, sport, dport, payload_size=size)
    parsed = Packet.parse(pkt.serialize())
    assert parsed.five_tuple() == pkt.five_tuple()
    assert len(parsed.payload) == size


class TestFiveTupleCache:
    """The cache contract: one five-tuple fold per packet lifetime."""

    def test_fold_computed_exactly_once(self):
        pkt = make_udp("10.0.0.1", "10.0.0.2", 5000, 53)
        before = PARSE_STATS.tuple_derivations
        first = pkt.flow_fold32()
        assert PARSE_STATS.tuple_derivations == before + 1
        assert pkt.flow_fold32() == first
        assert PARSE_STATS.tuple_derivations == before + 1

    def test_clearing_fix_drops_the_fold(self):
        pkt = make_udp("10.0.0.1", "10.0.0.2", 5000, 53)
        pkt.flow_fold32()
        before = PARSE_STATS.tuple_derivations
        pkt.fix = None    # "different flow now" signal
        pkt.flow_fold32()
        assert PARSE_STATS.tuple_derivations == before + 1

    def test_parse_warms_fold_and_length(self):
        wire = make_udp("10.0.0.1", "10.0.0.2", 5000, 53, payload_size=64).serialize()
        before = PARSE_STATS.tuple_derivations
        pkt = Packet.parse(wire, iif="atm0")
        assert PARSE_STATS.tuple_derivations == before + 1
        # Both caches are warm: further reads derive nothing.
        pkt.flow_fold32()
        assert pkt.length == len(wire)
        assert PARSE_STATS.tuple_derivations == before + 1

    def test_parse_payload_is_a_zero_copy_view(self):
        original = make_udp("10.0.0.1", "10.0.0.2", 5000, 53, payload_size=64)
        pkt = Packet.parse(original.serialize())
        assert isinstance(pkt.payload, memoryview)
        assert bytes(pkt.payload) == bytes(original.payload)
        # Serialization converts at the edge and round-trips.
        assert Packet.parse(pkt.serialize()).five_tuple() == pkt.five_tuple()
