"""Tests for wire-format header encode/decode."""

import pytest

from repro.net.addresses import IPAddress
from repro.net.checksum import internet_checksum, verify_checksum
from repro.net.headers import (
    AHHeader,
    ESPHeader,
    HeaderError,
    IPv4Header,
    IPv6Header,
    OPT_PAD1,
    OPT_ROUTER_ALERT,
    OptionsHeader,
    OptionTLV,
    PROTO_TCP,
    PROTO_UDP,
    TCPHeader,
    UDPHeader,
    protocol_name,
    protocol_number,
)


class TestChecksum:
    def test_rfc1071_example(self):
        # Classic example from RFC 1071 §3.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert internet_checksum(data) == 0x220D

    def test_odd_length_padded(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")

    def test_verify_with_embedded_checksum(self):
        data = bytearray(b"\x45\x00\x00\x14" + b"\x00" * 16)
        csum = internet_checksum(bytes(data))
        data[10:12] = csum.to_bytes(2, "big")
        assert verify_checksum(bytes(data))


class TestIPv4Header:
    def _header(self, **kwargs):
        defaults = dict(
            src=IPAddress.parse("10.0.0.1"),
            dst=IPAddress.parse("10.0.0.2"),
            protocol=PROTO_UDP,
            total_length=100,
            ttl=42,
            tos=0xB8,
        )
        defaults.update(kwargs)
        return IPv4Header(**defaults)

    def test_roundtrip(self):
        header = self._header()
        parsed = IPv4Header.parse(header.serialize())
        assert parsed == header

    def test_serialized_length(self):
        assert len(self._header().serialize()) == 20

    def test_checksum_is_valid(self):
        assert verify_checksum(self._header().serialize())

    def test_corrupted_checksum_rejected(self):
        data = bytearray(self._header().serialize())
        data[8] ^= 0xFF
        with pytest.raises(HeaderError):
            IPv4Header.parse(bytes(data))

    def test_short_buffer_rejected(self):
        with pytest.raises(HeaderError):
            IPv4Header.parse(b"\x45\x00")

    def test_wrong_version_rejected(self):
        data = bytearray(self._header().serialize())
        data[0] = (6 << 4) | 5
        with pytest.raises(HeaderError):
            IPv4Header.parse(bytes(data))

    def test_requires_v4_addresses(self):
        with pytest.raises(HeaderError):
            IPv4Header(
                src=IPAddress.parse("::1"),
                dst=IPAddress.parse("::2"),
                protocol=PROTO_UDP,
            )


class TestIPv6Header:
    def _header(self, **kwargs):
        defaults = dict(
            src=IPAddress.parse("2001:db8::1"),
            dst=IPAddress.parse("2001:db8::2"),
            next_header=PROTO_UDP,
            payload_length=512,
            hop_limit=17,
            traffic_class=0x2E,
            flow_label=0xABCDE,
        )
        defaults.update(kwargs)
        return IPv6Header(**defaults)

    def test_roundtrip(self):
        header = self._header()
        assert IPv6Header.parse(header.serialize()) == header

    def test_serialized_length(self):
        assert len(self._header().serialize()) == 40

    def test_flow_label_range_checked(self):
        with pytest.raises(HeaderError):
            self._header(flow_label=1 << 20)

    def test_wrong_version_rejected(self):
        data = bytearray(self._header().serialize())
        data[0] = 0x45
        with pytest.raises(HeaderError):
            IPv6Header.parse(bytes(data))


class TestOptionsHeader:
    def test_roundtrip_router_alert(self):
        header = OptionsHeader(PROTO_UDP, [OptionTLV(OPT_ROUTER_ALERT, b"\x00\x00")])
        data = header.serialize()
        assert len(data) % 8 == 0
        parsed, consumed = OptionsHeader.parse(data)
        assert consumed == len(data)
        assert parsed.next_header == PROTO_UDP
        assert parsed.options == header.options

    def test_empty_options_pad_to_8(self):
        data = OptionsHeader(PROTO_TCP, []).serialize()
        assert len(data) == 8
        parsed, _ = OptionsHeader.parse(data)
        assert parsed.options == []

    def test_pad1_skipped_on_parse(self):
        header = OptionsHeader(PROTO_UDP, [OptionTLV(OPT_PAD1)])
        parsed, _ = OptionsHeader.parse(header.serialize())
        assert parsed.options == []  # padding is not a semantic option

    def test_truncated_rejected(self):
        data = OptionsHeader(PROTO_UDP, [OptionTLV(OPT_ROUTER_ALERT, b"\x00\x00")]).serialize()
        with pytest.raises(HeaderError):
            OptionsHeader.parse(data[:4])

    def test_action_bits(self):
        assert OptionTLV(OPT_ROUTER_ALERT).action_bits == 0
        assert OptionTLV(0xC2).action_bits == 3


class TestTransportHeaders:
    def test_udp_roundtrip(self):
        header = UDPHeader(5000, 53, 200)
        assert UDPHeader.parse(header.serialize()) == header

    def test_udp_short_rejected(self):
        with pytest.raises(HeaderError):
            UDPHeader.parse(b"\x00\x01")

    def test_tcp_roundtrip(self):
        header = TCPHeader(12345, 80, seq=7, ack=9, flags=0x18, window=1024)
        assert TCPHeader.parse(header.serialize()) == header

    def test_tcp_options_rejected(self):
        data = bytearray(TCPHeader(1, 2).serialize())
        data[12] = 6 << 4  # data offset 6 => options present
        with pytest.raises(HeaderError):
            TCPHeader.parse(bytes(data))


class TestIPsecHeaders:
    def test_ah_roundtrip(self):
        header = AHHeader(PROTO_UDP, spi=0xDEADBEEF, sequence=42, icv=b"\x01" * 12)
        parsed, consumed = AHHeader.parse(header.serialize())
        assert consumed == len(header.serialize())
        assert parsed == header

    def test_ah_truncated(self):
        with pytest.raises(HeaderError):
            AHHeader.parse(b"\x00" * 8)

    def test_esp_roundtrip(self):
        header = ESPHeader(spi=77, sequence=3, body=b"ciphertext")
        assert ESPHeader.parse(header.serialize()) == header


class TestProtocolNames:
    def test_known_names(self):
        assert protocol_name(PROTO_TCP) == "TCP"
        assert protocol_name(PROTO_UDP) == "UDP"

    def test_unknown_number_stringified(self):
        assert protocol_name(200) == "200"

    @pytest.mark.parametrize("spec,expected", [("TCP", 6), ("udp", 17), (6, 6), ("6", 6)])
    def test_protocol_number(self, spec, expected):
        assert protocol_number(spec) == expected

    def test_unknown_name_rejected(self):
        with pytest.raises(HeaderError):
            protocol_number("NOPE")
