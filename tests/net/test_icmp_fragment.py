"""Tests for ICMP error generation and IPv4 fragmentation/reassembly."""

import pytest

from repro.net.addresses import IPAddress
from repro.net.fragment import (
    FragmentationError,
    Reassembler,
    fragment_v4,
)
from repro.net.icmp import (
    ICMP6_PACKET_TOO_BIG,
    ICMP6_TIME_EXCEEDED,
    ICMP_DEST_UNREACHABLE,
    ICMP_TIME_EXCEEDED,
    IcmpRateLimiter,
    UNREACH_FRAG_NEEDED,
    destination_unreachable,
    packet_too_big,
    time_exceeded,
)
from repro.net.packet import make_udp

SRC4 = IPAddress.parse("192.0.2.254")
SRC6 = IPAddress.parse("2001:db8::fe")


def _v4(size=100, **kw):
    return make_udp("10.0.0.1", "20.0.0.1", 5000, 53, payload_size=size, **kw)


def _v6(size=100, **kw):
    return make_udp("2001:db8::1", "2001:db8::2", 5000, 53, payload_size=size, **kw)


class TestIcmpErrors:
    def test_time_exceeded_v4(self):
        error = time_exceeded(_v4(), SRC4)
        assert error is not None
        assert error.dst == _v4().src
        assert error.annotations["icmp"].icmp_type == ICMP_TIME_EXCEEDED
        assert error.annotations["icmp"].is_time_exceeded

    def test_time_exceeded_v6(self):
        error = time_exceeded(_v6(), SRC6)
        assert error.annotations["icmp"].icmp_type == ICMP6_TIME_EXCEEDED

    def test_unreachable(self):
        error = destination_unreachable(_v4(), SRC4)
        assert error.annotations["icmp"].is_unreachable

    def test_packet_too_big_carries_mtu(self):
        error = packet_too_big(_v6(size=2000), SRC6, mtu=1500)
        info = error.annotations["icmp"]
        assert info.icmp_type == ICMP6_PACKET_TOO_BIG
        assert info.mtu == 1500
        assert info.is_too_big

    def test_v4_frag_needed_is_unreachable_code4(self):
        error = packet_too_big(_v4(size=2000), SRC4, mtu=1500)
        info = error.annotations["icmp"]
        assert info.icmp_type == ICMP_DEST_UNREACHABLE
        assert info.code == UNREACH_FRAG_NEEDED

    def test_quotes_offending_datagram(self):
        pkt = _v4()
        error = time_exceeded(pkt, SRC4)
        assert error.payload == pkt.serialize()[: len(error.payload)]
        assert len(error.payload) > 20

    def test_no_error_about_an_error(self):
        first = time_exceeded(_v4(), SRC4)
        assert time_exceeded(first, SRC4) is None

    def test_no_source_no_error(self):
        assert time_exceeded(_v4(), None) is None

    def test_family_mismatch_no_error(self):
        assert time_exceeded(_v4(), SRC6) is None


class TestRateLimiter:
    def test_burst_then_suppression(self):
        limiter = IcmpRateLimiter(rate_per_s=10, burst=3)
        allowed = [limiter.allow(0.0) for _ in range(5)]
        assert allowed == [True, True, True, False, False]
        assert limiter.suppressed == 2

    def test_tokens_refill(self):
        limiter = IcmpRateLimiter(rate_per_s=10, burst=1)
        assert limiter.allow(0.0)
        assert not limiter.allow(0.01)
        assert limiter.allow(1.0)


class TestFragmentation:
    def test_small_packet_unchanged(self):
        pkt = _v4(size=100)
        assert fragment_v4(pkt, mtu=1500) == [pkt]

    def test_fragments_fit_mtu(self):
        pkt = _v4(size=4000)
        fragments = fragment_v4(pkt, mtu=1500)
        assert len(fragments) >= 3
        assert all(f.length <= 1500 for f in fragments)

    def test_offsets_are_8_byte_aligned_and_contiguous(self):
        fragments = fragment_v4(_v4(size=4000), mtu=1500)
        offset = 0
        for frag in fragments:
            info = frag.annotations["frag"]
            assert info.offset == offset
            assert info.offset % 8 == 0
            offset += len(frag.annotations["frag_raw"])
        assert not fragments[-1].annotations["frag"].more_fragments
        assert all(f.annotations["frag"].more_fragments for f in fragments[:-1])

    def test_only_first_fragment_has_ports(self):
        fragments = fragment_v4(_v4(size=4000), mtu=1500)
        assert fragments[0].src_port == 5000
        assert all(f.src_port == 0 for f in fragments[1:])

    def test_df_rejected(self):
        with pytest.raises(FragmentationError):
            fragment_v4(_v4(size=4000), mtu=1500, df=True)

    def test_v6_rejected(self):
        with pytest.raises(FragmentationError):
            fragment_v4(_v6(size=4000), mtu=1500)

    def test_tiny_mtu_rejected(self):
        with pytest.raises(FragmentationError):
            fragment_v4(_v4(size=4000), mtu=20)


class TestReassembly:
    def test_roundtrip(self):
        pkt = _v4(size=4000)
        original_payload = pkt.payload
        fragments = fragment_v4(pkt, mtu=1500)
        reassembler = Reassembler()
        result = None
        for frag in fragments:
            result = reassembler.add(frag)
        assert result is not None
        assert result.payload == original_payload
        assert result.five_tuple() == pkt.five_tuple()
        assert reassembler.completed == 1

    def test_out_of_order_reassembly(self):
        fragments = fragment_v4(_v4(size=4000), mtu=1500)
        reassembler = Reassembler()
        result = None
        for frag in reversed(fragments):
            result = reassembler.add(frag) or result
        assert result is not None

    def test_incomplete_stays_pending(self):
        fragments = fragment_v4(_v4(size=4000), mtu=1500)
        reassembler = Reassembler()
        assert reassembler.add(fragments[0]) is None
        assert reassembler.pending == 1

    def test_expiry(self):
        fragments = fragment_v4(_v4(size=4000), mtu=1500)
        reassembler = Reassembler(timeout=10.0)
        reassembler.add(fragments[0], now=0.0)
        assert reassembler.expire(now=20.0) == 1
        assert reassembler.pending == 0
        assert reassembler.timed_out == 1

    def test_non_fragment_passes_through(self):
        pkt = _v4(size=100)
        assert Reassembler().add(pkt) is pkt

    def test_interleaved_flows_do_not_mix(self):
        # 2500 B payload + 8 B UDP header -> exactly two 1480 B-max pieces.
        a = fragment_v4(_v4(size=2500), mtu=1500)
        b_pkt = make_udp("10.0.0.2", "20.0.0.1", 6000, 53, payload_size=2500)
        b = fragment_v4(b_pkt, mtu=1500)
        assert len(a) == len(b) == 2
        reassembler = Reassembler()
        results = []
        for frag in [a[0], b[0], a[1], b[1]]:
            out = reassembler.add(frag)
            if out is not None:
                results.append(out)
        assert len(results) == 2
        assert {r.src_port for r in results} == {5000, 6000}


class TestRouterIntegration:
    def _router(self, mtu_out=1500):
        from repro.core import Router

        router = Router(flow_buckets=256)
        router.add_interface("atm0", address="10.0.0.254", prefix="10.0.0.0/8")
        router.add_interface("atm1", prefix="20.0.0.0/8", mtu=mtu_out)
        return router

    def test_router_fragments_oversized_v4(self):
        router = self._router()
        pkt = _v4(size=4000, iif="atm0")
        assert router.receive(pkt) == "forwarded"
        assert router.counters["fragmented"] == 1
        assert router.interface("atm1").tx_packets >= 3

    def test_router_rejects_oversized_v6_with_icmp(self):
        router = self._router()
        router.routing_table.add("2001:db8:2::/48", "atm1")
        router.local_addresses.add(IPAddress.parse("2001:db8::fe"))
        pkt = make_udp("2001:db8::1", "2001:db8:2::1", 1, 2,
                       payload_size=4000, iif="atm0")
        assert router.receive(pkt) == "dropped_too_big"
        assert router.counters["icmp_sent"] == 1

    def test_ttl_expiry_sends_time_exceeded(self):
        router = self._router()
        pkt = _v4(size=100, iif="atm0", ttl=1)
        router.receive(pkt)
        assert router.counters["icmp_sent"] == 1
        # The error went back out the interface toward the source.
        assert router.interface("atm0").tx_packets == 1

    def test_icmp_can_be_disabled(self):
        from repro.core import Router

        router = Router(flow_buckets=256, send_icmp_errors=False)
        router.add_interface("atm0", address="10.0.0.254", prefix="10.0.0.0/8")
        router.receive(_v4(size=100, iif="atm0", ttl=1))
        assert router.counters["icmp_sent"] == 0

    def test_icmp_rate_limited(self):
        router = self._router()
        for i in range(40):
            pkt = make_udp(f"10.0.0.{i + 1}", "20.0.0.1", 1, 2, ttl=1, iif="atm0")
            router.receive(pkt, now=0.0)
        assert router.counters["icmp_sent"] <= 10
        assert router.counters["icmp_suppressed"] > 0
