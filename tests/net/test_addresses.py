"""Tests for IP address and prefix primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.net.addresses import (
    AddressError,
    IPAddress,
    IPV4_WIDTH,
    IPV6_WIDTH,
    Prefix,
    common_prefix_len,
    parse_host,
    prefix_range,
)


class TestIPAddressParsing:
    def test_parse_ipv4(self):
        addr = IPAddress.parse("192.94.233.10")
        assert addr.width == IPV4_WIDTH
        assert addr.value == (192 << 24) | (94 << 16) | (233 << 8) | 10

    def test_parse_ipv4_zero(self):
        assert IPAddress.parse("0.0.0.0").value == 0

    def test_parse_ipv4_broadcast(self):
        assert IPAddress.parse("255.255.255.255").value == 0xFFFFFFFF

    def test_parse_ipv6_full(self):
        addr = IPAddress.parse("2001:db8:0:0:0:0:0:1")
        assert addr.width == IPV6_WIDTH
        assert addr.value == (0x20010DB8 << 96) | 1

    def test_parse_ipv6_compressed(self):
        assert IPAddress.parse("2001:db8::1") == IPAddress.parse(
            "2001:0db8:0000:0000:0000:0000:0000:0001"
        )

    def test_parse_ipv6_loopback(self):
        assert IPAddress.parse("::1").value == 1

    def test_parse_ipv6_all_zero(self):
        assert IPAddress.parse("::").value == 0

    @pytest.mark.parametrize(
        "bad",
        ["1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "1::2::3", ":::", "12345::1"],
    )
    def test_parse_rejects_garbage(self, bad):
        with pytest.raises(AddressError):
            IPAddress.parse(bad)

    def test_format_roundtrip_v4(self):
        text = "128.252.153.7"
        assert str(IPAddress.parse(text)) == text

    def test_format_ipv6_compression(self):
        assert str(IPAddress.parse("2001:db8:0:0:0:0:0:1")) == "2001:db8::1"

    def test_format_ipv6_no_compression_single_zero(self):
        # A single zero group is not compressed.
        assert str(IPAddress.v6((1 << 112) | (0 << 96) | 0x0001_0001_0001_0001_0001_0001)) != ""

    def test_to_from_bytes(self):
        addr = IPAddress.parse("10.1.2.3")
        assert IPAddress.from_bytes(addr.to_bytes()) == addr

    def test_top_bits(self):
        addr = IPAddress.parse("129.0.0.0")
        assert addr.top_bits(8) == 129
        assert addr.top_bits(0) == 0

    def test_value_range_checked(self):
        with pytest.raises(AddressError):
            IPAddress(1 << 32, IPV4_WIDTH)
        with pytest.raises(AddressError):
            IPAddress(-1, IPV4_WIDTH)

    def test_parse_host_rejects_prefix(self):
        with pytest.raises(AddressError):
            parse_host("10.0.0.0/8")


class TestPrefixParsing:
    def test_parse_cidr(self):
        p = Prefix.parse("129.0.0.0/8")
        assert p.length == 8
        assert p.value == 129 << 24

    def test_parse_star_octets(self):
        # The paper's filter notation: 129.*.*.* means 129/8.
        assert Prefix.parse("129.*.*.*") == Prefix.parse("129.0.0.0/8")

    def test_parse_star_shorthand(self):
        assert Prefix.parse("128.252.153.*") == Prefix.parse("128.252.153.0/24")

    def test_parse_bare_star(self):
        p = Prefix.parse("*")
        assert p.is_wildcard
        assert p.length == 0

    def test_parse_bare_star_v6(self):
        assert Prefix.parse("*", width=IPV6_WIDTH).width == IPV6_WIDTH

    def test_parse_host_prefix(self):
        p = Prefix.parse("192.94.233.10")
        assert p.is_host
        assert p.length == 32

    def test_parse_ipv6_prefix(self):
        p = Prefix.parse("2001:db8::/32")
        assert p.width == IPV6_WIDTH
        assert p.length == 32

    def test_canonicalizes_host_bits(self):
        # Bits below the prefix length are zeroed.
        p = Prefix.parse("10.1.2.3/8")
        assert p.value == 10 << 24

    def test_noncontiguous_wildcard_rejected(self):
        with pytest.raises(AddressError):
            Prefix.parse("129.*.1.*")

    def test_bad_length_rejected(self):
        with pytest.raises(AddressError):
            Prefix.parse("10.0.0.0/33")


class TestPrefixSemantics:
    def test_matches_inside(self):
        p = Prefix.parse("128.252.153.0/24")
        assert p.matches(IPAddress.parse("128.252.153.1"))
        assert p.matches(IPAddress.parse("128.252.153.255"))

    def test_matches_outside(self):
        p = Prefix.parse("128.252.153.0/24")
        assert not p.matches(IPAddress.parse("128.252.154.1"))

    def test_wildcard_matches_everything(self):
        p = Prefix.parse("*")
        assert p.matches(IPAddress.parse("1.2.3.4"))
        assert p.matches(IPAddress.parse("255.255.255.255"))

    def test_covers(self):
        outer = Prefix.parse("128.252.153.0/24")
        inner = Prefix.parse("128.252.153.1/32")
        assert outer.covers(inner)
        assert not inner.covers(outer)
        assert outer.covers(outer)

    def test_covers_disjoint(self):
        a = Prefix.parse("129.0.0.0/8")
        b = Prefix.parse("128.252.153.0/24")
        assert not a.covers(b)
        assert not b.covers(a)

    def test_key_bits(self):
        assert Prefix.parse("129.0.0.0/8").key_bits() == 129
        assert Prefix.parse("*").key_bits() == 0

    def test_enumerate_parents(self):
        p = Prefix.parse("192.0.0.0/2")
        parents = list(p.enumerate_parents())
        assert [q.length for q in parents] == [1, 0]
        assert all(q.covers(p) for q in parents)

    def test_prefix_range(self):
        low, high = prefix_range(Prefix.parse("10.0.0.0/8"))
        assert low == 10 << 24
        assert high == (11 << 24) - 1

    def test_host_factory(self):
        addr = IPAddress.parse("1.2.3.4")
        assert Prefix.host(addr).matches(addr)
        assert Prefix.host(addr).is_host

    def test_str_roundtrip(self):
        for text in ["129.0.0.0/8", "2001:db8::/32", "*"]:
            assert str(Prefix.parse(text)) == text


class TestCommonPrefixLen:
    def test_identical(self):
        a = IPAddress.parse("1.2.3.4")
        assert common_prefix_len(a, a) == 32

    def test_first_bit_differs(self):
        a = IPAddress.parse("0.0.0.0")
        b = IPAddress.parse("128.0.0.0")
        assert common_prefix_len(a, b) == 0

    def test_family_mismatch(self):
        with pytest.raises(AddressError):
            common_prefix_len(IPAddress.parse("1.2.3.4"), IPAddress.parse("::1"))


@given(st.integers(min_value=0, max_value=(1 << 32) - 1))
def test_v4_format_parse_roundtrip(value):
    addr = IPAddress(value, IPV4_WIDTH)
    assert IPAddress.parse(str(addr)) == addr


@given(st.integers(min_value=0, max_value=(1 << 128) - 1))
def test_v6_format_parse_roundtrip(value):
    addr = IPAddress(value, IPV6_WIDTH)
    assert IPAddress.parse(str(addr)) == addr


@given(
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    st.integers(min_value=0, max_value=32),
    st.integers(min_value=0, max_value=(1 << 32) - 1),
)
def test_prefix_matches_iff_in_range(value, length, probe):
    prefix = Prefix(value, length, IPV4_WIDTH)
    low, high = prefix_range(prefix)
    assert prefix.matches(probe) == (low <= probe <= high)


@given(
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    st.integers(min_value=0, max_value=32),
    st.integers(min_value=0, max_value=32),
)
def test_covers_is_consistent_with_matches(value, len_a, len_b):
    a = Prefix(value, len_a, IPV4_WIDTH)
    b = Prefix(value, len_b, IPV4_WIDTH)
    if len_a <= len_b:
        assert a.covers(b)
    else:
        assert not a.covers(b)
