"""Tests for simulated interfaces and links."""

import pytest

from repro.net.interfaces import InterfaceError, NetworkInterface
from repro.net.packet import make_udp


def _pkt(size=100):
    return make_udp("10.0.0.1", "10.0.0.2", 1, 2, payload_size=size)


class TestTransmit:
    def test_serialization_delay(self):
        iface = NetworkInterface("atm0", rate_bps=1_000_000)
        pkt = _pkt(size=97)  # 97 + 28 header = 125 B = 1000 bits
        assert iface.serialization_delay(pkt) == pytest.approx(1e-3)

    def test_output_without_link_is_sink(self):
        iface = NetworkInterface("atm0")
        done = iface.output(_pkt(), now=0.0)
        assert done > 0.0
        assert iface.tx_packets == 1

    def test_back_to_back_packets_queue_on_wire(self):
        iface = NetworkInterface("atm0", rate_bps=1_000_000)
        first = iface.output(_pkt(97), now=0.0)
        second = iface.output(_pkt(97), now=0.0)
        assert second == pytest.approx(first + 1e-3)

    def test_transmitter_idles_between_packets(self):
        iface = NetworkInterface("atm0", rate_bps=1_000_000)
        iface.output(_pkt(97), now=0.0)
        done = iface.output(_pkt(97), now=10.0)
        assert done == pytest.approx(10.0 + 1e-3)

    def test_mtu_enforced(self):
        iface = NetworkInterface("atm0", mtu=100)
        with pytest.raises(InterfaceError):
            iface.output(_pkt(size=200))
        assert iface.tx_drops == 1


class TestLink:
    def test_delivery_to_peer(self):
        a = NetworkInterface("a0", rate_bps=1_000_000)
        b = NetworkInterface("b0")
        a.connect(b, delay=0.5)
        a.output(_pkt(97), now=0.0)
        received = b.poll()
        assert len(received) == 1
        assert received[0].iif == "b0"
        assert received[0].arrival_time == pytest.approx(0.5 + 1e-3)

    def test_peer_property(self):
        a = NetworkInterface("a0")
        b = NetworkInterface("b0")
        a.connect(b)
        assert a.peer is b
        assert b.peer is a

    def test_poll_respects_now(self):
        a = NetworkInterface("a0", rate_bps=1e9)
        b = NetworkInterface("b0")
        a.connect(b, delay=1.0)
        a.output(_pkt(), now=0.0)
        assert b.poll(now=0.5) == []
        assert len(b.poll(now=2.0)) == 1

    def test_poll_orders_by_arrival(self):
        iface = NetworkInterface("rx")
        p1, p2 = _pkt(), _pkt()
        iface.inject(p2, at_time=2.0)
        iface.inject(p1, at_time=1.0)
        out = iface.poll()
        assert [p.packet_id for p in out] == [p1.packet_id, p2.packet_id]

    def test_on_deliver_callback_bypasses_inbox(self):
        iface = NetworkInterface("rx")
        seen = []
        iface.on_deliver = lambda t, p: seen.append((t, p))
        iface.inject(_pkt(), at_time=3.0)
        assert len(seen) == 1
        assert iface.pending_rx == 0

    def test_rx_accounting(self):
        iface = NetworkInterface("rx")
        iface.inject(_pkt(100), at_time=0.0)
        assert iface.rx_packets == 1
        assert iface.rx_bytes == 128
