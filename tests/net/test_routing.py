"""Tests for the routing table and linear LPM baseline."""

from repro.net.addresses import Prefix
from repro.net.routing import LinearLPM, RoutingTable


class TestLinearLPM:
    def test_longest_match_wins(self):
        lpm = LinearLPM()
        lpm.insert(Prefix.parse("10.0.0.0/8"), "coarse")
        lpm.insert(Prefix.parse("10.1.0.0/16"), "fine")
        addr = Prefix.parse("10.1.2.3/32").value
        assert lpm.lookup(addr) == "fine"

    def test_no_match_returns_none(self):
        lpm = LinearLPM()
        lpm.insert(Prefix.parse("10.0.0.0/8"), "x")
        assert lpm.lookup(Prefix.parse("11.0.0.0/32").value) is None

    def test_default_route(self):
        lpm = LinearLPM()
        lpm.insert(Prefix.parse("*"), "default")
        assert lpm.lookup(123456) == "default"

    def test_reinsert_replaces(self):
        lpm = LinearLPM()
        p = Prefix.parse("10.0.0.0/8")
        lpm.insert(p, "old")
        lpm.insert(p, "new")
        assert len(lpm) == 1
        assert lpm.lookup(p.value) == "new"

    def test_remove(self):
        lpm = LinearLPM()
        p = Prefix.parse("10.0.0.0/8")
        lpm.insert(p, "x")
        assert lpm.remove(p)
        assert not lpm.remove(p)
        assert lpm.lookup(p.value) is None


class TestRoutingTable:
    def test_add_and_lookup(self):
        table = RoutingTable()
        table.add("10.0.0.0/8", "atm0", next_hop="10.255.0.1")
        route = table.lookup("10.1.2.3")
        assert route.interface == "atm0"
        assert str(route.next_hop) == "10.255.0.1"

    def test_longest_prefix_wins(self):
        table = RoutingTable()
        table.add("0.0.0.0/0", "default0")
        table.add("128.252.0.0/16", "campus0")
        table.add("128.252.153.0/24", "lab0")
        assert table.lookup("128.252.153.7").interface == "lab0"
        assert table.lookup("128.252.1.1").interface == "campus0"
        assert table.lookup("9.9.9.9").interface == "default0"

    def test_families_are_independent(self):
        table = RoutingTable()
        table.add("0.0.0.0/0", "v4out")
        table.add("::/0", "v6out")
        assert table.lookup("1.2.3.4").interface == "v4out"
        assert table.lookup("2001:db8::1").interface == "v6out"

    def test_lookup_with_no_routes(self):
        assert RoutingTable().lookup("1.2.3.4") is None

    def test_remove(self):
        table = RoutingTable()
        table.add("10.0.0.0/8", "atm0")
        assert table.remove("10.0.0.0/8")
        assert not table.remove("10.0.0.0/8")
        assert table.lookup("10.0.0.1") is None

    def test_directly_connected(self):
        table = RoutingTable()
        route = table.add("192.168.1.0/24", "eth0")
        assert route.is_directly_connected

    def test_contains_and_len(self):
        table = RoutingTable()
        table.add("10.0.0.0/8", "a")
        assert "10.0.0.0/8" in table
        assert len(table) == 1
