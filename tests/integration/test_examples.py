"""Smoke tests: every shipped example runs to completion.

The examples double as end-to-end system tests — each one drives a full
router (or topology) through its public API and asserts its own key
invariants internally (e.g. the VPN example asserts attacks are not
forwarded)."""

import io
import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs(example, monkeypatch):
    captured = io.StringIO()
    monkeypatch.setattr(sys, "stdout", captured)
    runpy.run_path(str(EXAMPLES_DIR / example), run_name="__main__")
    output = captured.getvalue()
    assert output.strip(), f"{example} produced no output"


def test_example_inventory():
    """The README promises at least these five scenarios."""
    expected = {
        "quickstart.py",
        "diffserv_edge.py",
        "vpn_gateway.py",
        "network_monitor.py",
        "ssp_reservation.py",
    }
    assert expected <= set(EXAMPLES)


class TestExampleOutputs:
    """Spot-check load-bearing lines from the examples' output."""

    def _run(self, name):
        captured = io.StringIO()
        stdout = sys.stdout
        sys.stdout = captured
        try:
            runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
        finally:
            sys.stdout = stdout
        return captured.getvalue()

    def test_diffserv_enforces_profiles(self):
        output = self._run("diffserv_edge.py")
        # Gold ~6, silver ~3 of a 10 Mbit/s uplink.
        assert "gold" in output and "silver" in output
        gold_line = next(l for l in output.splitlines() if l.startswith("gold"))
        goodput = float(gold_line.split()[-2])
        assert 5.5 <= goodput <= 6.5

    def test_vpn_blocks_attacks(self):
        output = self._run("vpn_gateway.py")
        assert "no (encrypted)" in output
        assert "replays counter = 1" in output
        assert "auth failures = 1" in output

    def test_ssp_reservation_holds(self):
        output = self._run("ssp_reservation.py")
        video_line = next(l for l in output.splitlines() if l.startswith("video"))
        delivered = float(video_line.split()[-3])
        assert delivered >= 5.5
