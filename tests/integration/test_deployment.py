"""Capstone integration test: a realistic EISR deployment.

Three routers (branch, core, HQ) with:

* ``routed`` populating all routing tables,
* an ESP VPN between branch and HQ edge routers,
* an RSVP reservation for a voice flow across the path,
* DRR schedulers on every transit interface,
* a statistics plugin and firewall at the HQ edge,

then mixed traffic: reserved voice, best-effort bulk, an attack flow.
Everything below runs through public APIs only.
"""

import pytest

from repro.core import GATE_IP_SECURITY, GATE_PACKET_SCHEDULING
from repro.daemons import RouteDaemon, RSVPDaemon, Topology
from repro.net.interfaces import NetworkInterface
from repro.net.packet import make_udp
from repro.sched import DrrPlugin
from repro.security import FirewallPlugin
from repro.stats import StatisticsPlugin

BOTTLENECK = 10_000_000
PKT = 1000


@pytest.fixture
def deployment():
    topo = Topology()
    for name in ("branch", "core", "hq"):
        topo.add_router(name, flow_buckets=1024)
    topo.link("branch", "wan0", "192.168.1.1", "core", "br0", "192.168.1.2",
              "192.168.1.0/24", rate_bps=BOTTLENECK)
    topo.link("core", "hq0", "192.168.2.1", "hq", "co0", "192.168.2.2",
              "192.168.2.0/24", rate_bps=BOTTLENECK)
    topo.stub("branch", "lan0", "10.1.0.254", "10.1.0.0/16")
    hq_lan = topo.stub("hq", "lan0", "10.2.0.254", "10.2.0.0/16",
                       rate_bps=BOTTLENECK)
    sink = NetworkInterface("hq-host")
    hq_lan.connect(sink)

    # Control plane: routed converges the tables.
    route_daemons = {
        name: RouteDaemon(topo.routers[name], topo.neighbors_of(name))
        for name in topo.routers
    }
    for _ in range(3):
        for daemon in route_daemons.values():
            daemon.advertise(now=topo.loop.now)
        topo.run()

    # Data plane: DRR on transit interfaces.
    drr = DrrPlugin()
    schedulers = {}
    for name, iface in [("branch", "wan0"), ("core", "hq0"), ("hq", "lan0")]:
        instance = drr.create_instance(name=f"drr-{name}", interface=iface,
                                       quantum=PKT, limit=800)
        topo.routers[name].set_scheduler(iface, instance)
        schedulers[name] = instance

    # HQ edge policy: firewall (drop RFC1918-external spoof) + stats.
    hq = topo.routers["hq"]
    firewall = FirewallPlugin()
    hq.pcu.load(firewall)
    deny = firewall.create_instance(action="deny")
    firewall.register_instance(deny, "172.16.0.0/12, *", gate=GATE_IP_SECURITY)
    stats = StatisticsPlugin()
    hq.pcu.load(stats)
    monitor = stats.create_instance()
    stats.register_instance(monitor, "10.1.0.0/16, *", gate=GATE_IP_SECURITY)

    # RSVP session for the voice flow.
    rsvp = {
        name: RSVPDaemon(topo.routers[name], topo.neighbors_of(name))
        for name in topo.routers
    }
    rsvp["branch"].send_path("voice", sender="10.1.0.5", dst="10.2.0.9",
                             now=topo.loop.now)
    topo.run()
    rsvp["hq"].send_resv("voice", "10.1.0.5, 10.2.0.9, UDP, 7000, 7000",
                         rate_bps=4_000_000, now=topo.loop.now)
    topo.run()

    return topo, sink, {"deny": deny, "monitor": monitor,
                        "rsvp": rsvp, "drr": schedulers}


def _blast(topo, src, sport, rate_bps, duration, start):
    interval = PKT * 8 / rate_bps
    for i in range(int(duration / interval)):
        packet = make_udp(src, "10.2.0.9", sport, 7000,
                          payload_size=PKT - 28, iif="lan0")
        at = start + i * interval
        topo.loop.schedule_at(at, topo.routers["branch"].receive, packet, at)


class TestDeployment:
    def test_routing_converged(self, deployment):
        topo, _, _ = deployment
        route = topo.routers["branch"].routing_table.lookup("10.2.0.9")
        assert route is not None and route.interface == "wan0"
        back = topo.routers["hq"].routing_table.lookup("10.1.0.5")
        assert back is not None and back.interface == "co0"

    def test_rsvp_reserved_along_path(self, deployment):
        topo, _, parts = deployment
        for name in ("branch", "core", "hq"):
            assert "voice" in parts["rsvp"][name].resv_state, name

    def test_voice_holds_under_congestion(self, deployment):
        topo, sink, parts = deployment
        start = topo.loop.now
        duration = 0.5
        _blast(topo, "10.1.0.5", 7000, 4_000_000, duration, start)   # voice
        _blast(topo, "10.1.0.6", 8000, 20_000_000, duration, start)  # bulk
        topo.run(until=start + duration + 0.2)
        received = {}
        for packet in sink.poll():
            # Count only bytes that cleared the path within the window,
            # or the post-window drain inflates the apparent rates.
            if packet.departure_time is None or packet.departure_time > start + duration:
                continue
            received.setdefault(packet.src_port, 0)
            received[packet.src_port] += packet.length
        voice_mbps = received.get(7000, 0) * 8 / duration / 1e6
        bulk_mbps = received.get(8000, 0) * 8 / duration / 1e6
        assert voice_mbps >= 3.5          # the 4 Mbit/s reservation holds
        assert bulk_mbps <= 7.0           # bulk takes the remainder

    def test_firewall_blocks_spoofed_source(self, deployment):
        topo, sink, parts = deployment
        spoof = make_udp("172.16.0.1", "10.2.0.9", 1, 7000, iif="co0")
        result = topo.routers["hq"].receive(spoof, now=topo.loop.now)
        assert result == "dropped_by_plugin"
        assert parts["deny"].denied == 1

    def test_monitor_counts_branch_traffic(self, deployment):
        topo, sink, parts = deployment
        start = topo.loop.now
        for i in range(5):
            packet = make_udp("10.1.0.7", "10.2.0.9", 9000, 7000,
                              payload_size=100, iif="lan0")
            topo.routers["branch"].receive(packet, now=start)
        topo.run()
        totals = parts["monitor"].totals()
        assert totals["packets"] >= 5

    def test_flow_caches_warm_on_every_router(self, deployment):
        topo, sink, parts = deployment
        start = topo.loop.now
        for _ in range(10):
            packet = make_udp("10.1.0.8", "10.2.0.9", 9100, 7000,
                              payload_size=100, iif="lan0")
            topo.routers["branch"].receive(packet, now=topo.loop.now)
            topo.run()
        for name in ("branch", "core", "hq"):
            stats = topo.routers[name].aiu.stats()
            assert stats["hits"] > 0, name
