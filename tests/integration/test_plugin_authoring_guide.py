"""The docs/PLUGIN_AUTHORING.md worked example, executed verbatim.

If this test breaks, the guide is lying to third-party plugin authors.
"""

import pytest

from repro.core import (
    GATE_IP_OPTIONS,
    Plugin,
    PluginInstance,
    Router,
    TYPE_IP_OPTIONS,
    Verdict,
)
from repro.core.messages import Message
from repro.net.packet import make_udp


# --- the guide's §2 example, verbatim --------------------------------------
class DscpMarkInstance(PluginInstance):
    """Sets the DSCP/traffic-class field on bound flows."""

    def __init__(self, plugin, dscp=0, **config):
        super().__init__(plugin, **config)
        if not 0 <= dscp <= 63:
            raise ValueError("DSCP is a 6-bit value")
        self.dscp = dscp
        self.marked = 0

    def process(self, packet, ctx):
        super().process(packet, ctx)
        packet.tos = self.dscp << 2
        self.marked += 1
        return Verdict.CONTINUE


class DscpMarkPlugin(Plugin):
    plugin_type = TYPE_IP_OPTIONS
    name = "dscpmark"
    instance_class = DscpMarkInstance

    # the guide's §5 example
    def handle_custom(self, message: Message):
        if message.type == "set_dscp":
            message.args["instance"].dscp = message.args["dscp"]
            return True
        return super().handle_custom(message)


@pytest.fixture
def router():
    r = Router(flow_buckets=64)
    r.add_interface("atm0", prefix="10.0.0.0/8")
    r.add_interface("atm1", prefix="20.0.0.0/8")
    return r


class TestGuideExample:
    def test_load_bind_and_mark(self, router):
        # The guide's §3 sequence.
        router.pcu.load(DscpMarkPlugin())
        plugin = router.pcu.get("dscpmark")
        gold = plugin.create_instance(dscp=46)
        plugin.register_instance(gold, "10.0.0.1, *, UDP")
        pkt = make_udp("10.0.0.1", "20.0.0.1", 5000, 53, iif="atm0")
        router.receive(pkt)
        assert pkt.tos == 46 << 2
        assert gold.marked == 1
        # Unbound flows are untouched.
        other = make_udp("10.0.0.2", "20.0.0.1", 5000, 53, iif="atm0")
        router.receive(other)
        assert other.tos == 0

    def test_multiple_instances_coexist(self, router):
        router.pcu.load(DscpMarkPlugin())
        plugin = router.pcu.get("dscpmark")
        gold = plugin.create_instance(dscp=46)
        bleach = plugin.create_instance(dscp=0)
        plugin.register_instance(gold, "10.0.0.1, *, UDP", priority=1)
        plugin.register_instance(bleach, "*, *", priority=0)
        voice = make_udp("10.0.0.1", "20.0.0.1", 1, 2, tos=99, iif="atm0")
        junk = make_udp("10.9.9.9", "20.0.0.1", 1, 2, tos=99, iif="atm0")
        router.receive(voice)
        router.receive(junk)
        assert voice.tos == 46 << 2
        assert junk.tos == 0

    def test_custom_message(self, router):
        router.pcu.load(DscpMarkPlugin())
        plugin = router.pcu.get("dscpmark")
        gold = plugin.create_instance(dscp=46)
        plugin.callback(Message("set_dscp", {"instance": gold, "dscp": 40}))
        assert gold.dscp == 40

    def test_validation(self):
        with pytest.raises(ValueError):
            DscpMarkPlugin().create_instance(dscp=64)

    def test_default_gate_is_options(self):
        assert DscpMarkPlugin().default_gate() == GATE_IP_OPTIONS
