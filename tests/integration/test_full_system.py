"""Integration tests: the whole EISR stack working together.

These exercise realistic compositions — every plugin type active at
once, IPv4+IPv6 mixed traffic, live reconfiguration under load, flow
expiry, and fault containment — the scenarios a downstream user of the
library actually runs.
"""

import pytest

from repro.core import (
    DEFAULT_GATES,
    Disposition,
    GATE_IP_OPTIONS,
    GATE_IP_SECURITY,
    GATE_PACKET_SCHEDULING,
    Plugin,
    Router,
    TYPE_IP_SECURITY,
    Verdict,
)
from repro.core.plugin import PluginInstance
from repro.mgr import PluginManager
from repro.net.headers import OPT_ROUTER_ALERT, OptionTLV
from repro.net.packet import make_tcp, make_udp
from repro.options import HopByHopPlugin, RouterAlertPlugin
from repro.security import FirewallPlugin
from repro.sched import DrrPlugin
from repro.stats import StatisticsPlugin


@pytest.fixture
def router():
    r = Router(flow_buckets=1024)
    r.add_interface("atm0", prefix="10.0.0.0/8")
    r.add_interface("atm1", prefix="20.0.0.0/8")
    r.add_interface("v6atm0", prefix="2001:db8:1::/48")
    r.routing_table.add("2001:db8:2::/48", "atm1")
    return r


def _v4(i=1, **kw):
    kw.setdefault("iif", "atm0")
    return make_udp(f"10.0.0.{i}", "20.0.0.1", 5000 + i, 53, **kw)


def _v6(i=1, **kw):
    kw.setdefault("iif", "v6atm0")
    return make_udp(f"2001:db8:1::{i:x}", "2001:db8:2::1", 6000 + i, 53, **kw)


class TestAllPluginTypesTogether:
    """The Figure 2 configuration: options, security, statistics, and
    scheduling plugins coexisting, bound to different flow sets."""

    def _full_config(self, router):
        instances = {}
        options = HopByHopPlugin()
        router.pcu.load(options)
        instances["options"] = options.create_instance()
        options.register_instance(instances["options"], "*, *", gate=GATE_IP_OPTIONS)

        firewall = FirewallPlugin()
        router.pcu.load(firewall)
        instances["deny"] = firewall.create_instance(action="deny")
        firewall.register_instance(
            instances["deny"], "192.168.0.0/16, *", gate=GATE_IP_SECURITY, priority=5
        )

        stats = StatisticsPlugin()
        router.pcu.load(stats)
        instances["stats"] = stats.create_instance()
        stats.register_instance(instances["stats"], "10.*, *", gate=GATE_IP_SECURITY)

        drr = DrrPlugin()
        router.pcu.load(drr)
        instances["drr"] = drr.create_instance(interface="atm1")
        drr.register_instance(instances["drr"], "*, *, UDP", gate=GATE_PACKET_SCHEDULING)
        router.set_scheduler("atm1", instances["drr"])
        return instances

    def test_mixed_traffic_hits_the_right_plugins(self, router):
        instances = self._full_config(router)
        # Normal v4 flow: counted, scheduled, forwarded.
        assert router.receive(_v4(1)) == Disposition.QUEUED
        # Spoofed RFC1918 source: firewall drops before scheduling.
        bad = make_udp("192.168.9.9", "20.0.0.1", 1, 2, iif="atm0")
        assert router.receive(bad) == Disposition.DROPPED_BY_PLUGIN
        # v6 flow: options gate sees it; no v4 stats binding matches.
        assert router.receive(_v6(1)) in (Disposition.FORWARDED, Disposition.QUEUED)
        assert instances["stats"].totals()["packets"] == 1
        assert instances["deny"].denied == 1
        assert instances["options"].packets_processed >= 2

    def test_one_flow_entry_covers_all_gates(self, router):
        self._full_config(router)
        pkt = _v4(2)
        router.receive(pkt)
        record = pkt.fix
        assert record is not None
        bound_gates = [
            gate for gate in DEFAULT_GATES
            if record.slot(router.aiu.gate_index(gate)).instance is not None
        ]
        # stats at security gate, options walker, and DRR at scheduling.
        assert len(bound_gates) == 3

    def test_plugin_counts_survive_cache_hits(self, router):
        instances = self._full_config(router)
        for _ in range(10):
            router.receive(_v4(3))
        assert instances["stats"].totals()["packets"] == 10
        assert router.aiu.flow_table.hits == 9


class TestIPv6OptionsThroughRouter:
    def test_router_alert_punts_to_control(self, router):
        seen = []
        plugin = RouterAlertPlugin()
        router.pcu.load(plugin)
        instance = plugin.create_instance(handler=lambda p, c: seen.append(p))
        plugin.register_instance(instance, "*, *", gate=GATE_IP_OPTIONS)
        pkt = _v6(1, hop_options=[OptionTLV(OPT_ROUTER_ALERT, b"\x00\x00")])
        router.receive(pkt)
        assert len(seen) == 1
        plain = _v6(2)
        router.receive(plain)
        assert len(seen) == 1  # no alert, no punt

    def test_unknown_option_drop_action(self, router):
        plugin = HopByHopPlugin()
        router.pcu.load(plugin)
        instance = plugin.create_instance()
        plugin.register_instance(instance, "*, *", gate=GATE_IP_OPTIONS)
        pkt = _v6(3, hop_options=[OptionTLV(0x40 | 0x1F, b"")])  # drop action
        assert router.receive(pkt) == Disposition.DROPPED_BY_PLUGIN


class TestLiveReconfiguration:
    def test_rebinding_changes_behaviour_mid_flow(self, router):
        manager = PluginManager(router)
        manager.run_script(
            """
            modload firewall
            create firewall allow action=allow
            bind allow ip_security 10.0.0.0/8, *
            """
        )
        assert router.receive(_v4(1)) == Disposition.FORWARDED
        # Tighten policy mid-traffic: deny this specific flow.
        manager.run_script(
            """
            create firewall block action=deny
            bind block ip_security 10.0.0.1, *, UDP, 5001, 53
            """
        )
        assert router.receive(_v4(1)) == Disposition.DROPPED_BY_PLUGIN
        # Unrelated flows still pass.
        assert router.receive(_v4(2)) == Disposition.FORWARDED

    def test_filter_removal_invalidates_cached_flows(self, router):
        firewall = FirewallPlugin()
        router.pcu.load(firewall)
        deny = firewall.create_instance(action="deny")
        record = firewall.register_instance(deny, "10.*, *", gate=GATE_IP_SECURITY)
        assert router.receive(_v4(1)) == Disposition.DROPPED_BY_PLUGIN
        router.aiu.remove_filter(record)
        assert router.receive(_v4(1)) == Disposition.FORWARDED

    def test_unload_plugin_under_traffic(self, router):
        stats = StatisticsPlugin()
        router.pcu.load(stats)
        instance = stats.create_instance()
        stats.register_instance(instance, "*, *", gate=GATE_IP_SECURITY)
        router.receive(_v4(1))
        router.pcu.unload(stats)
        # Cache was purged with the filter; traffic still flows.
        assert router.receive(_v4(1)) == Disposition.FORWARDED
        assert router.aiu.filter_count() == 0


class TestFlowExpiry:
    def test_idle_flows_expire_and_reclassify(self, router):
        stats = StatisticsPlugin()
        router.pcu.load(stats)
        instance = stats.create_instance()
        stats.register_instance(instance, "10.*, *", gate=GATE_IP_SECURITY)
        router.receive(_v4(1), now=0.0)
        assert len(router.aiu.flow_table) == 1
        removed = router.aiu.flow_table.expire_idle(now=120.0, max_idle=60.0)
        assert removed == 1
        # The flow re-classifies transparently on its next packet.
        assert router.receive(_v4(1), now=121.0) == Disposition.FORWARDED
        assert router.aiu.flow_table.misses == 2


class TestFaultContainment:
    class _Bomb(PluginInstance):
        def process(self, packet, ctx):
            raise RuntimeError("plugin bug")

    class _BombPlugin(Plugin):
        plugin_type = TYPE_IP_SECURITY
        name = "bomb"
        instance_class = None

    def test_crashing_plugin_drops_packet_not_router(self, router):
        plugin = self._BombPlugin()
        plugin.instance_class = self._Bomb
        router.pcu.load(plugin)
        instance = plugin.create_instance()
        plugin.register_instance(instance, "10.*, *", gate=GATE_IP_SECURITY)
        assert router.receive(_v4(1)) == Disposition.DROPPED_BY_PLUGIN
        assert router.counters["plugin_faults"] == 1
        # Unmatched traffic is unaffected.
        v6 = _v6(1)
        assert router.receive(v6) == Disposition.FORWARDED


class TestMixedFamilies:
    def test_v4_and_v6_flows_coexist(self, router):
        for i in range(3):
            assert router.receive(_v4(i + 1)) == Disposition.FORWARDED
            assert router.receive(_v6(i + 1)) == Disposition.FORWARDED
        assert len(router.aiu.flow_table) == 6

    def test_tcp_and_udp_distinct_flows(self, router):
        udp = _v4(1)
        tcp = make_tcp("10.0.0.1", "20.0.0.1", 5001, 53, iif="atm0")
        router.receive(udp)
        router.receive(tcp)
        assert len(router.aiu.flow_table) == 2
