"""IPv6 end-to-end: options, flow labels, and interface-scoped filters
through the full data path."""

import pytest

from repro.core import (
    Disposition,
    GATE_IP_OPTIONS,
    GATE_IP_SECURITY,
    Router,
)
from repro.net.headers import OPT_ROUTER_ALERT, OptionTLV
from repro.net.packet import make_udp
from repro.options import RouterAlertPlugin
from repro.security import FirewallPlugin


@pytest.fixture
def router():
    r = Router(flow_buckets=256)
    r.add_interface("net0", prefix="2001:db8:1::/48")
    r.add_interface("net1", prefix="2001:db8:2::/48")
    r.add_interface("dmz0", prefix="2001:db8:3::/48")
    return r


def _v6(i=1, iif="net0", **kw):
    return make_udp(f"2001:db8:1::{i:x}", "2001:db8:2::1", 6000 + i, 53,
                    iif=iif, **kw)


class TestIPv6Forwarding:
    def test_forward_with_flow_label(self, router):
        pkt = _v6(1, flow_label=0xABCDE)
        assert router.receive(pkt) == Disposition.FORWARDED
        assert router.interface("net1").tx_packets == 1

    def test_hop_limit_expiry_generates_icmpv6(self, router):
        router.local_addresses.add(_v6().src.__class__.parse("2001:db8:1::fe"))
        pkt = _v6(1, ttl=1)
        assert router.receive(pkt) == Disposition.DROPPED_TTL
        assert router.counters["icmp_sent"] == 1

    def test_flow_label_variants_are_one_flow(self, router):
        """The five-tuple defines the flow; the label is not part of it."""
        router.receive(_v6(1, flow_label=1))
        router.receive(_v6(1, flow_label=2))
        assert len(router.aiu.flow_table) == 1


class TestInterfaceScopedFilters:
    def test_iif_filter_only_matches_its_interface(self, router):
        firewall = FirewallPlugin()
        router.pcu.load(firewall)
        deny = firewall.create_instance(action="deny")
        # Deny this prefix only when it arrives on the DMZ interface
        # (anti-spoofing): the paper's sixth tuple field.
        firewall.register_instance(
            deny, "2001:db8:1::/48, *, *, *, *, dmz0", gate=GATE_IP_SECURITY
        )
        from_dmz = _v6(1, iif="dmz0")
        assert router.receive(from_dmz) == Disposition.DROPPED_BY_PLUGIN
        from_inside = _v6(1, iif="net0")
        assert router.receive(from_inside) == Disposition.FORWARDED

    def test_iif_scoped_flows_cached_separately(self, router):
        firewall = FirewallPlugin()
        router.pcu.load(firewall)
        deny = firewall.create_instance(action="deny")
        firewall.register_instance(
            deny, "*, *, *, *, *, dmz0", gate=GATE_IP_SECURITY
        )
        router.receive(_v6(1, iif="net0"))
        assert router.receive(_v6(1, iif="dmz0")) == Disposition.DROPPED_BY_PLUGIN
        # And the net0 flow's cache entry still forwards.
        assert router.receive(_v6(1, iif="net0")) == Disposition.FORWARDED


class TestOptionsOnPath:
    def test_router_alert_reaches_handler_on_transit(self, router):
        seen = []
        plugin = RouterAlertPlugin()
        router.pcu.load(plugin)
        instance = plugin.create_instance(handler=lambda p, c: seen.append(p))
        plugin.register_instance(instance, "*, *", gate=GATE_IP_OPTIONS)
        pkt = _v6(1, hop_options=[OptionTLV(OPT_ROUTER_ALERT, b"\x00\x00")])
        assert router.receive(pkt) == Disposition.FORWARDED
        assert len(seen) == 1

    def test_options_survive_wire_crossing(self, router):
        from repro.net.interfaces import NetworkInterface
        from repro.net.packet import Packet

        pkt = _v6(1, hop_options=[OptionTLV(OPT_ROUTER_ALERT, b"\x00\x00")])
        wire = pkt.serialize()
        parsed = Packet.parse(wire, iif="net0")
        assert parsed.hop_options == pkt.hop_options
        assert router.receive(parsed) == Disposition.FORWARDED
