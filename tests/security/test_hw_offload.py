"""Tests for the hardware-crypto-offload ESP plugin and daemon
robustness against malformed control traffic."""

import json

import pytest

from repro.core.plugin import PluginContext, Verdict
from repro.net.packet import Packet, make_udp
from repro.security import (
    EspPlugin,
    HwEspPlugin,
    SADatabase,
    SecurityAssociation,
)
from repro.sim.cost import Costs, CycleMeter

SA_ARGS = dict(auth_key=b"a" * 16, encryption_key=b"e" * 16,
               mode="tunnel", tunnel_src="192.0.2.1", tunnel_dst="192.0.2.2")


def _pair(plugin_class):
    sadb = SADatabase()
    sadb.add(SecurityAssociation(spi=0x700, **SA_ARGS))
    plugin = plugin_class()
    out = plugin.create_instance(direction="out",
                                 sa=SecurityAssociation(spi=0x700, **SA_ARGS))
    inbound = plugin.create_instance(direction="in", sadb=sadb)
    return out, inbound


def _pkt(size=1000):
    return make_udp("10.1.0.5", "10.2.0.9", 4000, 80, payload_size=size - 28)


class TestHwOffload:
    def test_output_identical_to_software(self):
        sw_out, _ = _pair(EspPlugin)
        hw_out, _ = _pair(HwEspPlugin)
        sw_pkt, hw_pkt = _pkt(), _pkt()
        sw_out.process(sw_pkt, PluginContext())
        hw_out.process(hw_pkt, PluginContext())
        # Same SPI/sequence/keys -> byte-identical ESP output.
        assert sw_pkt.payload == hw_pkt.payload
        assert sw_pkt.dst == hw_pkt.dst

    def test_hw_and_sw_interoperate(self):
        hw_out, _ = _pair(HwEspPlugin)
        _, sw_in = _pair(EspPlugin)
        pkt = _pkt()
        original = pkt.five_tuple()
        hw_out.process(pkt, PluginContext())
        assert sw_in.process(pkt, PluginContext()) == Verdict.CONTINUE
        assert pkt.five_tuple() == original

    def test_software_cost_scales_with_size(self):
        out, _ = _pair(EspPlugin)
        small, big = CycleMeter(), CycleMeter()
        out.process(_pkt(200), PluginContext(cycles=small))
        out.process(_pkt(4000), PluginContext(cycles=big))
        assert big.breakdown()["sw_crypto"] > 10 * small.breakdown()["sw_crypto"]

    def test_hardware_cost_is_flat(self):
        out, _ = _pair(HwEspPlugin)
        small, big = CycleMeter(), CycleMeter()
        out.process(_pkt(200), PluginContext(cycles=small))
        out.process(_pkt(4000), PluginContext(cycles=big))
        assert small.breakdown()["hw_crypto"] == big.breakdown()["hw_crypto"] == Costs.HW_CRYPTO_SETUP
        assert out.offloaded == 2

    def test_hardware_wins_beyond_crossover(self):
        """Fixed setup beats per-byte work for any realistic packet."""
        sw_out, _ = _pair(EspPlugin)
        hw_out, _ = _pair(HwEspPlugin)
        sw, hw = CycleMeter(), CycleMeter()
        sw_out.process(_pkt(1000), PluginContext(cycles=sw))
        hw_out.process(_pkt(1000), PluginContext(cycles=hw))
        assert hw.breakdown()["hw_crypto"] < sw.breakdown()["sw_crypto"]

    def test_latency_annotation(self):
        hw_out, _ = _pair(HwEspPlugin)
        pkt = _pkt()
        hw_out.process(pkt, PluginContext())
        assert pkt.annotations["hw_crypto_latency"] == 10e-6

    def test_inbound_offload_counts(self):
        hw_out, hw_in = _pair(HwEspPlugin)
        pkt = _pkt()
        hw_out.process(pkt, PluginContext())
        meter = CycleMeter()
        hw_in.process(pkt, PluginContext(cycles=meter))
        assert hw_in.offloaded == 1
        assert "hw_crypto" in meter.breakdown()

    def test_registry_entry(self):
        from repro.mgr import PLUGIN_REGISTRY

        assert PLUGIN_REGISTRY["hwesp"] is HwEspPlugin


class TestDaemonRobustness:
    def _router_with_daemon(self, daemon_class, proto):
        from repro.core import Router

        router = Router(flow_buckets=64)
        router.add_interface("atm0", address="10.0.0.254", prefix="10.0.0.0/8")
        daemon = daemon_class(router, neighbors={})
        return router, daemon

    @pytest.mark.parametrize("payload", [
        b"not json at all",
        b"\xff\xfe\x00garbage",
        json.dumps({"no_op_field": 1}).encode(),
        json.dumps(["a", "list"]).encode(),
        json.dumps({"op": "bogus"}).encode(),
    ])
    def test_ssp_survives_garbage(self, payload):
        from repro.daemons import SSPDaemon
        from repro.net.headers import PROTO_SSP

        router, daemon = self._router_with_daemon(SSPDaemon, PROTO_SSP)
        pkt = Packet(
            src=make_udp("10.0.0.1", "10.0.0.254", 1, 2).src,
            dst=make_udp("10.0.0.1", "10.0.0.254", 1, 2).dst,
            protocol=PROTO_SSP,
            payload=payload,
            iif="atm0",
        )
        router.receive(pkt)
        assert daemon.malformed == 1
        assert daemon.reservations == {}

    def test_rsvp_survives_garbage(self):
        from repro.daemons import RSVPDaemon
        from repro.net.headers import PROTO_RSVP

        router, daemon = self._router_with_daemon(RSVPDaemon, PROTO_RSVP)
        pkt = Packet(
            src=make_udp("10.0.0.1", "10.0.0.254", 1, 2).src,
            dst=make_udp("10.0.0.1", "10.0.0.254", 1, 2).dst,
            protocol=PROTO_RSVP,
            payload=b"{bad json",
            iif="atm0",
        )
        router.receive(pkt)
        assert daemon.malformed == 1

    def test_rsvp_resv_for_unknown_session_counted(self):
        from repro.daemons import RSVPDaemon
        from repro.net.headers import PROTO_RSVP

        router, daemon = self._router_with_daemon(RSVPDaemon, PROTO_RSVP)
        pkt = Packet(
            src=make_udp("10.0.0.1", "10.0.0.254", 1, 2).src,
            dst=make_udp("10.0.0.1", "10.0.0.254", 1, 2).dst,
            protocol=PROTO_RSVP,
            payload=json.dumps({"op": "resv", "session": "ghost",
                                "flowspec": "*", "rate_bps": 1}).encode(),
            iif="atm0",
        )
        router.receive(pkt)
        assert daemon.malformed == 1

    def test_routed_survives_garbage(self):
        from repro.daemons import RouteDaemon
        from repro.daemons.routed import RIP_PORT

        router, daemon = self._router_with_daemon(RouteDaemon, None)
        pkt = make_udp("10.0.0.1", "10.0.0.254", RIP_PORT, RIP_PORT, iif="atm0")
        pkt.payload = b"][ not json"
        router.receive(pkt)
        assert daemon.malformed == 1
        assert len(router.routing_table) == 1  # just the connected route
