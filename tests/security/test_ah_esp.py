"""Tests for the AH and ESP plugins, unit level and through a router."""

import pytest

from repro.core import GATE_IP_SECURITY, Disposition, Router, Verdict
from repro.core.plugin import PluginContext
from repro.net.headers import PROTO_AH, PROTO_ESP, PROTO_UDP
from repro.net.packet import make_udp
from repro.security import (
    AhPlugin,
    EspPlugin,
    SADatabase,
    SecurityAssociation,
    SecurityError,
)


def _ah_pair(spi=0x100):
    sa = SecurityAssociation(spi=spi, auth_key=b"k" * 16)
    sadb = SADatabase()
    sadb.add(SecurityAssociation(spi=spi, auth_key=b"k" * 16))
    plugin = AhPlugin()
    out = plugin.create_instance(direction="out", sa=sa)
    inbound = plugin.create_instance(direction="in", sadb=sadb)
    return out, inbound


def _pkt():
    return make_udp("10.0.0.1", "20.0.0.1", 5000, 53, payload_size=64)


class TestAH:
    def test_outbound_wraps_in_ah(self):
        out, _ = _ah_pair()
        pkt = _pkt()
        assert out.process(pkt, PluginContext()) == Verdict.CONTINUE
        assert pkt.protocol == PROTO_AH

    def test_roundtrip_restores_packet(self):
        out, inbound = _ah_pair()
        pkt = _pkt()
        original_payload = pkt.payload
        out.process(pkt, PluginContext())
        assert inbound.process(pkt, PluginContext()) == Verdict.CONTINUE
        assert pkt.protocol == PROTO_UDP
        assert pkt.payload == original_payload

    def test_tampered_payload_dropped(self):
        out, inbound = _ah_pair()
        pkt = _pkt()
        out.process(pkt, PluginContext())
        pkt.payload = pkt.payload[:-1] + b"\xff"
        assert inbound.process(pkt, PluginContext()) == Verdict.DROP
        assert inbound.auth_failures == 1

    def test_wrong_key_dropped(self):
        sa = SecurityAssociation(spi=1, auth_key=b"good" * 4)
        sadb = SADatabase()
        sadb.add(SecurityAssociation(spi=1, auth_key=b"evil" * 4))
        plugin = AhPlugin()
        out = plugin.create_instance(direction="out", sa=sa)
        inbound = plugin.create_instance(direction="in", sadb=sadb)
        pkt = _pkt()
        out.process(pkt, PluginContext())
        assert inbound.process(pkt, PluginContext()) == Verdict.DROP

    def test_replayed_packet_dropped(self):
        out, inbound = _ah_pair()
        pkt = _pkt()
        out.process(pkt, PluginContext())
        import copy

        replay = copy.deepcopy(pkt)
        assert inbound.process(pkt, PluginContext()) == Verdict.CONTINUE
        assert inbound.process(replay, PluginContext()) == Verdict.DROP
        assert inbound.replays == 1

    def test_unknown_spi_dropped(self):
        out, _ = _ah_pair(spi=0x100)
        _, inbound = _ah_pair(spi=0x200)
        pkt = _pkt()
        out.process(pkt, PluginContext())
        assert inbound.process(pkt, PluginContext()) == Verdict.DROP

    def test_non_ah_packet_passes_inbound(self):
        _, inbound = _ah_pair()
        assert inbound.process(_pkt(), PluginContext()) == Verdict.CONTINUE

    def test_direction_validated(self):
        with pytest.raises(SecurityError):
            AhPlugin().create_instance(direction="sideways")
        with pytest.raises(SecurityError):
            AhPlugin().create_instance(direction="out")  # missing sa


def _esp_pair():
    key_args = dict(auth_key=b"a" * 16, encryption_key=b"e" * 16,
                    mode="tunnel", tunnel_src="192.0.2.1", tunnel_dst="192.0.2.2")
    sa_out = SecurityAssociation(spi=0x200, **key_args)
    sadb = SADatabase()
    sadb.add(SecurityAssociation(spi=0x200, **key_args))
    plugin = EspPlugin()
    out = plugin.create_instance(direction="out", sa=sa_out)
    inbound = plugin.create_instance(direction="in", sadb=sadb)
    return out, inbound


class TestESP:
    def test_outbound_tunnels_packet(self):
        out, _ = _esp_pair()
        pkt = _pkt()
        out.process(pkt, PluginContext())
        assert pkt.protocol == PROTO_ESP
        assert str(pkt.src) == "192.0.2.1"
        assert str(pkt.dst) == "192.0.2.2"

    def test_payload_is_encrypted(self):
        out, _ = _esp_pair()
        pkt = _pkt()
        inner = pkt.serialize()
        out.process(pkt, PluginContext())
        assert inner not in pkt.payload

    def test_roundtrip_without_router(self):
        out, inbound = _esp_pair()
        pkt = _pkt()
        original = pkt.five_tuple()
        out.process(pkt, PluginContext())
        assert inbound.process(pkt, PluginContext()) == Verdict.CONTINUE
        assert pkt.five_tuple() == original
        assert inbound.decapsulated == 1

    def test_tampered_ciphertext_dropped(self):
        out, inbound = _esp_pair()
        pkt = _pkt()
        out.process(pkt, PluginContext())
        pkt.payload = pkt.payload[:20] + b"\x00" + pkt.payload[21:]
        assert inbound.process(pkt, PluginContext()) == Verdict.DROP

    def test_transport_mode_rejected(self):
        sa = SecurityAssociation(
            spi=1, auth_key=b"a" * 16, encryption_key=b"e" * 16, mode="transport"
        )
        with pytest.raises(SecurityError):
            EspPlugin().create_instance(direction="out", sa=sa)


class TestVpnThroughRouters:
    """End-to-end: two security gateways with an ESP tunnel between them."""

    def _gateway(self, name, lan_prefix, wan_addr):
        router = Router(name=name, flow_buckets=256)
        router.add_interface("lan0", prefix=lan_prefix)
        router.add_interface("wan0", address=wan_addr, prefix="192.0.2.0/24")
        return router

    def test_esp_tunnel_end_to_end(self):
        left = self._gateway("left", "10.1.0.0/16", "192.0.2.1")
        right = self._gateway("right", "10.2.0.0/16", "192.0.2.2")
        left.routing_table.add("10.2.0.0/16", "wan0", next_hop="192.0.2.2")
        right.routing_table.add("10.1.0.0/16", "wan0", next_hop="192.0.2.1")
        left.interface("wan0").connect(right.interface("wan0"))

        key_args = dict(auth_key=b"a" * 16, encryption_key=b"e" * 16,
                        mode="tunnel", tunnel_src="192.0.2.1", tunnel_dst="192.0.2.2")
        sadb = SADatabase()
        sadb.add(SecurityAssociation(spi=0x300, **key_args))

        esp = EspPlugin()
        left.pcu.load(esp)
        out = esp.create_instance(direction="out", sa=SecurityAssociation(spi=0x300, **key_args))
        esp.register_instance(out, "10.1.0.0/16, 10.2.0.0/16", gate=GATE_IP_SECURITY)

        esp_right = EspPlugin()
        right.pcu.load(esp_right)
        inbound = esp_right.create_instance(direction="in", sadb=sadb)
        # The right gateway is the tunnel endpoint: ESP packets addressed
        # to it must hit the security gate, so bind on protocol ESP.
        esp_right.register_instance(
            inbound, f"192.0.2.1, 192.0.2.2, {PROTO_ESP}", gate=GATE_IP_SECURITY
        )
        # Deliver tunnel-addressed packets into the data path, not local.

        pkt = make_udp("10.1.0.5", "10.2.0.9", 1234, 80, payload_size=100, iif="lan0")
        assert left.receive(pkt) == Disposition.FORWARDED

        # Carry across the wire to the right gateway.
        received = right.interface("wan0").poll()
        assert len(received) == 1
        esp_pkt = received[0]
        assert esp_pkt.protocol == PROTO_ESP
        result = right.receive(esp_pkt)
        # Inbound ESP decapsulates and re-injects; inner packet forwards
        # out the right LAN.
        assert result == Disposition.CONSUMED
        assert inbound.decapsulated == 1
        assert right.interface("lan0").tx_packets == 1
