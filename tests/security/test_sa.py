"""Tests for security associations, replay windows, and the SADB."""

import pytest

from repro.security.sa import (
    ICV_BYTES,
    ReplayWindow,
    SADatabase,
    SecurityAssociation,
    SecurityError,
)


def _sa(**kwargs):
    defaults = dict(spi=0x100, auth_key=b"k" * 16)
    defaults.update(kwargs)
    return SecurityAssociation(**defaults)


class TestReplayWindow:
    def test_fresh_sequences_accepted(self):
        window = ReplayWindow()
        assert window.check_and_update(1)
        assert window.check_and_update(2)
        assert window.check_and_update(5)

    def test_duplicate_rejected(self):
        window = ReplayWindow()
        assert window.check_and_update(3)
        assert not window.check_and_update(3)

    def test_old_in_window_accepted_once(self):
        window = ReplayWindow()
        window.check_and_update(10)
        assert window.check_and_update(7)
        assert not window.check_and_update(7)

    def test_too_old_rejected(self):
        window = ReplayWindow()
        window.check_and_update(100)
        assert not window.check_and_update(100 - ReplayWindow.SIZE)

    def test_zero_rejected(self):
        assert not ReplayWindow().check_and_update(0)


class TestSecurityAssociation:
    def test_icv_roundtrip(self):
        sa = _sa()
        data = b"payload bytes"
        icv = sa.icv(data)
        assert len(icv) == ICV_BYTES
        assert sa.verify(data, icv)
        assert not sa.verify(data + b"x", icv)

    @pytest.mark.parametrize("algo", ["hmac-md5", "hmac-sha1", "hmac-sha256"])
    def test_all_algorithms(self, algo):
        sa = _sa(auth_algorithm=algo)
        assert sa.verify(b"data", sa.icv(b"data"))

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SecurityError):
            _sa(auth_algorithm="rot13")

    def test_sequence_increments(self):
        sa = _sa()
        assert sa.next_sequence() == 1
        assert sa.next_sequence() == 2

    def test_encrypt_decrypt_roundtrip(self):
        sa = _sa(encryption_key=b"e" * 16)
        plaintext = b"the quick brown fox" * 10
        ciphertext = sa.encrypt(7, plaintext)
        assert ciphertext != plaintext
        assert sa.decrypt(7, ciphertext) == plaintext

    def test_keystream_differs_per_sequence(self):
        sa = _sa(encryption_key=b"e" * 16)
        assert sa.encrypt(1, b"same") != sa.encrypt(2, b"same")

    def test_encrypt_without_key_rejected(self):
        with pytest.raises(SecurityError):
            _sa().encrypt(1, b"data")

    def test_tunnel_mode_needs_endpoints(self):
        with pytest.raises(SecurityError):
            _sa(mode="tunnel")
        sa = _sa(mode="tunnel", tunnel_src="1.1.1.1", tunnel_dst="2.2.2.2")
        assert sa.mode == "tunnel"

    def test_unknown_mode_rejected(self):
        with pytest.raises(SecurityError):
            _sa(mode="teleport")


class TestSADatabase:
    def test_add_get(self):
        sadb = SADatabase()
        sa = sadb.add(_sa(spi=7))
        assert sadb.get(7) is sa
        assert 7 in sadb

    def test_duplicate_spi_rejected(self):
        sadb = SADatabase()
        sadb.add(_sa(spi=7))
        with pytest.raises(SecurityError):
            sadb.add(_sa(spi=7))

    def test_unknown_spi(self):
        with pytest.raises(SecurityError):
            SADatabase().get(99)

    def test_remove(self):
        sadb = SADatabase()
        sadb.add(_sa(spi=7))
        assert sadb.remove(7)
        assert not sadb.remove(7)
        assert len(sadb) == 0
