"""Property tests: BMP engines agree with the linear reference under
randomized insert/remove interleavings."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bmp import BinarySearchOnLengths, MultibitTrie, PatriciaTrie
from repro.net.addresses import IPV4_WIDTH, Prefix
from repro.net.routing import LinearLPM

ENGINE_FACTORIES = [PatriciaTrie, BinarySearchOnLengths, MultibitTrie]

_ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "remove", "lookup"]),
        st.integers(0, (1 << 32) - 1),
        st.integers(0, 32),
    ),
    min_size=1,
    max_size=50,
)


@settings(max_examples=60, deadline=None)
@given(ops=_ops)
@pytest.mark.parametrize("factory", ENGINE_FACTORIES, ids=lambda f: f.__name__)
def test_engine_matches_reference_under_mutation(factory, ops):
    engine = factory(IPV4_WIDTH)
    reference = LinearLPM()
    counter = 0
    for op, value, length in ops:
        prefix = Prefix(value, length, IPV4_WIDTH)
        if op == "insert":
            counter += 1
            engine.insert(prefix, counter)
            reference.insert(prefix, counter)
        elif op == "remove":
            assert engine.remove(prefix) == reference.remove(prefix)
        else:
            expected = reference.lookup_prefix(value)
            got = engine.lookup_entry(value)
            if expected is None:
                assert got is None
            else:
                assert got is not None and got[0] == expected
    # Final sweep over a few probes derived from the operations.
    for _op, value, _length in ops[:10]:
        expected = reference.lookup_prefix(value)
        got = engine.lookup_entry(value)
        if expected is None:
            assert got is None
        else:
            assert got is not None and got[0] == expected


@settings(max_examples=40, deadline=None)
@given(
    prefixes=st.lists(
        st.tuples(st.integers(0, (1 << 32) - 1), st.integers(0, 32)),
        min_size=1, max_size=30,
    )
)
def test_engines_agree_pairwise(prefixes):
    """All three engines return identical best prefixes."""
    engines = [factory(IPV4_WIDTH) for factory in ENGINE_FACTORIES]
    for i, (value, length) in enumerate(prefixes):
        prefix = Prefix(value, length, IPV4_WIDTH)
        for engine in engines:
            engine.insert(prefix, i)
    for value, _length in prefixes:
        results = []
        for engine in engines:
            entry = engine.lookup_entry(value)
            results.append(entry[0] if entry else None)
        assert results[0] == results[1] == results[2]
