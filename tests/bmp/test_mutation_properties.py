"""Property tests: BMP engines agree with the linear reference under
randomized insert/remove interleavings."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bmp import BinarySearchOnLengths, MultibitTrie, PatriciaTrie
from repro.net.addresses import IPV4_WIDTH, Prefix
from repro.net.routing import LinearLPM

ENGINE_FACTORIES = [PatriciaTrie, BinarySearchOnLengths, MultibitTrie]

_ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "remove", "lookup"]),
        st.integers(0, (1 << 32) - 1),
        st.integers(0, 32),
    ),
    min_size=1,
    max_size=50,
)


@settings(max_examples=60, deadline=None)
@given(ops=_ops)
@pytest.mark.parametrize("factory", ENGINE_FACTORIES, ids=lambda f: f.__name__)
def test_engine_matches_reference_under_mutation(factory, ops):
    engine = factory(IPV4_WIDTH)
    reference = LinearLPM()
    counter = 0
    for op, value, length in ops:
        prefix = Prefix(value, length, IPV4_WIDTH)
        if op == "insert":
            counter += 1
            engine.insert(prefix, counter)
            reference.insert(prefix, counter)
        elif op == "remove":
            assert engine.remove(prefix) == reference.remove(prefix)
        else:
            expected = reference.lookup_prefix(value)
            got = engine.lookup_entry(value)
            if expected is None:
                assert got is None
            else:
                assert got is not None and got[0] == expected
            # The compiled fast path must track every mutation (epoch
            # invalidation) and agree with the metered walk exactly.
            assert engine.lookup_entry_fast(value) == got
    # Final sweep over a few probes derived from the operations.
    for _op, value, _length in ops[:10]:
        expected = reference.lookup_prefix(value)
        got = engine.lookup_entry(value)
        if expected is None:
            assert got is None
        else:
            assert got is not None and got[0] == expected


class TestMultibitInsertAfterRemove:
    """Regression: an insert landing while a remove's lazy rebuild is
    still pending must be ordered *after* that rebuild.

    ``MultibitTrie.remove`` only marks the structure dirty; the expanded
    slots of the removed prefix stay in the trie until the next lookup
    rebuilds it.  Inserting into that stale trie in place would order
    the insert before the rebuild — so ``insert`` now defers to the
    pending rebuild (which re-derives everything from ``_prefixes``,
    already including the new entry) instead of mutating stale state.
    """

    def test_reinsert_same_prefix_while_dirty(self):
        trie = MultibitTrie(IPV4_WIDTH)
        prefix = Prefix.parse("10.1.0.0/16")
        trie.insert(prefix, "old")
        assert trie.remove(prefix)
        trie.insert(prefix, "new")  # trie still dirty from the remove
        entry = trie.lookup_entry(int(0x0A010203))
        assert entry is not None and entry[1] == "new"

    def test_insert_under_removed_covering_prefix(self):
        trie = MultibitTrie(IPV4_WIDTH)
        covering = Prefix.parse("10.0.0.0/8")
        nested = Prefix.parse("10.1.0.0/16")
        trie.insert(covering, "covering")
        assert trie.remove(covering)
        trie.insert(nested, "nested")  # while dirty
        # The removed /8 must not resurrect; the /16 must be live.
        assert trie.lookup(int(0x0A010001)) == "nested"
        assert trie.lookup(int(0x0A020001)) is None
        assert trie.lookup_fast(int(0x0A010001)) == "nested"
        assert trie.lookup_fast(int(0x0A020001)) is None

    def test_insert_while_dirty_defers_to_rebuild(self):
        trie = MultibitTrie(IPV4_WIDTH)
        trie.insert(Prefix.parse("10.0.0.0/8"), "a")
        assert trie.remove(Prefix.parse("10.0.0.0/8"))
        assert trie._dirty
        trie.insert(Prefix.parse("10.1.0.0/16"), "b")
        # Insert must not have touched the stale trie in place: the
        # rebuild is still pending and owns the new prefix.
        assert trie._dirty
        assert dict(trie.entries()) == {Prefix.parse("10.1.0.0/16"): "b"}
        trie.lookup_entry(0)  # triggers the rebuild
        assert not trie._dirty


@settings(max_examples=40, deadline=None)
@given(
    prefixes=st.lists(
        st.tuples(st.integers(0, (1 << 32) - 1), st.integers(0, 32)),
        min_size=1, max_size=30,
    )
)
def test_engines_agree_pairwise(prefixes):
    """All three engines return identical best prefixes."""
    engines = [factory(IPV4_WIDTH) for factory in ENGINE_FACTORIES]
    for i, (value, length) in enumerate(prefixes):
        prefix = Prefix(value, length, IPV4_WIDTH)
        for engine in engines:
            engine.insert(prefix, i)
    for value, _length in prefixes:
        results = []
        for engine in engines:
            entry = engine.lookup_entry(value)
            results.append(entry[0] if entry else None)
        assert results[0] == results[1] == results[2]
