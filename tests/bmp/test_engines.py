"""Tests for all best-matching-prefix engines, including cross-checks
against the naive linear reference."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bmp import (
    BinarySearchOnLengths,
    MultibitTrie,
    PatriciaTrie,
    make_engine,
)
from repro.net.addresses import IPV4_WIDTH, IPV6_WIDTH, Prefix
from repro.net.routing import LinearLPM
from repro.sim.cost import MemoryMeter

ENGINE_FACTORIES = [PatriciaTrie, BinarySearchOnLengths, MultibitTrie]


@pytest.fixture(params=ENGINE_FACTORIES, ids=lambda f: f.__name__)
def engine(request):
    return request.param(IPV4_WIDTH)


@pytest.fixture(params=ENGINE_FACTORIES, ids=lambda f: f.__name__)
def engine6(request):
    return request.param(IPV6_WIDTH)


def _addr(text):
    return Prefix.parse(text).value


class TestBasicLookup:
    def test_empty_engine_returns_none(self, engine):
        assert engine.lookup(_addr("1.2.3.4")) is None

    def test_single_prefix(self, engine):
        engine.insert(Prefix.parse("10.0.0.0/8"), "ten")
        assert engine.lookup(_addr("10.1.2.3")) == "ten"
        assert engine.lookup(_addr("11.1.2.3")) is None

    def test_longest_match_wins(self, engine):
        engine.insert(Prefix.parse("10.0.0.0/8"), "coarse")
        engine.insert(Prefix.parse("10.1.0.0/16"), "mid")
        engine.insert(Prefix.parse("10.1.2.0/24"), "fine")
        assert engine.lookup(_addr("10.1.2.3")) == "fine"
        assert engine.lookup(_addr("10.1.9.9")) == "mid"
        assert engine.lookup(_addr("10.9.9.9")) == "coarse"

    def test_host_route(self, engine):
        engine.insert(Prefix.parse("10.0.0.0/8"), "net")
        engine.insert(Prefix.parse("10.1.2.3/32"), "host")
        assert engine.lookup(_addr("10.1.2.3")) == "host"
        assert engine.lookup(_addr("10.1.2.4")) == "net"

    def test_default_route(self, engine):
        engine.insert(Prefix.parse("*"), "default")
        engine.insert(Prefix.parse("10.0.0.0/8"), "ten")
        assert engine.lookup(_addr("99.99.99.99")) == "default"
        assert engine.lookup(_addr("10.0.0.1")) == "ten"

    def test_lookup_entry_returns_prefix(self, engine):
        p = Prefix.parse("10.0.0.0/8")
        engine.insert(p, "x")
        entry = engine.lookup_entry(_addr("10.1.1.1"))
        assert entry == (p, "x")

    def test_sibling_prefixes_disjoint(self, engine):
        engine.insert(Prefix.parse("128.0.0.0/1"), "high")
        engine.insert(Prefix.parse("0.0.0.0/1"), "low")
        assert engine.lookup(_addr("200.0.0.1")) == "high"
        assert engine.lookup(_addr("10.0.0.1")) == "low"


class TestMutation:
    def test_reinsert_replaces_value(self, engine):
        p = Prefix.parse("10.0.0.0/8")
        engine.insert(p, "old")
        engine.insert(p, "new")
        assert engine.lookup(p.value) == "new"
        assert len(engine) == 1

    def test_remove(self, engine):
        p = Prefix.parse("10.0.0.0/8")
        engine.insert(p, "x")
        assert engine.remove(p)
        assert engine.lookup(p.value) is None
        assert len(engine) == 0

    def test_remove_missing_returns_false(self, engine):
        assert not engine.remove(Prefix.parse("10.0.0.0/8"))

    def test_remove_exposes_shorter_prefix(self, engine):
        engine.insert(Prefix.parse("10.0.0.0/8"), "coarse")
        engine.insert(Prefix.parse("10.1.0.0/16"), "fine")
        engine.remove(Prefix.parse("10.1.0.0/16"))
        assert engine.lookup(_addr("10.1.2.3")) == "coarse"

    def test_insert_after_remove(self, engine):
        p = Prefix.parse("10.0.0.0/8")
        engine.insert(p, "a")
        engine.remove(p)
        engine.insert(p, "b")
        assert engine.lookup(_addr("10.0.0.1")) == "b"

    def test_wrong_family_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.insert(Prefix.parse("2001:db8::/32"), "x")


class TestIPv6:
    def test_v6_longest_match(self, engine6):
        engine6.insert(Prefix.parse("2001:db8::/32"), "doc")
        engine6.insert(Prefix.parse("2001:db8:1::/48"), "site")
        assert engine6.lookup(_addr("2001:db8:1::5")) == "site"
        assert engine6.lookup(_addr("2001:db8:2::5")) == "doc"

    def test_v6_host_route(self, engine6):
        host = Prefix.parse("2001:db8::1/128")
        engine6.insert(host, "me")
        assert engine6.lookup(host.value) == "me"


class TestAccessCounting:
    def test_waldvogel_respects_log_bound(self):
        engine = BinarySearchOnLengths(IPV4_WIDTH)
        # Realistic mix of prefix lengths 8..24 -> D=17 distinct lengths.
        for i in range(200):
            length = 8 + (i % 17)
            engine.insert(Prefix((i * 2654435761) & 0xFFFFFFFF, length, IPV4_WIDTH), i)
        meter = MemoryMeter()
        engine.lookup(_addr("10.1.2.3"), meter)
        assert meter.accesses <= engine.worst_case_accesses()
        assert engine.worst_case_accesses() <= 5

    def test_waldvogel_v6_bound(self):
        engine = BinarySearchOnLengths(IPV6_WIDTH)
        for i in range(100):
            length = 16 + (i % 49)
            engine.insert(Prefix(i << 64, length, IPV6_WIDTH), i)
        assert engine.worst_case_accesses() <= 7

    def test_cpe_accesses_equal_strides_worst_case(self):
        engine = MultibitTrie(IPV4_WIDTH)
        engine.insert(Prefix.parse("10.1.2.3/32"), "deep")
        meter = MemoryMeter()
        engine.lookup(_addr("10.1.2.3"), meter)
        assert meter.accesses == 4  # 8/8/8/8 strides

    def test_patricia_counts_node_visits(self):
        engine = PatriciaTrie(IPV4_WIDTH)
        engine.insert(Prefix.parse("10.0.0.0/8"), "x")
        meter = MemoryMeter()
        engine.lookup(_addr("10.1.2.3"), meter)
        assert meter.accesses >= 1


class TestRegistry:
    @pytest.mark.parametrize("name", ["patricia", "bspl", "waldvogel", "cpe", "multibit"])
    def test_make_engine(self, name):
        engine = make_engine(name, IPV4_WIDTH)
        engine.insert(Prefix.parse("10.0.0.0/8"), 1)
        assert engine.lookup(_addr("10.0.0.1")) == 1

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_engine("nope", IPV4_WIDTH)


# ---------------------------------------------------------------------------
# Property-based cross-check against the linear reference implementation.
# ---------------------------------------------------------------------------
prefixes_v4 = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=0, max_value=32),
    ),
    min_size=0,
    max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(specs=prefixes_v4, probes=st.lists(st.integers(0, (1 << 32) - 1), max_size=20))
@pytest.mark.parametrize("factory", ENGINE_FACTORIES, ids=lambda f: f.__name__)
def test_engines_agree_with_linear_reference(factory, specs, probes):
    engine = factory(IPV4_WIDTH)
    reference = LinearLPM()
    for i, (value, length) in enumerate(specs):
        prefix = Prefix(value, length, IPV4_WIDTH)
        engine.insert(prefix, i)
        reference.insert(prefix, i)
    # Re-bind duplicates the same way the engines do (last insert wins is
    # not guaranteed by LinearLPM ordering for equal prefixes, so rebuild).
    for probe in probes:
        expected_prefix = reference.lookup_prefix(probe)
        got = engine.lookup_entry(probe)
        if expected_prefix is None:
            assert got is None
        else:
            assert got is not None
            assert got[0] == expected_prefix


@settings(max_examples=30, deadline=None)
@given(
    specs=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=(1 << 128) - 1),
            st.integers(min_value=0, max_value=128),
        ),
        max_size=20,
    ),
    probes=st.lists(st.integers(0, (1 << 128) - 1), max_size=10),
)
@pytest.mark.parametrize("factory", ENGINE_FACTORIES, ids=lambda f: f.__name__)
def test_engines_agree_with_linear_reference_v6(factory, specs, probes):
    engine = factory(IPV6_WIDTH)
    reference = LinearLPM()
    for i, (value, length) in enumerate(specs):
        prefix = Prefix(value, length, IPV6_WIDTH)
        engine.insert(prefix, i)
        reference.insert(prefix, i)
    for probe in probes:
        expected_prefix = reference.lookup_prefix(probe)
        got = engine.lookup_entry(probe)
        if expected_prefix is None:
            assert got is None
        else:
            assert got is not None
            assert got[0] == expected_prefix
