"""Tests for the IPv6 option-processing plugins."""

import struct

from repro.core.plugin import PluginContext, Verdict
from repro.net.headers import OPT_JUMBO, OPT_ROUTER_ALERT, OptionTLV
from repro.net.packet import make_udp
from repro.options import (
    HopByHopPlugin,
    JumboPlugin,
    RouterAlertPlugin,
)


def _v6(options):
    return make_udp("2001:db8::1", "2001:db8::2", 1, 2, hop_options=options)


class TestHopByHop:
    def test_known_options_pass(self):
        instance = HopByHopPlugin().create_instance()
        pkt = _v6([OptionTLV(OPT_ROUTER_ALERT, b"\x00\x00")])
        assert instance.process(pkt, PluginContext()) == Verdict.CONTINUE

    def test_unknown_skip_action(self):
        instance = HopByHopPlugin().create_instance()
        # Action bits 00 -> skip.
        pkt = _v6([OptionTLV(0x1E, b"")])
        assert instance.process(pkt, PluginContext()) == Verdict.CONTINUE
        assert instance.unknown_skipped == 1

    def test_unknown_drop_action(self):
        instance = HopByHopPlugin().create_instance()
        # Action bits 01 -> drop silently.
        pkt = _v6([OptionTLV(0x40 | 0x1E, b"")])
        assert instance.process(pkt, PluginContext()) == Verdict.DROP
        assert instance.dropped == 1
        assert instance.icmp_sent == 0

    def test_unknown_drop_icmp_action(self):
        instance = HopByHopPlugin().create_instance()
        # Action bits 10 -> drop + ICMP parameter problem.
        pkt = _v6([OptionTLV(0x80 | 0x1E, b"")])
        assert instance.process(pkt, PluginContext()) == Verdict.DROP
        assert instance.icmp_sent == 1

    def test_no_options_is_noop(self):
        instance = HopByHopPlugin().create_instance()
        assert instance.process(_v6([]), PluginContext()) == Verdict.CONTINUE


class TestRouterAlert:
    def test_alert_punted_to_handler(self):
        seen = []
        instance = RouterAlertPlugin().create_instance(
            handler=lambda pkt, ctx: seen.append(pkt)
        )
        pkt = _v6([OptionTLV(OPT_ROUTER_ALERT, b"\x00\x00")])
        assert instance.process(pkt, PluginContext()) == Verdict.CONTINUE
        assert seen == [pkt]
        assert pkt.annotations["router_alert"] is True
        assert instance.alerts == 1

    def test_no_alert_no_punt(self):
        seen = []
        instance = RouterAlertPlugin().create_instance(
            handler=lambda pkt, ctx: seen.append(pkt)
        )
        instance.process(_v6([]), PluginContext())
        assert seen == []

    def test_handler_optional(self):
        instance = RouterAlertPlugin().create_instance()
        pkt = _v6([OptionTLV(OPT_ROUTER_ALERT, b"\x00\x00")])
        assert instance.process(pkt, PluginContext()) == Verdict.CONTINUE


class TestJumbo:
    def test_valid_jumbogram(self):
        instance = JumboPlugin().create_instance()
        pkt = _v6([OptionTLV(OPT_JUMBO, struct.pack("!I", 100_000))])
        assert instance.process(pkt, PluginContext()) == Verdict.CONTINUE
        assert pkt.annotations["jumbo_length"] == 100_000
        assert instance.jumbograms == 1

    def test_short_jumbo_length_dropped(self):
        instance = JumboPlugin().create_instance()
        pkt = _v6([OptionTLV(OPT_JUMBO, struct.pack("!I", 1000))])
        assert instance.process(pkt, PluginContext()) == Verdict.DROP
        assert instance.malformed == 1

    def test_malformed_option_data_dropped(self):
        instance = JumboPlugin().create_instance()
        pkt = _v6([OptionTLV(OPT_JUMBO, b"\x00\x01")])
        assert instance.process(pkt, PluginContext()) == Verdict.DROP
