"""Differential proof: a topology adds *composition*, never semantics.

Equality claims pinned here (docs/TOPOLOGY.md):

* a single unlinked node driven through ``Topology.receive`` is
  packet-for-packet the bare router — dispositions, counters, flow
  stats, and modelled cycles — over an existing adversarial workload;
* a packet through an N-hop chain produces, at every hop, exactly the
  dispositions/counters/cycles of that hop's router run standalone on
  the same deliveries (scalar and batched entry, and with the middle
  hop sharded);
* ECMP member selection is the deterministic five-tuple fold — never
  builtin ``hash()`` — so a flow repins to the same member forever;
* a forwarding loop is cut at ``max_hops`` with the topology-level
  ``dropped_loop`` disposition.

Run via the topo gate in ``scripts/ci_check.sh`` (``-m topo``).
"""

import random

import pytest

from repro import Router, Topology
from repro.net.packet import make_udp
from repro.sim import CycleMeter
from repro.topo import DROPPED_LOOP
from repro.workloads import run_scenario, scenario

pytestmark = pytest.mark.topo

SEED = 7


def _stream(count, seed=SEED, dst_net="20.7.0"):
    rng = random.Random(seed)
    return [
        make_udp(
            f"10.7.{rng.randrange(4)}.{rng.randrange(1, 40)}",
            f"{dst_net}.{rng.randrange(1, 40)}",
            rng.randrange(1024, 65536),
            9000,
            iif="lan0",
        )
        for _ in range(count)
    ]


def _clone(packet):
    import copy

    fresh = copy.copy(packet)
    fresh.annotations = dict(packet.annotations)
    fresh.fix = None
    return fresh


def _chain(shards_mid=0):
    """3-hop chain r1 -> r2 -> r3; returns the topology."""
    topo = Topology("chain", max_hops=8)
    topo.add_node("r1")
    topo.add_node("r2", shards=shards_mid)
    topo.add_node("r3")
    topo.add_interface("r1", "lan0", prefix="10.7.0.0/16")
    topo.add_interface("r1", "up0")
    topo.add_interface("r2", "dn0")
    topo.add_interface("r2", "up0")
    topo.add_interface("r3", "dn0")
    topo.add_interface("r3", "lan0", prefix="20.7.0.0/16")
    topo.link("r1", "up0", "r2", "dn0")
    topo.link("r2", "up0", "r3", "dn0")
    for name in ("r1", "r2"):
        topo.add_route(name, "20.7.0.0/16", "up0")
    topo.add_route("r3", "20.7.0.0/16", "lan0")
    return topo


class _CaptureTap:
    """Duck-typed Link: collects (packet, departure) instead of carrying.

    The same protocol the topology's edge taps speak, so a standalone
    router's egress can be harvested without sinking the packet."""

    def __init__(self):
        self.sent = []

    def carry(self, sender, packet, departure):
        self.sent.append((packet, departure))

    def take(self):
        out, self.sent = self.sent, []
        return out


def _standalone_hop(prefix_iface, capture=()):
    """One chain hop as a standalone router, same config as in _chain."""
    router = Router(name="solo")
    for iface, prefix in prefix_iface:
        router.add_interface(iface, prefix=prefix)
    taps = {}
    for iface in capture:
        taps[iface] = router.interface(iface).link = _CaptureTap()
    return router, taps


class TestSingleNodeEquivalence:
    def test_attack_scenario_bit_equal(self):
        """The acceptance bar: one unlinked node behaves exactly like
        the bare router on an existing adversarial workload."""
        sc = scenario("syn_flood", seed=SEED, warmup_packets=200,
                      attack_packets=600, recovery_packets=200)
        bare = Router(name="bare")
        bare.add_interface("atm0", prefix="0.0.0.0/0")
        topo = Topology("solo")
        node = topo.add_node("only")
        topo.add_interface("only", "atm0", prefix="0.0.0.0/0")

        report_bare = run_scenario(bare, sc)
        report_topo = run_scenario(topo, sc)
        assert report_topo["phases"] == report_bare["phases"]
        assert report_topo["max_active"] == report_bare["max_active"]
        assert dict(node.counters) == dict(bare.counters)
        for attr in ("active", "hits", "misses", "births", "evictions"):
            assert getattr(node.aiu.flow_table, attr) == getattr(
                bare.aiu.flow_table, attr
            )

    def test_batched_entry_bit_equal(self):
        sc = scenario("cache_thrash", seed=SEED, warmup_packets=200,
                      attack_packets=600, recovery_packets=200)
        bare = Router(name="bare")
        bare.add_interface("atm0", prefix="0.0.0.0/0")
        topo = Topology("solo")
        node = topo.add_node("only")
        topo.add_interface("only", "atm0", prefix="0.0.0.0/0")
        report_bare = run_scenario(bare, sc, batch_size=32)
        report_topo = run_scenario(topo, sc, batch_size=32)
        assert report_topo["phases"] == report_bare["phases"]
        assert dict(node.counters) == dict(bare.counters)

    def test_entry_meter_matches_bare_router(self):
        """A meter passed to Topology.receive charges exactly what the
        bare router charges for the entry hop."""
        bare = Router(name="bare")
        bare.add_interface("lan0", prefix="10.7.0.0/16")
        bare.add_interface("up0")
        bare.routing_table.add("20.7.0.0/16", "up0")
        topo = Topology("solo")
        topo.add_node("only", router=None)
        topo.add_interface("only", "lan0", prefix="10.7.0.0/16")
        topo.add_interface("only", "up0")
        topo.add_route("only", "20.7.0.0/16", "up0")
        for packet in _stream(50):
            meter_bare, meter_topo = CycleMeter(), CycleMeter()
            a = bare.receive(_clone(packet), cycles=meter_bare)
            b = topo.receive(_clone(packet), cycles=meter_topo)
            assert a == b
            assert meter_topo.total == meter_bare.total


class TestChainDifferential:
    @pytest.mark.parametrize("batch", [0, 32])
    def test_chain_equals_standalone_hops(self, batch):
        """Every hop of the chain accounts exactly like the same router
        run standalone on the deliveries the previous hop produced."""
        packets = _stream(300)
        topo = _chain()

        # Standalone replicas, wired by hand: each hop's egress carries
        # into a capture tap instead of a downstream node.
        solo1, taps1 = _standalone_hop(
            [("lan0", "10.7.0.0/16"), ("up0", None)], capture=("up0",))
        solo2, taps2 = _standalone_hop(
            [("dn0", None), ("up0", None)], capture=("up0",))
        solo3, _ = _standalone_hop([("dn0", None), ("lan0", "20.7.0.0/16")])
        solo1.routing_table.add("20.7.0.0/16", "up0")
        solo2.routing_table.add("20.7.0.0/16", "up0")
        solo3.routing_table.add("20.7.0.0/16", "lan0")

        if batch:
            clones = [_clone(p) for p in packets]
            topo_dispositions = []
            for i in range(0, len(clones), batch):
                topo_dispositions.extend(topo.receive_batch(clones[i:i + batch]))
        else:
            topo_dispositions = [topo.receive(_clone(p)) for p in packets]

        solo_dispositions = []
        for packet in packets:
            d1 = solo1.receive(_clone(packet))
            emitted1 = taps1["up0"].take()
            assert d1 == "forwarded" and len(emitted1) == 1
            hop2_in, departed1 = emitted1[0]
            solo2.interface("dn0").deliver(hop2_in, departed1)
            (arrived2,) = solo2.interface("dn0").poll()
            d2 = solo2.receive(arrived2, now=arrived2.arrival_time)
            emitted2 = taps2["up0"].take()
            assert d2 == "forwarded" and len(emitted2) == 1
            hop3_in, departed2 = emitted2[0]
            solo3.interface("dn0").deliver(hop3_in, departed2)
            (arrived3,) = solo3.interface("dn0").poll()
            solo_dispositions.append(
                solo3.receive(arrived3, now=arrived3.arrival_time))

        assert topo_dispositions == solo_dispositions
        for name, solo in (("r1", solo1), ("r2", solo2), ("r3", solo3)):
            node = topo.node(name)
            assert dict(node.counters) == dict(solo.counters), name
            for attr in ("active", "hits", "misses", "births", "evictions"):
                assert getattr(node.aiu.flow_table, attr) == getattr(
                    solo.aiu.flow_table, attr
                ), (name, attr)

    def test_chain_with_sharded_middle_hop(self):
        """The middle hop sharded 3-ways forwards identically — same
        end-to-end dispositions and the same summed accounting."""
        packets = _stream(300)
        plain = _chain(shards_mid=0)
        sharded = _chain(shards_mid=3)
        d_plain = [plain.receive(_clone(p)) for p in packets]
        d_sharded = [sharded.receive(_clone(p)) for p in packets]
        assert d_plain == d_sharded
        assert dict(plain.node("r2").counters) == dict(
            sharded.node("r2").counters
        )
        assert (
            plain.aiu.flow_table.active == sharded.aiu.flow_table.active
        )
        assert dict(plain.counters) == dict(sharded.counters)


class TestEcmpAndLoops:
    def _diamond(self):
        topo = Topology("diamond", max_hops=8)
        for name in ("in", "left", "right", "out"):
            topo.add_node(name)
        topo.add_interface("in", "lan0", prefix="10.8.0.0/16")
        topo.add_interface("in", "up1")
        topo.add_interface("in", "up2")
        for name in ("left", "right"):
            topo.add_interface(name, "dn0")
            topo.add_interface(name, "out0")
            topo.add_route(name, "20.8.0.0/16", "out0")
        topo.add_interface("out", "in1")
        topo.add_interface("out", "in2")
        topo.add_interface("out", "lan0", prefix="20.8.0.0/16")
        topo.link("in", "up1", "left", "dn0")
        topo.link("in", "up2", "right", "dn0")
        topo.link("left", "out0", "out", "in1")
        topo.link("right", "out0", "out", "in2")
        topo.ecmp("in", "20.8.0.0/16", ["up1", "up2"])
        topo.add_route("out", "20.8.0.0/16", "lan0")
        return topo

    def test_ecmp_deterministic_and_spreads(self):
        topo = self._diamond()
        packets = _stream(200, dst_net="20.8.0")
        for packet in packets:
            assert topo.receive(_clone(packet)) == "forwarded"
        left_rx = topo.node("left").counters["rx"]
        right_rx = topo.node("right").counters["rx"]
        assert left_rx + right_rx == len(packets)
        assert left_rx > 0 and right_rx > 0  # the fold spreads flows

        # Determinism: replaying the identical stream doubles each
        # member's count exactly — a flow never migrates.
        for packet in packets:
            topo.receive(_clone(packet))
        assert topo.node("left").counters["rx"] == 2 * left_rx
        assert topo.node("right").counters["rx"] == 2 * right_rx

    def test_ecmp_route_never_uses_builtin_hash(self):
        """Same stream, two processes' worth of hash randomization can't
        be simulated here — instead pin the fold itself: the member index
        is flow_fold32 % members, bit-stable by construction."""
        topo = self._diamond()
        packet = make_udp("10.8.0.1", "20.8.0.1", 5000, 9000, iif="lan0")
        expected = ["left", "right"][packet.flow_fold32() % 2]
        topo.receive(_clone(packet))
        assert topo.node(expected).counters["rx"] == 1

    def test_forwarding_loop_dropped(self):
        topo = Topology("loop", max_hops=4)
        topo.add_node("a")
        topo.add_node("b")
        topo.add_interface("a", "lan0", prefix="10.9.0.0/16")
        topo.add_interface("a", "x0")
        topo.add_interface("b", "x0")
        topo.link("a", "x0", "b", "x0")
        # Both sides route the destination at each other: a loop.
        topo.add_route("a", "20.9.0.0/16", "x0")
        topo.add_route("b", "20.9.0.0/16", "x0")
        packet = make_udp("10.9.0.1", "20.9.0.1", 5000, 9000,
                          iif="lan0", ttl=64)
        disposition = topo.receive(packet)
        assert disposition == DROPPED_LOOP
        assert topo.counters[DROPPED_LOOP] == 1
        assert topo.describe()["counters"][DROPPED_LOOP] == 1

    def test_ttl_cuts_before_max_hops_when_tighter(self):
        topo = Topology("loop", max_hops=64)
        topo.add_node("a")
        topo.add_node("b")
        topo.add_interface("a", "lan0", prefix="10.9.0.0/16")
        topo.add_interface("a", "x0")
        topo.add_interface("b", "x0")
        topo.link("a", "x0", "b", "x0")
        topo.add_route("a", "20.9.0.0/16", "x0")
        topo.add_route("b", "20.9.0.0/16", "x0")
        packet = make_udp("10.9.0.1", "20.9.0.1", 5000, 9000,
                          iif="lan0", ttl=5)
        assert topo.receive(packet) == "dropped_ttl"
        assert topo.counters[DROPPED_LOOP] == 0
