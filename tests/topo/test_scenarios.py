"""Seeded multi-hop attack scenarios and topology control-plane fanout.

Every registered topo scenario (IPsec tunnel spoofing, hop-by-hop v6
options, H-FSC aggregation shaping, quarantine reroute) must hold its
delivery invariants when driven through the unmodified ``run_scenario``
harness — scalar and batched — and ``TopologyPluginLibrary`` must fan
control-plane commands across nodes (broadcast by default, one node via
``node=``) while aggregating queries through the topic registry.
"""

import pytest

from repro import Topology, TopologyPluginLibrary
from repro.core.errors import ConfigurationError
from repro.mgr.format import strip_schema
from repro.workloads import (
    build_topo_scenario,
    run_scenario,
    topo_scenario_names,
)

pytestmark = pytest.mark.topo

SEED = 3


@pytest.mark.parametrize("name", topo_scenario_names())
@pytest.mark.parametrize("batch", [0, 32])
def test_scenario_holds_invariants(name, batch):
    topo, sc = build_topo_scenario(name, seed=SEED)
    kwargs = {"batch_size": batch} if batch else {}
    report = run_scenario(topo, sc, **kwargs)
    sc.check(report)


def test_registry_has_the_four_issue_scenarios():
    names = set(topo_scenario_names())
    assert {"ipsec_tunnel", "v6_options",
            "hfsc_aggregation", "quarantine_reroute"} <= names


class TestLibraryFanout:
    def _topo(self):
        topo = Topology("fan")
        topo.add_node("a")
        topo.add_node("b", shards=2)
        topo.add_interface("a", "lan0", prefix="10.3.0.0/16")
        topo.add_interface("a", "up0")
        topo.add_interface("b", "dn0")
        topo.add_interface("b", "lan0", prefix="20.3.0.0/16")
        topo.link("a", "up0", "b", "dn0")
        topo.add_route("a", "20.3.0.0/16", "up0")
        topo.add_route("b", "20.3.0.0/16", "lan0")
        return topo

    def test_broadcast_lands_on_every_node(self):
        topo = self._topo()
        lib = TopologyPluginLibrary(topo)
        lib.modload("stats")
        lib.create_instance("stats", "s0")
        lib.bind("s0", "*, *", gate="ip_options")
        for name in ("a", "b"):
            for router in topo._node_routers(topo.node(name)):
                assert router.pcu.is_loaded("stats"), name

    def test_node_targets_one(self):
        topo = self._topo()
        lib = TopologyPluginLibrary(topo)
        lib.modload("stats", node="a")
        assert topo.node("a").pcu.is_loaded("stats")
        for shard in topo.node("b").shards:
            assert not shard.pcu.is_loaded("stats")

    def test_unknown_node_rejected(self):
        lib = TopologyPluginLibrary(self._topo())
        with pytest.raises(ConfigurationError, match="nope"):
            lib.modload("stats", node="nope")

    def test_non_topology_rejected(self):
        with pytest.raises(ConfigurationError):
            TopologyPluginLibrary(object())

    def test_query_sums_flows_across_nodes(self):
        topo = self._topo()
        lib = TopologyPluginLibrary(topo)
        from repro.net.packet import make_udp

        for i in range(20):
            topo.receive(
                make_udp(f"10.3.0.{i + 1}", "20.3.0.1", 4000 + i, 9000,
                         iif="lan0")
            )
        data = lib.query("flows")
        assert data["schema"]["topic"] == "flows"
        body = strip_schema(data)
        # Every packet traverses both nodes: the summed view counts each
        # node's flow table once.
        assert body["active"] == 2 * 20

    def test_frontend_shards_rows_are_node_labelled(self):
        lib = TopologyPluginLibrary(self._topo())
        body = strip_schema(lib.query("shards"))
        labels = {row["shard"] for row in body["shards"]}
        assert labels == {"a/0", "b/0", "b/1"}
        assert body["nshards"] == 3
        assert body["backend"] == "inline+local"

    def test_unknown_topic_raises(self):
        lib = TopologyPluginLibrary(self._topo())
        with pytest.raises(ConfigurationError, match="no_such_topic"):
            lib.query("no_such_topic")

    def test_health_aggregates_per_node(self):
        topo = self._topo()
        lib = TopologyPluginLibrary(topo)
        body = strip_schema(lib.query("health"))
        assert set(body["per_node"]) == {"a", "b"}

    def test_run_script_fans_out(self):
        topo = self._topo()
        lib = TopologyPluginLibrary(topo)
        lib.run_script(
            "modload stats\ncreate stats s0\nbind s0 ip_options *, *\n")
        for name in ("a", "b"):
            for router in topo._node_routers(topo.node(name)):
                assert router.pcu.is_loaded("stats"), name
