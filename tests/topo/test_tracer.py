"""Hop-by-hop path tracing through multi-router topologies.

Pins the ISSUE acceptance criteria:

* ``PathTracer.trace(five_tuple)`` on the 4-hop IPsec scenario returns
  one span per hop carrying classification outcome, gates run, and
  modelled cycles — with the decapsulating hop folded (outer ESP
  consume + inner re-injection rendered as one ``decapsulated`` hop);
* ``pmgr show paths --json`` round-trips through the topic registry
  with the versioned schema envelope;
* quarantining a middle-hop plugin via ``TopologyPluginLibrary``
  reroutes the traced path onto the ECMP alternate, and reinstating
  brings it back.
"""

import json

import pytest

from repro import PathTracer, PluginManager, Topology, TopologyPluginLibrary
from repro.mgr.format import strip_schema
from repro.net.packet import make_udp
from repro.workloads import build_topo_scenario

pytestmark = pytest.mark.topo

PROBE = ("10.1.3.7", "10.2.0.9", 17, 5000, 9000)


@pytest.fixture()
def ipsec_topo():
    topo, _sc = build_topo_scenario("ipsec_tunnel")
    return topo


class TestIpsecPathTrace:
    def test_four_hops_with_decapsulation(self, ipsec_topo):
        trace = PathTracer(ipsec_topo).trace(PROBE)
        assert trace.path() == ["e1", "gwa", "gwb", "e2"]
        assert trace.disposition == "forwarded"
        for hop in trace.hops:
            assert hop["gates"], hop["node"]
            assert hop["cycles"] > 0, hop["node"]
            assert hop["classification"] is not None, hop["node"]
        # gwa encapsulates (ESP runs at ip_security)...
        assert "ip_security" in trace.hops[1]["gates"]
        # ...and gwb is the folded decapsulation hop: outer consume +
        # inner forward shown as one hop, with both walks' gates.
        gwb = trace.hops[2]
        assert gwb["decapsulated"] is True
        assert gwb["disposition"] == "forwarded"
        assert gwb["gates"].count("ip_security") >= 2

    def test_header_names_the_asked_about_flow(self, ipsec_topo):
        """ESP rewrites the packet in place; the rendered header must
        still name the probe flow, not the tunnel endpoints."""
        lines = PathTracer(ipsec_topo).trace(PROBE).render()
        assert "10.1.3.7:5000 -> 10.2.0.9:9000/17" in lines[0]
        assert "192.0.2." not in lines[0]
        assert len(lines) == 1 + 4  # header + one line per hop

    def test_trace_is_side_effect_free_on_flow_state(self, ipsec_topo):
        tracer = PathTracer(ipsec_topo)
        tracer.trace(PROBE)
        gwb = ipsec_topo.node("gwb")
        lifecycles = [
            r._lifecycle for r in ipsec_topo._node_routers(gwb)
        ]
        assert all(lc is None for lc in lifecycles)

    def test_to_dict_roundtrip(self, ipsec_topo):
        trace = PathTracer(ipsec_topo).trace(PROBE)
        data = trace.to_dict()
        assert data["disposition"] == "forwarded"
        assert [h["node"] for h in data["hops"]] == trace.path()
        json.dumps(data)  # must be JSON-serializable as-is


class TestTraceMechanics:
    def _chain(self, shards_mid=0):
        topo = Topology("chain")
        topo.add_node("a")
        topo.add_node("b", shards=shards_mid)
        topo.add_interface("a", "lan0", prefix="10.4.0.0/16")
        topo.add_interface("a", "up0")
        topo.add_interface("b", "dn0")
        topo.add_interface("b", "lan0", prefix="20.4.0.0/16")
        topo.link("a", "up0", "b", "dn0")
        topo.add_route("a", "20.4.0.0/16", "up0")
        topo.add_route("b", "20.4.0.0/16", "lan0")
        return topo

    def test_sharded_hop_records_shard_index(self):
        topo = self._chain(shards_mid=3)
        probe = make_udp("10.4.0.1", "20.4.0.1", 5000, 9000, iif="lan0")
        trace = PathTracer(topo).trace(probe)
        assert trace.path() == ["a", "b"]
        expected = probe.flow_fold32() % 3
        assert trace.hops[1]["shard"] == expected
        assert f"shard={expected}" in trace.render()[2]
        assert trace.hops[0]["shard"] is None

    def test_entry_override(self):
        topo = self._chain()
        probe = make_udp("10.4.0.1", "20.4.0.1", 5000, 9000, iif="dn0")
        trace = PathTracer(topo).trace(probe, entry="b")
        assert trace.path() == ["b"]
        assert topo._entry == "a"  # override did not stick

    def test_scheduler_verdict_on_shaped_hop(self):
        topo, _sc = build_topo_scenario("hfsc_aggregation")
        probe = make_udp("10.5.0.1", "20.5.0.1", 5000, 9000, iif="lan0")
        trace = PathTracer(topo).trace(probe)
        agg = next(h for h in trace.hops if h["node"] == "agg")
        assert agg["scheduler"] in ("queued", "scheduled")
        assert "packet_scheduling" in agg["gates"]

    def test_probe_from_destination_string(self):
        topo = self._chain()
        trace = PathTracer(topo).trace("20.4.0.0/16")
        assert trace.path() == ["a", "b"]


class TestPmgrIntegration:
    def test_trace_path_and_show_paths_json(self, ipsec_topo):
        library = TopologyPluginLibrary(ipsec_topo)
        lines = []
        mgr = PluginManager(ipsec_topo, output=lines.append)
        assert mgr.library.topology is ipsec_topo

        mgr.run_command(
            "trace path 10.1.3.7 10.2.0.9 proto=17 sport=5000 dport=9000"
        )
        rendered = "\n".join(lines)
        assert "e1" in rendered and "gwb" in rendered
        assert "decapsulated" in rendered

        lines.clear()
        mgr.run_command("show paths --json")
        data = json.loads("\n".join(lines))
        assert data["schema"] == {"topic": "paths", "version": 1}
        paths = strip_schema(data)["paths"]
        assert len(paths) == 1
        assert [h["node"] for h in paths[0]["hops"]] == [
            "e1", "gwa", "gwb", "e2",
        ]
        del library

    def test_show_topology_json(self, ipsec_topo):
        lines = []
        mgr = PluginManager(ipsec_topo, output=lines.append)
        mgr.run_command("show topology --json")
        data = json.loads("\n".join(lines))
        assert data["schema"] == {"topic": "topology", "version": 1}
        body = strip_schema(data)
        assert {n["name"] for n in body["nodes"]} == {
            "e1", "gwa", "gwb", "e2",
        }
        assert body["entry"] == "e1"
        assert len(body["links"]) == 3


class TestQuarantineReroute:
    def test_traced_path_moves_to_ecmp_alternate(self):
        topo, _sc = build_topo_scenario("quarantine_reroute")
        library = TopologyPluginLibrary(topo)
        probe = make_udp("10.6.0.1", "20.6.0.1", 5000, 9000, iif="lan0")
        before = library.trace_path(probe)
        assert before.disposition == "forwarded"
        first_via = before.path()[1]
        assert first_via in ("left", "right")

        # Quarantine the branch the flow pinned to: the ECMP fold must
        # steer around the impaired node, established flow intact.
        library.quarantine("stats", node=first_via)
        rerouted = library.trace_path(probe)
        assert rerouted.disposition == "forwarded"
        alternate = rerouted.path()[1]
        assert alternate != first_via

        library.reinstate("stats", node=first_via)
        restored = library.trace_path(probe)
        assert restored.path()[1] == first_via

        # All three traces retained for `pmgr show paths`.
        assert len(library._paths) == 3
