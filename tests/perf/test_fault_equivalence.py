"""Fault-path equivalence of the wall-clock fast path.

The fault-containment layer lives in both gate implementations; this
suite pins that a faulting workload — captures, quarantine trips,
degradation, half-open probes — is observed identically on the metered
specification path and the unmetered fast path: same dispositions, same
counters, same FaultRecord signatures, same health snapshots.
"""

import pytest

from repro.core import (
    DEGRADE_BYPASS,
    FaultPolicy,
    GATE_IP_SECURITY,
    Plugin,
    PluginInstance,
    Router,
    TYPE_IP_SECURITY,
    Verdict,
)
from repro.core.gates import DEFAULT_GATES
from repro.net.packet import make_udp
from repro.sim.cost import CycleMeter


class _EveryNthFaults(PluginInstance):
    """Deterministically faults on every n-th call."""

    def __init__(self, plugin, every=3, **config):
        super().__init__(plugin, **config)
        self.every = every
        self.calls = 0

    def process(self, packet, ctx):
        self.calls += 1
        if self.calls % self.every == 0:
            raise RuntimeError(f"fault at call {self.calls}")
        return Verdict.CONTINUE


class _FaultyPlugin(Plugin):
    plugin_type = TYPE_IP_SECURITY
    name = "faulty"
    instance_class = _EveryNthFaults


def _build(name, policy):
    router = Router(name=name, gates=DEFAULT_GATES)
    router.add_interface("atm0", prefix="10.0.0.0/8")
    router.add_interface("atm1", prefix="20.0.0.0/8")
    plugin = _FaultyPlugin()
    router.pcu.load(plugin)
    instance = plugin.create_instance(every=3)
    plugin.register_instance(instance, "*, *, UDP", gate=GATE_IP_SECURITY)
    router.faults.set_policy("faulty", policy)
    return router, instance


def _workload():
    # A flow mix with cache hits and misses; `now` advances 1ms per
    # packet so windows, cool-downs, and probes all exercise.
    out = []
    for i in range(120):
        out.append(
            (
                make_udp(
                    "10.0.0.1", f"20.0.0.{i % 5 + 1}", 5000 + i % 7, 9000,
                    iif="atm0",
                ),
                i * 0.001,
            )
        )
    return out


def _observed(router):
    return {
        "counters": dict(router.counters),
        "health": router.faults.health(),
        "signatures": [r.signature() for r in router.faults.records()],
    }


@pytest.mark.parametrize(
    "policy",
    [
        FaultPolicy(threshold=2, window=0.01, action="drop", cooldown=0.02),
        FaultPolicy(threshold=2, window=0.01, action=DEGRADE_BYPASS, cooldown=0.02),
        FaultPolicy(threshold=1000, window=1.0),  # capture only, never trips
    ],
    ids=["drop", "bypass", "capture-only"],
)
def test_fault_equivalence_fast_vs_metered(policy):
    metered, spec_inst = _build("spec", policy)
    fast, fast_inst = _build("fast", policy)

    spec_disp = [
        metered.receive(p, now=now, cycles=CycleMeter())
        for p, now in _workload()
    ]
    fast_disp = [fast.receive(p, now=now) for p, now in _workload()]

    assert fast_disp == spec_disp
    assert spec_inst.calls == fast_inst.calls
    assert _observed(fast) == _observed(metered)
    # The workload really did trip/capture: this is not a vacuous pass.
    assert metered.counters["plugin_faults"] > 0
    if policy.threshold == 2:
        assert metered.counters["plugin_quarantines"] > 0
        assert metered.counters["plugin_reinstatements"] > 0


def test_fault_equivalence_batch():
    policy = FaultPolicy(threshold=2, window=0.01, cooldown=0.02)
    sequential, _ = _build("seq", policy)
    batched, _ = _build("batch", policy)

    # Batches share one `now`; mirror that in the sequential run.
    expected = []
    packets = [p for p, _ in _workload()]
    for start in range(0, len(packets), 8):
        now = start * 0.001
        for p in packets[start:start + 8]:
            expected.append(sequential.receive(p, now=now))
    got = []
    packets = [p for p, _ in _workload()]
    for start in range(0, len(packets), 8):
        got.extend(batched.receive_batch(packets[start:start + 8], now=start * 0.001))

    assert got == expected
    assert _observed(batched) == _observed(sequential)


def test_healthy_path_charges_no_containment_cycles():
    """Fault containment must be invisible to the cost model: a healthy
    walk charges the same modelled cycles whether or not fault domains
    have ever been consulted."""
    plain = Router(name="plain", gates=DEFAULT_GATES)
    plain.add_interface("atm0", prefix="10.0.0.0/8")
    plain.add_interface("atm1", prefix="20.0.0.0/8")

    exercised = Router(name="exercised", gates=DEFAULT_GATES)
    exercised.add_interface("atm0", prefix="10.0.0.0/8")
    exercised.add_interface("atm1", prefix="20.0.0.0/8")
    exercised.faults.set_policy("anything", FaultPolicy(threshold=5))

    def run(router):
        meter = CycleMeter()
        router.receive(
            make_udp("10.0.0.1", "20.0.0.1", 5000, 9000, iif="atm0"),
            cycles=meter,
        )
        return meter.total

    assert run(plain) == run(exercised)
