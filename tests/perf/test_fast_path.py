"""Behavioral equivalence of the wall-clock fast path.

The metered data path (`Router._receive`) is the specification; the fast
path and `receive_batch` are specializations that must produce the same
dispositions, counters, flow-table statistics, and plugin callbacks.
These tests pin that equivalence, plus the two cache-coherence hazards
the fast path introduces: LRU recycling under a capped record pool, and
the active-gate plan going stale across filter installs/removals.
"""

import random

from repro.core.gates import DEFAULT_GATES, GATE_IP_SECURITY
from repro.core.plugin import Plugin, PluginInstance, TYPE_IP_SECURITY, Verdict
from repro.core.router import Router
from repro.net.packet import make_udp
from repro.sim.cost import CycleMeter


def _build_router(name, **kwargs):
    router = Router(name=name, gates=DEFAULT_GATES, **kwargs)
    router.add_interface("atm0", prefix="10.0.0.0/8")
    router.add_interface("atm1", prefix="20.0.0.0/8")
    return router


class _PortFilterInstance(PluginInstance):
    """Drops packets to one destination port; forwards the rest."""

    def process(self, packet, ctx):
        self.packets_processed += 1
        if packet.dst_port == 7777:
            return Verdict.DROP
        return Verdict.CONTINUE


class _PortFilterPlugin(Plugin):
    plugin_type = TYPE_IP_SECURITY
    name = "port-filter"
    instance_class = _PortFilterInstance


def _install_port_filter(router):
    plugin = _PortFilterPlugin()
    router.pcu.load(plugin)
    instance = plugin.create_instance()
    plugin.register_instance(instance, "*, *, UDP", gate=GATE_IP_SECURITY)
    return instance


def _mixed_workload():
    """A deterministic packet mix covering every disposition class:
    cache hits, misses, TTL expiry, no-route drops, and plugin drops."""
    packets = []
    for i in range(5):                      # 5 flows x 4 packets: mostly hits
        for _ in range(4):
            packets.append(
                make_udp("10.0.0.1", f"20.0.1.{i + 1}", 5000 + i, 9000, iif="atm0")
            )
    for i in range(10):                     # every packet a fresh flow: misses
        packets.append(
            make_udp("10.0.2.1", "20.0.2.1", 6000 + i, 9000, iif="atm0")
        )
    for i in range(3):                      # TTL expiry (ICMP time exceeded)
        packets.append(
            make_udp("10.0.3.1", "20.0.3.1", 7000 + i, 9000, iif="atm0", ttl=1)
        )
    for i in range(3):                      # no route (30/8 is unrouted)
        packets.append(
            make_udp("10.0.4.1", "30.0.0.1", 7100 + i, 9000, iif="atm0")
        )
    for i in range(4):                      # dropped by the port-filter plugin
        packets.append(
            make_udp("10.0.5.1", "20.0.5.1", 7200 + i, 7777, iif="atm0")
        )
    random.Random(42).shuffle(packets)
    return packets


def _state(router):
    return {
        "counters": dict(router.counters),
        "flow_stats": router.aiu.flow_table.stats(),
        "filter_lookups": router.aiu.filter_lookups,
    }


def test_fast_path_matches_metered_path():
    """Same workload, metered vs unmetered: identical observable state."""
    metered = _build_router("spec")
    fast = _build_router("fast")
    spec_instance = _install_port_filter(metered)
    fast_instance = _install_port_filter(fast)

    spec_dispositions = [
        metered.receive(p, cycles=CycleMeter()) for p in _mixed_workload()
    ]
    fast_dispositions = [fast.receive(p) for p in _mixed_workload()]

    assert fast_dispositions == spec_dispositions
    assert _state(fast) == _state(metered)
    assert fast_instance.packets_processed == spec_instance.packets_processed


def test_receive_batch_matches_sequential_receive():
    """receive_batch is semantically a loop over receive()."""
    sequential = _build_router("seq")
    batched = _build_router("batch")
    _install_port_filter(sequential)
    _install_port_filter(batched)

    expected = [sequential.receive(p) for p in _mixed_workload()]
    packets = _mixed_workload()
    got = []
    for start in range(0, len(packets), 7):   # uneven chunks on purpose
        got.extend(batched.receive_batch(packets[start:start + 7]))

    assert got == expected
    assert _state(batched) == _state(sequential)


def test_lru_recycle_storm_stats():
    """A capped record pool under a flow storm: LRU recycling keeps the
    table consistent and the hit/miss/recycled stats exact."""
    router = _build_router("storm", max_flows=8)
    table = router.aiu.flow_table

    def flow_packet(i):
        return make_udp("10.0.0.1", "20.0.0.1", 1024 + i, 9000, iif="atm0")

    for i in range(32):                      # 32 fresh flows through 8 records
        assert router.receive(flow_packet(i)) == "forwarded"
    assert table.stats() == {
        "active": 8, "allocated": 8, "hits": 0, "misses": 32, "recycled": 24,
        "births": 32, "evictions": 24,
    }

    for i in range(24, 32):                  # the 8 survivors: all hits
        router.receive(flow_packet(i))
    assert table.hits == 8 and table.misses == 32 and table.recycled == 24

    for i in range(8):                       # long-evicted flows: recycle again
        router.receive(flow_packet(i))
    assert table.stats() == {
        "active": 8, "allocated": 8, "hits": 8, "misses": 40, "recycled": 32,
        "births": 40, "evictions": 32,
    }
    # The intrusive chains stayed coherent: exactly the 8 survivors are
    # reachable, each via its own bucket walk.
    assert sum(1 for _ in table) == 8
    for i in range(8):
        assert table.lookup(flow_packet(i)) is not None


def test_gate_plan_tracks_filter_changes():
    """Flows cached before create_filter re-classify after it, and the
    fast path stops calling the plugin after remove_filter."""
    router = _build_router("plan")

    packet = lambda: make_udp("10.0.0.9", "20.0.0.9", 5500, 9000, iif="atm0")
    assert router.receive(packet()) == "forwarded"      # flow cached, no filters

    plugin = _PortFilterPlugin()
    router.pcu.load(plugin)
    instance = plugin.create_instance()
    record = plugin.register_instance(instance, "*, *, UDP", gate=GATE_IP_SECURITY)

    # The pre-existing cached flow must re-classify against the new
    # filter: the very next packet goes through the plugin.
    assert router.receive(packet()) == "forwarded"
    assert instance.packets_processed == 1

    assert router.aiu.remove_filter(record)
    assert router.receive(packet()) == "forwarded"
    assert instance.packets_processed == 1              # not called any more
