"""Smoke-run the throughput benchmark under plain pytest.

A tiny (hundreds of packets) pass over every workload of
``benchmarks/bench_throughput.py``, so the benchmark script itself —
router construction, workload generators, the batch/sequential timing
paths, the forwarded-counter sanity check — is exercised on every test
run, not only when someone invokes the benchmark by hand.
"""

import importlib.util
import os

import pytest

_BENCH_PATH = os.path.join(
    os.path.dirname(__file__), "..", "..", "benchmarks", "bench_throughput.py"
)


def _load_bench():
    spec = importlib.util.spec_from_file_location("bench_throughput", _BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.smoke
@pytest.mark.bench
@pytest.mark.parametrize(
    "workload",
    ["cached_hit", "cache_miss", "gates3", "miss_churn", "filters256"],
)
@pytest.mark.parametrize("use_batch", [True, False], ids=["batch", "sequential"])
def test_bench_throughput_smoke(workload, use_batch):
    bench = _load_bench()
    pps = bench.run_workload(workload, n=300, reps=1, use_batch=use_batch)
    assert pps > 0
