"""Differential tests for the compiled batch pipeline (repro.core.batch).

``receive_batch`` is semantically a loop over ``receive``; these tests
drive the same seeded traffic through both entry points on twin routers
and assert packet-for-packet identical dispositions plus identical
counters, flow-table statistics, filter-lookup counts, telemetry cells,
and fault/quarantine behavior — for every generated loop shape
(``single``, ``lanes``, ``fused``) and for the scalar fallback configs
the compiler refuses.
"""

import random

import pytest

from repro.core import (
    DEGRADE_BYPASS,
    FaultPolicy,
    GATE_IP_OPTIONS,
    GATE_IP_SECURITY,
    Plugin,
    PluginInstance,
    Router,
    TYPE_IP_SECURITY,
    Verdict,
)
from repro.core.batch import loop_for
from repro.core.gates import DEFAULT_GATES, GATE_PACKET_SCHEDULING
from repro.net.packet import make_udp
from repro.sched.drr import DrrPlugin
from repro.sim.cost import CycleMeter


def _build(name, **kwargs):
    router = Router(name=name, gates=DEFAULT_GATES, **kwargs)
    router.add_interface("atm0", prefix="10.0.0.0/8")
    router.add_interface("atm1", prefix="20.0.0.0/8")
    return router


class _PortFilter(PluginInstance):
    def process(self, packet, ctx):
        self.packets_processed += 1
        if packet.dst_port == 7777:
            return Verdict.DROP
        return Verdict.CONTINUE


class _PortFilterPlugin(Plugin):
    plugin_type = TYPE_IP_SECURITY
    name = "port-filter"
    instance_class = _PortFilter


class _NthFaulter(PluginInstance):
    """Raises on every n-th call — mid-batch, by construction."""

    def __init__(self, plugin, every=5, **config):
        super().__init__(plugin, **config)
        self.every = every
        self.calls = 0

    def process(self, packet, ctx):
        self.calls += 1
        if self.calls % self.every == 0:
            raise RuntimeError(f"fault at call {self.calls}")
        return Verdict.CONTINUE


class _FaultyPlugin(Plugin):
    plugin_type = TYPE_IP_SECURITY
    name = "faulty-batch"
    instance_class = _NthFaulter


class _PortFaulter(PluginInstance):
    """Faults on a fixed set of packets — order-invariant by design."""

    def process(self, packet, ctx):
        self.packets_processed += 1
        if packet.src_port % 9 == 4:
            raise RuntimeError(f"fault on src port {packet.src_port}")
        return Verdict.CONTINUE


class _PortFaultyPlugin(Plugin):
    plugin_type = TYPE_IP_SECURITY
    name = "port-faulty"
    instance_class = _PortFaulter


def _bind(router, plugin_cls, gate=GATE_IP_SECURITY, spec="*, *, UDP", **config):
    plugin = plugin_cls()
    router.pcu.load(plugin)
    instance = plugin.create_instance(**config)
    plugin.register_instance(instance, spec, gate=gate)
    return instance


def _mixed_workload(seed=42, count=80):
    """Hits, misses, TTL expiry, no-route, plugin drops — shuffled."""
    packets = []
    for i in range(count // 4):
        for _ in range(3):
            packets.append(
                make_udp("10.0.0.1", f"20.0.1.{i % 9 + 1}", 5000 + i, 9000, iif="atm0")
            )
    for i in range(count // 8):
        packets.append(make_udp("10.0.2.1", "20.0.2.1", 6000 + i, 9000, iif="atm0"))
        packets.append(make_udp("10.0.3.1", "20.0.3.1", 7000 + i, 9000, iif="atm0", ttl=1))
        packets.append(make_udp("10.0.4.1", "30.0.0.1", 7100 + i, 9000, iif="atm0"))
        packets.append(make_udp("10.0.5.1", "20.0.5.1", 7200 + i, 7777, iif="atm0"))
    random.Random(seed).shuffle(packets)
    return packets


def _state(router):
    state = {
        "counters": dict(router.counters),
        "flow_stats": router.aiu.flow_table.stats(),
        "filter_lookups": router.aiu.filter_lookups,
        "tx": {
            name: (iface.tx_packets, iface.tx_bytes)
            for name, iface in router.interfaces.items()
        },
    }
    if router._tm_gate_cells is not None:
        state["gate_cells"] = list(router._tm_gate_cells)
        state["size_counts"] = list(router.aiu._tm_size_counts)
    return state


def _run_differential(make_router, workload=None, chunk=7, now_step=0.0):
    """Same traffic scalar vs batched; returns the batched router."""
    scalar = make_router("scalar")
    batched = make_router("batched")
    packets = workload or _mixed_workload()
    expected = []
    for i, p in enumerate(packets):
        expected.append(scalar.receive(p, now=i * now_step))
    replay = workload or _mixed_workload()
    got = []
    for start in range(0, len(replay), chunk):
        got.extend(
            batched.receive_batch(replay[start:start + chunk], now=start * now_step)
        )
    # With now_step > 0 the scalar/batch clocks intentionally differ
    # inside a chunk; only use it for workloads whose outcome is
    # time-invariant.
    assert got == expected
    assert _state(batched) == _state(scalar)
    return batched


# ----------------------------------------------------------------------
# Shape coverage
# ----------------------------------------------------------------------
def test_single_shape_matches_scalar():
    router = _run_differential(lambda n: _build(n))
    shapes = [loop._plan for loop in router._batch_loops.values()]
    assert shapes and all(not p["fused"] and not p["pre"] for p in shapes)


def test_lanes_shape_matches_scalar():
    def make(name):
        router = _build(name)
        _bind(router, _PortFilterPlugin)
        return router

    router = _run_differential(make)
    plans = [loop._plan for loop in router._batch_loops.values()]
    assert plans and all(not p["fused"] and p["pre"] for p in plans)


@pytest.mark.parametrize("policy", ["lru", "clock"])
def test_fused_shape_bounded_table_matches_scalar(policy):
    """A capped flow table forces the fused shape: in-batch evictions
    interleave with packet processing exactly as scalar order demands."""
    def make(name):
        router = _build(name, max_flows=8, flow_eviction=policy)
        _bind(router, _PortFilterPlugin)
        return router

    router = _run_differential(make)
    plans = [loop._plan for loop in router._batch_loops.values()]
    assert plans and all(p["fused"] for p in plans)


def test_telemetry_cells_and_histogram_match_scalar():
    def make(name):
        router = _build(name)
        router.attach_telemetry()
        _bind(router, _PortFilterPlugin)
        return router

    _run_differential(make)


def test_uneven_chunks_and_chunk_of_one():
    for chunk in (1, 3, 64):
        _run_differential(lambda n: _build(n), chunk=chunk)


def test_metered_batch_takes_the_specification_path():
    """A real meter forces per-packet receive(); dispositions and the
    modelled cycle totals must match the scalar metered run."""
    scalar = _build("scalar-metered")
    batched = _build("batched-metered")
    _bind(scalar, _PortFilterPlugin)
    _bind(batched, _PortFilterPlugin)
    scalar_meter = CycleMeter()
    batch_meter = CycleMeter()
    expected = [scalar.receive(p, cycles=scalar_meter) for p in _mixed_workload()]
    got = batched.receive_batch(_mixed_workload(), cycles=batch_meter)
    assert got == expected
    assert batch_meter.total == scalar_meter.total
    assert _state(batched) == _state(scalar)


def test_scalar_fallback_configs_still_match():
    """Configs the compiler refuses (flow cache off) fall back to the
    per-packet fast path with identical results."""
    def make(name):
        router = _build(name, use_flow_cache=False)
        _bind(router, _PortFilterPlugin)
        return router

    router = _run_differential(make)
    assert not router._batch_loops
    assert loop_for(router) is None


# ----------------------------------------------------------------------
# Parse-once contract on the data path
# ----------------------------------------------------------------------
def test_batch_folds_each_five_tuple_exactly_once():
    """Fresh packets cost one five-tuple derivation each; wire packets
    pre-warmed by Packet.parse() cost zero on either entry point."""
    from repro.net.packet import PARSE_STATS, Packet

    scalar = _build("scalar-parse")
    batched = _build("batched-parse")
    _bind(scalar, _PortFilterPlugin)
    _bind(batched, _PortFilterPlugin)

    fresh = _mixed_workload(count=40)
    before = PARSE_STATS.tuple_derivations
    batched.receive_batch(fresh)
    assert PARSE_STATS.tuple_derivations == before + len(fresh)

    warmed = [
        Packet.parse(p.serialize(), iif="atm0") for p in _mixed_workload(count=40)
    ]
    warmed_twin = [
        Packet.parse(p.serialize(), iif="atm0") for p in _mixed_workload(count=40)
    ]
    before = PARSE_STATS.tuple_derivations
    expected = [scalar.receive(p) for p in warmed]
    got = batched.receive_batch(warmed_twin)
    # Parse already derived the folds; neither data path re-derives.
    assert PARSE_STATS.tuple_derivations == before
    assert got == expected


# ----------------------------------------------------------------------
# Plan/epoch invalidation
# ----------------------------------------------------------------------
def test_filter_install_between_batches_recompiles_the_loop():
    scalar = _build("scalar-epoch")
    batched = _build("batched-epoch")

    expected = [scalar.receive(p) for p in _mixed_workload(seed=1, count=40)]
    got = batched.receive_batch(_mixed_workload(seed=1, count=40))
    keys_before = set(batched._batch_loops)

    _bind(scalar, _PortFilterPlugin)
    _bind(batched, _PortFilterPlugin)

    expected += [scalar.receive(p) for p in _mixed_workload(seed=2, count=40)]
    got += batched.receive_batch(_mixed_workload(seed=2, count=40))

    assert got == expected
    assert _state(batched) == _state(scalar)
    # The plan epoch is part of the specialization key: the new filter
    # set compiled a fresh loop instead of reusing the stale one.
    assert set(batched._batch_loops) - keys_before


# ----------------------------------------------------------------------
# Fault / quarantine equivalence (mid-batch splits)
# ----------------------------------------------------------------------
_POLICIES = [
    FaultPolicy(threshold=1000, window=1.0),                       # capture only
    FaultPolicy(threshold=1, window=5.0, action="drop", cooldown=10.0),
    FaultPolicy(threshold=2, window=5.0, action=DEGRADE_BYPASS, cooldown=10.0),
]


def _fault_state(router):
    state = _state(router)
    state["health"] = router.faults.health()
    return state


@pytest.mark.parametrize("policy", _POLICIES, ids=["capture", "trip1", "bypass2"])
@pytest.mark.parametrize("bounded", [False, True], ids=["lanes", "fused"])
def test_mid_batch_fault_splits_match_scalar(policy, bounded):
    """A plugin fault mid-batch: earlier packets finished first, the
    faulter takes the fault verdict, later packets observe any freshly
    tripped quarantine — identically to the scalar order."""
    def make(name):
        kwargs = {"max_flows": 16} if bounded else {}
        router = _build(name, **kwargs)
        _bind(router, _FaultyPlugin, every=5)
        router.faults.set_policy("faulty-batch", policy)
        return router

    _run_differential(make, chunk=8)


@pytest.mark.parametrize("bounded", [False, True], ids=["lanes", "fused"])
def test_fault_at_two_gates_same_instance_matches_scalar(bounded):
    """One instance bound at two pre-routing gates, faulting mid-batch:
    the split must resume at the *next* gate position, not re-run the
    faulting gate.  The lanes shape reorders cross-gate call interleaving
    (documented divergence), so its faulter keys off the packet itself;
    the fused shape preserves scalar call order exactly, so there the
    call-counting faulter must also agree."""
    def make(name):
        kwargs = {"max_flows": 16} if bounded else {}
        router = _build(name, **kwargs)
        if bounded:
            plugin = _FaultyPlugin()
            config = {"every": 7}
        else:
            plugin = _PortFaultyPlugin()
            config = {}
        router.pcu.load(plugin)
        instance = plugin.create_instance(**config)
        plugin.register_instance(instance, "*, *, UDP", gate=GATE_IP_OPTIONS)
        plugin.register_instance(instance, "*, *, UDP", gate=GATE_IP_SECURITY)
        router.faults.set_policy(
            plugin.name,
            FaultPolicy(threshold=2, window=5.0, action="drop", cooldown=10.0),
        )
        return router

    _run_differential(make, chunk=8)


# ----------------------------------------------------------------------
# Scheduler path
# ----------------------------------------------------------------------
def test_drr_scheduler_queued_dispositions_match_scalar():
    def make(name):
        router = _build(name)
        plugin = DrrPlugin()
        router.pcu.load(plugin)
        instance = plugin.create_instance(interface="atm1", quantum=4096)
        plugin.register_instance(instance, "*, *, UDP", gate=GATE_PACKET_SCHEDULING)
        router.set_scheduler("atm1", instance)
        return router

    batched = _run_differential(make)
    assert batched.counters.get("queued", 0) > 0


# ----------------------------------------------------------------------
# The batch-start hook
# ----------------------------------------------------------------------
class _HookedFilter(PluginInstance):
    def __init__(self, plugin, **config):
        super().__init__(plugin, **config)
        self.batch_calls = []

    def on_batch_start(self, now, batch_size):
        self.batch_calls.append((now, batch_size))

    def process(self, packet, ctx):
        self.packets_processed += 1
        return Verdict.CONTINUE


class _HookedPlugin(Plugin):
    plugin_type = TYPE_IP_SECURITY
    name = "hooked"
    instance_class = _HookedFilter


def test_on_batch_start_called_once_per_batch():
    router = _build("hooked")
    instance = _bind(router, _HookedPlugin)
    packets = _mixed_workload(count=40)
    sizes = []
    for start in range(0, len(packets), 9):
        chunk = packets[start:start + 9]
        router.receive_batch(chunk, now=1.5)
        sizes.append(len(chunk))
    assert instance.batch_calls == [(1.5, size) for size in sizes]


def test_on_batch_start_must_not_change_behavior():
    """The hook contract: scalar receive() never calls the hook, so a
    hook-bearing plugin must produce identical dispositions and state on
    both paths — the hook only hoists invariants."""
    batched = _run_differential(
        lambda n: (_bind(r := _build(n), _HookedPlugin), r)[1]
    )
    # The scalar twin never ran the hook; the batched one did, and the
    # differential still held.
    instance = next(iter(batched._batch_loops.values()))._plan["hooks"]
    assert instance  # the compiled loop discovered the hook


def test_warmed_pipeline_passes_codegen_audit():
    """Satellite of the static-analysis PR: after real traffic warms all
    three loop shapes (single, lanes, fused) plus the compiled filter
    tables and routing engines, the RP5xx exec-codegen audit must report
    zero findings — the emitter's live output is the fixture."""
    from repro.analysis import audit_router_codegen

    routers = []
    single = _build("audit-single")
    routers.append(single)
    lanes = _build("audit-lanes")
    _bind(lanes, _PortFilterPlugin)
    routers.append(lanes)
    fused = _build("audit-fused", max_flows=64)
    _bind(fused, _PortFilterPlugin)
    routers.append(fused)
    workload = _mixed_workload()
    shapes = set()
    for router in routers:
        for start in range(0, len(workload), 7):
            router.receive_batch(workload[start:start + 7])
        assert router._batch_loops
        for fn in router._batch_loops.values():
            plan = fn._plan
            shapes.add(
                "fused" if plan["fused"] else ("lanes" if plan["pre"] else "single")
            )
        assert audit_router_codegen(router) == []
    assert shapes == {"single", "lanes", "fused"}
