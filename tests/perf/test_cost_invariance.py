"""The cost model is the spec: modelled cycles must never drift.

``tests/perf/golden_costs.json`` was captured at the seed commit, before
any wall-clock optimisation existed.  These tests re-measure the same
scenarios and assert the cycle totals *and* per-label breakdowns (and the
raw memory-access counts for the flow table) are bit-identical.  Any
fast-path change that alters a modelled number fails here — wall-clock
speedups must be invisible to the meters.
"""

import json
import os

import pytest

from repro.core.gates import DEFAULT_GATES
from repro.core.plugin import Plugin, PluginInstance, TYPE_IP_SECURITY
from repro.core.router import Router
from repro.kernels import build_besteffort_kernel
from repro.net.packet import make_udp
from repro.sim.cost import CycleMeter, MemoryMeter

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_costs.json")


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


def _packet():
    return make_udp("10.0.0.1", "20.0.0.1", 5000, 9000, payload_size=64, iif="atm0")


def _two_iface_router(name):
    router = Router(name=name, gates=DEFAULT_GATES)
    router.add_interface("atm0", prefix="10.0.0.0/8")
    router.add_interface("atm1", prefix="20.0.0.0/8")
    return router


class _EmptyPlugin(Plugin):
    plugin_type = TYPE_IP_SECURITY
    name = "empty"
    instance_class = PluginInstance


def _assert_matches(meter: CycleMeter, expected: dict) -> None:
    assert meter.total == expected["total"]
    assert meter.breakdown() == expected["breakdown"]


def test_best_effort_path_cycles(golden):
    """Table 3 row 1: the unmodified best-effort kernel (6460 cycles)."""
    kernel = build_besteffort_kernel()
    meter = CycleMeter()
    kernel.process(_packet(), meter)
    _assert_matches(meter, golden["best_effort"])


def test_plugin_router_no_filters_cycles(golden):
    """Plugin router, no filters: flow-cache miss then hit."""
    router = _two_iface_router("inv-empty")
    _assert_matches(router.measure_packet(_packet()), golden["plugin_empty"]["miss"])
    _assert_matches(router.measure_packet(_packet()), golden["plugin_empty"]["hit"])


def test_governor_attached_is_golden_identical(golden):
    """An attached (healthy) overload governor charges zero modelled
    cycles: the metered path reproduces the seed goldens bit for bit."""
    router = _two_iface_router("inv-governor")
    router.attach_overload_governor()
    _assert_matches(router.measure_packet(_packet()), golden["plugin_empty"]["miss"])
    _assert_matches(router.measure_packet(_packet()), golden["plugin_empty"]["hit"])


def test_plugin_router_three_gates_cycles(golden):
    """Table 3 row 2 shape: empty plugin bound at all three gates."""
    router = _two_iface_router("inv-gates3")
    plugin = _EmptyPlugin()
    router.pcu.load(plugin)
    instance = plugin.create_instance()
    for gate in DEFAULT_GATES:
        plugin.register_instance(instance, "*, *, UDP", gate=gate)
    _assert_matches(router.measure_packet(_packet()), golden["plugin_gates3"]["miss"])
    _assert_matches(router.measure_packet(_packet()), golden["plugin_gates3"]["hit"])


def test_flow_table_memory_accesses(golden):
    """Raw memory-access counts of the flow table itself (Table 2 style)."""
    router = _two_iface_router("inv-mem")

    miss_meter = MemoryMeter()
    assert router.aiu.flow_table.lookup(_packet(), meter=miss_meter) is None
    assert miss_meter.accesses == golden["flow_table_memory"]["miss"]["accesses"]
    assert miss_meter.breakdown() == golden["flow_table_memory"]["miss"]["breakdown"]

    router.receive(_packet())  # install the flow

    hit_meter = MemoryMeter()
    assert router.aiu.flow_table.lookup(_packet(), meter=hit_meter) is not None
    assert hit_meter.accesses == golden["flow_table_memory"]["hit"]["accesses"]
    assert hit_meter.breakdown() == golden["flow_table_memory"]["hit"]["breakdown"]
