"""Tests for pcap trace writing/reading/replay."""

import struct

import pytest

from repro.core import Router
from repro.net.packet import make_tcp, make_udp
from repro.workloads import (
    PcapError,
    bursty_arrivals,
    read_pcap,
    replay_into,
    synthetic_flows,
    write_pcap,
)


def _packets():
    return [
        make_udp("10.0.0.1", "20.0.0.1", 5000, 53, payload_size=64),
        make_tcp("10.0.0.2", "20.0.0.1", 5001, 80, payload_size=32),
        make_udp("2001:db8::1", "2001:db8::2", 6000, 53, payload_size=16),
    ]


class TestRoundtrip:
    def test_write_and_read(self, tmp_path):
        path = tmp_path / "trace.pcap"
        packets = _packets()
        for i, packet in enumerate(packets):
            packet.arrival_time = 1.5 * i
        assert write_pcap(path, packets) == 3
        trace = read_pcap(path)
        assert len(trace) == 3
        for (timestamp, parsed), original in zip(trace, packets):
            assert parsed.five_tuple() == original.five_tuple()
            assert timestamp == pytest.approx(original.arrival_time, abs=1e-6)

    def test_timed_pairs(self, tmp_path):
        path = tmp_path / "timed.pcap"
        write_pcap(path, [(0.25, _packets()[0])])
        ((timestamp, _packet),) = read_pcap(path)
        assert timestamp == pytest.approx(0.25, abs=1e-6)

    def test_timed_workload_roundtrip(self, tmp_path):
        path = tmp_path / "burst.pcap"
        schedule = bursty_arrivals(synthetic_flows(4, seed=2), 5, 2, seed=2)
        write_pcap(path, [(t.time, t.packet) for t in schedule])
        trace = read_pcap(path)
        assert len(trace) == len(schedule)
        times = [t for t, _ in trace]
        assert times == sorted(times)

    def test_global_header_is_standard(self, tmp_path):
        path = tmp_path / "hdr.pcap"
        write_pcap(path, [])
        data = path.read_bytes()
        magic, major, minor = struct.unpack("!IHH", data[:8])
        assert magic == 0xA1B2C3D4
        assert (major, minor) == (2, 4)


class TestErrors:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.pcap"
        path.write_bytes(b"\x00" * 24)
        with pytest.raises(PcapError):
            read_pcap(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "short.pcap"
        path.write_bytes(b"\xa1\xb2")
        with pytest.raises(PcapError):
            read_pcap(path)

    def test_truncated_record(self, tmp_path):
        path = tmp_path / "cut.pcap"
        write_pcap(path, _packets()[:1])
        data = path.read_bytes()
        path.write_bytes(data[:-5])
        with pytest.raises(PcapError):
            read_pcap(path)


class TestReplay:
    def test_replay_into_router(self, tmp_path):
        path = tmp_path / "replay.pcap"
        packets = [make_udp("10.0.0.1", "20.0.0.1", 5000 + i, 53) for i in range(5)]
        write_pcap(path, [(0.1 * i, p) for i, p in enumerate(packets)])
        router = Router(flow_buckets=64)
        router.add_interface("atm0", prefix="10.0.0.0/8")
        router.add_interface("atm1", prefix="20.0.0.0/8")
        count = replay_into(router, read_pcap(path), iif="atm0")
        assert count == 5
        assert router.interface("atm1").tx_packets == 5
