"""Tests for the synthetic workload generators."""

import random

import pytest

from repro.aiu.dag import DagFilterTable
from repro.aiu.matchers import AmbiguousFilterError
from repro.aiu.records import FilterRecord
from repro.net.addresses import IPV6_WIDTH
from repro.workloads import (
    bursty_arrivals,
    heavy_tailed_train_lengths,
    matching_probe,
    pareto_on_off,
    poisson_arrivals,
    random_filters,
    round_robin_trains,
    scenario,
    scenario_names,
    synthetic_flows,
    table3_filters,
    table3_flows,
    zipf_flows,
)


class TestFlowGenerators:
    def test_table3_flows_shape(self):
        flows = table3_flows()
        assert len(flows) == 3
        packet = flows[0].packet()
        assert packet.length == 8192
        assert packet.protocol == 17

    def test_synthetic_flows_distinct(self):
        flows = synthetic_flows(50, seed=3)
        keys = {(f.src, f.src_port) for f in flows}
        assert len(keys) == 50

    def test_synthetic_flows_deterministic(self):
        assert synthetic_flows(10, seed=5) == synthetic_flows(10, seed=5)

    def test_synthetic_flows_v6(self):
        flows = synthetic_flows(5, seed=1, ipv6=True)
        assert all(":" in f.src for f in flows)
        assert flows[0].packet().is_ipv6

    def test_round_robin_interleaves(self):
        flows = table3_flows()
        packets = list(round_robin_trains(flows, 2))
        sources = [str(p.src) for p in packets]
        assert sources[:3] == ["10.0.0.1", "10.0.0.2", "10.0.0.3"]
        assert len(packets) == 6

    def test_round_robin_trains_mode(self):
        flows = table3_flows()
        packets = list(round_robin_trains(flows, 2, interleave=False))
        sources = [str(p.src) for p in packets]
        assert sources[:2] == ["10.0.0.1", "10.0.0.1"]

    def test_bursty_arrivals_have_trains(self):
        flows = synthetic_flows(4, seed=2)
        schedule = bursty_arrivals(flows, burst_length=10, bursts_per_flow=2, seed=2)
        assert len(schedule) == 4 * 2 * 10
        # Within a burst, consecutive packets share a flow.
        first_burst = schedule[:10]
        assert len({p.packet.src.value for p in first_burst}) == 1
        # Times increase monotonically.
        times = [p.time for p in schedule]
        assert times == sorted(times)

    def test_poisson_arrivals_bounded(self):
        flows = synthetic_flows(2, seed=1)
        schedule = poisson_arrivals(flows, duration=1.0, rate_pps=100, seed=4)
        assert all(0 <= p.time < 1.0 for p in schedule)
        assert 50 < len(schedule) < 200

    def test_pareto_on_off_bursty(self):
        flow = synthetic_flows(1, seed=1)[0]
        schedule = pareto_on_off(flow, duration=5.0, on_rate_pps=1000, seed=3)
        assert len(schedule) > 10
        gaps = [b.time - a.time for a, b in zip(schedule, schedule[1:])]
        # On/off structure: some gaps are much longer than the on-rate gap.
        assert max(gaps) > 10 * min(g for g in gaps if g > 0)


class TestAdversarialGenerators:
    def test_zipf_flows_popularity_ordering(self):
        """Destination popularity follows rank: the top destination
        attracts more flows than the tail."""
        flows = zipf_flows(300, destinations=16, alpha=1.1, seed=4)
        by_dst = {}
        for f in flows:
            by_dst[f.dst] = by_dst.get(f.dst, 0) + 1
        counts = sorted(by_dst.values(), reverse=True)
        assert counts[0] > counts[-1]
        assert counts[0] >= 300 / 16  # head is above uniform share

    def test_zipf_flows_distinct_and_deterministic(self):
        flows = zipf_flows(200, seed=9)
        keys = {(f.src, f.src_port, f.dst) for f in flows}
        assert len(keys) == 200
        assert zipf_flows(200, seed=9) == flows
        assert zipf_flows(200, seed=10) != flows

    def test_heavy_tailed_train_lengths_bounds(self):
        lengths = heavy_tailed_train_lengths(500, minimum=2, cap=100, seed=3)
        assert len(lengths) == 500
        assert all(2 <= n <= 100 for n in lengths)
        # Heavy tail: some trains are much longer than the typical one.
        lengths.sort()
        assert lengths[-1] >= 5 * lengths[len(lengths) // 2]

    def test_heavy_tailed_train_lengths_deterministic(self):
        assert heavy_tailed_train_lengths(50, seed=7) == heavy_tailed_train_lengths(50, seed=7)

    def test_scenario_registry(self):
        names = scenario_names()
        assert {"syn_flood", "cache_thrash", "flash_crowd", "filter_churn"} <= set(names)
        sc = scenario("syn_flood", seed=3)
        assert sc.warmup and sc.attack and sc.recovery
        times = [t for t, _p, _a in sc.warmup + sc.attack + sc.recovery]
        assert times == sorted(times)
        assert any(is_attack for _t, _p, is_attack in sc.attack)
        with pytest.raises(KeyError):
            scenario("no_such_attack")


class TestFilterSets:
    def test_count_and_determinism(self):
        a = random_filters(100, seed=9)
        b = random_filters(100, seed=9)
        assert len(a) == 100
        assert [str(f) for f in a] == [str(f) for f in b]

    def test_host_fraction_all_hosts(self):
        filters = random_filters(50, seed=1, host_fraction=1.0)
        assert all(f.is_fully_specified for f in filters)

    def test_v6_filters(self):
        filters = random_filters(20, width=IPV6_WIDTH, seed=1)
        assert all(f.src.width == IPV6_WIDTH for f in filters)

    def test_laminar_safety_installs_without_ambiguity(self):
        """The whole point of the catalogue: DAG install never raises."""
        table = DagFilterTable(width=32)
        for flt in random_filters(300, seed=11, host_fraction=0.3):
            table.install(FilterRecord(flt, gate="g"))
        assert len(table) == 300

    def test_matching_probe_matches(self):
        rng = random.Random(5)
        for flt in random_filters(50, seed=2, host_fraction=0.4):
            src, dst, proto, sport, dport = matching_probe(flt, rng)
            assert flt.src.is_wildcard or flt.src.matches(src)
            assert flt.dst.is_wildcard or flt.dst.matches(dst)
            assert flt.sport.matches(sport)
            assert flt.dport.matches(dport)
            if flt.protocol is not None:
                assert proto == flt.protocol

    def test_table3_filters_count(self):
        assert len(table3_filters()) == 16
