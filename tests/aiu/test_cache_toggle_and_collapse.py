"""Tests for the ablation knobs: flow cache off, wildcard collapsing."""

import pytest

from repro.aiu import AIU
from repro.aiu.dag import DagFilterTable
from repro.aiu.filters import Filter
from repro.aiu.records import FilterRecord
from repro.net.packet import make_udp
from repro.sim.cost import MemoryMeter

GATES = ("ip_options", "ip_security", "packet_scheduling")


def _pkt(i=1):
    return make_udp(f"10.0.0.{i}", "20.0.0.1", 5000 + i, 53, iif="atm0")


class TestFlowCacheToggle:
    def test_disabled_cache_classifies_every_packet(self):
        aiu = AIU(GATES, flow_buckets=64, use_flow_cache=False)
        aiu.create_filter("ip_security", "10.*, *, UDP", instance="sec")
        aiu.classify(_pkt(), "ip_security")
        aiu.classify(_pkt(), "ip_security")
        # Every packet does one filter lookup per populated gate.
        assert aiu.filter_lookups == 2
        assert len(aiu.flow_table) == 0

    def test_disabled_cache_still_returns_bindings(self):
        aiu = AIU(GATES, flow_buckets=64, use_flow_cache=False)
        aiu.create_filter("ip_security", "10.*, *, UDP", instance="sec")
        instance, record = aiu.classify(_pkt(), "ip_security")
        assert instance == "sec"
        assert record.slot(aiu.gate_index("ip_security")).instance == "sec"

    def test_disabled_cache_leaves_no_filter_backrefs(self):
        aiu = AIU(GATES, flow_buckets=64, use_flow_cache=False)
        filter_record = aiu.create_filter("ip_security", "10.*, *, UDP", instance="s")
        aiu.classify(_pkt(), "ip_security")
        assert filter_record.flows == set()

    def test_enabled_cache_default(self):
        aiu = AIU(GATES, flow_buckets=64)
        aiu.create_filter("ip_security", "10.*, *, UDP", instance="sec")
        aiu.classify(_pkt(), "ip_security")
        aiu.classify(_pkt(), "ip_security")
        assert aiu.flow_table.hits == 1


class TestNewFilterInvalidatesFlows:
    def test_more_specific_filter_takes_over_cached_flow(self):
        aiu = AIU(GATES, flow_buckets=64)
        aiu.create_filter("ip_security", "10.*, *, UDP", instance="broad")
        aiu.classify(_pkt(1), "ip_security")
        assert len(aiu.flow_table) == 1
        aiu.create_filter("ip_security", "10.0.0.1, *, UDP", instance="narrow")
        # The overlapping cached flow was purged...
        assert len(aiu.flow_table) == 0
        # ...and the next packet picks up the new binding.
        instance, _ = aiu.classify(_pkt(1), "ip_security")
        assert instance == "narrow"

    def test_unrelated_flows_keep_their_cache_entries(self):
        aiu = AIU(GATES, flow_buckets=64)
        aiu.create_filter("ip_security", "10.*, *, UDP", instance="broad")
        aiu.classify(_pkt(1), "ip_security")
        aiu.create_filter("ip_security", "99.0.0.0/8, *, UDP", instance="other")
        assert len(aiu.flow_table) == 1
        aiu.classify(_pkt(1), "ip_security")
        assert aiu.flow_table.hits == 1

    def test_iif_scoped_filter_only_purges_matching_iif(self):
        aiu = AIU(GATES, flow_buckets=64)
        aiu.create_filter("ip_security", "*, *, UDP", instance="x")
        aiu.classify(_pkt(1), "ip_security")           # iif=atm0
        aiu.create_filter("ip_security", "*, *, UDP, *, *, atm9", instance="y")
        assert len(aiu.flow_table) == 1                # different iif


class TestWildcardCollapse:
    def _tables(self):
        plain = DagFilterTable(width=32)
        collapsed = DagFilterTable(width=32, collapse_wildcards=True)
        flt = Filter.parse("10.0.0.0/8, *, UDP")   # ports + iif wildcard
        for table in (plain, collapsed):
            table.install(FilterRecord(flt, gate="g"))
        return plain, collapsed

    def test_same_result(self):
        plain, collapsed = self._tables()
        pkt = make_udp("10.1.2.3", "9.9.9.9", 1234, 80)
        assert plain.lookup(pkt).filter == collapsed.lookup(pkt).filter

    def test_fewer_accesses(self):
        plain, collapsed = self._tables()
        pkt = make_udp("10.1.2.3", "9.9.9.9", 1234, 80)
        meter_plain, meter_collapsed = MemoryMeter(), MemoryMeter()
        plain.lookup(pkt, meter_plain)
        collapsed.lookup(pkt, meter_collapsed)
        assert meter_collapsed.accesses < meter_plain.accesses
        # Both port probes skipped (the two wildcard-only port levels).
        assert meter_plain.breakdown()["port"] == 2
        assert "port" not in meter_collapsed.breakdown()

    def test_collapse_does_not_skip_branching_levels(self):
        collapsed = DagFilterTable(width=32, collapse_wildcards=True)
        collapsed.install(FilterRecord(Filter.parse("10.*, *, UDP, 53, *"), gate="g"))
        collapsed.install(FilterRecord(Filter.parse("10.*, *, UDP, 80, *"), gate="g"))
        dns = make_udp("10.1.1.1", "2.2.2.2", 53, 9)
        hit = collapsed.lookup(dns)
        assert hit is not None
        assert hit.filter.sport.low == 53
