"""Occupancy is an invariant, not a tendency: a bounded flow table never
holds more than ``max_flows`` records, whatever the traffic, eviction
policy, entry point, or overload tier does to it."""

import random

import pytest

from repro.core import Router
from repro.net.packet import make_udp

MAX_FLOWS = 48
PACKETS = 4000
BATCH = 32


def _router(policy, governed):
    router = Router(max_flows=MAX_FLOWS, flow_eviction=policy)
    router.add_interface("atm0", prefix="10.0.0.0/8")
    router.add_interface("atm1", prefix="20.0.0.0/8")
    if governed:
        # Tight sampling so the soak crosses every tier.
        router.attach_overload_governor(
            sample_interval=32, escalate_after=2, shed_after=2, recover_after=2
        )
    return router


def _hostile(rng):
    """Mostly-fresh tuples with a recurring minority: maximum churn."""
    if rng.random() < 0.25:
        flow = rng.randrange(16)
        return make_udp(
            f"10.0.0.{flow + 1}", "20.0.0.1", 5000 + flow, 9000, iif="atm0"
        )
    return make_udp(
        f"10.{rng.randrange(64)}.{rng.randrange(256)}.{rng.randrange(1, 255)}",
        f"20.0.0.{rng.randrange(1, 255)}",
        rng.randrange(1024, 65536), 9000, iif="atm0",
    )


@pytest.mark.parametrize("governed", [False, True], ids=["bare", "governed"])
@pytest.mark.parametrize("batched", [False, True], ids=["receive", "receive_batch"])
@pytest.mark.parametrize("policy", ["lru", "clock"])
def test_occupancy_never_exceeds_max_flows(policy, batched, governed):
    router = _router(policy, governed)
    table = router.aiu.flow_table
    rng = random.Random(13)
    pending = []
    for i in range(PACKETS):
        packet = _hostile(rng)
        now = i * 0.001
        if batched:
            pending.append(packet)
            if len(pending) == BATCH:
                router.receive_batch(pending, now=now)
                pending = []
        else:
            router.receive(packet, now=now)
        assert table.active <= MAX_FLOWS
        assert table.allocated <= MAX_FLOWS
    if pending:
        router.receive_batch(pending, now=PACKETS * 0.001)
    assert table.active <= MAX_FLOWS
    # The soak actually stressed the bound.
    assert table.evictions > 0 or (governed and router._overload.bypassed > 0)
    assert table.active > 0
