"""Tests for the hash-based flow table (§5.2)."""

import pytest

from repro.aiu.filters import Filter
from repro.aiu.flow_table import FlowTable
from repro.aiu.records import FilterRecord
from repro.net.packet import make_udp
from repro.sim.cost import Costs, CycleMeter, MemoryMeter


def _flow_packet(i, sport=1000):
    return make_udp(f"10.0.{i >> 8 & 255}.{i & 255}", "20.0.0.1", sport + i, 53)


@pytest.fixture
def table():
    return FlowTable(gate_count=3, buckets=1024, initial_records=4)


class TestLookupInstall:
    def test_miss_then_hit(self, table):
        pkt = _flow_packet(1)
        assert table.lookup(pkt) is None
        record = table.install(pkt)
        again = _flow_packet(1)
        assert table.lookup(again) is record
        assert table.stats()["hits"] == 1
        assert table.stats()["misses"] == 1

    def test_different_flows_do_not_collide_logically(self, table):
        a, b = _flow_packet(1), _flow_packet(2)
        record_a = table.install(a)
        table.install(b)
        assert table.lookup(_flow_packet(1)) is record_a

    def test_gate_slots_allocated(self, table):
        record = table.install(_flow_packet(1))
        assert len(record.slots) == 3
        # Slots are lazy: nothing is materialized until a gate touches
        # one, and materialized slots start empty.
        assert all(s is None or s.instance is None for s in record.slots)
        slot = record.slot(1)
        assert slot.instance is None and slot.filter_record is None
        assert record.slot(1) is slot

    def test_touch_updates_accounting(self, table):
        table.install(_flow_packet(1))
        table.lookup(_flow_packet(1), now=5.0)
        record = table.lookup(_flow_packet(1), now=9.0)
        assert record.packets == 2
        assert record.last_used == 9.0

    def test_v6_flows_supported(self, table):
        pkt = make_udp("2001:db8::1", "2001:db8::2", 5000, 53)
        record = table.install(pkt)
        assert table.lookup(make_udp("2001:db8::1", "2001:db8::2", 5000, 53)) is record


class TestCostAccounting:
    def test_lookup_charges_hash_and_bucket(self, table):
        meter, cycles = MemoryMeter(), CycleMeter()
        table.lookup(_flow_packet(1), meter, cycles)
        assert cycles.breakdown()["flow_hash"] == Costs.FLOW_HASH
        assert meter.breakdown()["flow_bucket"] == 1

    def test_hit_charges_chain_walk(self, table):
        table.install(_flow_packet(1))
        meter = MemoryMeter()
        table.lookup(_flow_packet(1), meter)
        assert meter.breakdown()["flow_chain"] >= 1


class TestPool:
    def test_initial_allocation(self):
        table = FlowTable(gate_count=1, buckets=64, initial_records=4)
        assert table.allocated == 4

    def test_exponential_growth(self):
        table = FlowTable(gate_count=1, buckets=64, initial_records=2)
        for i in range(7):
            table.install(_flow_packet(i))
        # 2, then +4, then +8 -> allocations follow 2,6,14...
        assert table.allocated >= 7
        assert table.allocated in (6, 14)

    def test_cap_triggers_lru_recycling(self):
        table = FlowTable(gate_count=1, buckets=64, initial_records=2, max_records=4)
        records = [table.install(_flow_packet(i), now=float(i)) for i in range(4)]
        # Refresh flow 0 so flow 1 is the LRU victim.
        table.lookup(_flow_packet(0), now=10.0)
        table.install(_flow_packet(99), now=11.0)
        assert table.recycled == 1
        assert table.lookup(_flow_packet(1)) is None      # victim gone
        assert table.lookup(_flow_packet(0)) is records[0]  # survivor

    def test_recycle_notifies_on_remove(self):
        table = FlowTable(gate_count=1, buckets=64, initial_records=1, max_records=1)
        removed = []
        table.on_remove = removed.append
        first = table.install(_flow_packet(0))
        table.install(_flow_packet(1))
        assert removed == [first]


class TestInvalidation:
    def test_invalidate_single_flow(self, table):
        record = table.install(_flow_packet(1))
        table.invalidate(record)
        assert table.lookup(_flow_packet(1)) is None
        assert len(table) == 0

    def test_invalidate_filter_purges_derived_flows(self, table):
        filter_record = FilterRecord(Filter.parse("10.*, *, UDP"), gate="g")
        flows = []
        for i in range(3):
            record = table.install(_flow_packet(i))
            record.slot(0).filter_record = filter_record
            filter_record.flows.add(record)
            flows.append(record)
        other = table.install(_flow_packet(50))
        table.invalidate_filter(filter_record)
        assert len(table) == 1
        assert table.lookup(_flow_packet(50)) is other

    def test_expire_idle(self, table):
        table.install(_flow_packet(1), now=0.0)
        table.install(_flow_packet(2), now=0.0)
        table.lookup(_flow_packet(1), now=50.0)
        removed = table.expire_idle(now=60.0, max_idle=30.0)
        assert removed == 1
        assert table.lookup(_flow_packet(1)) is not None
        assert table.lookup(_flow_packet(2)) is None

    def test_freed_records_are_reused(self):
        table = FlowTable(gate_count=1, buckets=64, initial_records=1)
        record = table.install(_flow_packet(1))
        table.invalidate(record)
        table.install(_flow_packet(2))
        assert table.allocated == 1  # reused from the free list


class TestIteration:
    def test_iterates_mru_first(self, table):
        table.install(_flow_packet(1), now=1.0)
        table.install(_flow_packet(2), now=2.0)
        table.lookup(_flow_packet(1), now=3.0)
        order = [r.key.sport for r in table]
        assert order[0] == 1000 + 1

    def test_bucket_count_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            FlowTable(gate_count=1, buckets=1000)

    def test_chain_length_diagnostic(self, table):
        pkt = _flow_packet(1)
        assert table.chain_length(pkt) == 0
        table.install(pkt)
        assert table.chain_length(_flow_packet(1)) == 1


class TestClockEviction:
    """The second-chance reclaim policy (``evict_policy="clock"``)."""

    def _capped(self, policy):
        return FlowTable(
            gate_count=1, buckets=64, initial_records=2,
            max_records=2, evict_policy=policy,
        )

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            FlowTable(gate_count=1, buckets=64, evict_policy="fifo")

    def test_second_chance_spares_referenced_record(self):
        table = self._capped("clock")
        a = table.install(_flow_packet(0), now=0.0)
        table.install(_flow_packet(1), now=1.0)
        table.lookup(_flow_packet(0), now=2.0)      # marks a referenced
        table.install(_flow_packet(2), now=3.0)
        assert table.lookup(_flow_packet(0)) is a   # spared by its ref bit
        assert table.lookup(_flow_packet(1)) is None  # unreferenced victim
        assert table.recycled == 1
        assert table.stats()["evictions"] == 1

    def test_full_rotation_clears_all_ref_bits(self):
        table = self._capped("clock")
        table.install(_flow_packet(0))
        b = table.install(_flow_packet(1))
        table.lookup(_flow_packet(0))
        table.lookup(_flow_packet(1))    # every record referenced
        table.install(_flow_packet(2))
        # One full rotation clears both bits, then the hand takes the
        # record it started on — the oldest install.
        assert b.ref is False
        assert table.lookup(_flow_packet(0)) is None
        assert table.lookup(_flow_packet(1)) is b

    def test_policies_choose_different_victims(self):
        """Same access sequence, divergent survivors: LRU reorders on
        every hit, clock only marks.  After install A, B; hit B; hit A;
        install C — LRU evicts B (recency tail) while the clock hand
        sweeps past both marked records and lands back on A."""
        survivors = {}
        for policy in ("lru", "clock"):
            table = self._capped(policy)
            table.install(_flow_packet(0), now=0.0)
            table.install(_flow_packet(1), now=1.0)
            table.lookup(_flow_packet(1), now=2.0)
            table.lookup(_flow_packet(0), now=3.0)
            table.install(_flow_packet(2), now=4.0)
            survivors[policy] = {
                i for i in (0, 1) if table.lookup(_flow_packet(i), now=5.0)
            }
        assert survivors["lru"] == {0}
        assert survivors["clock"] == {1}

    def test_clock_victim_recycles_through_the_pool(self):
        table = self._capped("clock")
        removed = []
        table.on_remove = removed.append
        first = table.install(_flow_packet(0))
        table.install(_flow_packet(1))
        table.install(_flow_packet(2))
        assert removed == [first]
        assert table.allocated == 2      # capped: no growth, pure reuse
