"""Tests for filter six-tuples, port specs, and flow keys."""

import pytest
from hypothesis import given, strategies as st

from repro.aiu.filters import Filter, FilterError, FlowKey, PortSpec
from repro.net.headers import PROTO_TCP, PROTO_UDP
from repro.net.packet import make_tcp, make_udp


class TestPortSpec:
    def test_wildcard(self):
        spec = PortSpec.parse("*")
        assert spec.is_wildcard
        assert spec.matches(0)
        assert spec.matches(65535)
        assert spec.specificity == 0

    def test_exact(self):
        spec = PortSpec.parse("80")
        assert spec.is_exact
        assert spec.matches(80)
        assert not spec.matches(81)
        assert spec.specificity == 65535

    def test_range(self):
        spec = PortSpec.parse("0-1023")
        assert spec.matches(0)
        assert spec.matches(1023)
        assert not spec.matches(1024)
        assert 0 < spec.specificity < 65535

    def test_covers(self):
        assert PortSpec.parse("*").covers(PortSpec.parse("80"))
        assert PortSpec.parse("0-1023").covers(PortSpec.parse("22"))
        assert not PortSpec.parse("80").covers(PortSpec.parse("0-1023"))

    def test_partial_overlap(self):
        a, b = PortSpec(10, 20), PortSpec(15, 30)
        assert a.partially_overlaps(b)
        assert not a.partially_overlaps(PortSpec(12, 18))  # contained
        assert not a.partially_overlaps(PortSpec(21, 30))  # disjoint

    @pytest.mark.parametrize("bad", ["70000", "-1", "20-10", "a-b", "x"])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(FilterError):
            PortSpec.parse(bad)

    def test_str_roundtrip(self):
        for text in ["*", "80", "0-1023"]:
            assert str(PortSpec.parse(text)) == text


class TestFilterParse:
    def test_paper_example(self):
        # §3: <129.*.*.*, 192.94.233.10, TCP, *, *, *>
        flt = Filter.parse("<129.*.*.*, 192.94.233.10, TCP, *, *, *>")
        assert flt.src.length == 8
        assert flt.dst.is_host
        assert flt.protocol == PROTO_TCP
        assert flt.sport.is_wildcard and flt.dport.is_wildcard
        assert flt.iif is None

    def test_short_form_pads_with_wildcards(self):
        flt = Filter.parse("10.0.0.0/8, *")
        assert flt.src.length == 8
        assert flt.dst.is_wildcard
        assert flt.protocol is None

    def test_interface_field(self):
        flt = Filter.parse("*, *, UDP, *, *, atm0")
        assert flt.iif == "atm0"

    def test_too_many_fields(self):
        with pytest.raises(FilterError):
            Filter.parse("*,*,*,*,*,*,*")

    def test_family_mismatch_rejected(self):
        with pytest.raises(FilterError):
            Filter.parse("10.0.0.0/8, 2001:db8::1")

    def test_str_renders_paper_notation(self):
        text = "<129.0.0.0/8, 192.94.233.10/32, 6, *, *, *>"
        assert str(Filter.parse(text)) == text


class TestFilterMatch:
    def test_table1_filter1(self):
        flt = Filter.parse("129.*, 192.94.233.10, TCP")
        assert flt.matches(make_tcp("129.1.2.3", "192.94.233.10", 1, 2))
        assert not flt.matches(make_udp("129.1.2.3", "192.94.233.10", 1, 2))
        assert not flt.matches(make_tcp("130.1.2.3", "192.94.233.10", 1, 2))

    def test_port_constraints(self):
        flt = Filter.parse("*, *, TCP, 1024-65535, 80")
        assert flt.matches(make_tcp("1.1.1.1", "2.2.2.2", 5000, 80))
        assert not flt.matches(make_tcp("1.1.1.1", "2.2.2.2", 500, 80))
        assert not flt.matches(make_tcp("1.1.1.1", "2.2.2.2", 5000, 81))

    def test_iif_constraint(self):
        flt = Filter.parse("*, *, *, *, *, atm0")
        assert flt.matches(make_udp("1.1.1.1", "2.2.2.2", 1, 2, iif="atm0"))
        assert not flt.matches(make_udp("1.1.1.1", "2.2.2.2", 1, 2, iif="atm1"))

    def test_family_gating(self):
        v4 = Filter.parse("10.0.0.0/8, *")
        assert not v4.matches(make_udp("2001:db8::1", "2001:db8::2", 1, 2))

    def test_wildcard_filter_matches_both_families(self):
        flt = Filter()
        assert flt.matches(make_udp("1.1.1.1", "2.2.2.2", 1, 2))
        assert flt.matches(make_udp("2001:db8::1", "2001:db8::2", 1, 2))

    def test_for_flow_is_fully_specified_and_matches(self):
        pkt = make_udp("10.0.0.1", "10.0.0.2", 5000, 53, iif="atm0")
        flt = Filter.for_flow(pkt)
        assert flt.is_fully_specified
        assert flt.matches(pkt)


class TestFilterOrdering:
    def test_specificity_is_lexicographic_by_level(self):
        host_src = Filter.parse("10.0.0.1, *")
        net_src_host_dst = Filter.parse("10.0.0.0/8, 20.0.0.1")
        # A /32 source dominates any destination specificity.
        assert host_src.specificity() > net_src_host_dst.specificity()

    def test_table1_filter2_more_specific_than_filter4(self):
        f2 = Filter.parse("128.252.153.1, 128.252.153.7, UDP")
        f4 = Filter.parse("128.252.153.*, *, UDP")
        assert f2.specificity() > f4.specificity()
        assert f4.covers(f2)
        assert not f2.covers(f4)

    def test_disjoint_filters_do_not_cover(self):
        f1 = Filter.parse("129.*, 192.94.233.10, TCP")
        f4 = Filter.parse("128.252.153.*, *, UDP")
        assert not f1.covers(f4)
        assert not f4.covers(f1)

    def test_wildcard_covers_everything(self):
        top = Filter()
        specific = Filter.parse("10.1.1.1, 10.2.2.2, TCP, 80, 80, atm0")
        assert top.covers(specific)


class TestFlowKey:
    def test_of_packet(self):
        pkt = make_udp("10.0.0.1", "10.0.0.2", 5000, 53, iif="atm0")
        key = FlowKey.of(pkt)
        assert key.matches_packet(pkt)
        assert key.iif == "atm0"

    def test_distinguishes_flows(self):
        a = FlowKey.of(make_udp("10.0.0.1", "10.0.0.2", 5000, 53))
        other = make_udp("10.0.0.1", "10.0.0.2", 5001, 53)
        assert not a.matches_packet(other)

    def test_hash_index_in_range(self):
        key = FlowKey.of(make_udp("10.0.0.1", "10.0.0.2", 5000, 53))
        assert 0 <= key.hash_index(32767) <= 32767

    def test_hash_index_v6(self):
        key = FlowKey.of(make_udp("2001:db8::1", "2001:db8::2", 5000, 53))
        assert 0 <= key.hash_index(32767) <= 32767


@given(
    low=st.integers(0, 65535),
    high=st.integers(0, 65535),
    probe=st.integers(0, 65535),
)
def test_portspec_match_matches_interval(low, high, probe):
    if low > high:
        low, high = high, low
    spec = PortSpec(low, high)
    assert spec.matches(probe) == (low <= probe <= high)


@given(
    a_low=st.integers(0, 100), a_len=st.integers(0, 100),
    b_low=st.integers(0, 100), b_len=st.integers(0, 100),
)
def test_portspec_overlap_symmetry(a_low, a_len, b_low, b_len):
    a = PortSpec(a_low, a_low + a_len)
    b = PortSpec(b_low, b_low + b_len)
    assert a.overlaps(b) == b.overlaps(a)
    assert a.partially_overlaps(b) == b.partially_overlaps(a)
    if a.covers(b) and b.covers(a):
        assert a == b
