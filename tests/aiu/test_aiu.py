"""Tests for the AIU facade: classification, FIX caching, bindings."""

import pytest

from repro.aiu import AIU, AmbiguousFilterError, Filter, GateError
from repro.net.packet import make_tcp, make_udp

GATES = ("options", "security", "scheduling")


class _FakeInstance:
    """Stands in for a plugin instance; records AIU callbacks."""

    def __init__(self, name):
        self.name = name
        self.flows_created = []
        self.flows_removed = []

    def on_flow_created(self, record, slot):
        self.flows_created.append(record)

    def on_flow_removed(self, record, slot):
        self.flows_removed.append(record)


@pytest.fixture
def aiu():
    return AIU(GATES, flow_buckets=1024, initial_records=8)


def _pkt(i=1, **kwargs):
    return make_udp(f"10.0.0.{i}", "20.0.0.1", 5000 + i, 53, **kwargs)


class TestControlPath:
    def test_create_filter_accepts_paper_notation(self, aiu):
        record = aiu.create_filter("security", "<129.*, 192.94.233.10, TCP, *, *, *>")
        assert record.gate == "security"
        assert aiu.filter_count("security") == 1

    def test_unknown_gate_rejected(self, aiu):
        with pytest.raises(GateError):
            aiu.create_filter("nope", "*")

    def test_bind_sets_instance(self, aiu):
        inst = _FakeInstance("sec2")
        record = aiu.create_filter("security", "10.*, *, UDP")
        aiu.bind(record, inst)
        assert record.instance is inst

    def test_remove_filter(self, aiu):
        record = aiu.create_filter("security", "10.*, *, UDP", instance=_FakeInstance("x"))
        assert aiu.remove_filter(record)
        assert not aiu.remove_filter(record)
        assert aiu.filter_count("security") == 0

    def test_ambiguous_filter_rolls_back_cleanly(self, aiu):
        aiu.create_filter("security", "10.*, *, UDP, 10-20, *")
        with pytest.raises(AmbiguousFilterError):
            aiu.create_filter("security", "10.1.0.0/16, *, UDP, 15-25, *")
        assert aiu.filter_count("security") == 1


class TestDataPath:
    def test_uncached_classification_fills_all_gates(self, aiu):
        sec = _FakeInstance("sec")
        sched = _FakeInstance("sched")
        aiu.create_filter("security", "10.*, *, UDP", instance=sec)
        aiu.create_filter("scheduling", "*, *, UDP", instance=sched)
        pkt = _pkt()
        instance, record = aiu.classify(pkt, "security")
        assert instance is sec
        assert pkt.fix is record
        # One flow entry covers every gate (§3.2: "n filter table lookups
        # to create a single entry").
        assert record.slot(aiu.gate_index("scheduling")).instance is sched
        assert record.slot(aiu.gate_index("options")).instance is None

    def test_cached_flow_skips_filter_lookups(self, aiu):
        aiu.create_filter("security", "10.*, *, UDP", instance=_FakeInstance("s"))
        aiu.classify(_pkt(), "security")
        lookups_after_first = aiu.filter_lookups
        aiu.classify(_pkt(), "security")
        assert aiu.filter_lookups == lookups_after_first
        assert aiu.flow_table.hits == 1

    def test_instance_for_uses_fix(self, aiu):
        sched = _FakeInstance("sched")
        aiu.create_filter("scheduling", "*, *, UDP", instance=sched)
        pkt = _pkt()
        aiu.classify(pkt, "security")
        assert aiu.instance_for(pkt, "scheduling") is sched

    def test_instance_for_without_fix_classifies(self, aiu):
        sched = _FakeInstance("sched")
        aiu.create_filter("scheduling", "*, *, UDP", instance=sched)
        pkt = _pkt()
        assert aiu.instance_for(pkt, "scheduling") is sched
        assert pkt.fix is not None

    def test_on_flow_created_callback(self, aiu):
        inst = _FakeInstance("cb")
        aiu.create_filter("scheduling", "*, *, UDP", instance=inst)
        _, record = aiu.classify(_pkt(), "scheduling")
        assert inst.flows_created == [record]

    def test_most_specific_filter_wins_per_gate(self, aiu):
        broad = _FakeInstance("broad")
        narrow = _FakeInstance("narrow")
        aiu.create_filter("security", "*, *, UDP", instance=broad)
        aiu.create_filter("security", "10.0.0.1, *, UDP", instance=narrow)
        instance, _ = aiu.classify(_pkt(1), "security")
        assert instance is narrow
        instance2, _ = aiu.classify(make_udp("11.0.0.1", "2.2.2.2", 1, 1), "security")
        assert instance2 is broad

    def test_v6_packets_classified_separately(self, aiu):
        v6inst = _FakeInstance("v6")
        aiu.create_filter("security", "2001:db8::/32, *", instance=v6inst)
        pkt = make_udp("2001:db8::1", "2001:db8::2", 1, 2)
        instance, _ = aiu.classify(pkt, "security")
        assert instance is v6inst
        v4, _ = aiu.classify(_pkt(), "security")
        assert v4 is None

    def test_family_wildcard_filter_matches_both(self, aiu):
        both = _FakeInstance("both")
        aiu.create_filter("security", "*, *, UDP", instance=both)
        a, _ = aiu.classify(_pkt(), "security")
        b, _ = aiu.classify(make_udp("2001:db8::1", "2001:db8::2", 1, 2), "security")
        assert a is both and b is both

    def test_tcp_and_udp_flows_are_distinct(self, aiu):
        udp = _FakeInstance("udp")
        aiu.create_filter("security", "*, *, UDP", instance=udp)
        t = make_tcp("10.0.0.1", "20.0.0.1", 5001, 53)
        instance, _ = aiu.classify(t, "security")
        assert instance is None


class TestInvalidation:
    def test_remove_filter_purges_cached_flows(self, aiu):
        inst = _FakeInstance("x")
        record = aiu.create_filter("security", "10.*, *, UDP", instance=inst)
        aiu.classify(_pkt(), "security")
        assert len(aiu.flow_table) == 1
        aiu.remove_filter(record)
        assert len(aiu.flow_table) == 0
        # Re-classification now finds nothing.
        instance, _ = aiu.classify(_pkt(), "security")
        assert instance is None

    def test_rebind_invalidates_cached_flows(self, aiu):
        old = _FakeInstance("old")
        new = _FakeInstance("new")
        record = aiu.create_filter("security", "10.*, *, UDP", instance=old)
        aiu.classify(_pkt(), "security")
        aiu.bind(record, new)
        instance, _ = aiu.classify(_pkt(), "security")
        assert instance is new

    def test_flow_removal_notifies_instances(self, aiu):
        inst = _FakeInstance("x")
        aiu.create_filter("security", "10.*, *, UDP", instance=inst)
        _, record = aiu.classify(_pkt(), "security")
        aiu.flow_table.invalidate(record)
        assert inst.flows_removed == [record]


class TestConfiguration:
    def test_linear_table_kind(self):
        aiu = AIU(GATES, table_kind="linear", flow_buckets=64)
        inst = _FakeInstance("x")
        aiu.create_filter("security", "10.*, *, UDP", instance=inst)
        instance, _ = aiu.classify(_pkt(), "security")
        assert instance is inst

    def test_unknown_table_kind(self):
        with pytest.raises(ValueError):
            AIU(GATES, table_kind="nope")

    def test_duplicate_gates_rejected(self):
        with pytest.raises(ValueError):
            AIU(("a", "a"))

    def test_empty_gates_rejected(self):
        with pytest.raises(ValueError):
            AIU(())

    def test_stats(self, aiu):
        aiu.create_filter("security", "10.*, *, UDP")
        aiu.classify(_pkt(), "security")
        stats = aiu.stats()
        assert stats["filters"] == 1
        assert stats["misses"] == 1
        assert stats["filter_lookups"] >= 1
