"""Corner cases of filter semantics the six-tuple model implies."""

import pytest

from repro.aiu import AIU
from repro.aiu.dag import DagFilterTable
from repro.aiu.filters import Filter, PortSpec
from repro.aiu.records import FilterRecord
from repro.net.addresses import IPV6_WIDTH
from repro.net.packet import make_tcp, make_udp

GATES = ("ip_options", "ip_security", "packet_scheduling")


class TestFilterCornerCases:
    def test_port_zero_is_a_real_value(self):
        """Portless protocols classify with port 0; an exact-0 filter
        matches them, a 1-65535 range does not."""
        exact_zero = Filter.parse("*, *, *, 0, 0")
        nonzero = Filter.parse("*, *, *, 1-65535, 1-65535")
        from repro.net.packet import Packet
        from repro.net.addresses import IPAddress

        icmp = Packet(src=IPAddress.parse("1.1.1.1"),
                      dst=IPAddress.parse("2.2.2.2"), protocol=1)
        assert exact_zero.matches(icmp)
        assert not nonzero.matches(icmp)

    def test_default_filter_matches_everything(self):
        flt = Filter()
        assert flt.matches(make_udp("1.2.3.4", "5.6.7.8", 9, 10))
        assert flt.matches(make_tcp("2001:db8::1", "2001:db8::2", 1, 2))

    def test_filter_equality_and_hash(self):
        a = Filter.parse("10.*, *, UDP, 53, *")
        b = Filter.parse("10.0.0.0/8, *, 17, 53, *")
        assert a == b
        assert hash(a) == hash(b)

    def test_specificity_total_order_examples(self):
        ordered = [
            Filter.parse("10.0.0.1, 20.0.0.1, UDP, 53, 53, atm0"),
            Filter.parse("10.0.0.1, 20.0.0.1, UDP, 53, 53"),
            Filter.parse("10.0.0.1, 20.0.0.1, UDP"),
            Filter.parse("10.0.0.1, 20.0.0.0/8"),
            Filter.parse("10.0.0.0/8, *"),
            Filter(),
        ]
        keys = [f.specificity() for f in ordered]
        assert keys == sorted(keys, reverse=True)

    def test_portspec_exact_covers_itself_only(self):
        spec = PortSpec.exact(80)
        assert spec.covers(spec)
        assert not spec.covers(PortSpec.exact(81))

    def test_v6_dag_paper_style_walk(self):
        """The Table 1 walk transposed to IPv6."""
        table = DagFilterTable(width=IPV6_WIDTH)
        f1 = FilterRecord(Filter.parse("2001:db8::/32, 2001:db8:ff::1, TCP"), "g")
        f2 = FilterRecord(
            Filter.parse("2001:db8:1::1, 2001:db8:2::7, UDP"), "g"
        )
        f4 = FilterRecord(Filter.parse("2001:db8:1::/48, *, UDP"), "g")
        for record in (f1, f2, f4):
            table.install(record)
        exact = make_udp("2001:db8:1::1", "2001:db8:2::7", 1, 2)
        assert table.lookup(exact) is f2
        subnet = make_udp("2001:db8:1::99", "9::9", 1, 2)
        assert table.lookup(subnet) is f4


class TestAiuCornerCases:
    def test_remove_dual_family_filter_cleans_both_tables(self):
        aiu = AIU(GATES, flow_buckets=64)
        record = aiu.create_filter("ip_security", "*, *, UDP", instance="x")
        # Classify one packet per family so both tables were exercised.
        v4 = make_udp("10.0.0.1", "20.0.0.1", 1, 2)
        v6 = make_udp("2001:db8::1", "2001:db8::2", 1, 2)
        assert aiu.classify(v4, "ip_security")[0] == "x"
        assert aiu.classify(v6, "ip_security")[0] == "x"
        assert aiu.remove_filter(record)
        assert aiu.filter_count() == 0
        assert aiu.classify(make_udp("10.0.0.2", "20.0.0.1", 1, 2),
                            "ip_security")[0] is None
        assert aiu.classify(make_udp("2001:db8::3", "2001:db8::2", 1, 2),
                            "ip_security")[0] is None

    def test_priority_rebinding_order(self):
        aiu = AIU(GATES, flow_buckets=64)
        aiu.create_filter("ip_security", "*, *, UDP", instance="low", priority=0)
        aiu.create_filter("ip_security", "*, *, UDP", instance="high", priority=9)
        pkt = make_udp("10.0.0.1", "20.0.0.1", 1, 2)
        assert aiu.classify(pkt, "ip_security")[0] == "high"

    def test_same_filter_different_gates_are_independent(self):
        aiu = AIU(GATES, flow_buckets=64)
        aiu.create_filter("ip_security", "10.*, *, UDP", instance="sec")
        aiu.create_filter("packet_scheduling", "10.*, *, UDP", instance="sched")
        pkt = make_udp("10.0.0.1", "20.0.0.1", 1, 2)
        _, record = aiu.classify(pkt, "ip_security")
        assert record.slot(aiu.gate_index("ip_security")).instance == "sec"
        assert record.slot(aiu.gate_index("packet_scheduling")).instance == "sched"
        assert record.slot(aiu.gate_index("ip_options")).instance is None
