"""Tests for the IPv6 flow-label hashing fast path."""

import pytest

from repro.aiu.flow_table import FlowTable
from repro.net.packet import make_udp
from repro.sim.cost import Costs, CycleMeter


def _v6(label, i=1):
    return make_udp(f"2001:db8::{i:x}", "2001:db8::ff", 5000 + i, 53,
                    flow_label=label)


class TestFlowLabelHashing:
    def test_label_hash_is_cheaper(self):
        table = FlowTable(gate_count=1, buckets=1024, use_flow_label=True)
        table.install(_v6(0x12345))
        cycles = CycleMeter()
        table.lookup(_v6(0x12345), cycles=cycles)
        assert cycles.breakdown()["flow_hash"] == Costs.FLOW_LABEL_HASH

    def test_label_zero_falls_back_to_five_tuple(self):
        table = FlowTable(gate_count=1, buckets=1024, use_flow_label=True)
        table.install(_v6(0))
        cycles = CycleMeter()
        assert table.lookup(_v6(0), cycles=cycles) is not None
        assert cycles.breakdown()["flow_hash"] == Costs.FLOW_HASH

    def test_v4_always_uses_five_tuple(self):
        table = FlowTable(gate_count=1, buckets=1024, use_flow_label=True)
        pkt = make_udp("10.0.0.1", "20.0.0.1", 5000, 53)
        table.install(pkt)
        cycles = CycleMeter()
        assert table.lookup(make_udp("10.0.0.1", "20.0.0.1", 5000, 53),
                            cycles=cycles) is not None
        assert cycles.breakdown()["flow_hash"] == Costs.FLOW_HASH

    def test_lookup_finds_label_installed_flow(self):
        table = FlowTable(gate_count=1, buckets=1024, use_flow_label=True)
        record = table.install(_v6(0x54321))
        assert table.lookup(_v6(0x54321)) is record

    def test_colliding_labels_disambiguated_by_five_tuple(self):
        """Two flows sharing (src, label) still resolve correctly."""
        table = FlowTable(gate_count=1, buckets=1024, use_flow_label=True)
        a = _v6(0x11111, i=1)
        b = make_udp("2001:db8::1", "2001:db8::ee", 7000, 53, flow_label=0x11111)
        record_a = table.install(a)
        record_b = table.install(b)
        assert table.lookup(_v6(0x11111, i=1)) is record_a
        again_b = make_udp("2001:db8::1", "2001:db8::ee", 7000, 53,
                           flow_label=0x11111)
        assert table.lookup(again_b) is record_b

    def test_disabled_by_default(self):
        table = FlowTable(gate_count=1, buckets=1024)
        table.install(_v6(0x12345))
        cycles = CycleMeter()
        table.lookup(_v6(0x12345), cycles=cycles)
        assert cycles.breakdown()["flow_hash"] == Costs.FLOW_HASH
