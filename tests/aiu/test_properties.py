"""Property-based tests on AIU invariants under randomized operation
sequences — install/remove interleavings against the linear oracle, flow
table accounting, and scheduler conservation laws."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.aiu.dag import DagFilterTable
from repro.aiu.filters import Filter
from repro.aiu.flow_table import FlowTable
from repro.aiu.linear import LinearFilterTable
from repro.aiu.matchers import AmbiguousFilterError
from repro.aiu.records import FilterRecord
from repro.core.plugin import PluginContext
from repro.net.packet import make_tcp, make_udp
from repro.sched.drr import DrrPlugin
from repro.workloads import random_filters, synthetic_flows

# ---------------------------------------------------------------------------
# DAG vs linear oracle under interleaved installs and removals.
# ---------------------------------------------------------------------------
_ops = st.lists(
    st.tuples(
        st.sampled_from(["install", "remove", "lookup"]),
        st.integers(0, 30),        # which filter / probe index
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=60, deadline=None)
@given(ops=_ops, seed=st.integers(0, 1000))
def test_dag_matches_oracle_under_mutation(ops, seed):
    pool = random_filters(31, seed=seed, host_fraction=0.5)
    rng = random.Random(seed)
    probes = [
        make_udp(
            f"10.{rng.randrange(256)}.{rng.randrange(256)}.{rng.randrange(256)}",
            f"20.{rng.randrange(256)}.0.1",
            rng.randrange(1024, 65535),
            rng.choice([53, 80, 443, 9000]),
            iif=rng.choice(["atm0", "atm1"]),
        )
        for _ in range(31)
    ]
    dag = DagFilterTable(width=32)
    linear = LinearFilterTable(width=32)
    records = {}
    for op, index in ops:
        flt = pool[index % len(pool)]
        if op == "install":
            if index in records:
                continue
            record = FilterRecord(flt, gate="g")
            try:
                dag.install(record)
            except AmbiguousFilterError:
                continue
            linear.install(record)
            records[index] = record
        elif op == "remove":
            record = records.pop(index, None)
            if record is not None:
                assert dag.remove(record)
                assert linear.remove(record)
        else:
            probe = probes[index % len(probes)]
            dag_hit = dag.lookup(probe)
            linear_hit = linear.lookup(probe)
            if linear_hit is None:
                assert dag_hit is None
            else:
                assert dag_hit is not None
                assert dag_hit.sort_key() == linear_hit.sort_key()
    # Final sweep: full agreement on every probe.
    for probe in probes:
        assert set(dag.lookup_all(probe)) == set(linear.lookup_all(probe))


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), collapse=st.booleans())
def test_collapse_optimization_is_semantically_invisible(seed, collapse):
    """§5.1.2 node collapsing changes access counts, never results."""
    filters = random_filters(24, seed=seed, host_fraction=0.4)
    plain = DagFilterTable(width=32)
    optimized = DagFilterTable(width=32, collapse_wildcards=True)
    for flt in filters:
        try:
            plain.install(FilterRecord(flt, gate="g"))
            optimized.install(FilterRecord(flt, gate="g"))
        except AmbiguousFilterError:
            continue
    rng = random.Random(seed)
    for _ in range(15):
        probe = make_udp(
            f"10.{rng.randrange(256)}.0.{rng.randrange(256)}",
            f"20.{rng.randrange(256)}.0.1",
            rng.randrange(65536),
            rng.randrange(65536),
        )
        a = plain.lookup(probe)
        b = optimized.lookup(probe)
        assert (a is None) == (b is None)
        if a is not None:
            assert a.sort_key() == b.sort_key()


# ---------------------------------------------------------------------------
# Flow table invariants under random operation sequences.
# ---------------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(st.tuples(st.sampled_from(["touch", "invalidate", "expire"]),
                           st.integers(0, 19)), max_size=80),
    cap=st.one_of(st.none(), st.integers(4, 32)),
)
def test_flow_table_invariants(ops, cap):
    table = FlowTable(gate_count=2, buckets=64, initial_records=4, max_records=cap)
    flows = synthetic_flows(20, seed=3)
    live = {}
    now = 0.0
    for op, index in ops:
        now += 1.0
        packet = flows[index].packet()
        if op == "touch":
            record = table.lookup(packet, now=now)
            if record is None:
                record = table.install(packet, now=now)
        elif op == "invalidate":
            record = table.lookup(packet, now=now)
            if record is not None:
                table.invalidate(record)
        else:
            table.expire_idle(now, max_idle=10.0)
        # Invariants:
        assert len(table) == sum(1 for _ in table)          # LRU list consistent
        if cap is not None:
            assert table.allocated <= cap
            assert len(table) <= cap
        seen_keys = set()
        for record in table:
            key = (record.key.src, record.key.sport)
            assert key not in seen_keys                     # no duplicate flows
            seen_keys.add(key)


@settings(max_examples=50, deadline=None)
@given(st.data())
def test_flow_table_lru_order_is_recency_order(data):
    table = FlowTable(gate_count=1, buckets=64, initial_records=4)
    flows = synthetic_flows(8, seed=9)
    touches = data.draw(st.lists(st.integers(0, 7), min_size=1, max_size=40))
    now = 0.0
    last_touch = {}
    for index in touches:
        now += 1.0
        packet = flows[index].packet()
        if table.lookup(packet, now=now) is None:
            table.install(packet, now=now)
        last_touch[index] = now
    order = [record.last_used for record in table]
    assert order == sorted(order, reverse=True)


# ---------------------------------------------------------------------------
# Scheduler conservation properties.
# ---------------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    arrivals=st.lists(st.tuples(st.integers(1, 6), st.integers(100, 1500)),
                      min_size=1, max_size=120),
    quantum=st.integers(300, 3000),
)
def test_drr_conservation(arrivals, quantum):
    """Packets in == packets out + backlog + drops; work conservation."""
    drr = DrrPlugin().create_instance(quantum=quantum, limit=16)
    accepted = 0
    for flow, size in arrivals:
        pkt = make_udp(f"10.0.0.{flow}", "20.0.0.1", 5000 + flow, 53,
                       payload_size=max(0, size - 28))
        verdict = drr.process(pkt, PluginContext())
        if verdict == "consumed":
            accepted += 1
    dequeued = 0
    while True:
        pkt = drr.dequeue(0.0)
        if pkt is None:
            break
        dequeued += 1
        assert dequeued <= accepted  # never invents packets
    # Work conservation: a backlogged DRR always dequeues until empty.
    assert dequeued == accepted
    assert drr.backlog() == 0
    assert drr.packets_queued == accepted
    assert drr.packets_dropped == len(arrivals) - accepted


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 999))
def test_drr_no_packet_reordering_within_flow(seed):
    rng = random.Random(seed)
    drr = DrrPlugin().create_instance(quantum=rng.choice([500, 1000, 1500]))
    sent = {flow: [] for flow in range(1, 4)}
    for _ in range(60):
        flow = rng.randrange(1, 4)
        pkt = make_udp(f"10.0.0.{flow}", "20.0.0.1", 5000 + flow, 53,
                       payload_size=rng.randrange(0, 1200))
        drr.process(pkt, PluginContext())
        sent[flow].append(pkt.packet_id)
    received = {flow: [] for flow in range(1, 4)}
    while True:
        pkt = drr.dequeue(0.0)
        if pkt is None:
            break
        received[pkt.src_port - 5000].append(pkt.packet_id)
    for flow in sent:
        assert received[flow] == sent[flow]
