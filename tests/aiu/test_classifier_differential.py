"""Seeded differential fuzz: compiled vs metered vs linear oracle.

The compiled slow path (``DagFilterTable.lookup_fast``) is a wall-clock
specialization of the metered walk (``DagFilterTable.lookup``); the
:class:`LinearFilterTable` is the brute-force correctness oracle that
handles any filter set.  These tests drive all three over seeded random
filter sets and probe traffic — including traffic aimed *at* the
installed filters, not just random misses — and assert exact agreement,
then churn the tables with interleaved installs/removals to prove the
epoch invalidation never serves a stale compiled result.
"""

import random

import pytest

from repro.aiu.dag import DagFilterTable
from repro.aiu.linear import LinearFilterTable
from repro.aiu.matchers import AmbiguousFilterError
from repro.aiu.records import FilterRecord
from repro.net.addresses import IPV4_WIDTH, IPV6_WIDTH, IPAddress
from repro.net.packet import Packet
from repro.workloads.filtersets import matching_probe, random_filters

SEEDS = (1, 7, 23, 99)


def _build_tables(filters, width):
    """Install ``filters`` into a DAG + linear pair; skip ambiguous ones."""
    dag = DagFilterTable(width=width)
    linear = LinearFilterTable(width=width)
    records = []
    for flt in filters:
        record = FilterRecord(flt, gate="g")
        try:
            dag.install(record)
        except AmbiguousFilterError:
            continue
        linear.install(record)
        records.append(record)
    assert records, "filter generator produced nothing installable"
    return dag, linear, records


def _probe_packets(filters, width, rng, per_filter=2, random_probes=64):
    """Packets matching installed filters plus uniform random traffic."""
    packets = []
    for flt in filters:
        for _ in range(per_filter):
            src, dst, protocol, sport, dport = matching_probe(flt, rng)
            packets.append(
                Packet(
                    src=IPAddress(src, width),
                    dst=IPAddress(dst, width),
                    protocol=protocol,
                    src_port=sport,
                    dst_port=dport,
                    iif=rng.choice(["atm0", "atm1", None]),
                )
            )
    for _ in range(random_probes):
        packets.append(
            Packet(
                src=IPAddress(rng.getrandbits(width), width),
                dst=IPAddress(rng.getrandbits(width), width),
                protocol=rng.choice((6, 17)),
                src_port=rng.randrange(65536),
                dst_port=rng.randrange(65536),
                iif=rng.choice(["atm0", "atm1", None]),
            )
        )
    return packets


def _assert_agree(dag, linear, packet):
    metered = dag.lookup(packet)
    compiled = dag.lookup_fast(packet)
    oracle = linear.lookup(packet)
    # sort keys are unique (the record seq breaks every tie), so matching
    # keys means the very same record object.
    assert compiled is metered, (
        f"compiled/metered divergence on {packet}: {compiled!r} != {metered!r}"
    )
    if oracle is None:
        assert metered is None, f"oracle miss but DAG hit {metered!r} on {packet}"
    else:
        assert metered is oracle, (
            f"DAG/oracle divergence on {packet}: {metered!r} != {oracle!r}"
        )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "width", [IPV4_WIDTH, IPV6_WIDTH], ids=["ipv4", "ipv6"]
)
def test_compiled_agrees_on_static_tables(seed, width):
    filters = random_filters(48, width=width, seed=seed, host_fraction=0.5)
    dag, linear, records = _build_tables(filters, width)
    rng = random.Random(seed * 1000 + 1)
    for packet in _probe_packets(
        [r.filter for r in records], width, rng
    ):
        _assert_agree(dag, linear, packet)


@pytest.mark.parametrize("seed", SEEDS)
def test_compiled_never_stale_under_churn(seed):
    """Interleave install/remove/lookup; the compiled path must track
    every mutation (per-table epoch) and never serve a removed filter or
    miss a newly installed one."""
    width = IPV4_WIDTH
    pool = random_filters(40, width=width, seed=seed, host_fraction=0.5)
    rng = random.Random(seed * 1000 + 2)
    probes = _probe_packets(pool, width, rng, per_filter=1, random_probes=16)
    dag = DagFilterTable(width=width)
    linear = LinearFilterTable(width=width)
    live = {}
    for step in range(300):
        op = rng.random()
        index = rng.randrange(len(pool))
        if op < 0.45:
            if index not in live:
                record = FilterRecord(pool[index], gate="g")
                try:
                    dag.install(record)
                except AmbiguousFilterError:
                    continue
                linear.install(record)
                live[index] = record
        elif op < 0.70:
            record = live.pop(index, None)
            if record is not None:
                assert dag.remove(record)
                assert linear.remove(record)
        else:
            _assert_agree(dag, linear, probes[rng.randrange(len(probes))])
    # Final sweep over every probe after the churn settles.
    for packet in probes:
        _assert_agree(dag, linear, packet)


def test_recompile_is_lazy_and_epoch_driven():
    """Mutations only bump the epoch; flattening happens on the next
    fast lookup, and an unchanged table is never recompiled."""
    dag = DagFilterTable(width=IPV4_WIDTH)
    record = FilterRecord(
        random_filters(1, seed=3, host_fraction=0.0)[0], gate="g"
    )
    dag.install(record)
    assert dag._compiled_epoch != dag.epoch  # not compiled yet
    packet = Packet(
        src=IPAddress(0, IPV4_WIDTH),
        dst=IPAddress(0, IPV4_WIDTH),
        protocol=17,
        src_port=1,
        dst_port=1,
    )
    dag.lookup_fast(packet)
    assert dag._compiled_epoch == dag.epoch
    root_before = dag._compiled_root
    dag.lookup_fast(packet)
    assert dag._compiled_root is root_before  # no recompile when clean
    assert dag.remove(record)
    assert dag._compiled_epoch != dag.epoch  # invalidated again
    assert dag.lookup_fast(packet) is dag.lookup(packet)
