"""Tests for the DAG set-pruning filter table, including the paper's
worked example (Table 1 / Figure 4) and property-based cross-checks
against the linear oracle."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.aiu.dag import DagFilterTable
from repro.aiu.filters import Filter, PortSpec
from repro.aiu.linear import LinearFilterTable
from repro.aiu.matchers import AmbiguousFilterError
from repro.aiu.records import FilterRecord
from repro.net.addresses import IPV6_WIDTH
from repro.net.packet import make_tcp, make_udp
from repro.sim.cost import MemoryMeter


def _install(table, spec, priority=0):
    record = FilterRecord(Filter.parse(spec), gate="test", priority=priority)
    table.install(record)
    return record


@pytest.fixture
def paper_table():
    """Table 1's four filters, installed in a DAG (Figure 4)."""
    table = DagFilterTable(width=32)
    records = {
        1: _install(table, "129.*, 192.94.233.10, TCP"),
        2: _install(table, "128.252.153.1, 128.252.153.7, UDP"),
        3: _install(table, "128.252.153.1, 128.252.153.7, TCP"),
        4: _install(table, "128.252.153.*, *, UDP"),
    }
    return table, records


class TestPaperExample:
    """Experiment E1: the §5.1.1 worked example, verbatim."""

    def test_triple_from_the_paper_matches_filter2(self, paper_table):
        table, records = paper_table
        # "<128.252.153.1, 128.252.154.7, UDP> ... returning filter 2"
        # (the paper's prose walks destination 128.252.154.7 through the
        # edge labelled 128.252.153.7 — a typo in the text; the DAG figure
        # and Table 1 use 128.252.153.7, which we reproduce).
        pkt = make_udp("128.252.153.1", "128.252.153.7", 1234, 80)
        assert table.lookup(pkt) is records[2]

    def test_tcp_variant_matches_filter3(self, paper_table):
        table, records = paper_table
        pkt = make_tcp("128.252.153.1", "128.252.153.7", 1234, 80)
        assert table.lookup(pkt) is records[3]

    def test_filter1_matches_network_traffic(self, paper_table):
        table, records = paper_table
        pkt = make_tcp("129.1.2.3", "192.94.233.10", 1, 2)
        assert table.lookup(pkt) is records[1]

    def test_filter4_catches_subnet_udp(self, paper_table):
        table, records = paper_table
        pkt = make_udp("128.252.153.99", "9.9.9.9", 1, 2)
        assert table.lookup(pkt) is records[4]

    def test_filter2_is_proper_subset_of_filter4(self, paper_table):
        table, records = paper_table
        # "filter 2 is a proper subset of filter 4": a packet matching
        # both must get filter 2 (the more specific one).
        pkt = make_udp("128.252.153.1", "128.252.153.7", 5, 5)
        matches = table.lookup_all(pkt)
        assert records[2] in matches
        assert records[4] in matches
        assert matches[0] is records[2]

    def test_no_match_returns_none(self, paper_table):
        table, _ = paper_table
        assert table.lookup(make_udp("1.2.3.4", "5.6.7.8", 1, 2)) is None


class TestSetPruningInvariant:
    def test_wildcard_filter_replicated_under_specific_edge(self):
        table = DagFilterTable(width=32)
        broad = _install(table, "*, *, UDP")
        specific = _install(table, "10.0.0.1, 10.0.0.2, UDP, 53, 53")
        # Packet matching both must land on a leaf containing both.
        pkt = make_udp("10.0.0.1", "10.0.0.2", 53, 53)
        assert table.lookup(pkt) is specific
        assert set(table.lookup_all(pkt)) == {broad, specific}
        # Packet matching only the broad filter.
        other = make_udp("99.0.0.1", "99.0.0.2", 1, 1)
        assert table.lookup(other) is broad

    def test_copy_down_on_later_specific_insert(self):
        table = DagFilterTable(width=32)
        broad = _install(table, "10.*, *, *")
        # Installed later: a more specific source — broad must be copied
        # down into the new subtree.
        specific = _install(table, "10.1.0.0/16, *, TCP")
        udp_pkt = make_udp("10.1.2.3", "1.1.1.1", 1, 1)
        assert table.lookup(udp_pkt) is broad
        tcp_pkt = make_tcp("10.1.2.3", "1.1.1.1", 1, 1)
        assert table.lookup(tcp_pkt) is specific

    def test_most_specific_at_earlier_level_dominates(self):
        table = DagFilterTable(width=32)
        src_specific = _install(table, "10.0.0.1, *, *")
        dst_specific = _install(table, "10.0.0.0/8, 20.0.0.1, *")
        pkt = make_udp("10.0.0.1", "20.0.0.1", 1, 1)
        # The DAG descends the most specific source edge first.
        assert table.lookup(pkt) is src_specific

    def test_priority_breaks_exact_ties(self):
        table = DagFilterTable(width=32)
        low = _install(table, "*, *, UDP", priority=0)
        high = _install(table, "*, *, UDP", priority=5)
        pkt = make_udp("1.1.1.1", "2.2.2.2", 1, 1)
        assert table.lookup(pkt) is high
        assert low in table.lookup_all(pkt)


class TestRemoval:
    def test_remove_restores_less_specific_match(self):
        table = DagFilterTable(width=32)
        broad = _install(table, "10.*, *, UDP")
        specific = _install(table, "10.0.0.1, *, UDP")
        pkt = make_udp("10.0.0.1", "2.2.2.2", 1, 1)
        assert table.lookup(pkt) is specific
        assert table.remove(specific)
        assert table.lookup(pkt) is broad

    def test_remove_is_idempotent(self):
        table = DagFilterTable(width=32)
        record = _install(table, "10.*, *, UDP")
        assert table.remove(record)
        assert not table.remove(record)

    def test_removed_filter_gone_from_all_replicas(self):
        table = DagFilterTable(width=32)
        broad = _install(table, "*, *, UDP")
        _install(table, "10.0.0.1, *, UDP")
        _install(table, "20.0.0.1, *, UDP")
        table.remove(broad)
        for src in ("10.0.0.1", "20.0.0.1", "30.0.0.1"):
            pkt = make_udp(src, "1.1.1.1", 1, 1)
            assert broad not in table.lookup_all(pkt) if table.lookup(pkt) else True
        assert table.lookup(make_udp("30.0.0.1", "1.1.1.1", 1, 1)) is None

    def test_len_tracks_installed(self):
        table = DagFilterTable(width=32)
        a = _install(table, "10.*, *, UDP")
        _install(table, "11.*, *, UDP")
        assert len(table) == 2
        table.remove(a)
        assert len(table) == 1


class TestAmbiguity:
    def test_partial_port_overlap_rejected(self):
        table = DagFilterTable(width=32)
        _install(table, "10.*, *, UDP, 10-20, *")
        with pytest.raises(AmbiguousFilterError):
            _install(table, "10.1.0.0/16, *, UDP, 15-30, *")
        # The failed install must leave the table unchanged.
        assert len(table) == 1

    def test_nested_port_ranges_allowed(self):
        table = DagFilterTable(width=32)
        _install(table, "*, *, TCP, 0-1023, *")
        inner = _install(table, "*, *, TCP, 22, *")
        pkt = make_tcp("1.1.1.1", "2.2.2.2", 22, 9)
        assert table.lookup(pkt) is inner

    def test_disjoint_port_ranges_allowed(self):
        table = DagFilterTable(width=32)
        a = _install(table, "*, *, TCP, 10-20, *")
        b = _install(table, "*, *, TCP, 30-40, *")
        assert table.lookup(make_tcp("1.1.1.1", "2.2.2.2", 15, 9)) is a
        assert table.lookup(make_tcp("1.1.1.1", "2.2.2.2", 35, 9)) is b

    def test_overlap_ok_when_address_spaces_disjoint(self):
        table = DagFilterTable(width=32)
        _install(table, "10.*, *, UDP, 10-20, *")
        # Different, non-overlapping source prefix: never shares a node.
        _install(table, "11.*, *, UDP, 15-30, *")
        assert len(table) == 2

    def test_overlap_ok_when_protocols_differ(self):
        table = DagFilterTable(width=32)
        _install(table, "10.*, *, UDP, 10-20, *")
        _install(table, "10.*, *, TCP, 15-30, *")
        assert len(table) == 2


class TestMemoryAccessModel:
    def test_v4_filter_lookup_within_table2_bound(self):
        """Experiment E2 (unit-level): ≤ 20 accesses for IPv4 with BSPL."""
        table = DagFilterTable(width=32, bmp_engine="bspl")
        for i in range(64):
            spec = f"10.{i}.0.0/16, 20.{i}.0.1, UDP, {1000 + i}, 53"
            _install(table, spec)
        meter = MemoryMeter()
        table.lookup(make_udp("10.3.0.1", "20.3.0.1", 1003, 53), meter)
        assert meter.accesses <= 20
        breakdown = meter.breakdown()
        assert breakdown["fnptr_bmp"] == 1
        assert breakdown["fnptr_hash"] == 1
        assert breakdown["dag_edge"] == 6
        assert breakdown["port"] == 2

    def test_v6_filter_lookup_within_table2_bound(self):
        table = DagFilterTable(width=IPV6_WIDTH, bmp_engine="bspl")
        for i in range(32):
            spec = f"2001:db8:{i:x}::/48, 2001:db8:ff{i:02x}::1, UDP, {1000 + i}, 53"
            _install(table, spec)
        meter = MemoryMeter()
        table.lookup(make_udp("2001:db8:3::9", "2001:db8:ff03::1", 1003, 53), meter)
        assert meter.accesses <= 24


class TestIntrospection:
    def test_node_count_grows_with_replication(self):
        table = DagFilterTable(width=32)
        _install(table, "*, *, UDP")
        base = table.node_count()
        _install(table, "10.0.0.1, *, UDP")
        assert table.node_count() > base

    def test_records_listing(self):
        table = DagFilterTable(width=32)
        a = _install(table, "10.*, *, UDP")
        assert table.records() == [a]


# ---------------------------------------------------------------------------
# Property-based: the DAG agrees with the linear oracle on laminar filters.
# ---------------------------------------------------------------------------
_prefix = st.builds(
    lambda base, length: f"{base >> 24 & 255}.{base >> 16 & 255}.{base >> 8 & 255}.{base & 255}/{length}",
    st.integers(0, (1 << 32) - 1),
    st.integers(0, 32),
)
_port = st.sampled_from(["*", "53", "80", "5000", "0-1023", "1024-65535"])
_proto = st.sampled_from(["*", "TCP", "UDP"])
_iif = st.sampled_from(["*", "atm0", "atm1"])

_filter_spec = st.builds(
    lambda s, d, p, sp, dp, i: f"{s}, {d}, {p}, {sp}, {dp}, {i}",
    _prefix, _prefix, _proto, _port, _port, _iif,
)

_packet = st.builds(
    lambda src, dst, proto, sp, dp, iif: (make_tcp if proto == "TCP" else make_udp)(
        f"{src >> 24 & 255}.{src >> 16 & 255}.{src >> 8 & 255}.{src & 255}",
        f"{dst >> 24 & 255}.{dst >> 16 & 255}.{dst >> 8 & 255}.{dst & 255}",
        sp,
        dp,
        iif=iif,
    ),
    st.integers(0, (1 << 32) - 1),
    st.integers(0, (1 << 32) - 1),
    st.sampled_from(["TCP", "UDP"]),
    st.integers(0, 65535),
    st.integers(0, 65535),
    st.sampled_from(["atm0", "atm1"]),
)


@settings(max_examples=80, deadline=None)
@given(specs=st.lists(_filter_spec, max_size=12), packets=st.lists(_packet, max_size=8))
def test_dag_agrees_with_linear_oracle(specs, packets):
    dag = DagFilterTable(width=32)
    linear = LinearFilterTable(width=32)
    for spec in specs:
        record = FilterRecord(Filter.parse(spec), gate="g")
        try:
            dag.install(record)
        except AmbiguousFilterError:
            continue  # skipped in both tables
        linear.install(record)
    for pkt in packets:
        dag_hit = dag.lookup(pkt)
        linear_hit = linear.lookup(pkt)
        if linear_hit is None:
            assert dag_hit is None
        else:
            assert dag_hit is not None
            # Same best filter under the shared ordering.
            assert dag_hit.sort_key() == linear_hit.sort_key()
        # And the replica set at the leaf equals the true match set.
        assert set(dag.lookup_all(pkt)) == set(linear.lookup_all(pkt))
