"""Telemetry must be free in modelled cycles — bit-identical, not just
close.

Two scenarios (a cache-miss sweep and a seeded chaos storm) run twice
each on the metered specification path, telemetry detached vs attached;
the CycleMeter totals and per-label breakdowns must match exactly, and
both are pinned against ``golden_invariance.json`` so a regression in
either the cost model or the telemetry seams is caught even if it is
symmetric.

Also here: the histogram/counter coherence property under the
differential-fuzz filter generators — every flow install observes the
packet-size histogram exactly once, so bucket counts always sum to the
flow-table miss counter.
"""

import json
import os
import random

import pytest

from repro.core import (
    DEGRADE_BYPASS,
    DEGRADE_DROP,
    FaultPolicy,
    GATE_IP_OPTIONS,
    GATE_IP_SECURITY,
    Router,
)
from repro.net.addresses import IPV4_WIDTH, IPAddress
from repro.net.packet import Packet, make_udp
from repro.sim import ChaosPlugin
from repro.sim.cost import CycleMeter
from repro.workloads.filtersets import matching_probe, random_filters

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_invariance.json")

PACKETS = 2_000


def _build_router(chaos: bool) -> Router:
    router = Router(name="inv", flow_buckets=512)
    router.add_interface("atm0", prefix="10.0.0.0/8")
    router.add_interface("atm1", prefix="20.0.0.0/8")
    if chaos:
        for name, gate, action, config in [
            ("chaos-a", GATE_IP_OPTIONS, DEGRADE_DROP,
             dict(fault_rate=0.05, seed=11)),
            ("chaos-b", GATE_IP_SECURITY, DEGRADE_BYPASS,
             dict(fault_rate=0.05, corrupt_rate=0.02, seed=22)),
        ]:
            plugin = ChaosPlugin(name=name)
            router.pcu.load(plugin)
            instance = plugin.create_instance(**config)
            plugin.register_instance(instance, "*, *, UDP", gate=gate)
            router.faults.set_policy(
                name,
                FaultPolicy(threshold=3, window=0.1, action=action,
                            cooldown=0.05, ring_size=PACKETS),
            )
    return router


def _packets(miss_sweep: bool):
    for i in range(PACKETS):
        if miss_sweep:
            # Every packet a brand-new five-tuple: all slow path.
            yield make_udp(
                "10.0.0.1", "20.0.0.1", (i % 60000) + 1024,
                (i // 60000) + 1024, iif="atm0",
            ), i * 0.001
        else:
            yield make_udp(
                f"10.0.0.{i % 8 + 1}", f"20.0.0.{i % 5 + 1}",
                5000 + i % 40, 9000, iif="atm0",
            ), i * 0.001


def _run(scenario: str, telemetry: bool) -> dict:
    chaos = scenario == "chaos_soak"
    router = _build_router(chaos)
    if telemetry:
        router.attach_telemetry()
    meter = CycleMeter()
    dispositions = []
    for packet, now in _packets(miss_sweep=not chaos):
        dispositions.append(router.receive(packet, now=now, cycles=meter))
    return {
        "total": meter.total,
        "breakdown": {k: meter.breakdown()[k] for k in sorted(meter.breakdown())},
        "dispositions": sorted(
            (str(d), dispositions.count(d)) for d in set(dispositions)
        ),
    }


SCENARIOS = ("cache_miss", "chaos_soak")


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_modelled_cycles_identical_on_vs_off(scenario):
    off = _run(scenario, telemetry=False)
    on = _run(scenario, telemetry=True)
    assert on["total"] == off["total"]
    assert on["breakdown"] == off["breakdown"]
    assert on["dispositions"] == off["dispositions"]


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_modelled_cycles_match_golden(scenario):
    with open(GOLDEN_PATH) as fh:
        golden = json.load(fh)[scenario]
    got = _run(scenario, telemetry=True)
    assert got["total"] == golden["total"]
    assert got["breakdown"] == golden["breakdown"]


def test_fast_path_dispositions_identical_with_telemetry():
    """Unmetered fast path: telemetry + tracer attached vs detached must
    forward/drop the exact same packets in the exact same order."""
    results = {}
    for telemetry in (False, True):
        router = _build_router(chaos=True)
        if telemetry:
            router.attach_telemetry()
            router.attach_lifecycle_tracer(sample=2, capacity=64)
        dispositions = [
            router.receive(packet, now=now)
            for packet, now in _packets(miss_sweep=False)
        ]
        results[telemetry] = (dispositions, dict(router.counters))
    assert results[False] == results[True]


class TestHistogramCoherence:
    """Bucket counts always sum to the flow-table miss counter: the
    histogram is observed exactly once per flow install, no matter what
    filter shapes or probe traffic the fuzz generators produce."""

    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_bucket_sum_equals_miss_counter(self, seed):
        rng = random.Random(seed)
        router = Router(name="fuzz", flow_buckets=256)
        router.add_interface("atm0", prefix="10.0.0.0/8")
        router.add_interface("atm1", prefix="0.0.0.0/0")
        reg = router.attach_telemetry()
        for flt in random_filters(32, seed=seed):
            router.aiu.create_filter("ip_security", str(flt))
        filters = router.aiu.filters("ip_security")
        for _ in range(500):
            flt = rng.choice(filters).filter
            src, dst, protocol, sport, dport = matching_probe(flt, rng)
            packet = Packet(
                src=IPAddress(src, IPV4_WIDTH),
                dst=IPAddress(dst, IPV4_WIDTH),
                protocol=protocol,
                src_port=sport, dst_port=dport, iif="atm0",
                payload=bytes(rng.randrange(0, 2048)),
            )
            router.receive(packet)
        hist = reg.histogram("aiu.miss_packet_size_bytes")
        table = router.aiu.flow_table
        assert hist.count == table.misses == table.births
        assert hist.count > 0
        snap = reg.snapshot()
        assert (
            snap["histograms"]["aiu.miss_packet_size_bytes"]["count"]
            == snap["counters"]["flow.misses"]
        )
