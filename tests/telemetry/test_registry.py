"""Unit tests for the metrics registry: metric semantics, idempotent
creation, cross-type collisions, pull collectors, and the NullRegistry
off state."""

import pytest

from repro.core.router import Router
from repro.net.packet import make_udp
from repro.telemetry import (
    Counter,
    DEFAULT_SIZE_BOUNDS,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
)


class TestMetrics:
    def test_counter_monotonic(self):
        c = Counter("x")
        c.inc()
        c.inc(5)
        assert c.value == 6
        with pytest.raises(MetricError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        g = Gauge("x")
        g.set(10)
        g.dec(3)
        g.inc()
        assert g.value == 8

    def test_histogram_buckets_preallocated(self):
        h = Histogram("x", bounds=(10, 20, 30))
        assert h.counts == [0, 0, 0, 0]  # 3 edges + overflow
        h.observe(5)
        h.observe(10)   # on-edge lands in its own bucket (bisect_left)
        h.observe(25)
        h.observe(99)   # overflow
        assert h.counts == [2, 0, 1, 1]
        assert h.count == 4
        assert h.sum == pytest.approx(139)

    def test_histogram_bounds_must_increase(self):
        with pytest.raises(MetricError):
            Histogram("x", bounds=(10, 10, 20))
        with pytest.raises(MetricError):
            Histogram("x", bounds=(20, 10))
        with pytest.raises(MetricError):
            Histogram("x", bounds=())

    def test_histogram_lut_matches_bisect(self):
        """The fast-path value->bucket table agrees with observe() for
        every integer in its domain (the AIU miss seam relies on it)."""
        h = Histogram("x", bounds=DEFAULT_SIZE_BOUNDS)
        assert h.bucket_lut is not None
        for size in range(len(h.bucket_lut)):
            reference = Histogram("ref", bounds=DEFAULT_SIZE_BOUNDS)
            reference.observe(size)
            assert reference.counts[h.bucket_lut[size]] == 1, size

    def test_histogram_lut_skipped_for_huge_bounds(self):
        h = Histogram("x", bounds=(1e9,))
        assert h.bucket_lut is None
        h.observe(5)
        assert h.counts == [1, 0]

    def test_direct_staging_folds_on_read(self):
        """The one-list-index hot seam: staged sizes land in the right
        buckets (and the sum) only when the histogram is next read, and
        staged and observe()d values mix freely."""
        h = Histogram("x", bounds=(10, 20, 30))
        direct = h.enable_direct()
        assert direct is h.enable_direct()          # idempotent
        assert len(direct) == len(h.bucket_lut)
        direct[5] += 1
        direct[10] += 1
        direct[25] += 2
        assert h._counts == [0, 0, 0, 0]            # nothing folded yet
        h.observe(99)                               # overflow, unstaged
        assert h.counts == [2, 0, 2, 1]             # read folds
        assert h.count == 5
        assert h.sum == pytest.approx(5 + 10 + 25 + 25 + 99)
        assert all(c == 0 for c in h.direct)        # staging drained
        direct[7] += 1                              # stage again
        assert h.to_dict()["count"] == 6

    def test_direct_staging_unavailable_for_huge_bounds(self):
        assert Histogram("x", bounds=(1e9,)).enable_direct() is None

    def test_to_dict_shape(self):
        h = Histogram("x", bounds=(64, 128))
        h.observe(100)
        d = h.to_dict()
        assert d == {
            "bounds": [64.0, 128.0],
            "counts": [0, 1, 0],
            "count": 1,
            "sum": 100,
        }


class TestRegistry:
    def test_idempotent_creation(self):
        reg = MetricsRegistry()
        a = reg.counter("x")
        b = reg.counter("x")
        assert a is b

    def test_cross_type_collision(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(MetricError):
            reg.gauge("x")
        with pytest.raises(MetricError):
            reg.histogram("x")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(7)
        reg.histogram("h", bounds=(10,)).observe(5)
        snap = reg.snapshot()
        assert snap["enabled"] is True
        assert snap["counters"]["c"] == 3
        assert snap["gauges"]["g"] == 7
        assert snap["histograms"]["h"]["count"] == 1

    def test_collectors_sample_at_snapshot_time(self):
        reg = MetricsRegistry()
        state = {"n": 0}
        reg.add_collector(lambda: {"counters": {"pulled": state["n"]}})
        state["n"] = 42
        assert reg.snapshot()["counters"]["pulled"] == 42

    def test_bind_router_is_exclusive(self):
        reg = MetricsRegistry()
        r1 = Router(name="a")
        r1.add_interface("atm0", prefix="0.0.0.0/0")
        r1.attach_telemetry(reg)
        r2 = Router(name="b")
        r2.add_interface("atm0", prefix="0.0.0.0/0")
        with pytest.raises(MetricError):
            r2.attach_telemetry(reg)


class TestRouterWiring:
    def _router(self):
        router = Router(name="t")
        router.add_interface("atm0", prefix="10.0.0.0/8")
        router.add_interface("atm1", prefix="20.0.0.0/8")
        return router

    def test_attach_detach_roundtrip(self):
        router = self._router()
        reg = router.attach_telemetry()
        assert router.telemetry is reg
        assert router._tm_gate_cells is reg.gate_dispatch_cells
        assert router.aiu._tm_size_hist is not None
        router.detach_telemetry()
        assert router.telemetry is None
        assert router._tm_gate_cells is None
        assert router.aiu._tm_size_hist is None

    def test_null_registry_means_detached(self):
        router = self._router()
        router.attach_telemetry()
        router.attach_telemetry(NULL_REGISTRY)
        assert router.telemetry is None

    def test_null_registry_handles_are_noops(self):
        reg = NullRegistry()
        reg.counter("x").inc()
        reg.gauge("x").set(5)
        reg.histogram("x").observe(1)
        assert reg.snapshot() == {
            "enabled": False, "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_counters_flow_through_snapshot(self):
        router = self._router()
        router.attach_telemetry()
        for i in range(10):
            router.receive(
                make_udp("10.0.0.1", "20.0.0.1", 1000 + i, 9000, iif="atm0")
            )
        snap = router.telemetry.snapshot()
        assert snap["counters"]["router.rx"] == 10
        assert snap["counters"]["flow.misses"] == 10
        assert snap["counters"]["flow.births"] == 10
        hist = snap["histograms"]["aiu.miss_packet_size_bytes"]
        assert hist["count"] == 10
        assert snap["gauges"]["flow.active"] == 10
