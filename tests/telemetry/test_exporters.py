"""Exporter schema tests: the Prometheus text format (line grammar,
cumulative buckets, +Inf == count) and the JSON-lines exporter ticking
on the event-loop clock."""

import json
import re

import pytest

from repro.sim.events import EventLoop
from repro.telemetry import (
    JsonLinesExporter,
    MetricsRegistry,
    prometheus_text,
)

#: One metric line: name{labels} value — names must match the
#: Prometheus data-model identifier grammar.
_METRIC_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le=\"[^\"]+\"\})? -?[0-9.e+|inf]+$"
)


def _populated_registry():
    reg = MetricsRegistry()
    reg.counter("router.rx").inc(100)
    reg.gauge("flow.active").set(12)
    h = reg.histogram("aiu.miss_packet_size_bytes", bounds=(64, 512))
    for value in (20, 70, 900, 5000):
        h.observe(value)
    return reg


class TestPrometheusText:
    def test_every_line_is_schema_valid(self):
        text = prometheus_text(_populated_registry().snapshot())
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            assert _METRIC_LINE.match(line), line

    def test_type_lines_present(self):
        text = prometheus_text(_populated_registry().snapshot())
        assert "# TYPE repro_router_rx counter" in text
        assert "# TYPE repro_flow_active gauge" in text
        assert "# TYPE repro_aiu_miss_packet_size_bytes histogram" in text

    def test_histogram_buckets_cumulative_and_inf_equals_count(self):
        text = prometheus_text(_populated_registry().snapshot())
        buckets = re.findall(
            r'repro_aiu_miss_packet_size_bytes_bucket\{le="([^"]+)"\} (\d+)', text
        )
        values = [int(v) for _, v in buckets]
        assert values == sorted(values)  # cumulative: monotone
        assert buckets[-1][0] == "+Inf"
        count = int(
            re.search(r"repro_aiu_miss_packet_size_bytes_count (\d+)", text).group(1)
        )
        assert values[-1] == count == 4

    def test_names_sanitized(self):
        reg = MetricsRegistry()
        reg.counter("gate.ip-options.dispatch").inc()
        text = prometheus_text(reg.snapshot())
        assert "repro_gate_ip_options_dispatch 1" in text

    def test_disabled_snapshot_renders_empty(self):
        from repro.telemetry import NULL_REGISTRY

        assert prometheus_text(NULL_REGISTRY.snapshot()) == ""


class TestJsonLines:
    def test_ticks_on_virtual_clock(self):
        reg = _populated_registry()
        loop = EventLoop()
        exporter = JsonLinesExporter(reg, loop, interval=0.5)
        exporter.start()
        loop.run(until=2.0)
        assert len(exporter.lines) == 4  # t=0.5, 1.0, 1.5, 2.0
        for line in exporter.lines:
            record = json.loads(line)
            assert record["enabled"] is True
            assert record["counters"]["router.rx"] == 100
        times = [json.loads(line)["time"] for line in exporter.lines]
        assert times == [0.5, 1.0, 1.5, 2.0]

    def test_stop_cancels_future_ticks(self):
        reg = _populated_registry()
        loop = EventLoop()
        exporter = JsonLinesExporter(reg, loop, interval=0.5)
        exporter.start()
        loop.run(until=1.0)
        exporter.stop()
        loop.run(until=5.0)
        assert len(exporter.lines) == 2

    def test_custom_sink(self):
        reg = _populated_registry()
        loop = EventLoop()
        seen = []
        exporter = JsonLinesExporter(reg, loop, interval=1.0, sink=seen.append)
        exporter.start()
        loop.run(until=1.0)
        assert len(seen) == 1 and json.loads(seen[0])["gauges"]["flow.active"] == 12

    def test_interval_must_be_positive(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            JsonLinesExporter(MetricsRegistry(), loop, interval=0)
