"""Lifecycle tracer tests: flow sampling, span stage structure, and —
the acceptance-critical one — the ring and the open-span table staying
bounded under a 10k-packet chaos soak at sample=1."""

import pytest

from repro.core import (
    DEGRADE_BYPASS,
    DEGRADE_DROP,
    FaultPolicy,
    GATE_IP_OPTIONS,
    GATE_IP_SECURITY,
    Router,
)
from repro.net.packet import make_udp
from repro.sim import ChaosPlugin
from repro.telemetry import LifecycleTracer


def _router(chaos=False):
    router = Router(name="trace", flow_buckets=512)
    router.add_interface("atm0", prefix="10.0.0.0/8")
    router.add_interface("atm1", prefix="20.0.0.0/8")
    if chaos:
        for name, gate, action, config in [
            ("chaos-a", GATE_IP_OPTIONS, DEGRADE_DROP,
             dict(fault_rate=0.05, seed=11)),
            ("chaos-b", GATE_IP_SECURITY, DEGRADE_BYPASS,
             dict(fault_rate=0.05, corrupt_rate=0.02, seed=22)),
        ]:
            plugin = ChaosPlugin(name=name)
            router.pcu.load(plugin)
            instance = plugin.create_instance(**config)
            plugin.register_instance(instance, "*, *, UDP", gate=gate)
            router.faults.set_policy(
                name,
                FaultPolicy(threshold=3, window=0.1, action=action,
                            cooldown=0.05, ring_size=64),
            )
    return router


class TestSampling:
    def test_sample_1_traces_everything(self):
        router = _router()
        tracer = router.attach_lifecycle_tracer(sample=1, capacity=64)
        for i in range(20):
            router.receive(make_udp("10.0.0.1", "20.0.0.1", 1000 + i, 9000, iif="atm0"))
        assert tracer.sampled == 20

    def test_sampling_is_per_flow_not_per_packet(self):
        router = _router()
        tracer = router.attach_lifecycle_tracer(sample=7, capacity=256)
        flows = {}
        for i in range(200):
            packet = make_udp(
                f"10.0.0.{i % 16 + 1}", "20.0.0.1", 5000 + i % 16, 9000, iif="atm0"
            )
            flows.setdefault(packet.flow_fold32() % 7 == 0, 0)
            flows[packet.flow_fold32() % 7 == 0] += 1
            router.receive(packet)
        # Every packet of a sampled flow is traced; none of the others.
        assert tracer.sampled == flows.get(True, 0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            LifecycleTracer(sample=0)
        with pytest.raises(ValueError):
            LifecycleTracer(capacity=0)


class TestSpans:
    def test_span_records_stage_walk(self):
        router = _router()
        tracer = router.attach_lifecycle_tracer(sample=1, capacity=8)
        router.receive(make_udp("10.0.0.1", "20.0.0.1", 1000, 9000, iif="atm0"))
        (span,) = tracer.spans()
        stages = [stage for stage, _, _ in span.stages]
        assert stages[0].startswith("gate:")
        assert "route" in stages
        assert stages[-1] == "forward"  # direct tx: no scheduler queue
        assert span.disposition == "forwarded"
        assert span.total_cycles > 0
        assert sum(cycles for _, cycles, _ in span.stages) == span.total_cycles

    def test_queued_span_closes_on_emit(self):
        """With a scheduler bound, the span stays open across the queue
        and the emit stage carries the queue-wait virtual time."""
        from repro.mgr import RouterPluginLibrary

        router = _router()
        library = RouterPluginLibrary(router)
        library.modload("drr")
        library.create_instance("drr", "drr0")
        library.bind("drr0", "10.*, *, UDP")
        tracer = router.attach_lifecycle_tracer(sample=1, capacity=8)
        router.receive(make_udp("10.0.0.1", "20.0.0.1", 1000, 9000, iif="atm0"))
        (span,) = tracer.spans()
        stages = [stage for stage, _, _ in span.stages]
        assert span.disposition == "queued"
        assert stages[-1] == "emit"
        assert span.total_cycles > 0

    def test_to_dict_is_json_shaped(self):
        router = _router()
        tracer = router.attach_lifecycle_tracer(sample=1, capacity=8)
        router.receive(make_udp("10.0.0.1", "20.0.0.1", 1000, 9000, iif="atm0"))
        data = tracer.to_dict()
        assert data["sampled"] == data["recorded"] == 1
        (span,) = data["spans"]
        assert {"stage", "cycles", "vtime"} == set(span["stages"][0])


class TestBoundedMemory:
    def test_ring_never_grows_under_chaos_soak(self):
        """10k packets, every flow sampled, capacity 128: the ring holds
        at most 128 spans and the open table never exceeds capacity."""
        router = _router(chaos=True)
        tracer = router.attach_lifecycle_tracer(sample=1, capacity=128)
        for i in range(10_000):
            packet = make_udp(
                f"10.0.0.{i % 8 + 1}", f"20.0.0.{i % 5 + 1}",
                5000 + i % 40, 9000, iif="atm0",
            )
            router.receive(packet, now=i * 0.001)
            assert tracer.open_spans() <= tracer.capacity
        assert tracer.sampled == 10_000
        assert len(tracer) <= 128
        assert len(tracer.spans()) <= 128
        assert len(tracer._ring) == 128  # preallocated, never reallocated
        # The ring holds the newest spans: recorded keeps counting.
        assert tracer.recorded >= 10_000 - tracer.capacity

    def test_ring_keeps_newest_spans_in_order(self):
        router = _router()
        tracer = router.attach_lifecycle_tracer(sample=1, capacity=4)
        for i in range(10):
            router.receive(make_udp("10.0.0.1", "20.0.0.1", 1000 + i, 9000, iif="atm0"))
        spans = tracer.spans()
        assert len(spans) == 4
        ids = [span.packet_id for span in spans]
        assert ids == sorted(ids)  # oldest-first

    def test_detach_restores_fast_path(self):
        router = _router()
        router.attach_lifecycle_tracer(sample=1, capacity=8)
        router.detach_lifecycle_tracer()
        assert router._lifecycle is None
        router.receive(make_udp("10.0.0.1", "20.0.0.1", 1000, 9000, iif="atm0"))
