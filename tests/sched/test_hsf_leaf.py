"""Tests for the HSF DRR leaf-queue adapter."""

import pytest

from repro.net.packet import make_udp
from repro.sched.hsf import DrrLeafQueue


def _pkt(flow=1, size=500):
    return make_udp(f"10.0.0.{flow}", "20.0.0.1", 5000 + flow, 53,
                    payload_size=size - 28)


class TestDrrLeafQueue:
    def test_push_pop(self):
        queue = DrrLeafQueue()
        pkt = _pkt()
        assert queue.push(pkt)
        assert len(queue) == 1
        assert bool(queue)
        assert queue.pop() is pkt
        assert not queue

    def test_head_peeks(self):
        queue = DrrLeafQueue()
        pkt = _pkt()
        queue.push(pkt)
        assert queue.head() is pkt
        assert len(queue) == 1

    def test_head_empty(self):
        assert DrrLeafQueue().head() is None

    def test_bytes_accounting(self):
        queue = DrrLeafQueue()
        queue.push(_pkt(1, 500))
        queue.push(_pkt(2, 700))
        assert queue.bytes == 1200

    def test_drops_at_per_flow_limit(self):
        queue = DrrLeafQueue(limit=1)
        assert queue.push(_pkt(1))
        assert not queue.push(_pkt(1))
        assert queue.drops == 1
        # A different flow still gets in (per-flow limits).
        assert queue.push(_pkt(2))

    def test_interleaves_flows(self):
        queue = DrrLeafQueue(quantum=500)
        for _ in range(4):
            queue.push(_pkt(1))
        for _ in range(4):
            queue.push(_pkt(2))
        order = [queue.pop().src_port - 5000 for _ in range(8)]
        # DRR alternates rather than draining flow 1 first.
        assert order != [1, 1, 1, 1, 2, 2, 2, 2]
        assert sorted(order) == [1, 1, 1, 1, 2, 2, 2, 2]
