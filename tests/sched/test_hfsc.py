"""Behavioural tests for the H-FSC scheduler (experiment E8 backing)."""

from collections import Counter

import pytest

from repro.core.errors import ConfigurationError
from repro.core.plugin import PluginContext, Verdict
from repro.net.packet import make_udp
from repro.sched.curves import ServiceCurve
from repro.sched.hfsc import HfscPlugin
from repro.sched.hsf import HsfPlugin

LINK_BPS = 10_000_000       # 10 Mbit/s modelled link
PKT = 1000                  # bytes per packet


def _pkt(flow, size=PKT):
    return make_udp(f"10.0.0.{flow}", "20.0.0.1", 5000 + flow, 53, payload_size=size - 28)


def _drain(sched, n, link_bps=LINK_BPS):
    """Serve n packets, advancing time at the link rate; returns
    (per-class byte counters, list of (now, packet))."""
    now = 0.0
    by_class = Counter()
    trace = []
    for _ in range(n):
        pkt = sched.dequeue(now)
        if pkt is None:
            break
        by_class[pkt.annotations["hfsc_class"]] += pkt.length
        trace.append((now, pkt))
        now += pkt.length * 8 / link_bps
    return by_class, trace


def _hfsc(**config):
    return HfscPlugin().create_instance(**config)


class TestHierarchy:
    def test_add_class_builds_tree(self):
        sched = _hfsc()
        a = sched.add_class("A", fsc=ServiceCurve.linear(5e6))
        b = sched.add_class("B", parent="A", fsc=ServiceCurve.linear(2e6))
        assert b.parent is a
        assert not a.is_leaf

    def test_duplicate_class_rejected(self):
        sched = _hfsc()
        sched.add_class("A")
        with pytest.raises(ConfigurationError):
            sched.add_class("A")

    def test_unknown_parent_rejected(self):
        with pytest.raises(ConfigurationError):
            _hfsc().add_class("X", parent="missing")

    def test_enqueue_to_default_class(self):
        sched = _hfsc()
        sched.add_class("D", fsc=ServiceCurve.linear(1e6), default=True)
        assert sched.process(_pkt(1), PluginContext()) == Verdict.CONSUMED
        assert sched.backlog() == 1

    def test_no_default_class_drops(self):
        sched = _hfsc()
        assert sched.process(_pkt(1), PluginContext()) == Verdict.DROP

    def test_enqueue_to_non_leaf_rejected(self):
        sched = _hfsc()
        sched.add_class("A", fsc=ServiceCurve.linear(1e6), default=True)
        sched.add_class("A1", parent="A", fsc=ServiceCurve.linear(1e6))
        sched.default_class = sched.get_class("A")
        with pytest.raises(ConfigurationError):
            sched.process(_pkt(1), PluginContext())


class TestLinkSharing:
    def _two_leaves(self, share_a, share_b):
        sched = _hfsc()
        a = sched.add_class("A", fsc=ServiceCurve.linear(share_a), qlimit=1000)
        b = sched.add_class("B", fsc=ServiceCurve.linear(share_b), qlimit=1000)
        return sched, a, b

    def _backlog(self, sched, leaf_name, count):
        leaf = sched.get_class(leaf_name)
        flow = int(leaf_name == "B") + 1
        for _ in range(count):
            pkt = _pkt(flow)
            assert leaf.queue.push(pkt)
            sched._backlog += 1
            if len(leaf.queue) == 1:
                sched._set_active(leaf, 0.0, pkt.length)
        # re-push through public API instead would need slots; direct is fine

    def test_equal_shares(self):
        sched, a, b = self._two_leaves(5e6, 5e6)
        self._backlog(sched, "A", 200)
        self._backlog(sched, "B", 200)
        by_class, _ = _drain(sched, 200)
        ratio = by_class["A"] / by_class["B"]
        assert 0.9 <= ratio <= 1.1

    def test_proportional_shares_3_to_1(self):
        sched, a, b = self._two_leaves(7.5e6, 2.5e6)
        self._backlog(sched, "A", 400)
        self._backlog(sched, "B", 400)
        by_class, _ = _drain(sched, 200)
        ratio = by_class["A"] / by_class["B"]
        assert 2.5 <= ratio <= 3.5

    def test_idle_class_excess_goes_to_active(self):
        sched, a, b = self._two_leaves(5e6, 5e6)
        self._backlog(sched, "A", 100)
        by_class, _ = _drain(sched, 100)
        assert by_class["A"] == 100 * PKT
        assert by_class["B"] == 0

    def test_hierarchical_sharing(self):
        """Two 'agencies' split the link 50/50; within agency 1, two
        classes split 75/25."""
        sched = _hfsc()
        sched.add_class("agency1", fsc=ServiceCurve.linear(5e6))
        sched.add_class("agency2", fsc=ServiceCurve.linear(5e6))
        sched.add_class("a1.web", parent="agency1", fsc=ServiceCurve.linear(3.75e6), qlimit=1000)
        sched.add_class("a1.ftp", parent="agency1", fsc=ServiceCurve.linear(1.25e6), qlimit=1000)
        sched.add_class("a2.all", parent="agency2", fsc=ServiceCurve.linear(5e6), qlimit=1000)
        for name, flow in [("a1.web", 1), ("a1.ftp", 2), ("a2.all", 3)]:
            leaf = sched.get_class(name)
            for _ in range(600):
                pkt = _pkt(flow)
                leaf.queue.push(pkt)
                sched._backlog += 1
                if len(leaf.queue) == 1:
                    sched._set_active(leaf, 0.0, pkt.length)
        by_class, _ = _drain(sched, 400)
        agency1 = by_class["a1.web"] + by_class["a1.ftp"]
        assert 0.8 <= agency1 / by_class["a2.all"] <= 1.25
        assert 2.4 <= by_class["a1.web"] / by_class["a1.ftp"] <= 3.6


class TestRealTime:
    def test_realtime_class_meets_deadline_despite_tiny_share(self):
        """Delay/bandwidth decoupling: a class with a small bandwidth but
        a steep first slope gets its packet out early."""
        sched = _hfsc()
        # Real-time: first packet within ~2 ms (m1 steep for 2 ms).
        rt_curve = ServiceCurve.two_piece(4e6, 0.002, 0.1e6)
        sched.add_class("voice", rsc=rt_curve, fsc=ServiceCurve.linear(0.1e6))
        sched.add_class("bulk", fsc=ServiceCurve.linear(9.9e6))
        bulk = sched.get_class("bulk")
        voice = sched.get_class("voice")
        for _ in range(500):
            pkt = _pkt(2)
            bulk.queue.push(pkt)
            sched._backlog += 1
            if len(bulk.queue) == 1:
                sched._set_active(bulk, 0.0, pkt.length)
        vp = _pkt(1)
        voice.queue.push(vp)
        sched._backlog += 1
        sched._set_active(voice, 0.0, vp.length)
        _, trace = _drain(sched, 50)
        voice_times = [t for t, p in trace if p.annotations["hfsc_class"] == "voice"]
        assert voice_times, "voice packet never served"
        # 1000 B at m1=4 Mbit/s -> 2 ms deadline; allow one bulk MTU of
        # non-preemption slack.
        assert voice_times[0] <= 0.004

    def test_realtime_flag_annotated(self):
        sched = _hfsc()
        rt = ServiceCurve.linear(5e6)
        sched.add_class("rt", rsc=rt, fsc=ServiceCurve.linear(0.1e6), default=True)
        sched.process(_pkt(1), PluginContext(now=0.0))
        pkt = sched.dequeue(0.0)
        assert pkt.annotations["hfsc_realtime"] is True

    def test_longrun_rt_throughput_tracks_m2_plus_share(self):
        """The voice class's long-run service is not *below* its rsc m2."""
        sched = _hfsc()
        rt_curve = ServiceCurve.two_piece(4e6, 0.002, 1e6)
        sched.add_class("voice", rsc=rt_curve, fsc=ServiceCurve.linear(0.1e6))
        sched.add_class("bulk", fsc=ServiceCurve.linear(9.9e6))
        for name, flow, count in [("voice", 1, 500), ("bulk", 2, 500)]:
            leaf = sched.get_class(name)
            for _ in range(count):
                pkt = _pkt(flow)
                leaf.queue.push(pkt)
                sched._backlog += 1
                if len(leaf.queue) == 1:
                    sched._set_active(leaf, 0.0, pkt.length)
        by_class, trace = _drain(sched, 500)
        elapsed = trace[-1][0]
        voice_rate_bps = by_class["voice"] * 8 / elapsed
        assert voice_rate_bps >= 0.9e6  # rsc m2 = 1 Mbit/s guarantee


class TestConvexCurves:
    def test_convex_rsc_limits_early_rate(self):
        """A convex rsc (m1 < m2) guarantees only a slow start: under
        contention the class's sustained early service tracks m1, not
        m2 — the mirror image of the voice case."""
        sched = _hfsc()
        convex = ServiceCurve.two_piece(0.5e6, 0.02, 8e6)
        sched.add_class("deferred", rsc=convex, fsc=ServiceCurve.linear(0.1e6),
                        qlimit=600)
        sched.add_class("other", fsc=ServiceCurve.linear(9.9e6), qlimit=600)
        for name, flow in [("deferred", 1), ("other", 2)]:
            leaf = sched.get_class(name)
            for _ in range(500):
                pkt = _pkt(flow)
                leaf.queue.push(pkt)
                sched._backlog += 1
                if len(leaf.queue) == 1:
                    sched._set_active(leaf, 0.0, pkt.length)
        _, trace = _drain(sched, 24)  # first ~19 ms at 10 Mbit/s
        deferred_bytes = sum(
            p.length for t, p in trace if p.annotations["hfsc_class"] == "deferred"
        )
        # m1 = 0.5 Mbit/s over ~19 ms -> ~1.2 kB of guaranteed service
        # (plus the tiny 0.1 Mbit/s fsc share): at most a couple of
        # packets, nowhere near the m2 = 8 Mbit/s it gets later.
        assert deferred_bytes <= 3 * PKT

    def test_concave_vs_convex_ordering(self):
        """Same bandwidth envelope, different first slopes -> the
        concave class's packet leaves first (pure decoupling)."""
        sched = _hfsc()
        sched.add_class("fast-start", rsc=ServiceCurve.two_piece(8e6, 0.002, 1e6),
                        fsc=ServiceCurve.linear(0.1e6))
        sched.add_class("slow-start", rsc=ServiceCurve.two_piece(0.25e6, 0.002, 1e6),
                        fsc=ServiceCurve.linear(0.1e6))
        for name, flow in [("fast-start", 1), ("slow-start", 2)]:
            leaf = sched.get_class(name)
            pkt = _pkt(flow)
            leaf.queue.push(pkt)
            sched._backlog += 1
            sched._set_active(leaf, 0.0, pkt.length)
        _, trace = _drain(sched, 2)
        order = [p.annotations["hfsc_class"] for _, p in trace]
        assert order[0] == "fast-start"


class TestHsf:
    def test_drr_leaf_fairness(self):
        """HSF future work: flows sharing one leaf get DRR fairness."""
        sched = HsfPlugin().create_instance()
        sched.add_class(
            "shared", fsc=ServiceCurve.linear(10e6), leaf_discipline="drr", default=True
        )
        ctx = PluginContext(now=0.0)
        # Flow 1 floods first; flow 2 arrives after.
        for _ in range(100):
            sched.process(_pkt(1), ctx)
        for _ in range(100):
            sched.process(_pkt(2), ctx)
        served = Counter()
        for _ in range(100):
            pkt = sched.dequeue(0.0)
            served[pkt.src.value & 0xFF] += 1
        # FIFO would give flow 1 all 100 slots; DRR interleaves.
        assert served[2] >= 40

    def test_fifo_leaf_by_default(self):
        sched = HsfPlugin().create_instance()
        cls = sched.add_class("plain", fsc=ServiceCurve.linear(1e6))
        from repro.sched.base import PacketQueue

        assert isinstance(cls.queue, PacketQueue)

    def test_unknown_discipline_rejected(self):
        sched = HsfPlugin().create_instance()
        with pytest.raises(ValueError):
            sched.add_class("x", leaf_discipline="wfq")
