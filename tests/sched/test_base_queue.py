"""Tests for the shared scheduler scaffolding (PacketQueue, base class)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.plugin import PluginContext, Verdict
from repro.net.packet import make_udp
from repro.sched.base import PacketQueue, SchedulerInstance, SchedulerPlugin


def _pkt(size=1000):
    return make_udp("10.0.0.1", "20.0.0.1", 1, 2, payload_size=size - 28)


class TestPacketQueue:
    def test_push_pop_order(self):
        queue = PacketQueue()
        packets = [_pkt() for _ in range(3)]
        for pkt in packets:
            assert queue.push(pkt)
        assert [queue.pop().packet_id for _ in range(3)] == [
            p.packet_id for p in packets
        ]

    def test_byte_accounting(self):
        queue = PacketQueue()
        queue.push(_pkt(500))
        queue.push(_pkt(700))
        assert queue.bytes == 1200
        queue.pop()
        assert queue.bytes == 700

    def test_tail_drop_counts(self):
        queue = PacketQueue(limit=1)
        assert queue.push(_pkt())
        assert not queue.push(_pkt())
        assert queue.drops == 1

    def test_head_peeks_without_removing(self):
        queue = PacketQueue()
        pkt = _pkt()
        queue.push(pkt)
        assert queue.head() is pkt
        assert len(queue) == 1

    def test_empty_behaviour(self):
        queue = PacketQueue()
        assert queue.pop() is None
        assert queue.head() is None
        assert not queue
        assert len(queue) == 0

    @given(st.lists(st.sampled_from(["push", "pop"]), max_size=60))
    def test_bytes_never_negative(self, ops):
        queue = PacketQueue(limit=10)
        for op in ops:
            if op == "push":
                queue.push(_pkt())
            else:
                queue.pop()
            assert queue.bytes >= 0
            assert queue.bytes == sum(p.length for p in queue.packets)


class TestSchedulerBase:
    class _MiniSched(SchedulerInstance):
        def __init__(self, plugin, **config):
            super().__init__(plugin, **config)
            self.queue = PacketQueue(limit=config.get("limit", 2))

        def enqueue(self, packet, ctx):
            return self.queue.push(packet)

        def dequeue(self, now):
            pkt = self.queue.pop()
            if pkt is not None:
                self._account_sent(pkt)
            return pkt

        def backlog(self):
            return len(self.queue)

    class _MiniPlugin(SchedulerPlugin):
        name = "mini"

    def _instance(self, **config):
        plugin = self._MiniPlugin()
        plugin.instance_class = self._MiniSched
        return plugin.create_instance(**config)

    def test_process_adapts_enqueue(self):
        sched = self._instance()
        assert sched.process(_pkt(), PluginContext()) == Verdict.CONSUMED
        assert sched.packets_queued == 1

    def test_full_queue_drops(self):
        sched = self._instance(limit=1)
        sched.process(_pkt(), PluginContext())
        assert sched.process(_pkt(), PluginContext()) == Verdict.DROP
        assert sched.packets_dropped == 1

    def test_enqueue_cost_charged(self):
        from repro.sim.cost import CycleMeter

        sched = self._instance()
        meter = CycleMeter()
        sched.process(_pkt(), PluginContext(cycles=meter))
        assert meter.breakdown()["sched_enqueue"] == sched.enqueue_cost

    def test_sent_accounting(self):
        sched = self._instance()
        sched.process(_pkt(800), PluginContext())
        sched.dequeue(0.0)
        assert sched.packets_sent == 1
        assert sched.bytes_sent == 800

    def test_interface_config(self):
        sched = self._instance(interface="atm3")
        assert sched.interface == "atm3"
