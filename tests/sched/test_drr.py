"""Tests for the weighted DRR scheduler plugin."""

from collections import Counter

import pytest

from repro.aiu.filters import Filter
from repro.aiu.records import FilterRecord, FlowRecord, GateSlot
from repro.core.plugin import PluginContext, Verdict
from repro.sched.drr import DrrPlugin
from repro.net.packet import make_udp


def _instance(**config):
    return DrrPlugin().create_instance(**config)


def _pkt(flow, size=1000):
    return make_udp(f"10.0.0.{flow}", "20.0.0.1", 5000 + flow, 53, payload_size=size - 28)


def _flow_ctx(record=None):
    """Context carrying a flow-table slot (the §5.2 soft-state path)."""
    slot = GateSlot()
    slot.filter_record = record
    flow = FlowRecord(None, 0)
    flow.slots = [slot]
    ctx = PluginContext(slot=slot, flow=flow)
    return ctx


class TestBasics:
    def test_enqueue_consumes(self):
        drr = _instance()
        assert drr.process(_pkt(1), PluginContext()) == Verdict.CONSUMED
        assert drr.backlog() == 1

    def test_dequeue_returns_packet(self):
        drr = _instance()
        pkt = _pkt(1)
        drr.process(pkt, PluginContext())
        assert drr.dequeue(0.0) is pkt
        assert drr.backlog() == 0

    def test_empty_dequeue_none(self):
        assert _instance().dequeue(0.0) is None

    def test_single_flow_fifo_order(self):
        drr = _instance()
        packets = [_pkt(1) for _ in range(5)]
        for pkt in packets:
            drr.process(pkt, PluginContext())
        out = [drr.dequeue(0.0) for _ in range(5)]
        assert [p.packet_id for p in out] == [p.packet_id for p in packets]

    def test_tail_drop_at_limit(self):
        drr = _instance(limit=2)
        ctx = PluginContext()
        assert drr.process(_pkt(1), ctx) == Verdict.CONSUMED
        assert drr.process(_pkt(1), ctx) == Verdict.CONSUMED
        assert drr.process(_pkt(1), ctx) == Verdict.DROP
        assert drr.packets_dropped == 1

    def test_bad_quantum_rejected(self):
        from repro.core.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            _instance(quantum=0)


class TestFairness:
    def _run(self, drr, flows, packets_per_flow, size_of, rounds):
        for flow in flows:
            for _ in range(packets_per_flow):
                drr.process(_pkt(flow, size=size_of(flow)), PluginContext())
        served = Counter()
        served_bytes = Counter()
        for _ in range(rounds):
            pkt = drr.dequeue(0.0)
            if pkt is None:
                break
            flow = pkt.src.value & 0xFF
            served[flow] += 1
            served_bytes[flow] += pkt.length
        return served, served_bytes

    def test_equal_flows_get_equal_service(self):
        drr = _instance(quantum=1000)
        served, _ = self._run(drr, flows=range(1, 5), packets_per_flow=50,
                              size_of=lambda f: 1000, rounds=100)
        counts = list(served.values())
        assert max(counts) - min(counts) <= 1

    def test_byte_fairness_with_mixed_packet_sizes(self):
        """DRR's point: flows with big packets get no byte advantage."""
        drr = _instance(quantum=1500)
        served, served_bytes = self._run(
            drr,
            flows=[1, 2],
            packets_per_flow=200,
            size_of=lambda f: 1500 if f == 1 else 300,
            rounds=240,
        )
        ratio = served_bytes[1] / served_bytes[2]
        assert 0.85 <= ratio <= 1.15

    def test_weighted_shares(self):
        drr = _instance(quantum=1000, limit=500)
        record_heavy = FilterRecord(Filter.parse("10.0.0.1, *, UDP"), gate="g")
        record_light = FilterRecord(Filter.parse("10.0.0.2, *, UDP"), gate="g")
        drr.set_weight(record_heavy, 3.0)
        drr.set_weight(record_light, 1.0)
        ctx_heavy = _flow_ctx(record_heavy)
        ctx_light = _flow_ctx(record_light)
        for _ in range(400):
            drr.process(_pkt(1), ctx_heavy)
            drr.process(_pkt(2), ctx_light)
        bytes_served = Counter()
        for _ in range(400):
            pkt = drr.dequeue(0.0)
            bytes_served[pkt.src.value & 0xFF] += pkt.length
        ratio = bytes_served[1] / bytes_served[2]
        assert 2.5 <= ratio <= 3.5

    def test_reserve_maps_rate_to_weight(self):
        drr = _instance()
        record = FilterRecord(Filter.parse("10.0.0.1, *, UDP"), gate="g")
        drr.reserve(record, rate_bps=2_000_000)
        assert drr.weight_for(record) == 2.0

    def test_idle_flow_gains_no_credit(self):
        """A flow that was idle must not burst ahead when it returns
        (deficit reset on deactivation)."""
        drr = _instance(quantum=1000)
        for _ in range(3):
            drr.process(_pkt(1), PluginContext())
        while drr.dequeue(0.0):
            pass
        # Flow 1 idles; flow 2 arrives and is served; then flow 1 returns.
        for _ in range(10):
            drr.process(_pkt(2), PluginContext())
        drr.dequeue(0.0)
        for _ in range(10):
            drr.process(_pkt(1), PluginContext())
        served = Counter()
        for _ in range(10):
            served[drr.dequeue(0.0).src.value & 0xFF] += 1
        assert abs(served[1] - served[2]) <= 1


class TestFlowTableIntegration:
    def test_queue_lives_in_slot_private(self):
        drr = _instance()
        record = FilterRecord(Filter.parse("10.*, *, UDP"), gate="g")
        ctx = _flow_ctx(record)
        drr.process(_pkt(1), ctx)
        assert ctx.slot.private is not None
        assert len(ctx.slot.private.queue) == 1

    def test_on_flow_removed_drains_queue(self):
        drr = _instance()
        ctx = _flow_ctx()
        drr.process(_pkt(1), ctx)
        drr.process(_pkt(1), ctx)
        assert drr.backlog() == 2
        drr.on_flow_removed(ctx.flow, ctx.slot)
        assert drr.backlog() == 0
        assert ctx.slot.private is None

    def test_weight_inherited_from_filter_record(self):
        drr = _instance()
        record = FilterRecord(Filter.parse("10.*, *, UDP"), gate="g")
        drr.set_weight(record, 7.0)
        ctx = _flow_ctx(record)
        drr.process(_pkt(1), ctx)
        assert ctx.slot.private.weight == 7.0


class TestMessages:
    def test_set_weight_message(self):
        from repro.core.messages import Message

        plugin = DrrPlugin()
        instance = plugin.create_instance()
        record = FilterRecord(Filter.parse("10.*, *, UDP"), gate="g")
        plugin.callback(Message("set_weight", {
            "instance": instance, "record": record, "weight": 4.0,
        }))
        assert instance.weight_for(record) == 4.0

    def test_reserve_message(self):
        from repro.core.messages import Message

        plugin = DrrPlugin()
        instance = plugin.create_instance()
        record = FilterRecord(Filter.parse("10.*, *, UDP"), gate="g")
        plugin.callback(Message("reserve", {
            "instance": instance, "record": record, "rate_bps": 1_000_000,
        }))
        assert instance.weight_for(record) == 1.0
