"""Tests for FIFO, RED, and the ALTQ-WFQ baseline."""

from collections import Counter

import pytest

from repro.core.errors import ConfigurationError
from repro.core.plugin import PluginContext, Verdict
from repro.net.packet import make_udp
from repro.sched.altq import AltqWfq
from repro.sched.fifo import FifoPlugin
from repro.sched.red import RedPlugin


def _pkt(flow=1, size=1000):
    return make_udp(f"10.0.0.{flow}", "20.0.0.1", 5000 + flow, 53, payload_size=size - 28)


class TestFifo:
    def test_order_preserved(self):
        fifo = FifoPlugin().create_instance()
        packets = [_pkt() for _ in range(4)]
        for pkt in packets:
            assert fifo.process(pkt, PluginContext()) == Verdict.CONSUMED
        out = [fifo.dequeue(0.0) for _ in range(4)]
        assert [p.packet_id for p in out] == [p.packet_id for p in packets]

    def test_tail_drop(self):
        fifo = FifoPlugin().create_instance(limit=1)
        fifo.process(_pkt(), PluginContext())
        assert fifo.process(_pkt(), PluginContext()) == Verdict.DROP

    def test_backlog(self):
        fifo = FifoPlugin().create_instance()
        fifo.process(_pkt(), PluginContext())
        assert fifo.backlog() == 1
        fifo.dequeue(0.0)
        assert fifo.backlog() == 0


class TestRed:
    def test_no_drops_below_min_threshold(self):
        red = RedPlugin().create_instance(min_th=50, max_th=100)
        ctx = PluginContext()
        for _ in range(20):
            assert red.process(_pkt(), ctx) == Verdict.CONSUMED
        assert red.early_drops == 0

    def test_early_drops_between_thresholds(self):
        red = RedPlugin().create_instance(min_th=2, max_th=10, max_p=0.5, ewma_weight=1.0)
        ctx = PluginContext()
        outcomes = [red.process(_pkt(), ctx) for _ in range(60)]
        assert red.early_drops > 0
        assert Verdict.CONSUMED in outcomes

    def test_forced_drops_above_max_threshold(self):
        red = RedPlugin().create_instance(min_th=1, max_th=3, ewma_weight=1.0)
        ctx = PluginContext()
        for _ in range(30):
            red.process(_pkt(), ctx)
        assert red.forced_drops > 0
        assert red.backlog() <= 4

    def test_avg_tracks_queue(self):
        red = RedPlugin().create_instance(ewma_weight=1.0, min_th=100, max_th=200)
        ctx = PluginContext()
        for _ in range(10):
            red.process(_pkt(), ctx)
        assert red.avg == pytest.approx(9.0)  # avg updated before push

    def test_bad_thresholds_rejected(self):
        with pytest.raises(ConfigurationError):
            RedPlugin().create_instance(min_th=10, max_th=5)
        with pytest.raises(ConfigurationError):
            RedPlugin().create_instance(ewma_weight=0)

    def test_deterministic_with_seed(self):
        def run():
            red = RedPlugin().create_instance(min_th=2, max_th=10, ewma_weight=1.0, seed=7)
            ctx = PluginContext()
            return [red.process(_pkt(), ctx) for _ in range(40)]

        assert run() == run()


class TestAltqWfq:
    def test_fair_among_hashed_flows(self):
        altq = AltqWfq(nqueues=256, quantum=1000)
        for flow in range(1, 5):
            for _ in range(50):
                altq.enqueue(_pkt(flow))
        served = Counter()
        for _ in range(100):
            pkt = altq.dequeue()
            served[pkt.src.value & 0xFF] += 1
        counts = list(served.values())
        assert max(counts) - min(counts) <= 2

    def test_collisions_with_few_queues(self):
        """The ALTQ weakness the paper fixes: distinct flows share queues."""
        altq = AltqWfq(nqueues=2, quantum=1000)
        for flow in range(1, 20):
            altq.enqueue(_pkt(flow))
        assert altq.collisions > 0

    def test_per_flow_plugin_never_collides(self):
        from repro.sched.drr import DrrPlugin

        drr = DrrPlugin().create_instance()
        for flow in range(1, 20):
            drr.process(_pkt(flow), PluginContext())
        assert drr.active_flows() == 19

    def test_queue_count_power_of_two(self):
        with pytest.raises(ValueError):
            AltqWfq(nqueues=100)

    def test_drops_counted(self):
        altq = AltqWfq(nqueues=2, quantum=1000, limit=1)
        for _ in range(5):
            altq.enqueue(_pkt(1))
        assert altq.drops > 0

    def test_backlog_and_drain(self):
        altq = AltqWfq()
        for _ in range(3):
            altq.enqueue(_pkt(1))
        assert altq.backlog() == 3
        while altq.dequeue():
            pass
        assert altq.backlog() == 0
