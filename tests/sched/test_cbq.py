"""Tests for CBQ-lite: rates, priorities, borrowing — and the coupling
that H-FSC removes."""

from collections import Counter

import pytest

from repro.core.errors import ConfigurationError
from repro.core.plugin import PluginContext, Verdict
from repro.net.packet import make_udp
from repro.sched.cbq import CbqPlugin

LINK_BPS = 10_000_000
PKT = 1000


def _pkt(flow, size=PKT):
    return make_udp(f"10.0.0.{flow}", "20.0.0.1", 5000 + flow, 53,
                    payload_size=size - 28)


def _backlog(sched, class_name, flow, count):
    cls = sched.get_class(class_name)
    saved_default = sched.default_class
    sched.default_class = cls
    for _ in range(count):
        sched.process(_pkt(flow), PluginContext())
    sched.default_class = saved_default


def _drain(sched, n, link_bps=LINK_BPS, start=0.0):
    now = start
    by_class = Counter()
    trace = []
    served = 0
    while served < n:
        pkt = sched.dequeue(now)
        if pkt is None:
            # CBQ-lite is not work-conserving at frozen time: advance to
            # the next token refill opportunity.
            now += PKT * 8 / link_bps
            if now > start + 60:
                break
            continue
        by_class[pkt.annotations["cbq_class"]] += pkt.length
        trace.append((now, pkt))
        served += 1
        now += pkt.length * 8 / link_bps
    return by_class, trace


class TestHierarchy:
    def test_add_and_duplicate(self):
        sched = CbqPlugin().create_instance()
        sched.add_class("a", rate_bps=1e6)
        with pytest.raises(ConfigurationError):
            sched.add_class("a")
        with pytest.raises(ConfigurationError):
            sched.add_class("b", parent="missing")

    def test_enqueue_needs_default_class(self):
        sched = CbqPlugin().create_instance()
        assert sched.process(_pkt(1), PluginContext()) == Verdict.DROP
        sched.add_class("all", rate_bps=1e6, default=True)
        assert sched.process(_pkt(1), PluginContext()) == Verdict.CONSUMED

    def test_attach_filter_to_leaf_only(self):
        from repro.aiu.filters import Filter
        from repro.aiu.records import FilterRecord

        sched = CbqPlugin().create_instance()
        sched.add_class("agg", rate_bps=5e6)
        sched.add_class("leaf", parent="agg", rate_bps=1e6)
        record = FilterRecord(Filter.parse("10.*, *"), gate="g")
        sched.attach_filter(record, "leaf")
        with pytest.raises(ConfigurationError):
            sched.attach_filter(record, "agg")


class TestRatesAndSharing:
    def test_rates_respected_under_contention(self):
        sched = CbqPlugin().create_instance(link_bps=LINK_BPS)
        sched.add_class("a", rate_bps=7_000_000, qlimit=2000)
        sched.add_class("b", rate_bps=3_000_000, qlimit=2000)
        _backlog(sched, "a", 1, 1000)
        _backlog(sched, "b", 2, 1000)
        by_class, _ = _drain(sched, 800)
        ratio = by_class["a"] / by_class["b"]
        assert 1.8 <= ratio <= 3.0   # ~7:3 with burst effects

    def test_borrowing_when_sibling_idle(self):
        """An idle sibling's bandwidth flows to the busy class via the
        parent (the link class lends)."""
        sched = CbqPlugin().create_instance(link_bps=LINK_BPS)
        sched.add_class("busy", rate_bps=2_000_000, ceil_bps=LINK_BPS, qlimit=2000)
        sched.add_class("idle", rate_bps=8_000_000, qlimit=2000)
        _backlog(sched, "busy", 1, 1000)
        _, trace = _drain(sched, 500)
        elapsed = trace[-1][0] - trace[0][0]
        rate = sum(p.length for _, p in trace) * 8 / elapsed
        # Far above its 2 Mbit/s allocation: borrowing works.
        assert rate > 6_000_000
        assert sched.get_class("busy").borrowed_bytes > 0

    def test_bounded_class_cannot_borrow(self):
        sched = CbqPlugin().create_instance(link_bps=LINK_BPS)
        sched.add_class("capped", rate_bps=2_000_000, bounded=True,
                        qlimit=2000, burst_bytes=PKT)
        _backlog(sched, "capped", 1, 1000)
        _, trace = _drain(sched, 300)
        elapsed = trace[-1][0] - trace[0][0]
        rate = sum(p.length for _, p in trace) * 8 / elapsed
        assert rate < 2_600_000

    def test_priority_wins_when_both_underlimit(self):
        sched = CbqPlugin().create_instance(link_bps=LINK_BPS)
        sched.add_class("hi", rate_bps=5e6, priority=0, qlimit=100)
        sched.add_class("lo", rate_bps=5e6, priority=2, qlimit=100)
        _backlog(sched, "lo", 2, 4)
        _backlog(sched, "hi", 1, 4)
        order = []
        now = 0.0
        for _ in range(8):
            pkt = sched.dequeue(now)
            order.append(pkt.annotations["cbq_class"])
            now += pkt.length * 8 / LINK_BPS
        assert order[:2] == ["hi", "hi"]


class TestCoupling:
    def test_low_rate_class_has_high_delay(self):
        """The coupling: under contention a 1 Mbit/s CBQ class waits a
        token refill (~8 ms/packet) between services — the delay H-FSC's
        concave curve avoids at the same long-run rate."""
        sched = CbqPlugin().create_instance(link_bps=LINK_BPS)
        sched.add_class("voice", rate_bps=1_000_000, qlimit=2000,
                        burst_bytes=PKT)
        sched.add_class("bulk", rate_bps=9_000_000, qlimit=2000)
        _backlog(sched, "voice", 1, 100)
        _backlog(sched, "bulk", 2, 2000)
        _, trace = _drain(sched, 600)
        voice_times = [t for t, p in trace
                       if p.annotations["cbq_class"] == "voice"]
        gaps = [b - a for a, b in zip(voice_times, voice_times[1:])]
        mean_gap = sum(gaps) / len(gaps)
        # ~8 ms between voice services (1000 B at 1 Mbit/s).
        assert mean_gap >= 0.006
