"""Tests for the SCFQ scheduler plugin."""

from collections import Counter

import pytest

from repro.aiu.filters import Filter
from repro.aiu.records import FilterRecord, FlowRecord, GateSlot
from repro.core.errors import ConfigurationError
from repro.core.plugin import PluginContext, Verdict
from repro.net.packet import make_udp
from repro.sched.scfq import ScfqPlugin
from repro.stats import jain_fairness


def _instance(**config):
    return ScfqPlugin().create_instance(**config)


def _pkt(flow, size=1000):
    return make_udp(f"10.0.0.{flow}", "20.0.0.1", 5000 + flow, 53,
                    payload_size=size - 28)


def _flow_ctx(record=None):
    slot = GateSlot()
    slot.filter_record = record
    flow = FlowRecord(None, 0)
    flow.slots = [slot]
    return PluginContext(slot=slot, flow=flow)


class TestBasics:
    def test_enqueue_dequeue(self):
        scfq = _instance()
        pkt = _pkt(1)
        assert scfq.process(pkt, PluginContext()) == Verdict.CONSUMED
        assert scfq.dequeue(0.0) is pkt
        assert scfq.backlog() == 0

    def test_fifo_within_flow(self):
        scfq = _instance()
        packets = [_pkt(1) for _ in range(5)]
        for pkt in packets:
            scfq.process(pkt, PluginContext())
        out = [scfq.dequeue(0.0) for _ in range(5)]
        assert [p.packet_id for p in out] == [p.packet_id for p in packets]

    def test_per_flow_limit(self):
        scfq = _instance(limit=2)
        ctx = PluginContext()
        assert scfq.process(_pkt(1), ctx) == Verdict.CONSUMED
        assert scfq.process(_pkt(1), ctx) == Verdict.CONSUMED
        assert scfq.process(_pkt(1), ctx) == Verdict.DROP
        # Other flows are unaffected by one flow's full queue.
        assert scfq.process(_pkt(2), ctx) == Verdict.CONSUMED

    def test_empty_dequeue(self):
        assert _instance().dequeue(0.0) is None

    def test_bad_weight_rejected(self):
        scfq = _instance()
        record = FilterRecord(Filter.parse("10.*, *"), gate="g")
        with pytest.raises(ConfigurationError):
            scfq.set_weight(record, 0)


class TestFairness:
    def test_equal_flows_fair(self):
        scfq = _instance(limit=200)
        for flow in range(1, 9):
            for _ in range(100):
                scfq.process(_pkt(flow), PluginContext())
        served = Counter()
        for _ in range(400):
            served[scfq.dequeue(0.0).src_port - 5000] += 1
        assert jain_fairness(served.values()) > 0.99

    def test_weighted_shares(self):
        scfq = _instance(limit=1000)
        heavy = FilterRecord(Filter.parse("10.0.0.1, *, UDP"), gate="g")
        light = FilterRecord(Filter.parse("10.0.0.2, *, UDP"), gate="g")
        scfq.set_weight(heavy, 3.0)
        scfq.set_weight(light, 1.0)
        ctx_h, ctx_l = _flow_ctx(heavy), _flow_ctx(light)
        for _ in range(800):
            scfq.process(_pkt(1), ctx_h)
            scfq.process(_pkt(2), ctx_l)
        served = Counter()
        for _ in range(800):
            pkt = scfq.dequeue(0.0)
            served[pkt.src_port - 5000] += pkt.length
        assert 2.6 <= served[1] / served[2] <= 3.4

    def test_byte_fairness_mixed_sizes(self):
        scfq = _instance(limit=2000)
        for _ in range(600):
            scfq.process(_pkt(1, size=1500), PluginContext())
            scfq.process(_pkt(2, size=300), PluginContext())
        served = Counter()
        for _ in range(700):
            pkt = scfq.dequeue(0.0)
            served[pkt.src_port - 5000] += pkt.length
        assert 0.85 <= served[1] / served[2] <= 1.15

    def test_late_flow_not_starved(self):
        scfq = _instance(limit=500)
        for _ in range(300):
            scfq.process(_pkt(1), PluginContext())
        for _ in range(300):
            scfq.process(_pkt(2), PluginContext())
        served = Counter()
        for _ in range(200):
            served[scfq.dequeue(0.0).src_port - 5000] += 1
        # The newcomer starts at the current virtual time and interleaves.
        assert served[2] >= 80


class TestIdleReset:
    def test_idle_flow_gets_no_backlog_penalty(self):
        scfq = _instance()
        for _ in range(5):
            scfq.process(_pkt(1), PluginContext())
        while scfq.dequeue(0.0):
            pass
        # Re-activating after idle: served immediately, not behind a
        # stale virtual-time debt.
        scfq.process(_pkt(1), PluginContext())
        assert scfq.dequeue(0.0) is not None

    def test_slot_soft_state(self):
        scfq = _instance()
        ctx = _flow_ctx()
        scfq.process(_pkt(1), ctx)
        from repro.sched.scfq import ScfqFlowState

        assert isinstance(ctx.slot.private, ScfqFlowState)
        scfq.on_flow_removed(ctx.flow, ctx.slot)
        assert ctx.slot.private is None


class TestMessages:
    def test_reserve_message(self):
        from repro.core.messages import Message

        plugin = ScfqPlugin()
        instance = plugin.create_instance()
        record = FilterRecord(Filter.parse("10.*, *"), gate="g")
        plugin.callback(Message("reserve", {
            "instance": instance, "record": record, "rate_bps": 4_000_000,
        }))
        assert instance.weight_for(record) == 4.0

    def test_in_plugin_registry(self):
        from repro.mgr import PLUGIN_REGISTRY

        assert PLUGIN_REGISTRY["scfq"] is ScfqPlugin
