"""Scheduler conformance battery: invariants every discipline must hold,
run against FIFO, DRR, SCFQ, and H-FSC through one harness."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.plugin import PluginContext, Verdict
from repro.net.packet import make_udp
from repro.sched import DrrPlugin, FifoPlugin, HfscPlugin, ScfqPlugin, ServiceCurve


def _mk_fifo():
    return FifoPlugin().create_instance(limit=10_000)


def _mk_drr():
    return DrrPlugin().create_instance(limit=10_000)


def _mk_scfq():
    return ScfqPlugin().create_instance(limit=10_000)


def _mk_hfsc():
    sched = HfscPlugin().create_instance()
    sched.add_class("all", fsc=ServiceCurve.linear(10e6), default=True,
                    qlimit=10_000)
    return sched


FACTORIES = {
    "fifo": _mk_fifo,
    "drr": _mk_drr,
    "scfq": _mk_scfq,
    "hfsc": _mk_hfsc,
}


def _pkt(flow, size=800):
    return make_udp(f"10.0.0.{flow}", "20.0.0.1", 5000 + flow, 53,
                    payload_size=max(0, size - 28))


@pytest.fixture(params=list(FACTORIES), ids=list(FACTORIES))
def sched(request):
    return FACTORIES[request.param]()


class TestConformance:
    def test_work_conservation(self, sched):
        """A backlogged scheduler never refuses to dequeue."""
        for i in range(60):
            assert sched.process(_pkt(i % 5 + 1), PluginContext()) == Verdict.CONSUMED
        for remaining in range(60, 0, -1):
            assert sched.backlog() == remaining
            assert sched.dequeue(0.0) is not None
        assert sched.dequeue(0.0) is None
        assert sched.backlog() == 0

    def test_packet_conservation(self, sched):
        """Everything accepted comes out exactly once."""
        sent_ids = set()
        for i in range(40):
            pkt = _pkt(i % 3 + 1)
            if sched.process(pkt, PluginContext()) == Verdict.CONSUMED:
                sent_ids.add(pkt.packet_id)
        received = set()
        while True:
            pkt = sched.dequeue(0.0)
            if pkt is None:
                break
            assert pkt.packet_id not in received, "duplicate delivery"
            received.add(pkt.packet_id)
        assert received == sent_ids

    def test_no_reordering_within_flow(self, sched):
        rng = random.Random(7)
        sent = {f: [] for f in (1, 2, 3)}
        for _ in range(60):
            flow = rng.randrange(1, 4)
            pkt = _pkt(flow, size=rng.choice([200, 800, 1400]))
            sched.process(pkt, PluginContext())
            sent[flow].append(pkt.packet_id)
        got = {f: [] for f in (1, 2, 3)}
        while True:
            pkt = sched.dequeue(0.0)
            if pkt is None:
                break
            got[pkt.src_port - 5000].append(pkt.packet_id)
        assert got == sent

    def test_idle_then_busy_cycles(self, sched):
        """Repeated busy/idle cycles accumulate no phantom state."""
        for _cycle in range(5):
            for i in range(10):
                sched.process(_pkt(i % 2 + 1), PluginContext())
            drained = 0
            while sched.dequeue(0.0) is not None:
                drained += 1
            assert drained == 10
            assert sched.backlog() == 0


@settings(max_examples=25, deadline=None)
@given(
    name=st.sampled_from(list(FACTORIES)),
    arrivals=st.lists(
        st.tuples(st.integers(1, 4), st.integers(64, 1500)),
        min_size=1, max_size=80,
    ),
)
def test_conservation_property(name, arrivals):
    sched = FACTORIES[name]()
    accepted = 0
    for flow, size in arrivals:
        if sched.process(_pkt(flow, size), PluginContext()) == Verdict.CONSUMED:
            accepted += 1
    drained = 0
    while sched.dequeue(0.0) is not None:
        drained += 1
    assert drained == accepted
    assert sched.backlog() == 0
