"""Tests for service curves and runtime piecewise-linear curves."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.sched.curves import INFINITY, RuntimeCurve, ServiceCurve


class TestServiceCurve:
    def test_linear(self):
        sc = ServiceCurve.linear(8_000_000)  # 8 Mbit/s == 1 MB/s
        assert sc.m1 == sc.m2 == 1_000_000
        assert sc.value(2.0) == 2_000_000

    def test_two_piece(self):
        sc = ServiceCurve.two_piece(16_000_000, 0.5, 8_000_000)
        assert sc.is_concave
        assert sc.value(0.5) == 1_000_000
        assert sc.value(1.5) == 2_000_000

    def test_delay_bounded(self):
        sc = ServiceCurve.delay_bounded(1_000_000, burst_bytes=1500, delay=0.01)
        assert sc.value(0.01) == pytest.approx(1500)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ServiceCurve(-1, 0, 0)
        with pytest.raises(ValueError):
            ServiceCurve.delay_bounded(1e6, 100, 0)


class TestRuntimeCurve:
    def test_from_service_curve_translation(self):
        sc = ServiceCurve.linear(8_000_000)
        curve = RuntimeCurve.from_service_curve(sc, x=10.0, y=500.0)
        assert curve.y_at_x(10.0) == 500.0
        assert curve.y_at_x(11.0) == 500.0 + 1_000_000

    def test_y_clamped_before_start(self):
        curve = RuntimeCurve.from_service_curve(ServiceCurve.linear(8e6), 5.0, 100.0)
        assert curve.y_at_x(0.0) == 100.0

    def test_x_at_y_inverse(self):
        curve = RuntimeCurve.from_service_curve(ServiceCurve.linear(8e6), 0.0, 0.0)
        assert curve.x_at_y(2_000_000) == pytest.approx(2.0)

    def test_x_at_y_two_piece(self):
        sc = ServiceCurve.two_piece(16e6, 1.0, 8e6)
        curve = RuntimeCurve.from_service_curve(sc, 0.0, 0.0)
        # First 2 MB in the first second, then 1 MB/s.
        assert curve.x_at_y(1_000_000) == pytest.approx(0.5)
        assert curve.x_at_y(3_000_000) == pytest.approx(2.0)

    def test_x_at_y_flat_tail_returns_infinity(self):
        sc = ServiceCurve.two_piece(8e6, 1.0, 0.0)
        curve = RuntimeCurve.from_service_curve(sc, 0.0, 0.0)
        assert curve.x_at_y(999_999) < 1.0
        assert curve.x_at_y(2_000_000) == INFINITY

    def test_x_at_y_below_start(self):
        curve = RuntimeCurve.from_service_curve(ServiceCurve.linear(8e6), 3.0, 100.0)
        assert curve.x_at_y(50.0) == 3.0

    def test_empty_curve_raises(self):
        with pytest.raises(ValueError):
            RuntimeCurve().y_at_x(0)
        with pytest.raises(ValueError):
            RuntimeCurve().x_at_y(0)

    def test_min_with_on_empty_adopts_curve(self):
        curve = RuntimeCurve()
        curve.min_with(ServiceCurve.linear(8e6), 1.0, 10.0)
        assert curve.y_at_x(1.0) == 10.0


class TestPiecewiseMin:
    def test_min_of_crossing_lines(self):
        slow_then_level = ServiceCurve.two_piece(8e6, 1.0, 0.0)
        curve = RuntimeCurve.from_service_curve(slow_then_level, 0.0, 0.0)
        # A later but steeper curve.
        curve.min_with(ServiceCurve.linear(16e6), 0.25, 0.0)
        # Early on, the second curve (starting at 0.25 with y=0) is lower.
        assert curve.y_at_x(0.25) == 0.0
        # Late, the first curve's flat tail (1 MB) is the min.
        assert curve.y_at_x(10.0) == pytest.approx(1_000_000)

    def test_min_is_pointwise_min(self):
        a = ServiceCurve.two_piece(10e6, 0.4, 2e6)
        b = ServiceCurve.two_piece(4e6, 1.0, 8e6)
        curve = RuntimeCurve.from_service_curve(a, 0.0, 0.0)
        curve.min_with(b, 0.0, 0.0)
        ra = RuntimeCurve.from_service_curve(a, 0.0, 0.0)
        rb = RuntimeCurve.from_service_curve(b, 0.0, 0.0)
        for t in [0.0, 0.1, 0.4, 0.5, 0.9, 1.0, 1.5, 3.0, 10.0]:
            assert curve.y_at_x(t) == pytest.approx(
                min(ra.y_at_x(t), rb.y_at_x(t)), rel=1e-9, abs=1e-6
            )


@given(
    m1a=st.integers(0, 100), da=st.integers(0, 10), m2a=st.integers(0, 100),
    m1b=st.integers(0, 100), db=st.integers(0, 10), m2b=st.integers(0, 100),
    xa=st.integers(0, 10), ya=st.integers(0, 1000),
    xb=st.integers(0, 10), yb=st.integers(0, 1000),
    probes=st.lists(st.floats(0, 40, allow_nan=False), max_size=8),
)
def test_min_with_property(m1a, da, m2a, m1b, db, m2b, xa, ya, xb, yb, probes):
    sc_a = ServiceCurve(float(m1a), float(da), float(m2a))
    sc_b = ServiceCurve(float(m1b), float(db), float(m2b))
    merged = RuntimeCurve.from_service_curve(sc_a, float(xa), float(ya))
    merged.min_with(sc_b, float(xb), float(yb))
    ref_a = RuntimeCurve.from_service_curve(sc_a, float(xa), float(ya))
    ref_b = RuntimeCurve.from_service_curve(sc_b, float(xb), float(yb))
    for t in probes:
        expected = min(ref_a.y_at_x(t), ref_b.y_at_x(t))
        assert merged.y_at_x(t) == pytest.approx(expected, rel=1e-9, abs=1e-6)


@given(
    m1=st.integers(1, 100), d=st.integers(0, 10), m2=st.integers(1, 100),
    y=st.floats(0, 10000, allow_nan=False),
)
def test_x_at_y_then_y_at_x_roundtrip(m1, d, m2, y):
    curve = RuntimeCurve.from_service_curve(
        ServiceCurve(float(m1), float(d), float(m2)), 0.0, 0.0
    )
    t = curve.x_at_y(y)
    if not math.isinf(t):
        assert curve.y_at_x(t) == pytest.approx(max(y, 0.0), rel=1e-9, abs=1e-6)
