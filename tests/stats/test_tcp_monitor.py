"""Tests for the TCP congestion-backoff monitor plugin."""

import pytest

from repro.core.messages import Message
from repro.core.plugin import PluginContext, Verdict
from repro.net.packet import Packet, make_tcp, make_udp
from repro.stats import TcpMonitorPlugin


def _seg(seq, now=0.0):
    pkt = make_tcp("10.0.0.1", "20.0.0.1", 5000, 80, payload_size=100, seq=seq)
    return pkt, PluginContext(now=now)


@pytest.fixture
def monitor():
    return TcpMonitorPlugin().create_instance()


class TestSegmentTracking:
    def test_in_order_segments_no_retransmissions(self, monitor):
        for i, seq in enumerate([100, 200, 300, 400]):
            pkt, ctx = _seg(seq, now=0.01 * i)
            assert monitor.process(pkt, ctx) == Verdict.CONTINUE
        state = next(iter(monitor.report().values()))
        assert state.segments == 4
        assert state.retransmissions == 0
        assert state.retransmission_rate == 0.0

    def test_retransmission_detected(self, monitor):
        for i, seq in enumerate([100, 200, 200, 300]):
            pkt, ctx = _seg(seq, now=0.01 * i)
            monitor.process(pkt, ctx)
        state = next(iter(monitor.report().values()))
        assert state.retransmissions == 1

    def test_old_segment_counts_as_retransmission(self, monitor):
        for i, seq in enumerate([100, 300, 200]):
            pkt, ctx = _seg(seq, now=0.01 * i)
            monitor.process(pkt, ctx)
        state = next(iter(monitor.report().values()))
        assert state.retransmissions == 1

    def test_non_tcp_ignored(self, monitor):
        pkt = make_udp("10.0.0.1", "20.0.0.1", 5000, 53)
        assert monitor.process(pkt, PluginContext()) == Verdict.CONTINUE
        assert monitor.non_tcp_ignored == 1
        assert monitor.report() == {}

    def test_flows_tracked_separately(self, monitor):
        a, ctx = _seg(100)
        monitor.process(a, ctx)
        b = make_tcp("10.0.0.2", "20.0.0.1", 5001, 80, seq=100)
        monitor.process(b, PluginContext())
        assert len(monitor.report()) == 2


class TestBackoffClassification:
    def _drive(self, monitor, schedule):
        """schedule: list of (seq, time)."""
        for seq, now in schedule:
            pkt, ctx = _seg(seq, now=now)
            monitor.process(pkt, ctx)

    def test_responsive_flow_backs_off(self, monitor):
        # Tight spacing, a loss, then much wider spacing: responsive.
        schedule = [(100, 0.00), (200, 0.01), (200, 0.02),
                    (300, 0.30), (400, 0.60)]
        self._drive(monitor, schedule)
        assert monitor.unresponsive_flows() == []

    def test_unresponsive_flow_flagged(self, monitor):
        # Retransmits constantly with no change in pacing.
        schedule = [(100 * i if i % 3 else 100, 0.01 * i) for i in range(1, 40)]
        self._drive(monitor, schedule)
        assert len(monitor.unresponsive_flows()) == 1

    def test_clean_flow_never_flagged(self, monitor):
        schedule = [(100 * i, 0.01 * i) for i in range(1, 40)]
        self._drive(monitor, schedule)
        assert monitor.unresponsive_flows() == []


class TestIntegration:
    def test_soft_state_in_flow_slot(self, monitor):
        from repro.aiu.records import FlowRecord, GateSlot

        slot = GateSlot()
        flow = FlowRecord(None, 0)
        flow.slots = [slot]
        pkt, _ = _seg(100)
        monitor.process(pkt, PluginContext(slot=slot, flow=flow))
        from repro.stats import TcpFlowState

        assert isinstance(slot.private, TcpFlowState)

    def test_report_message(self):
        plugin = TcpMonitorPlugin()
        instance = plugin.create_instance()
        pkt, ctx = _seg(100)
        instance.process(pkt, ctx)
        report = plugin.callback(Message("report", {"instance": instance}))
        assert len(report) == 1
        assert plugin.callback(Message("unresponsive", {"instance": instance})) == []

    def test_parsed_wire_packets_carry_seq(self):
        pkt = make_tcp("10.0.0.1", "20.0.0.1", 5000, 80, payload_size=4)
        parsed = Packet.parse(pkt.serialize())
        assert "tcp_seq" in parsed.annotations

    def test_through_router_gate(self):
        from repro.core import Router

        router = Router(flow_buckets=256)
        router.add_interface("atm0", prefix="10.0.0.0/8")
        router.add_interface("atm1", prefix="20.0.0.0/8")
        plugin = TcpMonitorPlugin()
        router.pcu.load(plugin)
        instance = plugin.create_instance()
        plugin.register_instance(instance, "*, *, TCP", gate="ip_options")
        for i, seq in enumerate([100, 200, 200, 300]):
            pkt = make_tcp("10.0.0.1", "20.0.0.1", 5000, 80, seq=seq, iif="atm0")
            router.receive(pkt, now=0.01 * i)
        state = next(iter(instance.report().values()))
        assert state.segments == 4
        assert state.retransmissions == 1
