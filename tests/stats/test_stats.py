"""Tests for the statistics plugin and the metrics helpers."""

import pytest

from repro.core.messages import Message
from repro.core.plugin import PluginContext, Verdict
from repro.net.packet import make_tcp, make_udp
from repro.stats import (
    RateMeter,
    StatisticsPlugin,
    jain_fairness,
    percentile,
    share_error,
    stddev,
    summarize,
)


def _pkt(flow=1, size=1000):
    return make_udp(f"10.0.0.{flow}", "20.0.0.1", 5000 + flow, 53, payload_size=size - 28)


class TestStatisticsPlugin:
    def test_volume_collector(self):
        stats = StatisticsPlugin().create_instance()
        ctx = PluginContext()
        for _ in range(3):
            assert stats.process(_pkt(1), ctx) == Verdict.CONTINUE
        stats.process(_pkt(2), ctx)
        totals = stats.totals()
        assert totals["flows"] == 2
        assert totals["packets"] == 4
        assert totals["bytes"] == 4000

    def test_swappable_collector(self):
        stats = StatisticsPlugin().create_instance()
        ctx = PluginContext()
        stats.process(_pkt(1, size=100), ctx)
        stats.set_collector("sizes")
        stats.process(_pkt(1, size=100), ctx)
        stats.process(_pkt(1, size=1000), ctx)
        report = stats.report()
        record = next(iter(report.values()))
        assert record["packets"] == 1          # volume stopped counting
        assert sum(record["size_bins"].values()) == 2

    def test_protocol_collector(self):
        stats = StatisticsPlugin().create_instance(collector="protocols")
        ctx = PluginContext()
        stats.process(_pkt(1), ctx)
        stats.process(make_tcp("10.0.0.1", "20.0.0.1", 5001, 80), ctx)
        report = stats.report()
        protos = [dict(r["protocols"]) for r in report.values()]
        merged = {}
        for p in protos:
            merged.update(p)
        assert merged.get("UDP") == 1
        assert merged.get("TCP") == 1

    def test_report_message(self):
        plugin = StatisticsPlugin()
        stats = plugin.create_instance()
        stats.process(_pkt(1), PluginContext())
        report = plugin.callback(Message("report", {"instance": stats}))
        assert len(report) == 1

    def test_set_collector_message(self):
        plugin = StatisticsPlugin()
        stats = plugin.create_instance()
        plugin.callback(Message("set_collector", {"instance": stats, "collector": "sizes"}))
        assert stats.collector_name == "sizes"


class TestMetrics:
    def test_jain_perfectly_fair(self):
        assert jain_fairness([10, 10, 10, 10]) == pytest.approx(1.0)

    def test_jain_worst_case(self):
        assert jain_fairness([100, 0, 0, 0]) == pytest.approx(0.25)

    def test_jain_rejects_empty(self):
        with pytest.raises(ValueError):
            jain_fairness([])

    def test_percentile_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_percentile_interpolates(self):
        assert percentile([0, 10], 25) == pytest.approx(2.5)

    def test_percentile_bounds(self):
        with pytest.raises(ValueError):
            percentile([1], 101)
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_summarize_keys(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert set(summary) == {"mean", "stddev", "min", "p50", "p99", "max"}
        assert summary["mean"] == pytest.approx(2.0)

    def test_share_error(self):
        served = {"a": 75, "b": 25}
        weights = {"a": 3, "b": 1}
        assert share_error(served, weights) == pytest.approx(0.0)
        served_bad = {"a": 50, "b": 50}
        assert share_error(served_bad, weights) > 0.3

    def test_rate_meter(self):
        meter = RateMeter()
        meter.observe(1000, at_time=0.0)
        meter.observe(1000, at_time=1.0)
        assert meter.bps == pytest.approx(16000)
        assert meter.pps == pytest.approx(2.0)

    def test_rate_meter_empty(self):
        # Empty inputs raise uniformly across repro.stats.metrics
        # (same contract as mean/percentile/stddev/summarize).
        with pytest.raises(ValueError):
            RateMeter().bps
        with pytest.raises(ValueError):
            RateMeter().pps

    def test_empty_inputs_raise_uniformly(self):
        with pytest.raises(ValueError):
            stddev([])
        with pytest.raises(ValueError):
            summarize([])

    def test_zero_duration_rates_are_zero(self):
        # One observation: a window of zero duration, not an empty meter.
        meter = RateMeter()
        meter.observe(1000, at_time=1.0)
        assert meter.bps == 0.0
        assert meter.pps == 0.0
