"""The self-lint gate: every built-in plugin must be clean.

This pins the satellite fix made alongside the analyzer: the AH plugin
computed its ICV over the packet payload without charging the cost
model (an RP205), which silently under-reported §7's modelled numbers
for authenticated flows.  The lint found it, the charge was added, and
this suite keeps the registry at zero findings forever after.
"""

from repro.analysis import lint_builtin_plugins, self_lint
from repro.analysis.hotpath import builtin_plugin_classes


def test_builtin_plugins_lint_clean():
    report = lint_builtin_plugins()
    assert not list(report), [d.render() for d in report]


def test_builtin_registry_is_covered():
    # The lint must actually be looking at the full registry, not an
    # empty list: every name in PLUGIN_REGISTRY resolves to a class.
    classes = builtin_plugin_classes()
    assert len(classes) >= 15
    names = {cls.__name__ for cls in classes}
    assert {"AhPlugin", "EspPlugin", "DrrPlugin", "RedPlugin"} <= names


def test_full_self_lint_gate_is_clean():
    # The CI gate: plugins + DAG equivalence + BMP engine equivalence.
    report = self_lint()
    assert not report.has_errors, [d.render() for d in report.errors()]
    assert len(report) == 0, [d.render() for d in report]


def test_ah_charges_sw_auth_per_byte():
    """The fixed RP205: AH must charge SW_AUTH_PER_BYTE for the bytes
    its ICV covers, in both directions."""
    from repro.core.plugin import PluginContext
    from repro.net.addresses import IPAddress
    from repro.net.packet import Packet
    from repro.security.ah import AhPlugin
    from repro.security.sa import SADatabase, SecurityAssociation
    from repro.sim.cost import Costs, CycleMeter

    sa = SecurityAssociation(spi=1, auth_key=b"k" * 16)
    sadb = SADatabase()
    sadb.add(sa)
    plugin = AhPlugin()
    outbound = plugin.create_instance(direction="out", sa=sa)
    inbound = plugin.create_instance(direction="in", sadb=sadb)

    def fresh_packet():
        return Packet(
            src=IPAddress(0x0A000001, 32),
            dst=IPAddress(0x0A000002, 32),
            protocol=6,
            src_port=1234,
            dst_port=80,
            payload=b"x" * 100,
        )

    packet = fresh_packet()
    meter = CycleMeter()
    ctx = PluginContext(router=None, gate="ip_security", now=0.0, cycles=meter)
    outbound.process(packet, ctx)
    charged_out = meter.breakdown().get("sw_auth", 0)
    assert charged_out > 0
    assert charged_out % Costs.SW_AUTH_PER_BYTE == 0

    meter_in = CycleMeter()
    ctx_in = PluginContext(router=None, gate="ip_security", now=0.0, cycles=meter_in)
    inbound.process(packet, ctx_in)
    assert meter_in.breakdown().get("sw_auth", 0) > 0
