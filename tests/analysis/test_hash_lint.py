"""RP209: builtin ``hash()`` on packet/flow state in data-path code.

``hash()`` is process-seeded (PYTHONHASHSEED), so using it for flow
placement sends the same flow to different shards in different worker
processes — silently breaking the sharded data path's per-flow
equivalence guarantee.  The lint flags any non-constant ``hash()`` call
reachable from a data-path root, and the self-lint additionally sweeps
the shard dispatch layer itself (repro.shard.dispatch / the worker
pool's hot methods) so a regression there cannot land quietly.
"""

import textwrap

import pytest

from repro.analysis.diagnostics import CODES
from repro.analysis.hotpath import (
    lint_module_functions,
    lint_plugin,
    lint_shard_dispatch,
)


def _load_module(tmp_path, name, source):
    import importlib.util
    import sys

    path = tmp_path / f"{name}.py"
    path.write_text(textwrap.dedent(source))
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


PLUGIN_TEMPLATE = """
from repro.core.plugin import Plugin, PluginInstance, Verdict

class {instance}(PluginInstance):
    def process(self, packet, ctx):
        {body}
        return Verdict.CONTINUE

class {plugin}(Plugin):
    name = "fixture"
    plugin_type = 1
    instance_class = {instance}
"""


def _lint_body(tmp_path, name, body):
    module = _load_module(
        tmp_path, name,
        PLUGIN_TEMPLATE.format(instance=f"I{name}", plugin=f"P{name}",
                               body=body),
    )
    return lint_plugin(getattr(module, f"P{name}"))


def test_rp209_registered():
    severity, summary = CODES["RP209"]
    assert severity == "error"
    assert "hash" in summary


def test_hash_on_packet_state_is_flagged(tmp_path):
    diags = _lint_body(tmp_path, "hashbad",
                       "shard = hash(packet.src) % 4")
    assert [d.code for d in diags] == ["RP209"]
    assert "flow_fold32" in diags[0].hint


def test_hash_on_flow_tuple_is_flagged(tmp_path):
    diags = _lint_body(
        tmp_path, "hashtup",
        "bucket = hash((packet.src, packet.dst, packet.protocol)) % 8")
    assert [d.code for d in diags] == ["RP209"]


def test_deterministic_fold_is_clean(tmp_path):
    diags = _lint_body(tmp_path, "foldok",
                       "shard = packet.flow_fold32() % 4")
    assert diags == []


def test_constant_hash_is_not_flagged(tmp_path):
    """hash('literal') cannot vary per packet; only non-constant
    arguments read as placement derivation."""
    diags = _lint_body(tmp_path, "hashconst", "tag = hash('probe')")
    assert diags == []


def test_suppression_comment_is_honored(tmp_path):
    diags = _lint_body(
        tmp_path, "hashsupp",
        "shard = hash(packet.src) % 4  # rp: ignore[RP209]")
    assert diags == []


def test_module_function_lint_catches_hash(tmp_path):
    module = _load_module(tmp_path, "dispatchbad", """
        def pick_shard(packet, nshards):
            return hash(packet.src) % nshards
    """)
    diags = lint_module_functions(module)
    assert [d.code for d in diags] == ["RP209"]


def test_shard_dispatch_layer_self_lints_clean():
    """The shipped dispatch/handoff layer must never trip its own lint
    (this is the ci_check.sh self-lint gate's shard slice)."""
    report = lint_shard_dispatch()
    assert report.diagnostics == []
