"""Sharded analysis sweep + analysis-cache staleness.

Pins the satellite fix: ``library.analyze()``'s freshness cache is
keyed on (plan epoch, configuration revision), so configuration ops
that never touch a filter — including ops fanned out across shards by
``ShardedPluginLibrary`` — invalidate it.  Also pins the sharded sweep
(``analyze_sharded`` / ``ShardedPluginLibrary.analyze``), its inline-
backend requirement, and the pmgr ``analyze --json`` round-trip on a
ShardedRouter."""

import json

import pytest

from repro import PluginManager, Router, ShardedRouter
from repro.analysis import analyze_sharded
from repro.core.errors import ConfigurationError
from repro.core.gates import GATE_IP_SECURITY
from repro.mgr.library import RouterPluginLibrary
from repro.net.packet import make_udp
from repro.shard.control import ShardedPluginLibrary


def _factory(index):
    router = Router(name=f"shard/{index}")
    router.add_interface("atm0", prefix="10.0.0.0/8")
    router.add_interface("atm1", prefix="20.0.0.0/8")
    return router


def _sharded(nshards=2):
    sharded = ShardedRouter(nshards=nshards, factory=_factory, backend="inline")
    library = ShardedPluginLibrary(sharded)
    library.modload("firewall")
    library.create_instance("firewall", "fw0")
    library.bind("fw0", "*, *, UDP", gate=GATE_IP_SECURITY)
    return sharded, library


def _warm(sharded, count=8):
    sharded.receive_batch(
        [
            make_udp("10.0.0.1", "20.0.1.1", 5000 + i, 9000, iif="atm0")
            for i in range(count)
        ]
    )


# ----------------------------------------------------------------------
# Cache staleness (plain library)
# ----------------------------------------------------------------------
def test_analyze_cache_goes_stale_on_filterless_config_op():
    router = _factory(0)
    library = RouterPluginLibrary(router)
    library.analyze()
    assert library._analysis_status().startswith("0 findings")
    library.modload("firewall")  # no filter touched: plan epoch unmoved
    assert library._analysis_status().startswith("stale (")
    library.analyze()
    assert library._analysis_status().startswith("0 findings")


def test_analyze_cache_goes_stale_on_instance_ops():
    router = _factory(0)
    library = RouterPluginLibrary(router)
    library.modload("firewall")
    library.analyze()
    library.create_instance("firewall", "fw0")
    assert library._analysis_status().startswith("stale (")
    library.analyze()
    library.free_instance("fw0")
    assert library._analysis_status().startswith("stale (")


def test_analyze_cache_still_tracks_filter_changes():
    router = _factory(0)
    library = RouterPluginLibrary(router)
    library.modload("firewall")
    library.create_instance("firewall", "fw0")
    library.analyze()
    library.bind("fw0", "*, *, UDP", gate=GATE_IP_SECURITY)
    assert library._analysis_status().startswith("stale (")


# ----------------------------------------------------------------------
# Cache staleness under sharded fanout
# ----------------------------------------------------------------------
def test_fanout_config_op_invalidates_shard_caches():
    sharded, library = _sharded()
    library.analyze()
    for shard_library in library.libraries:
        assert shard_library._analysis_status().startswith("0 findings")
    library.modload("stats")  # fanout op, no filter touched
    for shard_library in library.libraries:
        assert shard_library._analysis_status().startswith("stale (")


# ----------------------------------------------------------------------
# The sharded sweep
# ----------------------------------------------------------------------
def test_sharded_sweep_is_clean_on_warm_router():
    sharded, library = _sharded()
    _warm(sharded)
    report = library.analyze()
    assert len(report) == 0
    # The sweep refreshed shard 0's freshness cache.
    assert library.libraries[0]._analysis_status().startswith("0 findings")


def test_analyze_sharded_covers_every_shard():
    sharded, library = _sharded(nshards=3)
    _warm(sharded, count=16)
    # Tamper shard 2's cached loop plan: the sweep must catch it even
    # though shard 0 is clean.
    victim = sharded.shards[2]
    assert victim._batch_loops
    fn = next(iter(victim._batch_loops.values()))
    fn._plan["tm"] = True
    report = analyze_sharded(sharded, libraries=library.libraries)
    findings = [d for d in report if d.code == "RP504"]
    assert findings
    assert all(d.subject.startswith("shard2: ") for d in findings)


def test_analyze_sharded_requires_inline_backend():
    sharded, library = _sharded()
    sharded._pool = object()  # impersonate the mp backend
    try:
        with pytest.raises(ConfigurationError, match="inline backend"):
            analyze_sharded(sharded)
        with pytest.raises(ConfigurationError, match="inline backend"):
            library.analyze()
    finally:
        sharded._pool = None


# ----------------------------------------------------------------------
# pmgr round-trip on a ShardedRouter
# ----------------------------------------------------------------------
def test_pmgr_analyze_json_round_trips_on_sharded_router():
    sharded, _ = _sharded()
    _warm(sharded)
    lines = []
    manager = PluginManager(sharded, output=lines.append)
    manager.run_command("analyze --json")
    payload = json.loads("\n".join(lines))
    assert payload["counts"]["error"] == 0
    assert payload["findings"] == []
