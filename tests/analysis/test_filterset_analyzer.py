"""Filter-set semantic analyzer: each RP1xx code on a hand-built case,
then the seeded property test — a planted shadowed filter is *always*
flagged, and removing the plant always returns the set to zero RP101 —
plus the filterset-generator dedupe regression (with the analyzer as
the oracle that deduped sets carry no conflicts)."""

import random

import pytest

import repro.workloads.filtersets as filtersets
from repro.aiu.filters import Filter
from repro.aiu.records import FilterRecord
from repro.analysis import analyze_filterset, analyze_records
from repro.core.router import Router
from repro.mgr.library import RouterPluginLibrary
from repro.net.addresses import IPV4_WIDTH
from repro.workloads.filtersets import random_filters

from tests.aiu.test_classifier_differential import SEEDS, _build_tables


def _bind(library, plugin, instance, spec, gate=None, priority=0):
    return library.bind(instance, spec, gate=gate, priority=priority)


def _router_library():
    router = Router(name="fs-analyzer")
    library = RouterPluginLibrary(router)
    return router, library


def test_duplicate_binding_same_instance_is_shadow_plus_redundant():
    router, library = _router_library()
    library.modload("drr")
    library.create_instance("drr", "d1", quantum=512)
    library.bind("d1", "10.0.0.0/8, *, TCP")
    library.bind("d1", "10.0.0.0/8, *, TCP")
    report = analyze_filterset(router.aiu)
    # Latest seq wins the tie, so the first copy is dead (RP101) and the
    # winner is redundant against... nothing else; one RP101 only.
    assert len(report.by_code("RP101")) == 1
    assert not report.by_code("RP103")


def test_covered_filter_same_instance_is_redundant_not_error():
    router, library = _router_library()
    library.modload("drr")
    library.create_instance("drr", "d1", quantum=512)
    library.bind("d1", "10.0.0.0/8, *, TCP")
    library.bind("d1", "10.1.0.0/16, *, TCP")
    report = analyze_filterset(router.aiu)
    assert not report.has_errors
    (redundant,) = report.by_code("RP102")
    assert "10.1.0.0/16" in redundant.message


def test_conflicting_bindings_identical_filters_different_instances():
    router, library = _router_library()
    library.modload("drr")
    library.create_instance("drr", "d1", quantum=512)
    library.create_instance("drr", "d2", quantum=512)
    library.bind("d1", "10.0.0.0/8, *, TCP")
    library.bind("d2", "10.0.0.0/8, *, TCP")
    report = analyze_filterset(router.aiu)
    (conflict,) = report.by_code("RP103")
    assert "d1" in conflict.message and "d2" in conflict.message
    # The conflict diagnostic subsumes the per-record shadow finding.
    assert not report.by_code("RP101")


def test_priority_resolves_conflict():
    router, library = _router_library()
    library.modload("drr")
    library.create_instance("drr", "d1", quantum=512)
    library.create_instance("drr", "d2", quantum=512)
    library.bind("d1", "10.0.0.0/8, *, TCP")
    library.bind("d2", "10.0.0.0/8, *, TCP", priority=5)
    report = analyze_filterset(router.aiu)
    assert not report.by_code("RP103")
    # d1's copy is still dead, and that is now an RP101.
    shadows = report.by_code("RP101")
    assert len(shadows) == 1 and "d1" in shadows[0].subject


def test_instance_at_multiple_gates_warns_rp105():
    router, library = _router_library()
    library.modload("stats")
    library.create_instance("stats", "s1")
    library.bind("s1", "10.0.0.0/8, *, TCP", gate="ip_options")
    library.bind("s1", "10.0.0.0/8, *, TCP", gate="packet_scheduling")
    report = analyze_filterset(router.aiu)
    (multi,) = report.by_code("RP105")
    assert "ip_options" in multi.message
    assert "packet_scheduling" in multi.message


def test_multicover_shadowing_needs_the_dag_walk():
    """A /8 fully partitioned by two /9s: no single filter covers it, so
    pairwise covers() cannot see the shadow — the DAG walk must."""
    records = [
        FilterRecord(Filter.parse("<10.0.0.0/9, *, *, *, *, *>"), gate="g"),
        FilterRecord(Filter.parse("<10.128.0.0/9, *, *, *, *, *>"), gate="g"),
        FilterRecord(Filter.parse("<10.0.0.0/8, *, *, *, *, *>"), gate="g"),
    ]
    report = analyze_records(records, width=IPV4_WIDTH)
    shadows = report.by_code("RP101")
    assert len(shadows) == 1
    assert "10.0.0.0/8" in shadows[0].subject


def test_unreachable_branch_info_rp106():
    records = [
        FilterRecord(Filter.parse("<10.0.0.0/9, *, *, *, *, *>"), gate="g"),
        FilterRecord(Filter.parse("<10.128.0.0/9, *, *, *, *, *>"), gate="g"),
        FilterRecord(Filter.parse("<10.0.0.0/8, *, *, *, *, *>"), gate="g"),
    ]
    router, _ = _router_library()
    aiu = router.aiu
    for record in records:
        aiu.create_filter("packet_scheduling", record.filter)
    report = analyze_filterset(aiu)
    assert report.by_code("RP106"), [d.render() for d in report]


def test_clean_set_has_no_findings():
    router, library = _router_library()
    library.modload("drr")
    library.create_instance("drr", "d1", quantum=512)
    library.bind("d1", "10.0.0.0/8, *, TCP")
    library.bind("d1", "192.168.0.0/16, *, UDP")
    report = analyze_filterset(router.aiu)
    assert len(report) == 0, [d.render() for d in report]


# ----------------------------------------------------------------------
# Property test: planted shadows are always found, absence is clean.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_planted_shadow_always_flagged(seed):
    filters = random_filters(48, width=IPV4_WIDTH, seed=seed, host_fraction=0.5)
    dag, linear, records = _build_tables(filters, IPV4_WIDTH)

    baseline = analyze_records(records, width=IPV4_WIDTH)
    baseline_shadowed = {d.subject for d in baseline.by_code("RP101")}

    rng = random.Random(seed * 31 + 7)
    victim = rng.choice(records)
    # Plant an exact duplicate at lower priority: identical specificity,
    # loses the priority tie-break everywhere -> must be RP101.
    plant = FilterRecord(victim.filter, gate="g", priority=-1)
    planted = records + [plant]
    report = analyze_records(planted, width=IPV4_WIDTH)
    shadowed = {d.subject for d in report.by_code("RP101")}
    assert baseline_shadowed < shadowed or len(shadowed) > len(baseline_shadowed)

    # Removing the plant restores the baseline exactly.
    again = analyze_records(records, width=IPV4_WIDTH)
    assert {d.subject for d in again.by_code("RP101")} == baseline_shadowed


@pytest.mark.parametrize("seed", SEEDS)
def test_generated_sets_are_shadow_free(seed):
    """The deduped generator never produces exact-duplicate shadows or
    binding conflicts on its own."""
    filters = random_filters(64, width=IPV4_WIDTH, seed=seed, host_fraction=0.5)
    _, _, records = _build_tables(filters, IPV4_WIDTH)
    report = analyze_records(records, width=IPV4_WIDTH)
    assert not report.by_code("RP103")


# ----------------------------------------------------------------------
# Dedupe regression (workloads/filtersets.py)
# ----------------------------------------------------------------------
def test_dedupe_under_forced_collisions(monkeypatch):
    """Narrow weights force five-tuple collisions that the pre-fix
    generator emitted as exact duplicates; the analyzer is the oracle
    that none survive."""
    monkeypatch.setattr(filtersets, "V4_LENGTH_WEIGHTS", {8: 1})
    filters = filtersets.random_filters(
        512, seed=3, host_fraction=0.0, with_ports=False
    )
    keys = {(f.src, f.dst, f.protocol, f.sport, f.dport) for f in filters}
    assert len(keys) == len(filters)
    records = [FilterRecord(f, gate="g") for f in filters]
    report = analyze_records(records, width=IPV4_WIDTH)
    assert not report.by_code("RP101")
    assert not report.by_code("RP103")


def test_dedupe_exhaustion_raises(monkeypatch):
    monkeypatch.setattr(filtersets, "V4_LENGTH_WEIGHTS", {0: 1})
    with pytest.raises(ValueError, match="distinct filters"):
        filtersets.random_filters(64, seed=1, host_fraction=0.0, with_ports=False)


def test_dedupe_preserves_collision_free_streams():
    """Seeds that never collide must draw the identical filter sequence
    the pre-dedupe generator produced (benchmarks and goldens depend on
    the byte-identical stream)."""
    # Reproduce the original algorithm inline.
    rng = random.Random(42)
    expected = []
    weights = filtersets.V4_LENGTH_WEIGHTS
    for _ in range(128):
        if rng.random() < 0.5:
            src = filtersets._random_prefix(rng, 32, 32)
            dst = filtersets._random_prefix(rng, 32, 32)
            protocol = rng.choice((6, 17))
            sport = filtersets.PortSpec.exact(rng.randrange(1024, 65536))
            dport = filtersets.PortSpec.exact(rng.randrange(1, 1024))
        else:
            src = filtersets._random_prefix(
                rng, 32, filtersets._weighted_length(rng, weights)
            )
            dst = filtersets._random_prefix(
                rng, 32, filtersets._weighted_length(rng, weights)
            )
            protocol = rng.choice(filtersets.PROTOCOLS)
            sport = rng.choice(filtersets.PORT_CATALOGUE)
            dport = rng.choice(filtersets.PORT_CATALOGUE)
        expected.append(Filter(src=src, dst=dst, protocol=protocol,
                               sport=sport, dport=dport))
    assert filtersets.random_filters(128, seed=42, host_fraction=0.5) == expected
