"""The operator surface: the pmgr ``analyze`` command, the epoch-keyed
``analyzed:`` status line in ``show aiu``, ``analyze_script``'s RP107
collection, and the scripts/analyze.py CLI exit codes."""

import os
import subprocess
import sys

from repro.analysis import analyze_script
from repro.core.router import Router
from repro.mgr.pmgr import PluginManager

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def _manager():
    router = Router(name="pmgr-analyze")
    router.add_interface("atm0", prefix="0.0.0.0/0")
    out = []
    manager = PluginManager(router, output=out.append)
    return manager, out


def test_analyze_command_reports_findings():
    manager, out = _manager()
    manager.run_script(
        """
        modload drr
        create drr d1 quantum=512
        bind d1 - 10.0.0.0/8, *, TCP
        bind d1 - 10.1.0.0/16, *, TCP
        """
    )
    manager.run_command("analyze")
    text = "\n".join(out)
    assert "RP102" in text
    assert "1 findings" in text


def test_analyze_json_output():
    manager, out = _manager()
    manager.run_script("modload drr\ncreate drr d1 quantum=512")
    manager.run_command("analyze --json")
    import json

    payload = json.loads("\n".join(out[out.index('{'):]) if '{' in out else out[-1])
    assert payload["counts"] == {"error": 0, "warning": 0, "info": 0}


def test_show_aiu_analyzed_line_never_fresh_stale():
    manager, out = _manager()
    manager.run_script(
        """
        modload drr
        create drr d1 quantum=512
        bind d1 - 10.0.0.0/8, *, TCP
        """
    )
    manager.run_command("show aiu")
    assert any(line == "analyzed: never" for line in out)

    out.clear()
    manager.run_command("analyze")
    manager.run_command("show aiu")
    assert any(line.startswith("analyzed: 0 findings (0 errors)") for line in out)

    out.clear()
    manager.run_command("bind d1 - 192.168.0.0/16, *, UDP")
    manager.run_command("show aiu")
    assert any(line.startswith("analyzed: stale") for line in out)


def test_analyze_script_collects_rp107_and_still_analyzes():
    report = analyze_script(
        """
        modload drr
        create drr d1 quantum=512
        bind d1 - 10.0.0.0/8, *, TCP
        bind d1 - 10.0.0.0/8, *, TCP
        frobnicate the packets
        """
    )
    assert report.by_code("RP107"), "bad line not reported"
    assert report.by_code("RP101"), "good lines not analyzed"


def _run_cli(*args):
    return subprocess.run(
        [sys.executable, os.path.join(REPO, "scripts", "analyze.py"), *args],
        capture_output=True,
        text=True,
        cwd=REPO,
    )


def test_cli_self_lint_exits_zero():
    proc = _run_cli("--self-lint")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 errors" in proc.stdout


def test_cli_script_with_shadow_exits_one(tmp_path):
    script = tmp_path / "bad.pmgr"
    script.write_text(
        "modload drr\n"
        "create drr d1 quantum=512\n"
        "bind d1 - 10.0.0.0/8, *, TCP\n"
        "bind d1 - 10.0.0.0/8, *, TCP\n"
    )
    proc = _run_cli(str(script))
    assert proc.returncode == 1
    assert "RP101" in proc.stdout


def test_cli_json_mode(tmp_path):
    script = tmp_path / "ok.pmgr"
    script.write_text("modload drr\ncreate drr d1 quantum=512\n")
    proc = _run_cli("--json", str(script))
    assert proc.returncode == 0
    import json

    payload = json.loads(proc.stdout)
    assert payload["findings"] == []


def test_cli_usage_error_exits_two():
    proc = _run_cli()
    assert proc.returncode == 2
