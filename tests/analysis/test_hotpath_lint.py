"""Hot-path lint unit tests: each RP2xx code fires on a synthetic bad
plugin and stays quiet on the idiomatic equivalents, suppression
comments work, and strict loading refuses error findings before the PCU
tables are touched."""

import random
import time

import pytest

from repro.analysis import lint_plugin
from repro.core.errors import PluginError
from repro.core.plugin import (
    Plugin,
    PluginInstance,
    TYPE_PACKET_SCHEDULING,
    Verdict,
)
from repro.core.router import Router


def _codes(plugin_cls):
    return sorted(d.code for d in lint_plugin(plugin_cls))


def _make_plugin(instance_cls, plugin_name):
    return type(
        f"{instance_cls.__name__}Plugin",
        (Plugin,),
        {
            "plugin_type": TYPE_PACKET_SCHEDULING,
            "name": plugin_name,
            "instance_class": instance_cls,
        },
    )


class SleepyInstance(PluginInstance):
    def process(self, packet, ctx):
        time.sleep(0.01)
        return Verdict.CONTINUE


class LocalImportSleeper(PluginInstance):
    def process(self, packet, ctx):
        import time as clock

        clock.sleep(0.01)
        return Verdict.CONTINUE


class FromImportSleeper(PluginInstance):
    def process(self, packet, ctx):
        from time import sleep

        sleep(0.01)
        return Verdict.CONTINUE


class GlobalRandomInstance(PluginInstance):
    def process(self, packet, ctx):
        if random.random() < 0.5:
            return Verdict.DROP
        return Verdict.CONTINUE


class SeededRandomInstance(PluginInstance):
    def __init__(self, plugin, seed=1, **config):
        super().__init__(plugin, **config)
        self._rng = random.Random(seed)

    def process(self, packet, ctx):
        if self._rng.random() < 0.5:
            return Verdict.DROP
        return Verdict.CONTINUE


class BareExceptInstance(PluginInstance):
    def process(self, packet, ctx):
        try:
            packet.annotations["x"] = 1
        except:  # noqa: E722
            return Verdict.DROP
        return Verdict.CONTINUE


class BroadExceptInstance(PluginInstance):
    def process(self, packet, ctx):
        try:
            packet.annotations["x"] = 1
        except Exception:
            return Verdict.DROP
        return Verdict.CONTINUE


class SlotsInstance(PluginInstance):
    __slots__ = ()

    def process(self, packet, ctx):
        self.window = 1
        return Verdict.CONTINUE


class UnchargedTouchInstance(PluginInstance):
    def process(self, packet, ctx):
        if len(packet.payload) > 1000:
            return Verdict.DROP
        return Verdict.CONTINUE


class ChargedTouchInstance(PluginInstance):
    def process(self, packet, ctx):
        data = packet.payload
        ctx.cycles.charge(len(data), "scan")
        if len(data) > 1000:
            return Verdict.DROP
        return Verdict.CONTINUE


class HelperChargedInstance(PluginInstance):
    """The charge lives in a helper the root calls — the closure walk
    must see it."""

    def _scan(self, packet, ctx):
        ctx.cycles.charge(len(packet.payload), "scan")

    def process(self, packet, ctx):
        self._scan(packet, ctx)
        return Verdict.CONTINUE


class SuppressedInstance(PluginInstance):
    def process(self, packet, ctx):
        data = packet.payload  # rp: ignore[RP205]
        return Verdict.DROP if data else Verdict.CONTINUE


class AdHocMetricsInstance(PluginInstance):
    def __init__(self, plugin, **config):
        super().__init__(plugin, **config)
        self.stats = {}

    def process(self, packet, ctx):
        self.stats["seen"] = self.stats.get("seen", 0) + 1
        return Verdict.CONTINUE


class AdHocCounterAugInstance(PluginInstance):
    def __init__(self, plugin, **config):
        super().__init__(plugin, **config)
        self.counters = {"seen": 0}

    def process(self, packet, ctx):
        self.counters["seen"] += 1
        return Verdict.CONTINUE


class RegistryMetricsInstance(PluginInstance):
    """The sanctioned pattern: a registry handle grabbed once (at bind
    time in real plugins), ``inc()`` on the hot path — no dict stores."""

    def __init__(self, plugin, **config):
        super().__init__(plugin, **config)
        from repro.telemetry import NULL_REGISTRY

        self._seen = NULL_REGISTRY.counter("plugin.seen")

    def process(self, packet, ctx):
        self._seen.inc()
        return Verdict.CONTINUE


class PerPacketRecomputeInstance(PluginInstance):
    """Recomputes a config-derived bound for every packet of the batch —
    exactly the work the batch hooks exist to hoist."""

    def process(self, packet, ctx):
        return Verdict.CONTINUE

    def process_batch(self, packets, now):
        for packet in packets:
            limit = self.config.get("limit", 100)
            if packet.length > limit:
                packet.annotations["over"] = True


class EnumeratedRecomputeInstance(PluginInstance):
    def process(self, packet, ctx):
        return Verdict.CONTINUE

    def on_batch_end(self, packets, now):
        for i, packet in enumerate(packets):
            tag = self.plugin.name.upper()
            packet.annotations["tag"] = (tag, i)


class HoistedBatchInstance(PluginInstance):
    """The idiomatic shape: invariants once per batch, only per-packet
    work inside the loop."""

    def process(self, packet, ctx):
        return Verdict.CONTINUE

    def process_batch(self, packets, now):
        limit = self.config.get("limit", 100)
        for packet in packets:
            size = packet.length        # loop-variant: derived from the item
            if size > limit:
                packet.annotations["over"] = True


class SuppressedBatchInstance(PluginInstance):
    def process(self, packet, ctx):
        return Verdict.CONTINUE

    def process_batch(self, packets, now):
        for packet in packets:
            limit = self.config.get("limit", 100)  # rp: ignore[RP208]
            packet.annotations["limit"] = limit


@pytest.mark.parametrize(
    "instance_cls,expected",
    [
        (SleepyInstance, "RP201"),
        (LocalImportSleeper, "RP201"),
        (FromImportSleeper, "RP201"),
        (GlobalRandomInstance, "RP202"),
        (BareExceptInstance, "RP203"),
        (SlotsInstance, "RP204"),
        (UnchargedTouchInstance, "RP205"),
        (BroadExceptInstance, "RP206"),
        (AdHocMetricsInstance, "RP207"),
        (AdHocCounterAugInstance, "RP207"),
        (PerPacketRecomputeInstance, "RP208"),
        (EnumeratedRecomputeInstance, "RP208"),
    ],
)
def test_bad_pattern_is_flagged(instance_cls, expected):
    plugin_cls = _make_plugin(instance_cls, f"bad-{expected.lower()}")
    assert expected in _codes(plugin_cls)


@pytest.mark.parametrize(
    "instance_cls",
    [
        SeededRandomInstance,
        ChargedTouchInstance,
        HelperChargedInstance,
        RegistryMetricsInstance,
        HoistedBatchInstance,
    ],
)
def test_good_pattern_is_clean(instance_cls):
    plugin_cls = _make_plugin(instance_cls, f"good-{instance_cls.__name__.lower()}")
    assert _codes(plugin_cls) == []


def test_suppression_comment_silences_the_named_code():
    plugin_cls = _make_plugin(SuppressedInstance, "suppressed")
    assert "RP205" not in _codes(plugin_cls)


def test_batch_suppression_comment_silences_rp208():
    plugin_cls = _make_plugin(SuppressedBatchInstance, "suppressed-batch")
    assert "RP208" not in _codes(plugin_cls)


def test_diagnostics_carry_location_and_hint():
    plugin_cls = _make_plugin(SleepyInstance, "located")
    (diag,) = [d for d in lint_plugin(plugin_cls) if d.code == "RP201"]
    assert diag.file and diag.file.endswith("test_hotpath_lint.py")
    assert diag.line is not None and diag.line > 0
    assert diag.hint
    assert "SleepyInstance.process" in diag.subject


def test_strict_load_refuses_error_findings():
    router = Router(name="strict-test")
    plugin_cls = _make_plugin(SleepyInstance, "strict-bad")
    with pytest.raises(PluginError, match="RP201"):
        router.pcu.load(plugin_cls(), strict=True)
    assert not router.pcu.is_loaded("strict-bad")


def test_strict_load_accepts_clean_plugin():
    router = Router(name="strict-ok")
    plugin_cls = _make_plugin(ChargedTouchInstance, "strict-good")
    code = router.pcu.load(plugin_cls(), strict=True)
    assert router.pcu.is_loaded("strict-good")
    assert code > 0


def test_non_strict_load_unchanged():
    router = Router(name="lenient")
    plugin_cls = _make_plugin(SleepyInstance, "lenient-bad")
    router.pcu.load(plugin_cls())
    assert router.pcu.is_loaded("lenient-bad")
