"""Exec-codegen audit unit tests: each RP5xx code fires on a planted
corruption of generated source / exec namespace / plan key / compiled
lookup structure, and a genuinely warmed router audits clean (so the
codes can gate CI without false positives)."""

import pytest

from repro.aiu.dag import _C_PREFIX, DagFilterTable
from repro.aiu.matchers import AmbiguousFilterError
from repro.aiu.records import FilterRecord
from repro.analysis import (
    analyze_router,
    audit_dag_table,
    audit_engine,
    audit_loop,
    audit_loop_source,
    audit_router_codegen,
)
from repro.bmp import make_engine
from repro.core.gates import DEFAULT_GATES, GATE_IP_SECURITY
from repro.core.router import Router
from repro.mgr.library import RouterPluginLibrary
from repro.net.addresses import IPV4_WIDTH
from repro.net.packet import make_udp
from repro.workloads.filtersets import random_filters

# A minimal well-formed "generated" loop: free names resolved by the
# namespace, a fault handler that resumes through a _split_* helper.
CLEAN_SOURCE = '''\
def _batch_loop(packets, now):
    out = []
    for packet in packets:
        try:
            out.append(classify(packet, now))
        except Exception as exc:
            return _split_resume(packets, out, exc)
    return out
'''

NAMESPACE = {"classify": lambda p, n: "forward", "_split_resume": lambda *a: []}


def _codes(diagnostics):
    return sorted(d.code for d in diagnostics)


# ----------------------------------------------------------------------
# RP501 / RP502 — free-name discipline
# ----------------------------------------------------------------------
def test_clean_source_audits_clean():
    assert audit_loop_source(CLEAN_SOURCE, NAMESPACE) == []


def test_rp501_unresolved_free_name():
    namespace = {"_split_resume": NAMESPACE["_split_resume"]}  # no classify
    findings = audit_loop_source(CLEAN_SOURCE, namespace)
    assert _codes(findings) == ["RP501"]
    assert "'classify'" in findings[0].message
    assert findings[0].line is not None


def test_rp502_nondeterministic_builtin():
    source = CLEAN_SOURCE.replace(
        "out.append(classify(packet, now))",
        "out.append(classify(packet, now) or hash(packet))",
    )
    findings = audit_loop_source(source, NAMESPACE)
    assert "RP502" in _codes(findings)
    assert any("'hash'" in d.message for d in findings)


def test_rp502_wins_over_rp501_for_forbidden_names():
    source = CLEAN_SOURCE.replace(
        "classify(packet, now)", "classify(packet, time())"
    )
    findings = audit_loop_source(source, NAMESPACE)
    assert _codes(findings) == ["RP502"]


# ----------------------------------------------------------------------
# RP503 — fault split/resume
# ----------------------------------------------------------------------
def test_rp503_no_handler_at_all():
    source = '''\
def _batch_loop(packets, now):
    return [classify(p, now) for p in packets]
'''
    findings = audit_loop_source(source, NAMESPACE)
    assert _codes(findings) == ["RP503"]
    assert "no fault handler" in findings[0].message


def test_rp503_swallowing_handler():
    source = CLEAN_SOURCE.replace(
        "return _split_resume(packets, out, exc)", "out.append(None)"
    )
    findings = audit_loop_source(source, NAMESPACE)
    assert "RP503" in _codes(findings)
    assert any("neither resumes" in d.message for d in findings)


def test_rp503_reraise_is_accepted():
    source = CLEAN_SOURCE.replace(
        "return _split_resume(packets, out, exc)", "raise"
    )
    assert audit_loop_source(source, NAMESPACE) == []


def test_rp503_on_fault_is_accepted():
    source = CLEAN_SOURCE.replace(
        "return _split_resume(packets, out, exc)",
        "out.append(on_fault(exc))",
    )
    namespace = dict(NAMESPACE, on_fault=lambda e: "drop")
    assert audit_loop_source(source, namespace) == []


# ----------------------------------------------------------------------
# RP504 — plan/source coherence
# ----------------------------------------------------------------------
def test_rp504_plan_field_missing_marker():
    plan = {"tm": True, "plain": True}
    findings = audit_loop_source(CLEAN_SOURCE, NAMESPACE, plan=plan)
    assert _codes(findings) == ["RP504"]
    assert "_tm_gate_cells" in findings[0].message


def test_rp504_marker_without_plan_field():
    source = CLEAN_SOURCE.replace(
        "out = []", "out = []\n    cells = _tm_gate_cells"
    )
    namespace = dict(NAMESPACE, _tm_gate_cells=())
    plan = {"plain": True}
    findings = audit_loop_source(source, namespace, plan=plan)
    assert _codes(findings) == ["RP504"]
    assert "clears" in findings[0].message


def test_rp504_fused_without_on_fault():
    plan = {"fused": True, "plain": True}
    findings = audit_loop_source(CLEAN_SOURCE, NAMESPACE, plan=plan)
    assert _codes(findings) == ["RP504"]
    assert "on_fault" in findings[0].message


def test_rp504_unreferenced_pre_gate():
    plan = {"plain": True, "pre": [("ip_security", None)]}
    findings = audit_loop_source(CLEAN_SOURCE, NAMESPACE, plan=plan)
    assert _codes(findings) == ["RP504"]
    assert "ip_security" in findings[0].message


def test_rp504_loop_without_source_attribute():
    def not_generated(packets, now):
        return []

    findings = audit_loop(not_generated)
    assert _codes(findings) == ["RP504"]
    assert "_source" in findings[0].message


# ----------------------------------------------------------------------
# RP505 — compiled lookup structures
# ----------------------------------------------------------------------
def _seeded_table():
    table = DagFilterTable(width=IPV4_WIDTH)
    for flt in random_filters(32, seed=3, host_fraction=0.3):
        try:
            table.install(FilterRecord(flt, gate="check"))
        except AmbiguousFilterError:
            continue
    table.ensure_compiled()
    return table


def _seeded_engine():
    engine = make_engine("waldvogel", IPV4_WIDTH)
    for index, flt in enumerate(random_filters(32, seed=5, host_fraction=0.3)):
        if not flt.src.is_wildcard:
            engine.insert(flt.src, index)
    engine.lookup_entry_fast(0)
    return engine


def test_rp505_dag_clean_when_untampered():
    assert audit_dag_table(_seeded_table()) == []


def test_rp505_dag_stale_epoch():
    table = _seeded_table()
    table._compiled_epoch -= 1
    table.ensure_compiled = lambda: None  # pin the tampered state
    findings = audit_dag_table(table)
    assert _codes(findings) == ["RP505"]
    assert "epoch" in findings[0].message


def test_rp505_dag_prefix_tables_out_of_order():
    table = _seeded_table()
    root = table._compiled_root
    assert root[0] == _C_PREFIX and len(root[1]) >= 2
    table._compiled_root = (root[0], tuple(reversed(root[1])), root[2])
    findings = audit_dag_table(table)
    assert "RP505" in _codes(findings)
    assert any("longest-first" in d.message for d in findings)


def test_rp505_engine_clean_when_untampered():
    assert audit_engine(_seeded_engine()) == []


def test_rp505_engine_tables_out_of_order():
    engine = _seeded_engine()
    assert len(engine._fast_tables) >= 2
    engine._fast_tables = tuple(reversed(engine._fast_tables))
    findings = audit_engine(engine)
    assert "RP505" in _codes(findings)


def test_rp505_engine_entry_count_mismatch():
    engine = _seeded_engine()
    shift, first = engine._fast_tables[0]
    dropped = dict(first)
    dropped.popitem()
    engine._fast_tables = ((shift, dropped),) + tuple(engine._fast_tables[1:])
    findings = audit_engine(engine)
    assert "RP505" in _codes(findings)
    assert any("entries" in d.message for d in findings)


# ----------------------------------------------------------------------
# Router-level audit: warm loops across all three shapes, then via
# analyze_router
# ----------------------------------------------------------------------
def _warm_router(name, max_flows=None, with_plugin=False):
    router = Router(name=name, gates=DEFAULT_GATES, max_flows=max_flows)
    router.add_interface("atm0", prefix="10.0.0.0/8")
    router.add_interface("atm1", prefix="20.0.0.0/8")
    if with_plugin:
        library = RouterPluginLibrary(router)
        library.modload("firewall")
        library.create_instance("firewall", "fw0")
        library.bind("fw0", "*, *, UDP", gate=GATE_IP_SECURITY)
    router.receive_batch(
        [make_udp("10.0.0.1", "20.0.1.1", 5000, 9000, iif="atm0")]
    )
    return router


@pytest.mark.parametrize(
    "max_flows,with_plugin,shape",
    [(None, False, "single"), (None, True, "lanes"), (64, True, "fused")],
)
def test_warm_router_audits_clean(max_flows, with_plugin, shape):
    router = _warm_router(f"audit-{shape}", max_flows, with_plugin)
    assert router._batch_loops  # the shape actually compiled
    assert audit_router_codegen(router) == []


def test_analyze_router_surfaces_codegen_findings():
    router = _warm_router("audit-wired", with_plugin=True)
    (fn,) = [
        fn for fn in router._batch_loops.values() if fn is not None
    ][:1] or [None]
    assert fn is not None
    fn._plan["tm"] = True  # lie about the specialization key
    report = analyze_router(router)
    assert any(d.code == "RP504" for d in report)


def test_subject_prefix_labels_findings():
    router = _warm_router("audit-prefix")
    router.receive_batch(
        [make_udp("10.0.0.2", "20.0.1.2", 5001, 9001, iif="atm0")]
    )
    # No findings expected; the prefix plumbing is exercised via the
    # audit call itself (it must not throw with a prefix).
    assert audit_router_codegen(router, subject_prefix="shard3: ") == []
