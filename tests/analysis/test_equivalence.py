"""Compiled/interpreted equivalence verifier: clean on healthy tables
and engines across all BMP implementations, and loud (RP301/RP302) when
the compiled state is deliberately corrupted while its epoch claims
freshness — the exact failure mode the verifier exists to catch."""

import pytest

from repro.aiu.dag import DagFilterTable
from repro.aiu.matchers import AmbiguousFilterError
from repro.aiu.records import FilterRecord
from repro.analysis import verify_aiu, verify_engine, verify_table
from repro.bmp import ENGINES, make_engine
from repro.core.router import Router
from repro.mgr.library import RouterPluginLibrary
from repro.net.addresses import IPV4_WIDTH, IPV6_WIDTH
from repro.workloads.filtersets import random_filters

from tests.aiu.test_classifier_differential import SEEDS

ENGINE_NAMES = sorted(set(ENGINES))


def _build_dag(filters, width, engine_name="patricia"):
    table = DagFilterTable(width=width, bmp_engine=engine_name)
    for flt in filters:
        try:
            table.install(FilterRecord(flt, gate="g"))
        except AmbiguousFilterError:
            continue
    return table


@pytest.mark.parametrize("engine_name", ENGINE_NAMES)
@pytest.mark.parametrize("seed", SEEDS[:2])
def test_healthy_dag_verifies_clean(engine_name, seed):
    filters = random_filters(48, seed=seed, host_fraction=0.5)
    table = _build_dag(filters, IPV4_WIDTH, engine_name)
    findings = verify_table(table, IPV4_WIDTH, subject="t")
    assert findings == [], [d.render() for d in findings]


@pytest.mark.parametrize("seed", SEEDS[:2])
def test_healthy_ipv6_dag_verifies_clean(seed):
    filters = random_filters(32, width=IPV6_WIDTH, seed=seed, host_fraction=0.5)
    table = _build_dag(filters, IPV6_WIDTH)
    findings = verify_table(table, IPV6_WIDTH, subject="t6")
    assert findings == [], [d.render() for d in findings]


@pytest.mark.parametrize("engine_name", ENGINE_NAMES)
def test_healthy_engine_verifies_clean(engine_name):
    engine = make_engine(engine_name, IPV4_WIDTH)
    for index, flt in enumerate(random_filters(64, seed=11, host_fraction=0.5)):
        if not flt.src.is_wildcard:
            engine.insert(flt.src, index)
    findings = verify_engine(engine, subject=engine_name)
    assert findings == [], [d.render() for d in findings]


def test_corrupted_compiled_dag_is_caught():
    filters = random_filters(32, seed=5, host_fraction=0.5)
    table = _build_dag(filters, IPV4_WIDTH)
    table.ensure_compiled()
    # Corrupt: an empty compiled exact-node that matches nothing, with
    # the epoch stamped fresh so no recompile rescues it.
    table._compiled_root = (2, {}, None)
    table._compiled_epoch = table.epoch
    findings = verify_table(table, IPV4_WIDTH, subject="corrupt")
    assert findings, "corrupted compiled table verified clean"
    assert all(d.code == "RP301" for d in findings)
    assert all(d.severity == "error" for d in findings)


@pytest.mark.parametrize("engine_name", ENGINE_NAMES)
def test_corrupted_engine_fast_tables_are_caught(engine_name):
    engine = make_engine(engine_name, IPV4_WIDTH)
    for index, flt in enumerate(random_filters(64, seed=13, host_fraction=0.5)):
        if not flt.src.is_wildcard:
            engine.insert(flt.src, index)
    engine.lookup_entry_fast(0)  # force a compile
    engine._fast_tables = ()
    engine._fast_epoch = engine.mutation_epoch
    findings = verify_engine(engine, subject=engine_name)
    assert findings, f"corrupted {engine_name} verified clean"
    assert all(d.code == "RP302" for d in findings)


def test_verify_aiu_covers_every_gate_table():
    router = Router(name="eq-aiu")
    library = RouterPluginLibrary(router)
    library.modload("drr")
    library.create_instance("drr", "d1", quantum=512)
    library.bind("d1", "10.0.0.0/8, *, TCP")
    library.bind("d1", "192.168.0.0/16, *, UDP")
    report = verify_aiu(router.aiu)
    assert len(report) == 0, [d.render() for d in report]
