"""Shard-safety lint unit tests: each RP4xx code fires on a planted
violation and stays quiet on the idiomatic (instance-local) twin,
suppressions work on the new codes, a typo'd suppression is flagged as
RP210, and the strict load refuses RP4xx errors like RP2xx ones."""

import socket
import threading

import pytest

from repro.analysis import (
    audit_query_mergeability,
    lint_instance_state,
    lint_plugin,
    lint_plugin_concurrency,
)
from repro.core.errors import PluginError
from repro.core.plugin import (
    Plugin,
    PluginInstance,
    TYPE_PACKET_SCHEDULING,
    Verdict,
)
from repro.core.router import Router

# Planted module-level state for the RP401 fixtures.
SEEN_PORTS = {}
EVENT_LOG = []
PACKET_COUNT = 0


def _codes(plugin_cls):
    return sorted(d.code for d in lint_plugin_concurrency(plugin_cls))


def _make_plugin(instance_cls, plugin_name, **extra):
    return type(
        f"{instance_cls.__name__}Plugin",
        (Plugin,),
        {
            "plugin_type": TYPE_PACKET_SCHEDULING,
            "name": plugin_name,
            "instance_class": instance_cls,
            **extra,
        },
    )


# ----------------------------------------------------------------------
# RP401 — module-global mutable state
# ----------------------------------------------------------------------
class GlobalDictWriterInstance(PluginInstance):
    def process(self, packet, ctx):
        SEEN_PORTS[packet.src_port] = True
        return Verdict.CONTINUE


class GlobalListMutatorInstance(PluginInstance):
    def process(self, packet, ctx):
        EVENT_LOG.append(packet.src_port)
        return Verdict.CONTINUE


class GlobalRebindInstance(PluginInstance):
    def process(self, packet, ctx):
        global PACKET_COUNT
        PACKET_COUNT += 1
        return Verdict.CONTINUE


class InstanceDictInstance(PluginInstance):
    """The clean twin: the same bookkeeping kept on the instance."""

    def __init__(self, plugin, **config):
        super().__init__(plugin, **config)
        self.seen_ports = {}
        self.count = 0

    def process(self, packet, ctx):
        self.seen_ports[packet.src_port] = True
        self.count += 1
        return Verdict.CONTINUE


class SuppressedGlobalInstance(PluginInstance):
    def process(self, packet, ctx):
        EVENT_LOG.append(packet.src_port)  # rp: ignore[RP401]
        return Verdict.CONTINUE


# ----------------------------------------------------------------------
# RP402 — class-attribute state shared across instances
# ----------------------------------------------------------------------
class ClassListInstance(PluginInstance):
    totals = []  # never shadowed in __init__: genuinely shared

    def process(self, packet, ctx):
        self.totals.append(packet.length)
        return Verdict.CONTINUE


class TypeSelfWriterInstance(PluginInstance):
    def process(self, packet, ctx):
        type(self).high_water = packet.length
        return Verdict.CONTINUE


class DunderClassWriterInstance(PluginInstance):
    def process(self, packet, ctx):
        self.__class__.last_port = packet.src_port
        return Verdict.CONTINUE


class ShadowedClassDefaultInstance(PluginInstance):
    """Clean twin: the class-level default is shadowed per instance in
    __init__, so mutation touches instance state only."""

    totals = []

    def __init__(self, plugin, **config):
        super().__init__(plugin, **config)
        self.totals = []

    def process(self, packet, ctx):
        self.totals.append(packet.length)
        return Verdict.CONTINUE


# ----------------------------------------------------------------------
# RP403 — fork/codec-hostile instance state
# ----------------------------------------------------------------------
class LockHolderInstance(PluginInstance):
    def __init__(self, plugin, **config):
        super().__init__(plugin, **config)
        self.lock = threading.Lock()

    def process(self, packet, ctx):
        return Verdict.CONTINUE


class FileHolderInstance(PluginInstance):
    def process(self, packet, ctx):
        self.trace = open("/tmp/trace.log", "a")  # noqa: SIM115
        return Verdict.CONTINUE


class PlainStateInstance(PluginInstance):
    """Clean twin: only plain, reconstructible state on the instance."""

    def __init__(self, plugin, **config):
        super().__init__(plugin, **config)
        self.window = []
        self.limit = int(config.get("limit", 100))

    def process(self, packet, ctx):
        self.window.append(packet.length)
        return Verdict.CONTINUE


# ----------------------------------------------------------------------
# RP405 — control commands reading shard-local traffic state
# ----------------------------------------------------------------------
class DivergingControlPlugin(Plugin):
    plugin_type = TYPE_PACKET_SCHEDULING
    name = "diverging-control"
    instance_class = PlainStateInstance

    def handle_custom(self, message):
        if self.pcu.aiu.flow_table.active > 100:
            self.pcu.aiu.remove_filter(message.body)
        return None


class UnconditionalControlPlugin(Plugin):
    plugin_type = TYPE_PACKET_SCHEDULING
    name = "unconditional-control"
    instance_class = PlainStateInstance

    def handle_custom(self, message):
        self.pcu.aiu.remove_filter(message.body)
        return None


# ----------------------------------------------------------------------
# RP210 — typo'd suppression
# ----------------------------------------------------------------------
class TypoSuppressionInstance(PluginInstance):
    def process(self, packet, ctx):
        data = packet.payload  # rp: ignore[RP9999]
        return Verdict.DROP if data else Verdict.CONTINUE


@pytest.mark.parametrize(
    "instance_cls,expected",
    [
        (GlobalDictWriterInstance, "RP401"),
        (GlobalListMutatorInstance, "RP401"),
        (GlobalRebindInstance, "RP401"),
        (ClassListInstance, "RP402"),
        (TypeSelfWriterInstance, "RP402"),
        (DunderClassWriterInstance, "RP402"),
        (LockHolderInstance, "RP403"),
        (FileHolderInstance, "RP403"),
    ],
)
def test_bad_pattern_is_flagged(instance_cls, expected):
    plugin_cls = _make_plugin(instance_cls, f"bad-{instance_cls.__name__.lower()}")
    assert expected in _codes(plugin_cls)


@pytest.mark.parametrize(
    "instance_cls",
    [
        InstanceDictInstance,
        ShadowedClassDefaultInstance,
        PlainStateInstance,
    ],
)
def test_good_pattern_is_clean(instance_cls):
    plugin_cls = _make_plugin(instance_cls, f"good-{instance_cls.__name__.lower()}")
    assert _codes(plugin_cls) == []


def test_rp405_flags_local_state_guarded_config_change():
    codes = _codes(DivergingControlPlugin)
    assert "RP405" in codes


def test_rp405_quiet_on_unconditional_fanout():
    assert "RP405" not in _codes(UnconditionalControlPlugin)


def test_suppression_comment_silences_rp401():
    plugin_cls = _make_plugin(SuppressedGlobalInstance, "suppressed-global")
    assert "RP401" not in _codes(plugin_cls)


def test_unknown_suppression_code_warns_rp210():
    plugin_cls = _make_plugin(TypoSuppressionInstance, "typo-suppressed")
    report = lint_plugin(plugin_cls)
    codes = [d.code for d in report]
    # The typo'd name suppresses nothing: RP205 still fires, plus RP210.
    assert "RP205" in codes
    assert "RP210" in codes
    (rp210,) = [d for d in report if d.code == "RP210"]
    assert "RP9999" in rp210.message


def test_valid_suppression_does_not_warn_rp210():
    plugin_cls = _make_plugin(SuppressedGlobalInstance, "valid-suppressed")
    assert "RP210" not in [d.code for d in lint_plugin(plugin_cls)]


def test_diagnostics_carry_location_and_hint():
    plugin_cls = _make_plugin(GlobalDictWriterInstance, "located-rp401")
    findings = [
        d for d in lint_plugin_concurrency(plugin_cls) if d.code == "RP401"
    ]
    assert findings
    diag = findings[0]
    assert diag.file and diag.file.endswith("test_concurrency_lint.py")
    assert diag.line is not None and diag.line > 0
    assert diag.hint
    assert "GlobalDictWriterInstance.process" in diag.subject


# ----------------------------------------------------------------------
# RP403 live object-graph scan
# ----------------------------------------------------------------------
class _Bag:
    pass


def test_live_instance_scan_flags_hostile_handles():
    holder = _Bag()
    holder.lock = threading.Lock()
    holder.gen = (x for x in range(3))
    sock = socket.socket()
    try:
        holder.sock = sock
        findings = lint_instance_state(holder, subject="bag")
        kinds = sorted(d.message for d in findings)
        assert len(findings) == 3
        assert all(d.code == "RP403" for d in findings)
        assert any("'lock'" in m for m in kinds)
        assert any("'sock'" in m for m in kinds)
        assert any("'gen'" in m for m in kinds)
    finally:
        sock.close()
    holder.gen.close()


def test_live_instance_scan_quiet_on_plain_state():
    holder = _Bag()
    holder.counts = {"seen": 3}
    holder.window = [1, 2, 3]
    holder.name = "clean"
    assert lint_instance_state(holder) == []


def test_live_scan_runs_via_plugin_object_instances():
    plugin_cls = _make_plugin(PlainStateInstance, "live-scan")
    router = Router(name="live-scan-router")
    plugin = plugin_cls()
    router.pcu.load(plugin)
    instance = plugin.create_instance()
    instance.stash = threading.Lock()
    codes = [d.code for d in lint_plugin_concurrency(plugin)]
    assert "RP403" in codes
    # The class alone (no live instances) stays clean.
    assert "RP403" not in _codes(plugin_cls)


# ----------------------------------------------------------------------
# RP404 — query mergeability
# ----------------------------------------------------------------------
def test_rp404_flags_unmergeable_leaf():
    def query(topic, **filters):
        return {"flows": [1, 2, 3], "active": 7}

    findings = audit_query_mergeability(query, topics=["flows"])
    assert [d.code for d in findings] == ["RP404"]
    assert "list" in findings[0].message
    assert findings[0].subject == "query('flows')"


def test_rp404_quiet_on_mergeable_payload():
    def query(topic, **filters):
        return {"active": 7, "nested": {"hits": 1.5, "label": "x", "up": True}}

    assert audit_query_mergeability(query, topics=["flows", "aiu"]) == []


def test_rp404_skips_special_merger_topics():
    def query(topic, **filters):
        return {"rows": [object()]}  # unmergeable, but the topic is special

    assert audit_query_mergeability(query, topics=["telemetry"]) == []


def test_live_library_query_is_mergeable():
    from repro.mgr.library import RouterPluginLibrary

    router = Router(name="mergeable")
    router.add_interface("atm0", prefix="0.0.0.0/0")
    library = RouterPluginLibrary(router)
    library.modload("firewall")
    assert audit_query_mergeability(library.query) == []


# ----------------------------------------------------------------------
# Strict load covers the shard-safety pass
# ----------------------------------------------------------------------
def test_strict_load_refuses_rp401():
    router = Router(name="strict-shard")
    plugin_cls = _make_plugin(GlobalDictWriterInstance, "strict-shard-bad")
    with pytest.raises(PluginError, match="RP401"):
        router.pcu.load(plugin_cls(), strict=True)
    assert not router.pcu.is_loaded("strict-shard-bad")


def test_strict_load_accepts_shard_safe_plugin():
    router = Router(name="strict-shard-ok")
    plugin_cls = _make_plugin(InstanceDictInstance, "strict-shard-good")
    router.pcu.load(plugin_cls(), strict=True)
    assert router.pcu.is_loaded("strict-shard-good")
