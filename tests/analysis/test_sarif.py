"""SARIF 2.1.0 output: structure, stable rule registry coverage, and
the analyze.py CLI's --sarif mode (exit-code contract unchanged)."""

import json
import subprocess
import sys
from pathlib import Path

from repro.analysis import CODES, AnalysisReport, Diagnostic, severity_of

REPO = Path(__file__).resolve().parents[2]


def _report_with_findings():
    report = AnalysisReport()
    report.add(
        Diagnostic(
            "RP401",
            "writes into module-level mutable global 'SEEN'",
            subject="Foo.process",
            file="plugins/foo.py",
            line=42,
            hint="move the state onto the instance",
        )
    )
    report.add(Diagnostic("RP404", "query topic 'flows' carries a list"))
    return report


def test_sarif_structure_and_results():
    sarif = _report_with_findings().to_sarif()
    assert sarif["version"] == "2.1.0"
    (run,) = sarif["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-analyze"
    results = run["results"]
    assert len(results) == 2
    first = results[0]
    assert first["ruleId"] == "RP401"
    assert first["level"] == "error"
    assert "(hint:" in first["message"]["text"]
    location = first["locations"][0]
    physical = location["physicalLocation"]
    assert physical["artifactLocation"]["uri"] == "plugins/foo.py"
    assert physical["region"]["startLine"] == 42
    assert (
        location["logicalLocations"][0]["fullyQualifiedName"] == "Foo.process"
    )
    # The unanchored finding carries no physicalLocation.
    second = results[1]
    assert second["ruleId"] == "RP404"
    assert second["level"] == "warning"


def test_sarif_rules_cover_every_registered_code():
    sarif = AnalysisReport().to_sarif()
    rules = sarif["runs"][0]["tool"]["driver"]["rules"]
    rule_ids = [rule["id"] for rule in rules]
    assert rule_ids == sorted(CODES)
    level_of = {"error": "error", "warning": "warning", "info": "note"}
    for rule in rules:
        expected = level_of[severity_of(rule["id"])]
        assert rule["defaultConfiguration"]["level"] == expected
    # ruleIndex in results must point into this stable table.
    report = _report_with_findings()
    results = report.to_sarif()["runs"][0]["results"]
    for result in results:
        assert rule_ids[result["ruleIndex"]] == result["ruleId"]


def test_to_sarif_json_is_valid_json():
    parsed = json.loads(_report_with_findings().to_sarif_json())
    assert parsed["runs"][0]["results"]


def _run_cli(*args, script_text=None, tmp_path=None):
    argv = [sys.executable, str(REPO / "scripts" / "analyze.py"), *args]
    if script_text is not None:
        script = tmp_path / "conf.pmgr"
        script.write_text(script_text)
        argv.append(str(script))
    return subprocess.run(argv, capture_output=True, text=True, cwd=REPO)


def test_cli_sarif_clean_script_exits_zero(tmp_path):
    proc = _run_cli(
        "--sarif", script_text="modload firewall\n", tmp_path=tmp_path
    )
    assert proc.returncode == 0, proc.stderr
    sarif = json.loads(proc.stdout)
    assert sarif["version"] == "2.1.0"
    assert sarif["runs"][0]["results"] == []


def test_cli_sarif_findings_exit_one(tmp_path):
    # A script error surfaces as RP107 (warning): gate only with --strict.
    proc = _run_cli(
        "--sarif", script_text="modload no_such_plugin\n", tmp_path=tmp_path
    )
    assert proc.returncode == 0
    sarif = json.loads(proc.stdout)
    results = sarif["runs"][0]["results"]
    assert any(r["ruleId"] == "RP107" for r in results)

    strict = _run_cli(
        "--sarif", "--strict",
        script_text="modload no_such_plugin\n", tmp_path=tmp_path,
    )
    assert strict.returncode == 1
    assert json.loads(strict.stdout)["runs"][0]["results"]


def test_cli_usage_error_still_exits_two():
    proc = _run_cli("--sarif")
    assert proc.returncode == 2
