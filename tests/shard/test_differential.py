"""Differential proof: an N-shard inline ShardedRouter is observationally
equal to one Router over any workload (docs/PERFORMANCE.md, "Sharded
data path").

Equality claims pinned here, all against the same seeded packet streams:

* per-packet dispositions, in input order, through every entry point
  (receive / receive_batch / receive_wire);
* per-flow ordering (dispatch buckets preserve arrival order, and a
  flow never splits across shards);
* aggregate flow-table accounting (hits, misses, births, active);
* aggregated telemetry counters and merged histograms;
* control-plane fanout: a filter installed mid-run via pmgr lands on
  every shard and changes dispositions exactly like the single router;
* quarantine state propagates to every shard and aggregates back.

Run via the shard gate in ``scripts/ci_check.sh`` (``-m shard``).
"""

import json
import random

import pytest

from repro import PluginManager, Router, ShardedRouter
from repro.aiu.filters import flow_key_of
from repro.mgr.format import render_topic
from repro.net.packet import make_tcp, make_udp
from repro.shard import decode_packet, dispatch_packets, encode_packet

SEED = 11
NSHARDS = 4

CONFIG = """
modload firewall
create firewall fw0 action=deny
bind fw0 ip_security <*, *, UDP, *, 53, *>
route 10.0.0.0/8 eth1
route 0.0.0.0/0 eth0
telemetry on
"""


def _factory(index: int) -> Router:
    router = Router(name=f"shard/{index}")
    router.add_interface("eth0")
    router.add_interface("eth1")
    return router


def _single() -> PluginManager:
    manager = PluginManager(_factory(0))
    manager.run_script(CONFIG)
    return manager


def _sharded(nshards: int = NSHARDS) -> PluginManager:
    manager = PluginManager(
        ShardedRouter(nshards=nshards, factory=_factory, backend="inline")
    )
    manager.run_script(CONFIG)
    return manager


def _packets(count: int = 600, flows: int = 40, seed: int = SEED):
    """Seeded mixed UDP/TCP stream over a fixed flow population; callers
    get fresh Packet objects every call (the data path mutates TTLs)."""
    rng = random.Random(seed)
    out = []
    for i in range(count):
        flow = rng.randrange(flows)
        make = make_udp if flow % 3 else make_tcp
        out.append(
            make(
                f"192.168.{flow % 16}.{flow + 1}",
                f"10.{flow % 5}.0.{flow % 9 + 1}",
                2000 + flow,
                53 if flow % 4 == 0 else 80,
                iif="eth0",
            )
        )
    return out


@pytest.mark.shard
@pytest.mark.parametrize("nshards", [1, 2, 4])
def test_dispositions_equal_across_shard_counts(nshards):
    """The headline differential: identical disposition sequences for
    1 router vs N shards, through both scalar and batch entry points."""
    single, sharded = _single(), _sharded(nshards)
    expected = [single.router.receive(p, now=i * 1e-4)
                for i, p in enumerate(_packets())]
    scalar = [sharded.router.receive(p, now=i * 1e-4)
              for i, p in enumerate(_packets())]
    assert scalar == expected
    resharded = _sharded(nshards)
    batched = []
    pkts = _packets()
    for start in range(0, len(pkts), 128):
        batched.extend(
            resharded.router.receive_batch(pkts[start:start + 128],
                                           now=start * 1e-4)
        )
    assert batched == expected


@pytest.mark.shard
def test_wire_descriptors_roundtrip_and_match():
    """encode -> decode is lossless for the data path, and receive_wire
    equals receive_batch over the same stream."""
    for packet in _packets(50):
        twin = decode_packet(encode_packet(packet))
        assert (twin.src, twin.dst, twin.protocol, twin.src_port,
                twin.dst_port, twin.iif, twin.payload, twin.ttl) == (
            packet.src, packet.dst, packet.protocol, packet.src_port,
            packet.dst_port, packet.iif, packet.payload, packet.ttl)
        assert twin.flow_fold32() == packet.flow_fold32()
        assert flow_key_of(twin) == flow_key_of(packet)
    sharded = _sharded()
    descs = [encode_packet(p) for p in _packets()]
    wire = sharded.router.receive_wire(descs, now=0.0)
    assert wire == _sharded().router.receive_batch(_packets(), now=0.0)


@pytest.mark.shard
def test_flows_never_split_and_stay_ordered():
    """RSS invariant: every packet of a flow lands in one bucket, and
    bucket order is arrival order (indices strictly increasing)."""
    pkts = _packets(400)
    buckets, indices = dispatch_packets(pkts, NSHARDS)
    assert sum(len(b) for b in buckets) == len(pkts)
    flow_home = {}
    for shard, bucket in enumerate(buckets):
        assert indices[shard] == sorted(indices[shard])
        for packet in bucket:
            key = (packet.src, packet.dst, packet.protocol,
                   packet.src_port, packet.dst_port)
            assert flow_home.setdefault(key, shard) == shard
    # The fold rides the descriptor, so wire dispatch agrees exactly.
    from repro.shard import dispatch_wire

    wire_buckets, wire_indices = dispatch_wire(
        [encode_packet(p) for p in pkts], NSHARDS
    )
    assert wire_indices == indices


@pytest.mark.shard
def test_flow_stats_aggregate_to_single_router():
    single, sharded = _single(), _sharded()
    now = 0.0
    single.router.receive_batch(_packets(), now=now)
    sharded.router.receive_batch(_packets(), now=now)
    st = single.router.aiu.flow_table
    agg = sharded.router.aiu.flow_table
    assert (agg.hits, agg.misses, agg.births, agg.active) == (
        st.hits, st.misses, st.births, st.active)
    assert dict(sharded.router.counters) == dict(single.router.counters)


@pytest.mark.shard
def test_telemetry_aggregates_to_single_router():
    """Summed counters and merged histograms equal the single router's
    registry snapshot (docs/OBSERVABILITY.md, cross-shard semantics)."""
    single, sharded = _single(), _sharded()
    single.router.receive_batch(_packets(), now=0.0)
    sharded.router.receive_batch(_packets(), now=0.0)
    expected = single.library.query("telemetry")
    merged = sharded.library.query("telemetry")
    assert merged["counters"] == expected["counters"]
    assert merged["gauges"]["flow.active"] == expected["gauges"]["flow.active"]
    for name, hist in expected["histograms"].items():
        twin = merged["histograms"][name]
        assert twin["counts"] == hist["counts"]
        assert twin["count"] == hist["count"]
        assert twin["sum"] == pytest.approx(hist["sum"])


@pytest.mark.shard
def test_mid_run_filter_install_fans_out():
    """A bind issued between batches reaches every shard: dispositions
    flip identically on the sharded and single routers."""
    single, sharded = _single(), _sharded()
    first, second = _packets(), _packets()
    expected = single.router.receive_batch(first, now=0.0)
    got = sharded.router.receive_batch(second, now=0.0)
    assert got == expected
    install = (
        "create firewall fw1 action=deny\n"
        "bind fw1 ip_security <*, *, TCP, *, 80, *>\n"
    )
    single.run_script(install)
    sharded.run_script(install)
    third, fourth = _packets(seed=SEED + 1), _packets(seed=SEED + 1)
    expected2 = single.router.receive_batch(third, now=1.0)
    got2 = sharded.router.receive_batch(fourth, now=1.0)
    assert got2 == expected2
    assert "dropped_by_plugin" in set(got2)
    per_shard = sharded.library.query("shards")["shards"]
    assert all(row["filters"] == 2 for row in per_shard)


@pytest.mark.shard
def test_quarantine_fans_out_and_aggregates():
    sharded = _sharded()
    sharded.run_command("quarantine firewall bypass")
    for shard in sharded.router.shards:
        assert shard.health()["quarantined"] == ["firewall"]
    health = sharded.router.health()
    assert health["quarantined"] == ["firewall"]
    assert all(row["quarantined"] == ["firewall"]
               for row in sharded.library.query("shards")["shards"])
    # Quarantined shards bypass the plugin: DNS packets now forward.
    dispo = sharded.router.receive_batch(_packets(), now=0.0)
    assert "dropped_by_plugin" not in set(dispo)
    sharded.run_command("reinstate firewall")
    assert sharded.router.health()["quarantined"] == []


@pytest.mark.shard
def test_shards_topic_json_and_text_roundtrip():
    """``pmgr show shards --json`` is the aggregation's structured twin,
    and the single router reports itself as the one-shard case."""
    sharded = _sharded()
    sharded.router.receive_batch(_packets(), now=0.0)
    data = sharded.library.query("shards")
    assert json.loads(json.dumps(data)) == data
    assert data["nshards"] == NSHARDS and data["backend"] == "inline"
    assert sum(row["rx"] for row in data["shards"]) == 600
    assert [row["shard"] for row in data["shards"]] == list(range(NSHARDS))
    lines = render_topic("shards", data)
    assert len(lines) == 1 + NSHARDS
    single = _single()
    degenerate = single.library.query("shards")
    assert degenerate["nshards"] == 1
    assert degenerate["backend"] == "local"
    assert degenerate["shards"][0]["shard"] == 0
