"""Adversarial soak through the sharded front end: a SYN flood against
a 4-shard inline ShardedRouter with per-shard governors and bounded
per-shard flow tables.

The sharded router's aggregate views (``aiu.flow_table``, ``_overload``,
``counters``) let :func:`repro.workloads.adversarial.run_scenario` drive
it unmodified.  Invariants pinned (the same ones the single-router soak
in tests/sim/test_attack_soak.py pins, restated cross-shard):

* total occupancy never exceeds the summed per-shard capacity;
* established flows keep >= 90% of their delivery through the storm
  (RSS spreads both attack and background flows, so no shard melts);
* every shard's governor walks back to NORMAL in the recovery window,
  so the aggregate worst-tier does too;
* the ungoverned control arm still gets wrecked — sharding alone is not
  overload protection.
"""

import pytest

from repro import Router, ShardedRouter
from repro.core import TIER_NORMAL
from repro.workloads import run_scenario, scenario

SEED = 7
NSHARDS = 4
#: 48 records x 4 shards vs 64 established flows: the same 3x headroom
#: the single-router soak gives 32 flows in a 96-record table.
FLOWS_PER_SHARD = 48

GOV = dict(sample_interval=16, escalate_after=2, shed_after=2, recover_after=2)


def _shard_factory(governed=True):
    def factory(index: int) -> Router:
        router = Router(max_flows=FLOWS_PER_SHARD, flow_eviction="lru",
                        name=f"soak/{index}")
        router.add_interface("atm0", prefix="10.0.0.0/8")
        router.add_interface("eth0", prefix="20.0.0.0/8")
        router.routing_table.add("0.0.0.0/0", "eth0")
        if governed:
            router.attach_overload_governor(**GOV)
        return router
    return factory


@pytest.mark.shard
@pytest.mark.parametrize("batch_size", [0, 64], ids=["scalar", "batched"])
def test_syn_flood_through_sharded_front_end(batch_size):
    # 64 background flows so RSS lands established traffic on every
    # shard (32 flows happen to hash onto only three of four shards
    # with this seed — see test_idle_shard_keeps_last_tier).
    sc = scenario("syn_flood", seed=SEED, background_flows=64)
    sharded = ShardedRouter(nshards=NSHARDS, factory=_shard_factory(),
                            backend="inline")
    report = run_scenario(sharded, sc, batch_size=batch_size)
    assert report["max_active"] <= NSHARDS * FLOWS_PER_SHARD
    attack = report["phases"]["attack"]
    assert attack["background_hit_ratio"] >= 0.9
    assert attack["shed"] > 0  # the governors actually fought back
    assert report["tier_after_recovery"] == TIER_NORMAL
    assert sharded._overload.tier == TIER_NORMAL  # worst shard recovered
    for shard in sharded.shards:
        assert shard._overload.tier == TIER_NORMAL
        assert shard.aiu.flow_table.active <= FLOWS_PER_SHARD
    # The storm reached every shard (random five-tuples spread by RSS).
    assert all(s.counters["rx"] > 0 for s in sharded.shards)


@pytest.mark.shard
def test_idle_shard_keeps_last_tier():
    """Aggregate-tier semantics: a shard that stops receiving traffic
    after the attack cannot sample its way back to NORMAL, and the
    aggregate worst-tier view truthfully reports it.  With seed 7 all
    32 default background flows hash onto shards 0-2, so shard 3 sees
    only attack SYNs and then silence."""
    sc = scenario("syn_flood", seed=SEED)  # default 32 background flows
    sharded = ShardedRouter(nshards=NSHARDS, factory=_shard_factory(),
                            backend="inline")
    run_scenario(sharded, sc)
    tiers = [s._overload.tier for s in sharded.shards]
    assert tiers[:3] == [TIER_NORMAL] * 3
    assert tiers[3] != TIER_NORMAL  # no recovery traffic ever reached it
    assert sharded._overload.tier == tiers[3]  # worst tier wins


@pytest.mark.shard
def test_sharding_alone_is_not_overload_protection():
    """Control arm: 4 ungoverned shards still lose the established
    flows' fast path — the soak measures the governors, not the RSS."""
    sc = scenario("syn_flood", seed=SEED, background_flows=64)
    sharded = ShardedRouter(nshards=NSHARDS,
                            factory=_shard_factory(governed=False),
                            backend="inline")
    report = run_scenario(sharded, sc)
    assert sc.check(report) != []
    assert report["phases"]["attack"]["background_hit_ratio"] < 0.9


@pytest.mark.shard
def test_filter_churn_control_ops_fan_out():
    """The filter_churn scenario's mid-attack control ops (filter and
    route add/remove) hit the aggregate router surface; under RSS they
    must target every shard for the workload to stay meaningful."""
    single = _shard_factory()(0)
    expected = run_scenario(single, scenario("filter_churn", seed=SEED))
    sharded = ShardedRouter(nshards=1, factory=_shard_factory(),
                            backend="inline")
    # Fresh scenario: the churn closures keep per-run filter handles.
    got = run_scenario(sharded, scenario("filter_churn", seed=SEED))
    assert got["phases"].keys() == expected["phases"].keys()
    assert got["max_active"] <= FLOWS_PER_SHARD
