"""Multiprocessing backend: forked shard workers must be bit-equal to
the inline backend (which test_differential.py proves equal to a single
router), and the control protocol must survive worker-side errors.

Kept deliberately small — fork + pipe plumbing, not throughput (that is
``benchmarks/bench_throughput.py``'s job).  Skipped where the ``fork``
start method is unavailable.
"""

import random

import pytest

from repro import PluginManager, Router, ShardedRouter
from repro.net.packet import make_udp
from repro.shard import encode_packet, mp_available

pytestmark = [
    pytest.mark.shard,
    pytest.mark.skipif(not mp_available(), reason="needs fork start method"),
]

CONFIG = """
modload firewall
create firewall fw0 action=deny
bind fw0 ip_security <*, *, UDP, *, 53, *>
route 10.0.0.0/8 eth1
route 0.0.0.0/0 eth0
telemetry on
"""


def _factory(index: int) -> Router:
    router = Router(name=f"mp/{index}")
    router.add_interface("eth0")
    router.add_interface("eth1")
    return router


def _descs(count: int = 400, seed: int = 5):
    rng = random.Random(seed)
    out = []
    for i in range(count):
        flow = rng.randrange(30)
        out.append(encode_packet(make_udp(
            f"172.16.{flow}.{flow + 1}", f"10.0.0.{flow % 7 + 1}",
            3000 + flow, 53 if flow % 5 == 0 else 443, iif="eth0",
        )))
    return out


def test_mp_equals_inline():
    """Same descriptors, same dispositions, same aggregated state."""
    descs = _descs()
    with ShardedRouter(nshards=4, factory=_factory, backend="mp",
                       batch_size=64, window=4) as mp_router:
        manager = PluginManager(mp_router)
        manager.run_script(CONFIG)
        mp_dispo = mp_router.receive_wire(descs, now=0.5)
        mp_shards = manager.library.query("shards")
        mp_tel = manager.library.query("telemetry")
        mp_health = mp_router.health()

    inline = PluginManager(
        ShardedRouter(nshards=4, factory=_factory, backend="inline")
    )
    inline.run_script(CONFIG)
    assert mp_dispo == inline.router.receive_wire(descs, now=0.5)
    inline_shards = inline.library.query("shards")
    assert [r["rx"] for r in mp_shards["shards"]] == [
        r["rx"] for r in inline_shards["shards"]]
    assert mp_tel["counters"] == inline.library.query("telemetry")["counters"]
    assert mp_health["counters"] == inline.router.health()["counters"]
    assert mp_shards["backend"] == "mp"


def test_mp_batches_pipeline_through_credit_window():
    """More in-flight batches than the window allows: every disposition
    still lands, in input order (the scatter map survives pipelining)."""
    descs = _descs(2000)
    with ShardedRouter(nshards=2, factory=_factory, backend="mp",
                       batch_size=32, window=2) as mp_router:
        PluginManager(mp_router).run_script(CONFIG)
        dispo = mp_router.receive_wire(descs, now=0.0)
    assert len(dispo) == len(descs)
    assert None not in dispo
    inline = PluginManager(
        ShardedRouter(nshards=2, factory=_factory, backend="inline")
    )
    inline.run_script(CONFIG)
    assert dispo == inline.router.receive_wire(descs, now=0.0)


def test_mp_null_path_measures_dispatch_only():
    """The bench's dispatch-capacity arm: null-path workers echo one
    disposition per descriptor without touching a router."""
    descs = _descs(300)
    with ShardedRouter(nshards=4, factory=_factory, backend="mp",
                       _null_path=True) as mp_router:
        dispo = mp_router.receive_wire(descs, now=0.0)
    assert dispo == ["forwarded"] * len(descs)


def test_mp_control_errors_surface_in_parent():
    """A bad fanout command raises in the parent and does not wedge or
    kill the workers."""
    with ShardedRouter(nshards=2, factory=_factory, backend="mp") as mp_router:
        manager = PluginManager(mp_router)
        with pytest.raises(Exception):
            manager.run_command("modload not_a_plugin")
        manager.run_script(CONFIG)
        dispo = mp_router.receive_wire(_descs(100), now=0.0)
        assert len(dispo) == 100 and None not in dispo
