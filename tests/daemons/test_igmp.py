"""Tests for the IGMP-lite membership daemon."""

import json

import pytest

from repro.core import Disposition, Router
from repro.daemons import IGMPDaemon, PROTO_IGMP
from repro.net.addresses import IPAddress
from repro.net.packet import Packet, make_udp


@pytest.fixture
def rig():
    router = Router(flow_buckets=64)
    router.add_interface("up0", address="10.0.0.254", prefix="10.0.0.0/8")
    router.add_interface("down1", address="10.1.0.254")
    router.add_interface("down2", address="10.2.0.254")
    daemon = IGMPDaemon(router)
    return router, daemon


def _report(op, group, src, iif):
    return Packet(
        src=IPAddress.parse(src),
        dst=IPAddress.parse("10.1.0.254"),
        protocol=PROTO_IGMP,
        payload=json.dumps({"op": op, "group": group}).encode(),
        iif=iif,
    )


class TestMembership:
    def test_join_installs_multicast_route(self, rig):
        router, daemon = rig
        assert router.receive(_report("join", "232.1.1.1", "10.1.0.5", "down1")) \
            == Disposition.LOCAL
        assert daemon.interfaces_for("232.1.1.1") == ["down1"]

    def test_join_from_two_interfaces(self, rig):
        router, daemon = rig
        router.receive(_report("join", "232.1.1.1", "10.1.0.5", "down1"))
        router.receive(_report("join", "232.1.1.1", "10.2.0.7", "down2"))
        assert daemon.interfaces_for("232.1.1.1") == ["down1", "down2"]

    def test_traffic_flows_after_join(self, rig):
        router, daemon = rig
        router.receive(_report("join", "232.1.1.1", "10.1.0.5", "down1"))
        pkt = make_udp("10.0.0.1", "232.1.1.1", 5000, 9000, ttl=8, iif="up0")
        assert router.receive(pkt) == Disposition.FORWARDED
        assert router.interface("down1").tx_packets == 1
        assert router.interface("down2").tx_packets == 0

    def test_leave_removes_interface(self, rig):
        router, daemon = rig
        router.receive(_report("join", "232.1.1.1", "10.1.0.5", "down1"))
        router.receive(_report("leave", "232.1.1.1", "10.1.0.5", "down1"))
        assert daemon.interfaces_for("232.1.1.1") == []
        pkt = make_udp("10.0.0.1", "232.1.1.1", 5000, 9000, ttl=8, iif="up0")
        assert router.receive(pkt) == Disposition.DROPPED_NO_ROUTE

    def test_leave_waits_for_all_reporters(self, rig):
        router, daemon = rig
        router.receive(_report("join", "232.1.1.1", "10.1.0.5", "down1"))
        router.receive(_report("join", "232.1.1.1", "10.1.0.6", "down1"))
        router.receive(_report("leave", "232.1.1.1", "10.1.0.5", "down1"))
        assert daemon.interfaces_for("232.1.1.1") == ["down1"]
        router.receive(_report("leave", "232.1.1.1", "10.1.0.6", "down1"))
        assert daemon.interfaces_for("232.1.1.1") == []

    def test_expiry_ages_out_silent_segments(self, rig):
        router, daemon = rig
        daemon.join("232.1.1.1", "down1", reporter="h1", now=0.0)
        daemon.join("232.1.1.1", "down2", reporter="h2", now=200.0)
        assert daemon.expire(now=300.0) == 1    # down1 silent too long
        assert daemon.interfaces_for("232.1.1.1") == ["down2"]

    def test_rejoin_refreshes(self, rig):
        router, daemon = rig
        daemon.join("232.1.1.1", "down1", reporter="h1", now=0.0)
        daemon.join("232.1.1.1", "down1", reporter="h1", now=250.0)
        assert daemon.expire(now=300.0) == 0


class TestRobustness:
    @pytest.mark.parametrize("payload", [
        b"junk",
        json.dumps({"op": "join"}).encode(),                 # no group
        json.dumps({"op": "join", "group": "10.0.0.1"}).encode(),  # unicast
        json.dumps({"op": "dance", "group": "232.1.1.1"}).encode(),
    ])
    def test_garbage_counted_not_fatal(self, rig, payload):
        router, daemon = rig
        pkt = Packet(
            src=IPAddress.parse("10.1.0.5"),
            dst=IPAddress.parse("10.1.0.254"),
            protocol=PROTO_IGMP,
            payload=payload,
            iif="down1",
        )
        router.receive(pkt)
        assert daemon.malformed == 1
        assert len(daemon) == 0
