"""Distance-vector dynamics: link failure, count-to-infinity bounding,
and re-convergence."""

import pytest

from repro.daemons import RouteDaemon, Topology
from repro.daemons.routed import INFINITY_METRIC


def _square():
    """a - b - c in a line plus a stub on c."""
    topo = Topology()
    for name in "abc":
        topo.add_router(name, flow_buckets=64)
    topo.link("a", "ab0", "192.168.1.1", "b", "ba0", "192.168.1.2", "192.168.1.0/24")
    topo.link("b", "bc0", "192.168.2.1", "c", "cb0", "192.168.2.2", "192.168.2.0/24")
    topo.stub("c", "lan0", "10.3.0.254", "10.3.0.0/16")
    daemons = {
        name: RouteDaemon(topo.routers[name], topo.neighbors_of(name),
                          expire_after=90.0)
        for name in "abc"
    }
    return topo, daemons


def _rounds(topo, daemons, count, start=0.0, step=30.0):
    now = start
    for _ in range(count):
        for daemon in daemons.values():
            daemon.advertise(now=now)
        topo.run()
        now += step
    return now


class TestConvergence:
    def test_initial_convergence(self):
        topo, daemons = _square()
        _rounds(topo, daemons, 3)
        assert topo.routers["a"].routing_table.lookup("10.3.0.1").metric == 3

    def test_route_withdrawn_after_link_failure(self):
        topo, daemons = _square()
        now = _rounds(topo, daemons, 3)
        # Sever c from the world: c stops advertising, b's learned route
        # ages out, and a's in turn.
        dead = {"a": daemons["a"], "b": daemons["b"]}
        for round_index in range(8):
            for daemon in dead.values():
                daemon.advertise(now=now)
                daemon.expire(now=now)
            topo.run()
            now += 30.0
        assert topo.routers["b"].routing_table.lookup("10.3.0.1") is None
        assert topo.routers["a"].routing_table.lookup("10.3.0.1") is None

    def test_metric_never_exceeds_infinity(self):
        topo, daemons = _square()
        _rounds(topo, daemons, 6)
        for router in topo.routers.values():
            for route in router.routing_table.routes():
                assert route.metric <= INFINITY_METRIC

    def test_reconvergence_after_restoration(self):
        topo, daemons = _square()
        now = _rounds(topo, daemons, 3)
        # Age out c's routes at b and a.
        for daemon in (daemons["a"], daemons["b"]):
            daemon.expire(now=now + 200.0)
        assert topo.routers["a"].routing_table.lookup("10.3.0.1") is None
        # c comes back: a few rounds restore the route.
        now += 200.0
        _rounds(topo, daemons, 3, start=now)
        assert topo.routers["a"].routing_table.lookup("10.3.0.1") is not None

    def test_split_horizon_prevents_two_node_loop(self):
        """b must not advertise c's prefix back toward c."""
        topo, daemons = _square()
        _rounds(topo, daemons, 3)
        vector_to_c = daemons["b"]._vector_for("bc0")
        prefixes = {entry["prefix"] for entry in vector_to_c}
        assert "10.3.0.0/16" not in prefixes
        # But it does advertise it toward a.
        vector_to_a = daemons["b"]._vector_for("ba0")
        assert "10.3.0.0/16" in {e["prefix"] for e in vector_to_a}
