"""Tests for the SSP, RSVP-lite, and routed daemons on a 3-router chain."""

import pytest

from repro.daemons import RouteDaemon, RSVPDaemon, SSPDaemon, SSPError, Topology
from repro.net.packet import make_udp
from repro.sched import DrrPlugin


def _chain(with_schedulers=True):
    """A - B - C chain with stub LANs on A and C and static routes."""
    topo = Topology()
    for name in "abc":
        topo.add_router(name, flow_buckets=256)
    topo.link("a", "ab0", "192.168.1.1", "b", "ba0", "192.168.1.2", "192.168.1.0/24")
    topo.link("b", "bc0", "192.168.2.1", "c", "cb0", "192.168.2.2", "192.168.2.0/24")
    topo.stub("a", "lan0", "10.1.0.254", "10.1.0.0/16")
    topo.stub("c", "lan0", "10.3.0.254", "10.3.0.0/16")
    # Static routes toward the remote stubs (replaced by routed in the
    # routing-daemon tests).
    topo.routers["a"].routing_table.add("10.3.0.0/16", "ab0", next_hop="192.168.1.2")
    topo.routers["b"].routing_table.add("10.3.0.0/16", "bc0", next_hop="192.168.2.2")
    topo.routers["b"].routing_table.add("10.1.0.0/16", "ba0", next_hop="192.168.1.1")
    topo.routers["c"].routing_table.add("10.1.0.0/16", "cb0", next_hop="192.168.2.1")
    schedulers = {}
    if with_schedulers:
        plugin = DrrPlugin()
        for name, iface in [("a", "ab0"), ("b", "bc0"), ("c", "lan0"),
                            ("c", "cb0"), ("b", "ba0"), ("a", "lan0")]:
            instance = plugin.create_instance(name=f"drr-{name}-{iface}", interface=iface)
            topo.routers[name].set_scheduler(iface, instance)
            schedulers[(name, iface)] = instance
    return topo, schedulers


FLOWSPEC = "10.1.0.5, 10.3.0.9, UDP, 4000, 5000"


class TestSSP:
    def test_setup_installs_reservations_along_path(self):
        topo, schedulers = _chain()
        daemons = {
            name: SSPDaemon(topo.routers[name], topo.neighbors_of(name))
            for name in "abc"
        }
        daemons["a"].request("flow1", FLOWSPEC, rate_bps=1_000_000, dst="10.3.0.9")
        topo.run()
        for name in "abc":
            assert "flow1" in daemons[name].reservations, f"router {name}"
        # The reserved weight landed on the right scheduler.
        record = daemons["b"].reservations["flow1"].filter_record
        assert schedulers[("b", "bc0")].weight_for(record) == 1.0

    def test_data_packets_hit_reserved_binding(self):
        topo, schedulers = _chain()
        daemons = {
            name: SSPDaemon(topo.routers[name], topo.neighbors_of(name))
            for name in "abc"
        }
        daemons["a"].request("flow1", FLOWSPEC, rate_bps=1_000_000, dst="10.3.0.9")
        topo.run()
        pkt = make_udp("10.1.0.5", "10.3.0.9", 4000, 5000, iif="lan0")
        topo.routers["a"].receive(pkt, now=topo.loop.now)
        topo.run()
        # The flow got queued through the reserved DRR instances at every
        # hop and reached C's LAN.
        assert topo.routers["c"].interface("lan0").tx_packets == 1
        queue = schedulers[("a", "ab0")]
        assert queue.packets_sent >= 1

    def test_teardown_removes_state_along_path(self):
        topo, _ = _chain()
        daemons = {
            name: SSPDaemon(topo.routers[name], topo.neighbors_of(name))
            for name in "abc"
        }
        daemons["a"].request("flow1", FLOWSPEC, rate_bps=1_000_000, dst="10.3.0.9")
        topo.run()
        daemons["a"].teardown("flow1", now=topo.loop.now)
        topo.run()
        for name in "abc":
            assert daemons[name].reservations == {}
            assert topo.routers[name].aiu.filter_count("packet_scheduling") == 0

    def test_soft_state_expiry_without_refresh(self):
        topo, _ = _chain()
        daemon_b = SSPDaemon(topo.routers["b"], topo.neighbors_of("b"), timeout=10.0)
        daemons = {
            "a": SSPDaemon(topo.routers["a"], topo.neighbors_of("a")),
            "c": SSPDaemon(topo.routers["c"], topo.neighbors_of("c")),
        }
        daemons["a"].request("flow1", FLOWSPEC, rate_bps=1e6, dst="10.3.0.9")
        topo.run()
        assert daemon_b.expire(now=5.0) == 0
        assert daemon_b.expire(now=11.0) == 1
        assert "flow1" not in daemon_b.reservations

    def test_refresh_keeps_state_alive(self):
        topo, _ = _chain()
        daemons = {
            name: SSPDaemon(topo.routers[name], topo.neighbors_of(name), timeout=10.0)
            for name in "abc"
        }
        daemons["a"].request("flow1", FLOWSPEC, rate_bps=1e6, dst="10.3.0.9")
        topo.run()
        daemons["a"].refresh("flow1", now=8.0)
        topo.run()
        assert daemons["b"].expire(now=12.0) == 0

    def test_missing_scheduler_raises(self):
        topo, _ = _chain(with_schedulers=False)
        daemon = SSPDaemon(topo.routers["a"], topo.neighbors_of("a"))
        with pytest.raises(SSPError):
            daemon.request("flow1", FLOWSPEC, rate_bps=1e6, dst="10.3.0.9")


class TestRSVP:
    def test_path_then_resv_installs_upstream(self):
        topo, schedulers = _chain()
        daemons = {
            name: RSVPDaemon(topo.routers[name], topo.neighbors_of(name))
            for name in "abc"
        }
        daemons["a"].send_path("sess1", sender="10.1.0.5", dst="10.3.0.9")
        topo.run()
        for name in "abc":
            assert "sess1" in daemons[name].path_state, f"router {name}"
        # Receiver-side reservation travels upstream.
        daemons["c"].send_resv("sess1", FLOWSPEC, rate_bps=2_000_000, now=topo.loop.now)
        topo.run()
        for name in "abc":
            assert "sess1" in daemons[name].resv_state, f"router {name}"

    def test_resv_without_path_raises(self):
        topo, _ = _chain()
        daemon = RSVPDaemon(topo.routers["c"], topo.neighbors_of("c"))
        from repro.daemons import RSVPError

        with pytest.raises(RSVPError):
            daemon.send_resv("ghost", FLOWSPEC, rate_bps=1e6)

    def test_sweep_expires_stale_state(self):
        topo, _ = _chain()
        daemons = {
            name: RSVPDaemon(topo.routers[name], topo.neighbors_of(name), hold_time=30.0)
            for name in "abc"
        }
        daemons["a"].send_path("sess1", sender="10.1.0.5", dst="10.3.0.9")
        topo.run()
        daemons["c"].send_resv("sess1", FLOWSPEC, rate_bps=1e6, now=topo.loop.now)
        topo.run()
        assert daemons["b"].sweep(now=10.0) == 0
        removed = daemons["b"].sweep(now=100.0)
        assert removed == 2  # path + resv
        assert daemons["b"].resv_state == {}
        assert topo.routers["b"].aiu.filter_count("packet_scheduling") == 0


class TestRouted:
    def test_routes_propagate_across_chain(self):
        topo, _ = _chain(with_schedulers=False)
        # Drop the static routes; routed must discover them.
        for name, prefix in [("a", "10.3.0.0/16"), ("b", "10.3.0.0/16"),
                             ("b", "10.1.0.0/16"), ("c", "10.1.0.0/16")]:
            topo.routers[name].routing_table.remove(prefix)
        daemons = {
            name: RouteDaemon(topo.routers[name], topo.neighbors_of(name))
            for name in "abc"
        }
        for _round in range(3):
            for daemon in daemons.values():
                daemon.advertise(now=topo.loop.now)
            topo.run()
        route = topo.routers["a"].routing_table.lookup("10.3.0.1")
        assert route is not None
        assert route.interface == "ab0"
        assert route.metric == 3  # connected(1) + two hops

    def test_split_horizon(self):
        topo, _ = _chain(with_schedulers=False)
        daemon_a = RouteDaemon(topo.routers["a"], topo.neighbors_of("a"))
        vector = daemon_a._vector_for("ab0")
        prefixes = {entry["prefix"] for entry in vector}
        assert "10.1.0.0/16" in prefixes

    def test_learned_routes_expire(self):
        topo, _ = _chain(with_schedulers=False)
        topo.routers["a"].routing_table.remove("10.3.0.0/16")
        daemons = {
            name: RouteDaemon(topo.routers[name], topo.neighbors_of(name),
                              expire_after=60.0)
            for name in "abc"
        }
        for _ in range(3):
            for daemon in daemons.values():
                daemon.advertise(now=0.0)
            topo.run()
        assert topo.routers["a"].routing_table.lookup("10.3.0.1") is not None
        assert daemons["a"].expire(now=120.0) >= 1
        assert topo.routers["a"].routing_table.lookup("10.3.0.1") is None

    def test_periodic_start_on_loop(self):
        topo, _ = _chain(with_schedulers=False)
        topo.routers["a"].routing_table.remove("10.3.0.0/16")
        daemons = {
            name: RouteDaemon(topo.routers[name], topo.neighbors_of(name), period=30.0)
            for name in "abc"
        }
        for i, daemon in enumerate(daemons.values()):
            daemon.start(topo.loop, jitter=0.1 * i)
        topo.run(until=100.0)
        assert topo.routers["a"].routing_table.lookup("10.3.0.1") is not None
        assert all(d.updates_sent >= 3 for d in daemons.values())
