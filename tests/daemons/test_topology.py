"""Tests for the multi-router topology builder."""

import pytest

from repro.daemons import Topology
from repro.net.packet import make_udp


class TestTopology:
    def test_add_router_and_duplicate_rejected(self):
        topo = Topology()
        topo.add_router("a")
        with pytest.raises(ValueError):
            topo.add_router("a")

    def test_link_wires_interfaces_and_neighbors(self):
        topo = Topology()
        topo.add_router("a")
        topo.add_router("b")
        topo.link("a", "a0", "192.168.0.1", "b", "b0", "192.168.0.2", "192.168.0.0/24")
        assert str(topo.neighbors_of("a")["a0"]) == "192.168.0.2"
        assert str(topo.neighbors_of("b")["b0"]) == "192.168.0.1"
        assert topo.neighbor_names["a"]["a0"] == "b"
        # Connected routes installed on both sides.
        assert topo.routers["a"].routing_table.lookup("192.168.0.9").interface == "a0"

    def test_packets_cross_the_link(self):
        topo = Topology()
        topo.add_router("a")
        topo.add_router("b")
        topo.link("a", "a0", "192.168.0.1", "b", "b0", "192.168.0.2", "192.168.0.0/24")
        topo.stub("b", "lan0", "10.2.0.254", "10.2.0.0/16")
        topo.routers["a"].routing_table.add("10.2.0.0/16", "a0", next_hop="192.168.0.2")
        pkt = make_udp("9.9.9.9", "10.2.0.1", 1, 2, iif="ext0")
        topo.routers["a"].receive(pkt, now=0.0)
        topo.run()
        assert topo.routers["b"].interface("lan0").tx_packets == 1

    def test_stub_has_no_neighbor(self):
        topo = Topology()
        topo.add_router("a")
        topo.stub("a", "lan0", "10.1.0.254", "10.1.0.0/16")
        assert "lan0" not in topo.neighbors_of("a")

    def test_shared_event_loop(self):
        topo = Topology()
        a = topo.add_router("a")
        b = topo.add_router("b")
        assert a.loop is b.loop is topo.loop

    def test_run_until(self):
        topo = Topology()
        topo.add_router("a")
        topo.run(until=5.0)
        assert topo.loop.now == 5.0
