"""Tests for the message set and gate descriptors."""

import pytest

from repro.core import (
    DEFAULT_GATES,
    GATE_IP_OPTIONS,
    GATE_IP_SECURITY,
    GATE_PACKET_SCHEDULING,
    GATE_ROUTING,
    GATES_WITH_L4_ROUTING,
    Message,
    MSG_CREATE_INSTANCE,
    MSG_DEREGISTER_INSTANCE,
    MSG_FREE_INSTANCE,
    MSG_REGISTER_INSTANCE,
    STANDARD_MESSAGES,
    TYPE_IP_OPTIONS,
    TYPE_PACKET_SCHEDULING,
    create_instance,
    deregister_instance,
    free_instance,
    gate_specs,
    register_instance,
)


class TestMessages:
    def test_standard_message_set_is_the_papers_four(self):
        assert set(STANDARD_MESSAGES) == {
            MSG_CREATE_INSTANCE,
            MSG_FREE_INSTANCE,
            MSG_REGISTER_INSTANCE,
            MSG_DEREGISTER_INSTANCE,
        }

    def test_is_standard(self):
        assert Message(MSG_CREATE_INSTANCE).is_standard
        assert not Message("custom_thing").is_standard

    def test_create_instance_builder(self):
        message = create_instance(interface="atm0", quantum=1500)
        assert message.type == MSG_CREATE_INSTANCE
        assert message.args == {"interface": "atm0", "quantum": 1500}

    def test_free_instance_builder(self):
        sentinel = object()
        assert free_instance(sentinel).args["instance"] is sentinel

    def test_register_instance_builder(self):
        sentinel = object()
        message = register_instance(sentinel, "10.*, *", gate="ip_security", priority=3)
        assert message.args["filter"] == "10.*, *"
        assert message.args["gate"] == "ip_security"
        assert message.args["priority"] == 3

    def test_deregister_instance_builder(self):
        sentinel = object()
        message = deregister_instance(sentinel)
        assert message.type == MSG_DEREGISTER_INSTANCE
        assert message.args["record"] is None


class TestGates:
    def test_default_gates_are_the_papers_three(self):
        assert DEFAULT_GATES == (
            GATE_IP_OPTIONS,
            GATE_IP_SECURITY,
            GATE_PACKET_SCHEDULING,
        )

    def test_l4_gate_list_adds_routing(self):
        assert GATE_ROUTING in GATES_WITH_L4_ROUTING
        assert set(DEFAULT_GATES) < set(GATES_WITH_L4_ROUTING)

    def test_gate_specs_positions(self):
        specs = gate_specs(DEFAULT_GATES)
        assert [s.position for s in specs] == [0, 1, 2]
        assert specs[0].plugin_type == TYPE_IP_OPTIONS
        assert specs[2].plugin_type == TYPE_PACKET_SCHEDULING

    def test_gate_specs_unknown_gate_gets_zero_type(self):
        (spec,) = gate_specs(("custom_gate",))
        assert spec.plugin_type == 0
        assert str(spec) == "custom_gate"
