"""Tests for the L4-switching routing gate (§8 future work)."""

import pytest

from repro.core import Disposition, GATE_ROUTING, GATES_WITH_L4_ROUTING, Router
from repro.core.routing_plugin import L4RoutingPlugin
from repro.net.packet import make_tcp, make_udp


@pytest.fixture
def router():
    r = Router(gates=GATES_WITH_L4_ROUTING, flow_buckets=256)
    r.add_interface("atm0", prefix="10.0.0.0/8")
    r.add_interface("atm1", prefix="20.0.0.0/8")
    r.add_interface("atm2")
    return r


class TestL4Switching:
    def test_flow_routed_by_port_not_just_destination(self, router):
        """True L4 switching: two flows to the same destination leave on
        different interfaces because the classifier sees the ports."""
        plugin = L4RoutingPlugin()
        router.pcu.load(plugin)
        video_path = plugin.create_instance(action="forward", interface="atm2")
        plugin.register_instance(
            video_path, "*, 20.0.0.1, UDP, *, 4000", gate=GATE_ROUTING
        )
        web = make_tcp("10.0.0.1", "20.0.0.1", 5000, 80, iif="atm0")
        video = make_udp("10.0.0.1", "20.0.0.1", 5000, 4000, iif="atm0")
        assert router.receive(web) == Disposition.FORWARDED
        assert router.receive(video) == Disposition.FORWARDED
        assert router.interface("atm1").tx_packets == 1   # web: table route
        assert router.interface("atm2").tx_packets == 1   # video: L4 route

    def test_route_lookup_skipped_for_bound_flows(self, router):
        plugin = L4RoutingPlugin()
        router.pcu.load(plugin)
        instance = plugin.create_instance(action="forward", interface="atm2")
        plugin.register_instance(instance, "*, *, UDP", gate=GATE_ROUTING)
        pkt = make_udp("10.0.0.1", "20.0.0.1", 1, 2, iif="atm0")
        meter = router.measure_packet(pkt)
        # The stock route lookup was never charged: QoS routing for free.
        assert "route_lookup" not in meter.breakdown()

    def test_blackhole_action(self, router):
        plugin = L4RoutingPlugin()
        router.pcu.load(plugin)
        hole = plugin.create_instance(action="blackhole")
        plugin.register_instance(hole, "192.168.0.0/16, *", gate=GATE_ROUTING)
        pkt = make_udp("192.168.1.1", "20.0.0.1", 1, 2, iif="atm0")
        assert router.receive(pkt) == Disposition.DROPPED_NO_ROUTE
        assert router.interface("atm1").tx_packets == 0

    def test_unbound_flows_use_routing_table(self, router):
        router.pcu.load(L4RoutingPlugin())
        pkt = make_udp("10.0.0.1", "20.0.0.1", 1, 2, iif="atm0")
        assert router.receive(pkt) == Disposition.FORWARDED
        assert router.interface("atm1").tx_packets == 1

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            L4RoutingPlugin().create_instance(action="teleport")

    def test_forward_requires_interface(self):
        with pytest.raises(ValueError):
            L4RoutingPlugin().create_instance(action="forward")
