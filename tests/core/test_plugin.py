"""Tests for plugin codes, base classes, and the message callback."""

import pytest

from repro.core import (
    Message,
    Plugin,
    PluginControlUnit,
    PluginInstance,
    TYPE_IP_SECURITY,
    TYPE_PACKET_SCHEDULING,
    UnknownMessageError,
    Verdict,
    create_instance,
    free_instance,
    plugin_code,
    plugin_id_of,
    plugin_type_of,
)
from repro.core.errors import InstanceError
from repro.core.plugin import PluginContext


class TestPluginCodes:
    def test_compose_and_split(self):
        code = plugin_code(TYPE_IP_SECURITY, 7)
        assert plugin_type_of(code) == TYPE_IP_SECURITY
        assert plugin_id_of(code) == 7

    def test_upper_16_bits_are_type(self):
        # §4: "The upper 16 bits of the code identify the plugin type."
        assert plugin_code(3, 1) == (3 << 16) | 1

    @pytest.mark.parametrize("bad_type,bad_id", [(-1, 0), (0x10000, 0), (0, -1), (0, 0x10000)])
    def test_range_checked(self, bad_type, bad_id):
        with pytest.raises(ValueError):
            plugin_code(bad_type, bad_id)


class _SchedPlugin(Plugin):
    plugin_type = TYPE_PACKET_SCHEDULING
    name = "testsched"

    def handle_custom(self, message):
        if message.type == "ping":
            return "pong"
        return super().handle_custom(message)


class TestPluginLifecycle:
    def test_create_instance_tracks_instances(self):
        plugin = _SchedPlugin()
        instance = plugin.create_instance(interface="atm0")
        assert instance in plugin.instances
        assert instance.config["interface"] == "atm0"

    def test_instance_names_unique_by_default(self):
        plugin = _SchedPlugin()
        a, b = plugin.create_instance(), plugin.create_instance()
        assert a.name != b.name

    def test_free_instance(self):
        plugin = _SchedPlugin()
        instance = plugin.create_instance()
        plugin.free_instance(instance)
        assert instance not in plugin.instances

    def test_free_unknown_instance_rejected(self):
        plugin = _SchedPlugin()
        other = PluginInstance(_SchedPlugin())
        with pytest.raises(InstanceError):
            plugin.free_instance(other)

    def test_default_process_continues(self):
        plugin = _SchedPlugin()
        instance = plugin.create_instance()
        assert instance.process(object(), PluginContext()) == Verdict.CONTINUE
        assert instance.packets_processed == 1


class TestCallbackDispatch:
    def test_create_via_message(self):
        plugin = _SchedPlugin()
        instance = plugin.callback(create_instance(interface="atm1"))
        assert instance.config["interface"] == "atm1"

    def test_free_via_message(self):
        plugin = _SchedPlugin()
        instance = plugin.create_instance()
        plugin.callback(free_instance(instance))
        assert plugin.instances == []

    def test_custom_message(self):
        plugin = _SchedPlugin()
        assert plugin.callback(Message("ping")) == "pong"

    def test_unknown_custom_message(self):
        plugin = _SchedPlugin()
        with pytest.raises(UnknownMessageError):
            plugin.callback(Message("bogus"))

    def test_register_requires_pcu(self):
        plugin = _SchedPlugin()
        instance = plugin.create_instance()
        with pytest.raises(InstanceError):
            plugin.register_instance(instance, "*")

    def test_default_gate_follows_type(self):
        assert _SchedPlugin().default_gate() == "packet_scheduling"


class TestDetach:
    def test_detach_frees_instances(self):
        pcu = PluginControlUnit()
        plugin = _SchedPlugin()
        pcu.load(plugin)
        plugin.create_instance()
        plugin.detach()
        assert plugin.instances == []
        assert plugin.code is None
