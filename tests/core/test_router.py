"""Tests for the EISR router data path."""

import pytest

from repro.core import (
    DEFAULT_GATES,
    Disposition,
    GATE_IP_SECURITY,
    GATE_PACKET_SCHEDULING,
    Plugin,
    Router,
    TYPE_IP_SECURITY,
    TYPE_PACKET_SCHEDULING,
    Verdict,
)
from repro.core.plugin import PluginInstance
from repro.net.headers import PROTO_SSP
from repro.net.packet import make_udp
from repro.sim.cost import Costs, CycleMeter
from repro.sim.events import EventLoop


class _EmptyInstance(PluginInstance):
    """The paper's 'empty plugin' used in the Table 3 measurement."""


class _EmptyPlugin(Plugin):
    plugin_type = TYPE_IP_SECURITY
    name = "empty"
    instance_class = _EmptyInstance


class _DropInstance(PluginInstance):
    def process(self, packet, ctx):
        super().process(packet, ctx)
        return Verdict.DROP


class _DropPlugin(Plugin):
    plugin_type = TYPE_IP_SECURITY
    name = "dropper"
    instance_class = _DropInstance


class _FifoInstance(PluginInstance):
    """Minimal consuming scheduler for router-integration tests."""

    def __init__(self, plugin, **config):
        super().__init__(plugin, **config)
        self.queue = []

    def process(self, packet, ctx):
        super().process(packet, ctx)
        self.queue.append(packet)
        return Verdict.CONSUMED

    def dequeue(self, now):
        return self.queue.pop(0) if self.queue else None


class _FifoPlugin(Plugin):
    plugin_type = TYPE_PACKET_SCHEDULING
    name = "minififo"
    instance_class = _FifoInstance


@pytest.fixture
def router():
    r = Router(flow_buckets=1024)
    r.add_interface("atm0", prefix="10.0.0.0/8")
    r.add_interface("atm1", prefix="20.0.0.0/8")
    return r


def _pkt(i=1, **kwargs):
    kwargs.setdefault("iif", "atm0")
    return make_udp(f"10.0.0.{i}", "20.0.0.1", 5000 + i, 53, **kwargs)


class TestForwarding:
    def test_forward_to_route_interface(self, router):
        assert router.receive(_pkt()) == Disposition.FORWARDED
        assert router.interface("atm1").tx_packets == 1

    def test_ttl_decremented(self, router):
        pkt = _pkt(ttl=10)
        router.receive(pkt)
        assert pkt.ttl == 9

    def test_ttl_expiry_drops(self, router):
        assert router.receive(_pkt(ttl=1)) == Disposition.DROPPED_TTL

    def test_no_route_drops(self, router):
        pkt = make_udp("10.0.0.1", "99.0.0.1", 1, 2, iif="atm0")
        assert router.receive(pkt) == Disposition.DROPPED_NO_ROUTE

    def test_counters(self, router):
        router.receive(_pkt())
        router.receive(_pkt(ttl=1))
        assert router.counters["rx"] == 2
        assert router.counters[Disposition.FORWARDED] == 1


class TestGates:
    def test_plugin_bound_to_flow_sees_packet(self, router):
        plugin = _EmptyPlugin()
        router.pcu.load(plugin)
        instance = plugin.create_instance()
        plugin.register_instance(instance, "10.*, *, UDP", gate=GATE_IP_SECURITY)
        router.receive(_pkt())
        assert instance.packets_processed == 1

    def test_drop_verdict_stops_packet(self, router):
        plugin = _DropPlugin()
        router.pcu.load(plugin)
        instance = plugin.create_instance()
        plugin.register_instance(instance, "10.*, *, UDP", gate=GATE_IP_SECURITY)
        assert router.receive(_pkt()) == Disposition.DROPPED_BY_PLUGIN
        assert router.interface("atm1").tx_packets == 0

    def test_fix_set_after_first_gate(self, router):
        pkt = _pkt()
        router.receive(pkt)
        assert pkt.fix is not None

    def test_flow_cached_across_packets(self, router):
        router.receive(_pkt(1))
        router.receive(_pkt(1))
        assert router.aiu.flow_table.hits == 1

    def test_different_plugins_coexist_per_flow(self, router):
        """The headline feature: distinct instances bound per flow."""
        plugin = _EmptyPlugin()
        router.pcu.load(plugin)
        inst_a = plugin.create_instance(name="secA")
        inst_b = plugin.create_instance(name="secB")
        plugin.register_instance(inst_a, "10.0.0.1, *, UDP", gate=GATE_IP_SECURITY)
        plugin.register_instance(inst_b, "10.0.0.2, *, UDP", gate=GATE_IP_SECURITY)
        router.receive(_pkt(1))
        router.receive(_pkt(2))
        router.receive(_pkt(2))
        assert inst_a.packets_processed == 1
        assert inst_b.packets_processed == 2


class TestSchedulingGate:
    def _with_fifo(self, router):
        plugin = _FifoPlugin()
        router.pcu.load(plugin)
        instance = plugin.create_instance()
        plugin.register_instance(instance, "*, *, UDP", gate=GATE_PACKET_SCHEDULING)
        return instance

    def test_consumed_packets_are_queued_and_drained(self, router):
        self._with_fifo(router)
        assert router.receive(_pkt()) == Disposition.QUEUED
        # Synchronous drain: packet is on the wire already.
        assert router.interface("atm1").tx_packets == 1

    def test_event_loop_drain(self):
        loop = EventLoop()
        router = Router(flow_buckets=64, loop=loop)
        router.add_interface("atm0", prefix="10.0.0.0/8")
        router.add_interface("atm1", prefix="20.0.0.0/8", rate_bps=1e6)
        instance = self._with_fifo(router)
        for i in range(3):
            router.receive(_pkt(1), now=0.0)
        assert len(instance.queue) >= 0
        loop.run_until_idle()
        assert router.interface("atm1").tx_packets == 3

    def test_set_scheduler_without_gate_binding(self):
        router = Router(flow_buckets=64)
        router.add_interface("atm0", prefix="10.0.0.0/8")
        router.add_interface("atm1", prefix="20.0.0.0/8")
        plugin = _FifoPlugin()
        router.pcu.load(plugin)
        instance = plugin.create_instance()
        router.set_scheduler("atm1", instance)
        assert router.receive(_pkt()) == Disposition.QUEUED
        assert router.interface("atm1").tx_packets == 1


class TestLocalDelivery:
    def test_local_protocol_handler(self):
        router = Router(flow_buckets=64)
        router.add_interface("atm0", address="10.0.0.254", prefix="10.0.0.0/8")
        seen = []
        router.register_protocol_handler(PROTO_SSP, lambda p, r, t: seen.append(p))
        pkt = make_udp("10.0.0.1", "10.0.0.254", 1, 2, iif="atm0")
        pkt.protocol = PROTO_SSP
        assert router.receive(pkt) == Disposition.LOCAL
        assert len(seen) == 1

    def test_local_without_handler_dropped(self):
        router = Router(flow_buckets=64)
        router.add_interface("atm0", address="10.0.0.254", prefix="10.0.0.0/8")
        pkt = make_udp("10.0.0.1", "10.0.0.254", 1, 2, iif="atm0")
        assert router.receive(pkt) == Disposition.DROPPED_LOCAL_PROTO


class TestCycleModel:
    def test_best_effort_kernel_cost(self):
        """A router with no gates models the unmodified kernel: exactly
        the paper's 6460-cycle best-effort path."""
        router = Router(gates=("packet_scheduling",), flow_buckets=64)
        # Trick: use a gate list that the packet never exercises by not
        # binding anything; gate overhead still counted.  For the true
        # best-effort baseline see repro.kernels.besteffort.
        router.add_interface("atm0", prefix="10.0.0.0/8")
        router.add_interface("atm1", prefix="20.0.0.0/8")
        meter = router.measure_packet(_pkt())
        base = (
            Costs.DRIVER_RX + Costs.IP_INPUT + Costs.ROUTE_LOOKUP
            + Costs.IP_FORWARD + Costs.DRIVER_TX
        )
        assert meter.total >= base

    def test_empty_plugins_overhead_near_500_cycles(self):
        """Table 3 row 2: three gates with empty plugins cost ~500 cycles
        over the best-effort path (paper: 'roughly 500 cycles')."""
        router = Router(gates=DEFAULT_GATES, flow_buckets=1024)
        router.add_interface("atm0", prefix="10.0.0.0/8")
        router.add_interface("atm1", prefix="20.0.0.0/8")
        plugin = _EmptyPlugin()
        router.pcu.load(plugin)
        instance = plugin.create_instance()
        for gate in DEFAULT_GATES:
            plugin.register_instance(instance, "*, *, UDP", gate=gate)
        router.receive(_pkt())  # warm the flow cache
        meter = router.measure_packet(_pkt())
        overhead = meter.total - Costs.BEST_EFFORT_PATH
        assert 400 <= overhead <= 600

    def test_measure_packet_returns_meter(self, router):
        meter = router.measure_packet(_pkt())
        assert isinstance(meter, CycleMeter)
        assert meter.total > 0
