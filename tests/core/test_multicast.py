"""Tests for multicast forwarding."""

import pytest

from repro.core import Disposition, GATE_PACKET_SCHEDULING, Router
from repro.core.multicast import MulticastTable
from repro.net.addresses import IPAddress, Prefix
from repro.net.packet import make_udp
from repro.sched import DrrPlugin


def _group_pkt(group="232.1.1.1", src="10.0.0.1", ttl=8, iif="up0"):
    return make_udp(src, group, 5000, 9000, payload_size=100, ttl=ttl, iif=iif)


class TestIsMulticast:
    @pytest.mark.parametrize("addr,expected", [
        ("224.0.0.1", True),
        ("232.1.1.1", True),
        ("239.255.255.255", True),
        ("223.255.255.255", False),
        ("240.0.0.0", False),
        ("10.0.0.1", False),
        ("ff02::1", True),
        ("fe80::1", False),
    ])
    def test_classification(self, addr, expected):
        assert IPAddress.parse(addr).is_multicast == expected


class TestMulticastTable:
    def test_star_g_entry(self):
        table = MulticastTable()
        table.add("232.1.1.1", ["a", "b"])
        route = table.lookup(IPAddress.parse("9.9.9.9"), IPAddress.parse("232.1.1.1"))
        assert route is not None
        assert route.out_interfaces == ["a", "b"]

    def test_s_g_more_specific_than_star_g(self):
        table = MulticastTable()
        table.add("232.1.1.1", ["default"])
        table.add("232.1.1.1", ["special"], source="10.0.0.0/8")
        inside = table.lookup(IPAddress.parse("10.1.1.1"), IPAddress.parse("232.1.1.1"))
        outside = table.lookup(IPAddress.parse("9.9.9.9"), IPAddress.parse("232.1.1.1"))
        assert inside.out_interfaces == ["special"]
        assert outside.out_interfaces == ["default"]

    def test_non_multicast_group_rejected(self):
        with pytest.raises(ValueError):
            MulticastTable().add("10.0.0.1", ["a"])

    def test_remove(self):
        table = MulticastTable()
        route = table.add("232.1.1.1", ["a"])
        assert table.remove(route)
        assert not table.remove(route)
        assert len(table) == 0

    def test_unknown_group(self):
        table = MulticastTable()
        assert table.lookup(IPAddress.parse("1.1.1.1"),
                            IPAddress.parse("232.9.9.9")) is None


class TestRouterMulticast:
    @pytest.fixture
    def router(self):
        r = Router(flow_buckets=64)
        r.add_interface("up0", prefix="10.0.0.0/8")
        r.add_interface("down1")
        r.add_interface("down2")
        return r

    def test_replicates_to_all_downstream(self, router):
        router.multicast_table.add("232.1.1.1", ["down1", "down2"])
        assert router.receive(_group_pkt()) == Disposition.FORWARDED
        assert router.interface("down1").tx_packets == 1
        assert router.interface("down2").tx_packets == 1
        assert router.counters["multicast_replicated"] == 2

    def test_never_echoes_to_arrival_interface(self, router):
        router.multicast_table.add("232.1.1.1", ["up0", "down1"])
        router.receive(_group_pkt(iif="up0"))
        assert router.interface("up0").tx_packets == 0
        assert router.interface("down1").tx_packets == 1

    def test_no_group_state_drops(self, router):
        assert router.receive(_group_pkt()) == Disposition.DROPPED_NO_ROUTE

    def test_rpf_check(self, router):
        router.multicast_table.add("232.1.1.1", ["down1"], expected_iif="up0")
        assert router.receive(_group_pkt(iif="down2")) == Disposition.DROPPED_NO_ROUTE
        assert router.counters["multicast_rpf_drops"] == 1
        assert router.receive(_group_pkt(iif="up0")) == Disposition.FORWARDED

    def test_ttl_decremented_per_copy(self, router):
        from repro.net.interfaces import NetworkInterface

        sink = NetworkInterface("listener")
        router.interface("down1").connect(sink)
        router.multicast_table.add("232.1.1.1", ["down1"])
        router.receive(_group_pkt(ttl=5))
        (copy,) = sink.poll()
        assert copy.ttl == 4

    def test_ttl_expiry(self, router):
        router.multicast_table.add("232.1.1.1", ["down1"])
        assert router.receive(_group_pkt(ttl=1)) == Disposition.DROPPED_TTL

    def test_copies_go_through_scheduling(self, router):
        plugin = DrrPlugin()
        router.pcu.load(plugin)
        drr = plugin.create_instance(interface="down1")
        plugin.register_instance(drr, "*, *, UDP", gate=GATE_PACKET_SCHEDULING)
        router.set_scheduler("down1", drr)
        router.multicast_table.add("232.1.1.1", ["down1", "down2"])
        router.receive(_group_pkt())
        # Each replicated copy runs the scheduling gate independently;
        # the catch-all binding sends both branches through DRR.
        assert drr.packets_sent == 2
        assert router.interface("down1").tx_packets == 1
        assert router.interface("down2").tx_packets == 1

    def test_v6_multicast(self, router):
        router.routing_table.add("2001:db8::/32", "down1")
        router.multicast_table.add("ff3e::1", ["down1"])
        pkt = make_udp("2001:db8::1", "ff3e::1", 1, 2, ttl=4, iif="up0")
        assert router.receive(pkt) == Disposition.FORWARDED
