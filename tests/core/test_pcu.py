"""Tests for the Plugin Control Unit."""

import pytest

from repro.aiu import AIU
from repro.core import (
    Message,
    Plugin,
    PluginControlUnit,
    TYPE_IP_SECURITY,
    TYPE_PACKET_SCHEDULING,
    UnknownPluginError,
    plugin_id_of,
    plugin_type_of,
    register_instance,
)
from repro.core.errors import PluginError


class _Sched(Plugin):
    plugin_type = TYPE_PACKET_SCHEDULING
    name = "drr-test"


class _Sched2(Plugin):
    plugin_type = TYPE_PACKET_SCHEDULING
    name = "hfsc-test"


class _Sec(Plugin):
    plugin_type = TYPE_IP_SECURITY
    name = "ah-test"


class TestLoading:
    def test_load_assigns_code_by_type(self):
        pcu = PluginControlUnit()
        code = pcu.load(_Sched())
        assert plugin_type_of(code) == TYPE_PACKET_SCHEDULING
        assert plugin_id_of(code) == 1

    def test_ids_increment_within_type(self):
        pcu = PluginControlUnit()
        first = pcu.load(_Sched())
        second = pcu.load(_Sched2())
        other_type = pcu.load(_Sec())
        assert plugin_id_of(first) == 1
        assert plugin_id_of(second) == 2
        assert plugin_id_of(other_type) == 1

    def test_double_load_rejected(self):
        pcu = PluginControlUnit()
        pcu.load(_Sched())
        with pytest.raises(PluginError):
            pcu.load(_Sched())

    def test_plugin_without_type_rejected(self):
        class Bad(Plugin):
            name = "bad"

        with pytest.raises(PluginError):
            PluginControlUnit().load(Bad())

    def test_unload(self):
        pcu = PluginControlUnit()
        plugin = _Sched()
        pcu.load(plugin)
        pcu.unload("drr-test")
        assert not pcu.is_loaded("drr-test")
        assert plugin.pcu is None

    def test_len_and_listing(self):
        pcu = PluginControlUnit()
        pcu.load(_Sched())
        pcu.load(_Sec())
        assert len(pcu) == 2
        assert len(pcu.plugins(TYPE_PACKET_SCHEDULING)) == 1


class TestResolution:
    def test_resolve_by_name_code_identity(self):
        pcu = PluginControlUnit()
        plugin = _Sched()
        code = pcu.load(plugin)
        assert pcu.get("drr-test") is plugin
        assert pcu.get(code) is plugin
        assert pcu.get(plugin) is plugin

    @pytest.mark.parametrize("target", ["missing", 0x00030099])
    def test_unknown_targets(self, target):
        with pytest.raises(UnknownPluginError):
            PluginControlUnit().get(target)

    def test_unloaded_identity_rejected(self):
        with pytest.raises(UnknownPluginError):
            PluginControlUnit().get(_Sched())


class TestMessaging:
    def test_send_reaches_callback(self):
        pcu = PluginControlUnit()
        seen = []

        class Probe(Plugin):
            plugin_type = TYPE_PACKET_SCHEDULING
            name = "probe"

            def handle_custom(self, message):
                seen.append(message.type)
                return "ok"

        pcu.load(Probe())
        assert pcu.send("probe", Message("hello")) == "ok"
        assert seen == ["hello"]

    def test_register_instance_through_aiu(self):
        aiu = AIU(("packet_scheduling",), flow_buckets=64)
        pcu = PluginControlUnit(aiu=aiu)
        plugin = _Sched()
        pcu.load(plugin)
        instance = plugin.create_instance()
        record = pcu.send(
            "drr-test", register_instance(instance, "10.*, *, UDP")
        )
        assert record.instance is instance
        assert aiu.filter_count("packet_scheduling") == 1

    def test_unload_removes_aiu_bindings(self):
        aiu = AIU(("packet_scheduling",), flow_buckets=64)
        pcu = PluginControlUnit(aiu=aiu)
        plugin = _Sched()
        pcu.load(plugin)
        instance = plugin.create_instance()
        plugin.register_instance(instance, "10.*, *, UDP")
        pcu.unload(plugin)
        assert aiu.filter_count("packet_scheduling") == 0
