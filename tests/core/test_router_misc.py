"""Tests for remaining router plumbing: event-loop attachment, polling,
origination, and top-level package API."""

import pytest

from repro.core import Disposition, Router
from repro.net.packet import make_udp
from repro.sim.cost import CycleMeter
from repro.sim.events import EventLoop


def _pkt(i=1, **kw):
    kw.setdefault("iif", "atm0")
    return make_udp(f"10.0.0.{i}", "20.0.0.1", 5000 + i, 53, **kw)


@pytest.fixture
def router():
    r = Router(flow_buckets=64)
    r.add_interface("atm0", prefix="10.0.0.0/8")
    r.add_interface("atm1", prefix="20.0.0.0/8")
    return r


class TestPlumbing:
    def test_duplicate_interface_rejected(self, router):
        with pytest.raises(ValueError):
            router.add_interface("atm0")

    def test_set_scheduler_unknown_interface(self, router):
        with pytest.raises(ValueError):
            router.set_scheduler("nope", object())

    def test_poll_and_process(self, router):
        router.interface("atm0").inject(_pkt(), at_time=0.0)
        router.interface("atm0").inject(_pkt(2), at_time=0.0)
        results = router.poll_and_process()
        assert results == [Disposition.FORWARDED, Disposition.FORWARDED]
        assert router.interface("atm1").tx_packets == 2

    def test_attach_loop_after_construction(self):
        router = Router(flow_buckets=64)
        router.add_interface("atm0", prefix="10.0.0.0/8")
        router.add_interface("atm1", prefix="20.0.0.0/8")
        loop = EventLoop()
        router.attach_loop(loop)
        peer = Router(flow_buckets=64, loop=loop)
        peer_if = peer.add_interface("p0", prefix="10.0.0.0/8")
        peer.routing_table.add("20.0.0.0/8", "p0")
        peer_if.connect(router.interface("atm0"))
        pkt = make_udp("10.0.0.1", "20.0.0.1", 1, 2, iif="x0")
        peer.receive(pkt, now=0.0)
        loop.run_until_idle()
        # Delivered across the link and forwarded by the attached router.
        assert router.interface("atm1").tx_packets == 1

    def test_originate_routes_and_transmits(self, router):
        pkt = make_udp("20.0.0.254", "20.0.0.1", 1, 2)
        assert router.originate(pkt) == Disposition.FORWARDED
        assert router.interface("atm1").tx_packets == 1

    def test_originate_without_route(self, router):
        pkt = make_udp("9.9.9.9", "99.0.0.1", 1, 2)
        assert router.originate(pkt) == Disposition.DROPPED_NO_ROUTE

    def test_measure_packet_v6(self, router):
        router.routing_table.add("2001:db8::/32", "atm1")
        pkt = make_udp("2001:db8::1", "2001:db8::2", 1, 2, iif="atm0")
        meter = router.measure_packet(pkt)
        assert isinstance(meter, CycleMeter)
        assert meter.total >= 6460

    def test_repr(self, router):
        assert "atm0" in repr(router)


class TestTopLevelApi:
    def test_headline_names_importable(self):
        import repro

        for name in ("Router", "PluginManager", "Filter", "AIU", "Packet",
                     "EventLoop", "Costs", "make_udp", "PLUGIN_REGISTRY"):
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_stable_surface_is_all(self):
        """docs/API.md names: everything in __all__ resolves, and the
        telemetry/management additions are part of the stable surface."""
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None, name
        for name in ("Pmgr", "MetricsRegistry", "NullRegistry", "NULL_REGISTRY",
                     "LifecycleTracer", "JsonLinesExporter", "prometheus_text",
                     "load_plugin"):
            assert name in repro.__all__, name
        assert repro.Pmgr is repro.PluginManager

    def test_deprecated_names_warn_but_resolve(self):
        import importlib
        import warnings

        import repro

        for name, home in [
            ("Tracer", "repro.core.tracing"),
            ("NULL_METER", "repro.sim.cost"),
            ("RateMeter", "repro.telemetry"),
        ]:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                value = getattr(repro, name)
            assert any(
                issubclass(w.category, DeprecationWarning) for w in caught
            ), name
            assert value is getattr(importlib.import_module(home), name)
            assert name not in repro.__all__

    def test_unknown_attribute_still_raises(self):
        import repro

        with pytest.raises(AttributeError):
            repro.does_not_exist

    def test_quickstart_snippet_from_readme(self):
        from repro import PluginManager, Router, make_udp

        router = Router(name="edge", flow_buckets=64)
        router.add_interface("atm0", prefix="10.0.0.0/8")
        router.add_interface("atm1", prefix="20.0.0.0/8")
        pmgr = PluginManager(router)
        pmgr.run_script(
            """
            modload drr
            create drr drr0 interface=atm1 quantum=1500
            scheduler atm1 drr0
            bind drr0 - <129.*, 192.94.233.10, TCP, *, *, *>
            bind drr0 - *, *, UDP
            """
        )
        disposition = router.receive(
            make_udp("10.0.0.1", "20.0.0.1", 5000, 9000, payload_size=972,
                     iif="atm0")
        )
        assert disposition == "queued"
        assert router.aiu.stats()["filters"] == 2
