"""Regression tests: ``pcu.unload`` must leave no stale instance
references behind, even for instances the plugin never tracked.

An instance constructed directly (not via ``plugin.create_instance``)
is invisible to ``plugin.instances``, so ``plugin.detach()`` never frees
it — before the fix its filters and cached flow-table slots survived the
unload and the router kept calling code from an unloaded module.
"""

import pytest

from repro.core import GATE_IP_SECURITY, Plugin, PluginInstance, Router, TYPE_IP_SECURITY, Verdict
from repro.net.packet import make_udp


class CountingInstance(PluginInstance):
    def __init__(self, plugin, **config):
        super().__init__(plugin, **config)
        self.calls = 0

    def process(self, packet, ctx):
        self.calls += 1
        return Verdict.CONTINUE


class CountingPlugin(Plugin):
    name = "counting"
    plugin_type = TYPE_IP_SECURITY
    instance_class = CountingInstance


@pytest.fixture
def router():
    r = Router(flow_buckets=64)
    r.add_interface("atm0", prefix="10.0.0.0/8")
    r.add_interface("atm1", prefix="20.0.0.0/8")
    return r


def _pkt(i=1):
    return make_udp(f"10.0.0.{i}", "20.0.0.1", 5000, 9000, iif="atm0")


class TestUnloadPurgesTrackedInstances:
    def test_unload_clears_filters_and_flows(self, router):
        plugin = CountingPlugin()
        router.pcu.load(plugin)
        instance = plugin.create_instance()
        plugin.register_instance(instance, "*, *, UDP", gate=GATE_IP_SECURITY)
        for i in range(5):
            router.receive(_pkt(i + 1))
        assert instance.calls == 5
        router.pcu.unload("counting")
        assert not router.aiu.filters()
        # Cached flows no longer reference the unloaded instance.
        for slot_holder in router.aiu.flow_table:
            for slot in slot_holder.slots:
                assert slot is None or slot.instance is not instance
        router.receive(_pkt(1))
        assert instance.calls == 5

    def test_plan_returns_to_zero_cost(self, router):
        plugin = CountingPlugin()
        router.pcu.load(plugin)
        instance = plugin.create_instance()
        plugin.register_instance(instance, "*, *, UDP", gate=GATE_IP_SECURITY)
        router.receive(_pkt())
        assert router.aiu._gate_filter_counts[GATE_IP_SECURITY] == 1
        router.pcu.unload("counting")
        assert router.aiu._gate_filter_counts[GATE_IP_SECURITY] == 0


class TestUnloadPurgesUntrackedInstances:
    """The regression proper: an instance the plugin never tracked."""

    @pytest.fixture
    def stray(self, router):
        plugin = CountingPlugin()
        router.pcu.load(plugin)
        # Constructed directly: bypasses create_instance, so the plugin's
        # instance list never hears about it.
        instance = CountingInstance(plugin, name="stray0")
        assert instance not in plugin.instances
        router.aiu.create_filter(GATE_IP_SECURITY, "*, *, UDP", instance=instance)
        return instance

    def test_stray_filter_removed_on_unload(self, router, stray):
        router.receive(_pkt())
        assert stray.calls == 1
        router.pcu.unload("counting")
        assert not router.aiu.filters()
        router.receive(_pkt())
        assert stray.calls == 1  # never called again

    def test_stray_cached_flow_slot_cleared(self, router, stray):
        # Cache the flow, then unload: the cached slot must not keep a
        # live reference to the stray instance.
        for _ in range(3):
            router.receive(_pkt())
        assert stray.calls == 3
        router.pcu.unload("counting")
        for slot_holder in router.aiu.flow_table:
            for slot in slot_holder.slots:
                assert slot is None or slot.instance is not stray
        # Same flow again: forwarded without touching the stray.
        router.receive(_pkt())
        assert stray.calls == 3

    def test_quarantine_map_swept_on_unload(self, router, stray):
        plugin = stray.plugin
        tracked = plugin.create_instance()
        router.faults.quarantine(plugin, now=0.0)
        assert tracked in router._quarantined
        router.pcu.unload("counting")
        assert not router._quarantined


class TestPurgeInstanceDirect:
    def test_purge_removes_filters_and_is_idempotent(self, router):
        plugin = CountingPlugin()
        router.pcu.load(plugin)
        instance = plugin.create_instance()
        plugin.register_instance(instance, "*, *, UDP", gate=GATE_IP_SECURITY)
        router.receive(_pkt())
        router.aiu.purge_instance(instance)
        assert not router.aiu.filters()
        assert router.aiu.purge_instance(instance) == 0

    def test_purge_counts_slots_unreachable_from_filters(self, router):
        # A slot with no filter back-reference is exactly what the sweep
        # exists for: remove_filter cannot see it.
        plugin = CountingPlugin()
        router.pcu.load(plugin)
        instance = plugin.create_instance()
        plugin.register_instance(instance, "*, *, UDP", gate=GATE_IP_SECURITY)
        router.receive(_pkt())
        for flow in router.aiu.flow_table:
            for slot in flow.slots:
                if slot is None:
                    continue
                if slot.instance is instance and slot.filter_record is not None:
                    slot.filter_record.flows.discard(flow)
                    slot.filter_record = None
        assert router.aiu.purge_instance(instance) == 1
