"""Tests for the per-packet data-path tracer."""

import pytest

from repro.core import GATE_IP_SECURITY, Router
from repro.core.tracing import Tracer
from repro.net.packet import make_udp
from repro.security import FirewallPlugin


@pytest.fixture
def traced_router():
    router = Router(flow_buckets=64)
    router.add_interface("atm0", prefix="10.0.0.0/8")
    router.add_interface("atm1", prefix="20.0.0.0/8")
    router.tracer = Tracer()
    return router


def _pkt(i=1, **kw):
    kw.setdefault("iif", "atm0")
    return make_udp(f"10.0.0.{i}", "20.0.0.1", 5000 + i, 53, **kw)


class TestTracer:
    def test_forwarded_packet_walk(self, traced_router):
        pkt = _pkt()
        traced_router.receive(pkt)
        text = traced_router.tracer.render(pkt)
        assert "arrived on atm0" in text
        assert "gate ip_options" in text
        assert "route" in text and "atm1" in text
        assert "done: forwarded" in text

    def test_plugin_verdict_recorded(self, traced_router):
        firewall = FirewallPlugin()
        traced_router.pcu.load(firewall)
        deny = firewall.create_instance(action="deny", name="blocker")
        firewall.register_instance(deny, "10.*, *", gate=GATE_IP_SECURITY)
        pkt = _pkt()
        traced_router.receive(pkt)
        text = traced_router.tracer.render(pkt)
        assert "blocker -> drop" in text
        assert "done: dropped_by_plugin" in text

    def test_no_route_recorded(self, traced_router):
        pkt = make_udp("10.0.0.1", "99.0.0.1", 1, 2, iif="atm0")
        traced_router.receive(pkt)
        text = traced_router.tracer.render(pkt)
        assert "no route" in text
        assert "dropped_no_route" in text

    def test_untraced_packet(self, traced_router):
        pkt = _pkt()
        assert "no trace" in traced_router.tracer.render(pkt)

    def test_capacity_bounded(self):
        router = Router(flow_buckets=64)
        router.add_interface("atm0", prefix="10.0.0.0/8")
        router.add_interface("atm1", prefix="20.0.0.0/8")
        router.tracer = Tracer(capacity=5)
        packets = [_pkt(i % 200 + 1) for i in range(20)]
        for pkt in packets:
            router.receive(pkt)
        assert len(router.tracer) == 5
        assert router.tracer.trace_for(packets[0]) is None
        assert router.tracer.trace_for(packets[-1]) is not None

    def test_last(self, traced_router):
        first, second = _pkt(1), _pkt(2)
        traced_router.receive(first)
        traced_router.receive(second)
        assert traced_router.tracer.last().packet_id == second.packet_id

    def test_disabled_by_default(self):
        router = Router(flow_buckets=64)
        assert router.tracer is None

    def test_gate_without_instance_traced(self, traced_router):
        pkt = _pkt()
        traced_router.receive(pkt)
        text = traced_router.tracer.render(pkt)
        assert "(no instance bound)" in text


class _BoomInstance:
    """Minimal faulty instance for tracer tests."""

    def __init__(self, plugin):
        self.plugin = plugin
        self.name = "boom0"

    def process(self, packet, ctx):
        raise ValueError("kaboom")


class TestFaultTracing:
    @pytest.fixture
    def faulty_router(self, traced_router):
        from repro.core import Plugin, TYPE_IP_SECURITY

        class BoomPlugin(Plugin):
            name = "boom"
            plugin_type = TYPE_IP_SECURITY

        plugin = BoomPlugin()
        traced_router.pcu.load(plugin)
        instance = _BoomInstance(plugin)
        plugin.instances.append(instance)
        plugin.register_instance(instance, "10.*, *", gate=GATE_IP_SECURITY)
        return traced_router

    def test_fault_event_rendered(self, faulty_router):
        pkt = _pkt()
        faulty_router.receive(pkt)
        text = faulty_router.tracer.render(pkt)
        assert "boom0 FAULT ValueError: kaboom -> drop" in text
        assert "done: dropped_by_plugin" in text

    def test_quarantined_gate_noted(self, faulty_router):
        import math

        faulty_router.faults.quarantine("boom", until=math.inf)
        pkt = _pkt()
        faulty_router.receive(pkt)
        text = faulty_router.tracer.render(pkt)
        assert "[quarantined:drop]" in text
        assert "done: dropped_by_plugin" in text
