"""Tests for per-plugin fault domains: capture, quarantine, recovery.

The quarantine state machine (docs/ROBUSTNESS.md)::

    healthy --(threshold faults in window)--> quarantined
    quarantined --(cool-down elapses, next packet probes)--> half_open
    half_open --(probe succeeds)--> healthy
    half_open --(probe faults)-->   quarantined (fresh cool-down)
"""

import math

import pytest

from repro.core import (
    DEGRADE_BYPASS,
    DEGRADE_DROP,
    DEGRADE_UNLOAD,
    FaultPolicy,
    GATE_IP_SECURITY,
    Plugin,
    PluginInstance,
    Router,
    STATE_HALF_OPEN,
    STATE_HEALTHY,
    STATE_QUARANTINED,
    STATE_UNLOADED,
    TYPE_IP_SECURITY,
    Verdict,
)
from repro.net.packet import make_udp


class FlakyInstance(PluginInstance):
    """Raises on demand; counts calls so tests can prove containment."""

    def __init__(self, plugin, fail=False, **config):
        super().__init__(plugin, **config)
        self.fail = fail
        self.calls = 0

    def process(self, packet, ctx):
        self.calls += 1
        if self.fail:
            raise RuntimeError("boom")
        return Verdict.CONTINUE


class FlakyPlugin(Plugin):
    name = "flaky"
    plugin_type = TYPE_IP_SECURITY
    instance_class = FlakyInstance


@pytest.fixture
def router():
    r = Router(flow_buckets=64)
    r.add_interface("atm0", prefix="10.0.0.0/8")
    r.add_interface("atm1", prefix="20.0.0.0/8")
    return r


@pytest.fixture
def flaky(router):
    plugin = FlakyPlugin()
    router.pcu.load(plugin)
    instance = plugin.create_instance(fail=True)
    plugin.register_instance(instance, "*, *, UDP", gate=GATE_IP_SECURITY)
    return instance


def _pkt(i=1):
    return make_udp(f"10.0.0.{i % 250 + 1}", "20.0.0.1", 5000, 9000, iif="atm0")


class TestFaultCapture:
    def test_fault_produces_structured_record(self, router, flaky):
        router.receive(_pkt(), now=2.5)
        records = router.faults.records("flaky")
        assert len(records) == 1
        rec = records[0]
        assert rec.plugin == "flaky"
        assert rec.instance == flaky.name
        assert rec.gate == GATE_IP_SECURITY
        assert rec.error_type == "RuntimeError"
        assert rec.error == "boom"
        assert rec.time == 2.5
        assert "10.0.0.2:5000->20.0.0.1:9000" in rec.flow
        assert router.counters["plugin_faults"] == 1

    def test_faulting_packet_dropped_not_raised(self, router, flaky):
        assert router.receive(_pkt()) == "dropped_by_plugin"

    def test_ring_is_bounded(self, router, flaky):
        router.faults.set_policy(
            "flaky", FaultPolicy(threshold=1000, window=0.0, ring_size=4)
        )
        for i in range(10):
            router.receive(_pkt(i), now=i)
        dom = router.faults.domain("flaky")
        assert dom.total == 10
        assert len(dom.records) == 4
        assert dom.records[0].seq == 7  # oldest retained

    def test_record_signature_excludes_packet_id(self, router, flaky):
        router.receive(_pkt(), now=1.0)
        rec = router.faults.records("flaky")[0]
        assert rec.packet_id is not None
        assert rec.packet_id not in rec.signature()


class TestQuarantineTrip:
    def test_threshold_in_window_trips(self, router, flaky):
        router.faults.set_policy("flaky", FaultPolicy(threshold=3, window=1.0))
        for i in range(3):
            router.receive(_pkt(i), now=i * 0.1)
        dom = router.faults.domain("flaky")
        assert dom.state == STATE_QUARANTINED
        assert router.counters["plugin_quarantines"] == 1
        # Subsequent packets degrade without calling the instance.
        calls = flaky.calls
        assert router.receive(_pkt(9), now=0.4) == "dropped_by_plugin"
        assert flaky.calls == calls
        assert dom.dropped == 1

    def test_window_expiry_never_trips(self, router, flaky):
        router.faults.set_policy("flaky", FaultPolicy(threshold=3, window=1.0))
        # Faults spaced 2s apart: never 3 inside any 1s window.
        for i in range(6):
            router.receive(_pkt(i), now=i * 2.0)
        dom = router.faults.domain("flaky")
        assert dom.total == 6
        assert dom.state == STATE_HEALTHY
        assert router.counters["plugin_quarantines"] == 0

    def test_faults_in_window_slides(self, router, flaky):
        router.faults.set_policy("flaky", FaultPolicy(threshold=10, window=1.0))
        for now in (0.0, 0.5, 1.2):
            router.receive(_pkt(), now=now)
        dom = router.faults.domain("flaky")
        assert dom.faults_in_window(1.2) == 2  # the 0.0 fault aged out


class TestRecovery:
    @pytest.fixture
    def quarantined(self, router, flaky):
        router.faults.set_policy(
            "flaky", FaultPolicy(threshold=2, window=1.0, cooldown=5.0)
        )
        router.receive(_pkt(), now=0.0)
        router.receive(_pkt(), now=0.1)
        assert router.faults.domain("flaky").state == STATE_QUARANTINED
        return router.faults.domain("flaky")

    def test_probe_success_reinstates(self, router, flaky, quarantined):
        flaky.fail = False
        # Before the cool-down elapses: still degraded.
        assert router.receive(_pkt(), now=3.0) == "dropped_by_plugin"
        # After: the next packet runs as a half-open probe and succeeds.
        assert router.receive(_pkt(), now=6.0) == "forwarded"
        assert quarantined.state == STATE_HEALTHY
        assert quarantined.reinstated_count == 1
        assert router.counters["plugin_reinstatements"] == 1
        # The fault window restarted: one new fault does not re-trip.
        flaky.fail = True
        router.receive(_pkt(), now=6.1)
        assert quarantined.state == STATE_HEALTHY

    def test_probe_failure_requarantines(self, router, flaky, quarantined):
        assert router.receive(_pkt(), now=6.0) == "dropped_by_plugin"
        assert quarantined.state == STATE_QUARANTINED
        assert quarantined.quarantined_until == pytest.approx(11.0)
        assert router.counters["plugin_requarantines"] == 1
        # And the cycle can repeat.
        flaky.fail = False
        assert router.receive(_pkt(), now=12.0) == "forwarded"
        assert quarantined.state == STATE_HEALTHY

    def test_half_open_transition_visible(self, router, flaky, quarantined):
        # intercept() flips to half_open when the cool-down has elapsed.
        assert quarantined.intercept(99.0) is None
        assert quarantined.state == STATE_HALF_OPEN


class TestDegradationActions:
    def test_bypass_forwards_as_if_unbound(self, router, flaky):
        router.faults.set_policy(
            "flaky", FaultPolicy(threshold=1, window=1.0, action=DEGRADE_BYPASS)
        )
        router.receive(_pkt(), now=0.0)
        dom = router.faults.domain("flaky")
        assert dom.state == STATE_QUARANTINED
        calls = flaky.calls
        assert router.receive(_pkt(), now=0.1) == "forwarded"
        assert flaky.calls == calls
        assert dom.bypassed == 1

    def test_unload_removes_plugin_and_bindings(self, router, flaky):
        router.faults.set_policy(
            "flaky", FaultPolicy(threshold=1, window=1.0, action=DEGRADE_UNLOAD)
        )
        # Cache a flow first so a stale slot would be caught.
        flaky.fail = False
        router.receive(_pkt(), now=0.0)
        flaky.fail = True
        router.receive(_pkt(), now=0.1)
        dom = router.faults.domain("flaky")
        assert dom.state == STATE_UNLOADED
        assert not router.pcu.is_loaded("flaky")
        assert not router.aiu.filters()
        calls = flaky.calls
        assert router.receive(_pkt(), now=0.2) == "forwarded"
        assert flaky.calls == calls
        with pytest.raises(ValueError):
            router.faults.reinstate("flaky")


class TestManualControl:
    def test_manual_quarantine_and_reinstate(self, router, flaky):
        flaky.fail = False
        dom = router.faults.quarantine("flaky", until=math.inf)
        assert router.receive(_pkt(), now=100.0) == "dropped_by_plugin"
        assert flaky.calls == 0
        router.faults.reinstate("flaky")
        assert dom.state == STATE_HEALTHY
        assert router.receive(_pkt(), now=100.1) == "forwarded"
        assert flaky.calls == 1

    def test_quarantine_action_override(self, router, flaky):
        router.faults.quarantine("flaky", until=math.inf, action=DEGRADE_BYPASS)
        assert router.receive(_pkt(), now=0.0) == "forwarded"
        assert router.faults.domain("flaky").policy.action == DEGRADE_BYPASS

    def test_reinstate_unknown_plugin(self, router):
        with pytest.raises(KeyError):
            router.faults.reinstate("ghost")

    def test_set_policy_preserves_history(self, router, flaky):
        router.receive(_pkt(), now=0.0)
        dom = router.faults.set_policy(
            "flaky", FaultPolicy(threshold=99, window=9.0)
        )
        assert dom.total == 1
        assert len(dom.records) == 1
        assert dom.policy.threshold == 99


class TestHealth:
    def test_router_health_shape(self, router, flaky):
        router.faults.set_policy("flaky", FaultPolicy(threshold=1, window=1.0))
        router.receive(_pkt(), now=0.5)
        health = router.health()
        assert health["router"] == router.name
        assert health["quarantined"] == ["flaky"]
        snap = health["plugins"]["flaky"]
        assert snap["state"] == STATE_QUARANTINED
        assert snap["faults_total"] == 1
        assert "RuntimeError: boom" in snap["last_fault"]

    def test_healthy_router_health(self, router):
        health = router.health()
        assert health["quarantined"] == []
        assert health["plugins"] == {}


class TestFaultPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"threshold": 0},
            {"window": -1.0},
            {"cooldown": -0.1},
            {"action": "explode"},
            {"ring_size": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            FaultPolicy(**kwargs)

    def test_defaults_are_valid(self):
        policy = FaultPolicy()
        assert policy.action == DEGRADE_DROP
        assert policy.threshold >= 1


class TestSchedulerFaults:
    def test_scheduler_enqueue_fault_contained(self, router):
        plugin = FlakyPlugin()
        plugin.name = "flaky-sched"
        router.pcu.load(plugin)
        scheduler = plugin.create_instance(fail=True)
        router.set_scheduler("atm1", scheduler)
        assert router.receive(_pkt(), now=0.0) == "dropped_by_plugin"
        records = router.faults.records("flaky-sched")
        assert len(records) == 1
        assert records[0].error == "boom"
