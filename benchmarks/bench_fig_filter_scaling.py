"""Experiment E5 — DAG vs linear classifier scaling (§5.1.2).

"While most of these existing techniques require O(n) time, n being the
number of filters, our solution ... is more or less independent of the
number of filters."

A figure-style sweep: memory accesses per lookup for the DAG table and
the linear filter list at 16 → 8192 installed filters.  The DAG's curve
is flat; the linear baseline grows linearly; the crossover is immediate
(beyond a handful of filters the DAG always wins).
"""

import random

import pytest

from conftest import report
from repro.aiu.dag import DagFilterTable
from repro.aiu.linear import LinearFilterTable
from repro.aiu.records import FilterRecord
from repro.net.addresses import IPAddress, IPV4_WIDTH
from repro.net.packet import Packet
from repro.sim.cost import MemoryMeter, memory_accesses_to_us
from repro.workloads import matching_probe, random_filters

SIZES = (16, 128, 1024, 8192)


def _packet_for(probe):
    src, dst, proto, sport, dport = probe
    return Packet(
        src=IPAddress(src, IPV4_WIDTH),
        dst=IPAddress(dst, IPV4_WIDTH),
        protocol=proto,
        src_port=sport,
        dst_port=dport,
    )


def _build(kind, filters):
    if kind == "dag":
        table = DagFilterTable(width=IPV4_WIDTH, bmp_engine="bspl",
                               check_ambiguity=False)
    else:
        table = LinearFilterTable(width=IPV4_WIDTH)
    for flt in filters:
        table.install(FilterRecord(flt, gate="bench"))
    return table


def _mean_accesses(table, filters, probes=100):
    rng = random.Random(5)
    total = 0
    for flt in rng.sample(filters, min(probes, len(filters))):
        meter = MemoryMeter()
        assert table.lookup(_packet_for(matching_probe(flt, rng)), meter) is not None
        total += meter.accesses
    return total / min(probes, len(filters))


@pytest.fixture(scope="module")
def sweep():
    results = {}
    for size in SIZES:
        filters = random_filters(size, seed=size, host_fraction=0.8)
        results[size] = {
            "filters": filters,
            "dag": _build("dag", filters),
            "linear": _build("linear", filters),
        }
    return results


@pytest.mark.parametrize("kind", ["dag", "linear"])
@pytest.mark.parametrize("size", SIZES)
def test_lookup_scaling(benchmark, sweep, kind, size):
    entry = sweep[size]
    table = entry[kind]
    mean = _mean_accesses(table, entry["filters"])
    benchmark.extra_info["filters"] = size
    benchmark.extra_info["kind"] = kind
    benchmark.extra_info["mean_accesses"] = round(mean, 2)
    benchmark.extra_info["modelled_us"] = round(memory_accesses_to_us(mean), 3)

    rng = random.Random(7)
    packets = [
        _packet_for(matching_probe(flt, rng))
        for flt in rng.sample(entry["filters"], min(64, size))
    ]
    index = {"i": 0}

    def lookup_one():
        packet = packets[index["i"] % len(packets)]
        index["i"] += 1
        table.lookup(packet)

    benchmark(lookup_one)


def test_shape_dag_flat_linear_grows(benchmark, sweep):
    """The figure's two curves, asserted."""
    benchmark.pedantic(lambda: None, rounds=1)
    dag_curve = {s: _mean_accesses(sweep[s]["dag"], sweep[s]["filters"]) for s in SIZES}
    linear_curve = {
        s: _mean_accesses(sweep[s]["linear"], sweep[s]["filters"]) for s in SIZES
    }
    lines = [f"{'filters':>8} {'DAG accesses':>14} {'linear accesses':>16}"]
    for size in SIZES:
        lines.append(
            f"{size:>8} {dag_curve[size]:>14.2f} {linear_curve[size]:>16.1f}"
        )
    lines.append("")
    lines.append("paper: DAG ~O(fields) and independent of n; existing filters O(n)")
    report("Filter classifier scaling — DAG vs linear", lines)

    # DAG: flat — a 512x filter increase changes the cost by <2x.
    assert dag_curve[SIZES[-1]] <= dag_curve[SIZES[0]] * 2
    assert dag_curve[SIZES[-1]] <= 20  # the Table 2 bound
    # Linear: grows roughly with n (at least 100x over the sweep).
    assert linear_curve[SIZES[-1]] >= linear_curve[SIZES[0]] * 100
    # Crossover: by 128 filters the DAG is already an order of magnitude
    # cheaper, and the gap widens.
    assert linear_curve[128] / dag_curve[128] > 5
    assert linear_curve[8192] / dag_curve[8192] > 200


def test_dag_insert_cost_is_practical(benchmark):
    """Install throughput for the 8k set (control-path cost)."""
    filters = random_filters(2048, seed=3, host_fraction=0.9)

    def build():
        table = DagFilterTable(width=IPV4_WIDTH, bmp_engine="bspl",
                               check_ambiguity=False)
        for flt in filters:
            table.install(FilterRecord(flt, gate="bench"))
        return table

    table = benchmark.pedantic(build, rounds=1)
    assert len(table) == 2048
