"""Experiment E3 — Table 3: overall packet processing time.

Reproduces all four rows of the paper's Table 3 (§7.3): the unmodified
best-effort kernel, the plugin architecture with empty plugins at three
gates, NetBSD+ALTQ+DRR, and the plugin architecture with the DRR plugin.

Paper's numbers (P6/233): 6460 / 6970 (+8%) / 8160 (+26%) / 8110 (+26%)
cycles; 36 800 pkts/s for row 1.  The modelled-cycle columns should land
on the same values and ordering; the pytest-benchmark timing additionally
measures real Python wall time per packet for each kernel.
"""

import pytest

from conftest import report
from repro.kernels import (
    build_altq_kernel,
    build_besteffort_kernel,
    build_drr_plugin_kernel,
    build_plugin_kernel,
    format_table3,
    run_table3_workload,
)
from repro.sim.cost import CycleMeter, NULL_METER
from repro.workloads import round_robin_trains, table3_flows

BUILDERS = {
    "besteffort": build_besteffort_kernel,
    "plugin": build_plugin_kernel,
    "altq_drr": build_altq_kernel,
    "plugin_drr": build_drr_plugin_kernel,
}

PAPER_CYCLES = {"besteffort": 6460, "plugin": 6970, "altq_drr": 8160, "plugin_drr": 8110}


@pytest.fixture(scope="module")
def table3_results():
    return {
        key: run_table3_workload(builder(), repetitions=3)
        for key, builder in BUILDERS.items()
    }


@pytest.mark.parametrize("key", list(BUILDERS))
def test_table3_row(benchmark, key, table3_results):
    """Each row: wall-time benchmark + modelled-cycle assertion."""
    kernel = BUILDERS[key]()
    packets = list(round_robin_trains(table3_flows(), 100))
    for packet in packets[:3]:
        kernel.process(packet, CycleMeter())
    index = {"i": 0}

    def one_packet():
        packet = packets[index["i"] % len(packets)].copy()
        packet.iif = "atm0"
        index["i"] += 1
        kernel.process(packet, NULL_METER)

    benchmark(one_packet)
    result = table3_results[key]
    benchmark.extra_info["modelled_cycles"] = round(result.avg_cycles, 1)
    benchmark.extra_info["modelled_us"] = round(result.avg_us, 2)
    benchmark.extra_info["paper_cycles"] = PAPER_CYCLES[key]
    benchmark.extra_info["throughput_pps_modelled"] = round(result.throughput_pps)
    # Within 5% of the paper's cycle count for every row.
    assert result.avg_cycles == pytest.approx(PAPER_CYCLES[key], rel=0.05)


def test_table3_shape(benchmark, table3_results):
    """The paper's relative claims, asserted together."""
    benchmark.pedantic(lambda: None, rounds=1)  # keep under --benchmark-only
    base = table3_results["besteffort"]
    plugin = table3_results["plugin"]
    altq = table3_results["altq_drr"]
    plugin_drr = table3_results["plugin_drr"]
    lines = [format_table3([base, plugin, altq, plugin_drr]),
             "",
             "paper:  6460 | 6970 (+8%) | 8160 (+26%) | 8110 (+26%); row1 36800 pkts/s"]
    report("Table 3 — overall packet processing time", lines)
    # ~8% modularity overhead (paper: 8%).
    assert 0.06 <= plugin.overhead_vs(base) <= 0.10
    # ~500 cycles of gate+flow-detection overhead (paper: "roughly 500").
    assert 400 <= plugin.avg_cycles - base.avg_cycles <= 600
    # Scheduling adds ~20-30% (paper: 20%-26% depending on the row read).
    assert 0.15 <= altq.overhead_vs(base) <= 0.35
    # The plugin DRR build is not slower than ALTQ ("we benefit only from
    # faster hashing").
    assert plugin_drr.avg_cycles <= altq.avg_cycles * 1.02
    # Throughput column: paper reports 36 800 pkts/s for row 1.
    assert base.throughput_pps == pytest.approx(36800, rel=0.05)
