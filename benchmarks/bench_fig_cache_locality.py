"""Experiment E6 — flow-cache locality (§3's performance argument).

"The filter lookup ... happens only for the first packet of a burst.
Subsequent packets get this information from a fast flow cache."

A figure-style sweep: average modelled cycles per packet through the
plugin kernel as a function of flow train length.  Short trains pay the
uncached classification on a large fraction of packets; long trains
amortize it to nothing — this is why a modular, gate-riddled data path
can cost only ~8% (Table 3 used 100-packet trains).
"""

import pytest

from conftest import report
from repro.kernels import build_plugin_kernel
from repro.sim.cost import CycleMeter, Costs
from repro.workloads import bursty_arrivals, synthetic_flows

BURST_LENGTHS = (1, 2, 5, 10, 50, 100, 500)


def _avg_cycles_per_packet(burst_length: int, flows: int = 32) -> float:
    kernel = build_plugin_kernel()
    specs = synthetic_flows(flows, seed=burst_length)
    schedule = bursty_arrivals(
        specs, burst_length=burst_length, bursts_per_flow=1, seed=burst_length
    )
    total = 0
    for timed in schedule:
        meter = CycleMeter()
        kernel.process(timed.packet, meter)
        total += meter.total
    return total / len(schedule)


@pytest.fixture(scope="module")
def curve():
    return {b: _avg_cycles_per_packet(b) for b in BURST_LENGTHS}


@pytest.mark.parametrize("burst", BURST_LENGTHS)
def test_locality_point(benchmark, curve, burst):
    kernel = build_plugin_kernel()
    specs = synthetic_flows(8, seed=burst)
    schedule = bursty_arrivals(specs, burst_length=burst, bursts_per_flow=2, seed=1)
    index = {"i": 0}

    def one():
        timed = schedule[index["i"] % len(schedule)]
        index["i"] += 1
        packet = timed.packet.copy()
        packet.iif = "atm0"
        kernel.process(packet)

    benchmark(one)
    benchmark.extra_info["burst_length"] = burst
    benchmark.extra_info["avg_modelled_cycles"] = round(curve[burst], 1)


def test_locality_shape(benchmark, curve):
    """Overhead collapses as trains lengthen."""
    benchmark.pedantic(lambda: None, rounds=1)
    lines = [f"{'burst len':>10} {'avg cycles/pkt':>15} {'overhead vs 6460':>18}"]
    for burst, cycles in curve.items():
        lines.append(
            f"{burst:>10} {cycles:>15.0f} {(cycles / Costs.BEST_EFFORT_PATH - 1) * 100:>17.1f}%"
        )
    report("Flow-cache locality — per-packet cost vs train length", lines)

    # Monotone decreasing cost with longer trains.
    values = list(curve.values())
    assert all(a >= b for a, b in zip(values, values[1:]))
    # Single-packet flows pay the full uncached classification (much
    # more than the cached ~8%); 100-packet trains are within ~9% of
    # best effort (Table 3's regime); 500-packet trains approach the
    # cached floor.
    assert curve[1] > Costs.BEST_EFFORT_PATH * 1.15
    assert curve[100] <= Costs.BEST_EFFORT_PATH * 1.10
    assert curve[500] <= Costs.BEST_EFFORT_PATH * 1.09


def test_cache_hit_rate_tracks_train_length(benchmark):
    """The mechanism: hit rate = 1 - 1/train_length."""
    benchmark.pedantic(lambda: None, rounds=1)
    kernel = build_plugin_kernel()
    specs = synthetic_flows(16, seed=9)
    schedule = bursty_arrivals(specs, burst_length=50, bursts_per_flow=1, seed=9)
    for timed in schedule:
        kernel.process(timed.packet)
    stats = kernel.router.aiu.stats()
    hit_rate = stats["hits"] / (stats["hits"] + stats["misses"])
    report(
        "Flow-cache hit rate at train length 50",
        [f"hits={stats['hits']} misses={stats['misses']} hit rate={hit_rate:.3f} "
         f"(expected 1 - 1/50 = 0.98)"],
    )
    assert hit_rate == pytest.approx(1 - 1 / 50, abs=0.01)
