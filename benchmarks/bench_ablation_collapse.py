"""Ablation A4 — the §5.1.2 wildcard node-collapsing optimization.

"Another optimization to the DAG scheme is to collapse multiple nodes
into a single node; this can be done when multiple wildcarded edges
succeed each other without any branching at intermediate nodes."

With filter sets that wildcard the trailing tuple fields (the common
firewall/routing style: prefix + protocol only), collapsing skips the
match-function probe at pure-wildcard levels.  Results are identical
(verified by the property test in tests/aiu/test_properties.py); the
access count drops — measured here.
"""

import random

import pytest

from conftest import report
from repro.aiu.dag import DagFilterTable
from repro.aiu.filters import Filter
from repro.aiu.records import FilterRecord
from repro.net.packet import make_udp
from repro.sim.cost import MemoryMeter


def _wildcard_heavy_filters(count, seed):
    """Prefix+protocol filters: ports and iif all wildcard."""
    rng = random.Random(seed)
    specs = []
    for _ in range(count):
        octet = rng.randrange(256)
        length = rng.choice([8, 16, 24])
        specs.append(f"{octet}.{rng.randrange(256)}.0.0/{length}, *, UDP")
    return [Filter.parse(spec) for spec in specs]


def _build(collapse: bool, filters):
    table = DagFilterTable(width=32, collapse_wildcards=collapse,
                           check_ambiguity=False)
    for flt in filters:
        table.install(FilterRecord(flt, gate="bench"))
    return table


@pytest.fixture(scope="module")
def tables():
    filters = _wildcard_heavy_filters(512, seed=21)
    return filters, _build(False, filters), _build(True, filters)


def _mean_accesses(table, filters):
    rng = random.Random(4)
    total, n = 0, 0
    for flt in rng.sample(filters, 150):
        low = flt.src.value | rng.getrandbits(32 - flt.src.length)
        probe = make_udp(
            f"{low >> 24 & 255}.{low >> 16 & 255}.{low >> 8 & 255}.{low & 255}",
            "20.0.0.1", rng.randrange(65536), rng.randrange(65536),
        )
        meter = MemoryMeter()
        table.lookup(probe, meter)
        total += meter.accesses
        n += 1
    return total / n


def test_collapse_reduces_accesses(benchmark, tables):
    benchmark.pedantic(lambda: None, rounds=1)
    filters, plain, optimized = tables
    mean_plain = _mean_accesses(plain, filters)
    mean_optimized = _mean_accesses(optimized, filters)
    report(
        "Ablation — wildcard node collapsing (§5.1.2)",
        [
            f"plain DAG     : {mean_plain:.2f} accesses/lookup",
            f"collapsed DAG : {mean_optimized:.2f} accesses/lookup",
            f"saved         : {mean_plain - mean_optimized:.2f} "
            "(one port probe per collapsed wildcard level)",
        ],
    )
    assert mean_optimized < mean_plain
    # Port levels are pure wildcard here, so at least ~1 access saved.
    assert mean_plain - mean_optimized >= 1.0


@pytest.mark.parametrize("collapse", [False, True], ids=["plain", "collapsed"])
def test_collapse_wall_time(benchmark, tables, collapse):
    filters, plain, optimized = tables
    table = optimized if collapse else plain
    rng = random.Random(9)
    probes = []
    for flt in rng.sample(filters, 64):
        low = flt.src.value | rng.getrandbits(32 - flt.src.length)
        probes.append(make_udp(
            f"{low >> 24 & 255}.{low >> 16 & 255}.{low >> 8 & 255}.{low & 255}",
            "20.0.0.1", 1000, 2000,
        ))
    index = {"i": 0}

    def lookup_one():
        table.lookup(probes[index["i"] % len(probes)])
        index["i"] += 1

    benchmark(lookup_one)
    benchmark.extra_info["collapse"] = collapse
