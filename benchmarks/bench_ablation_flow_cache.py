"""Ablation A1 — the flow cache (the §3 design decision).

"High performance is achieved ... by caching that exploits the flow-like
characteristics of Internet traffic."  What if it weren't?  Same plugin
kernel, flow cache disabled: every packet pays the full n-gate filter
classification.  The ~8% overhead balloons, which is the quantitative
justification for the flow table's existence.
"""

import pytest

from conftest import report
from repro.core import DEFAULT_GATES, Router
from repro.kernels.plugin_kernel import EmptyPlugin, _install_background_filters
from repro.sim.cost import Costs, CycleMeter
from repro.workloads import round_robin_trains, table3_flows, table3_filters


def _kernel(use_flow_cache: bool) -> Router:
    router = Router(gates=DEFAULT_GATES, flow_buckets=32768,
                    use_flow_cache=use_flow_cache)
    router.add_interface("atm0", prefix="10.0.0.0/8")
    router.add_interface("atm1", prefix="20.0.0.0/8")
    plugin = EmptyPlugin()
    router.pcu.load(plugin)
    instance = plugin.create_instance()
    for gate in DEFAULT_GATES:
        plugin.register_instance(instance, "*, *, UDP", gate=gate)
    _install_background_filters(router, table3_filters())
    return router


def _avg_cycles(router: Router) -> float:
    flows = table3_flows()
    for packet in round_robin_trains(flows, 1):
        router.receive(packet, cycles=CycleMeter())
    total, count = 0, 0
    for packet in round_robin_trains(flows, 100):
        meter = CycleMeter()
        router.receive(packet, cycles=meter)
        total += meter.total
        count += 1
    return total / count


@pytest.fixture(scope="module")
def cycles_by_mode():
    return {
        "cached": _avg_cycles(_kernel(use_flow_cache=True)),
        "uncached": _avg_cycles(_kernel(use_flow_cache=False)),
    }


def test_flow_cache_ablation(benchmark, cycles_by_mode):
    benchmark.pedantic(lambda: None, rounds=1)
    cached = cycles_by_mode["cached"]
    uncached = cycles_by_mode["uncached"]
    base = Costs.BEST_EFFORT_PATH
    report(
        "Ablation — the flow cache",
        [
            f"plugin kernel WITH flow cache    : {cached:7.0f} cycles/pkt "
            f"({(cached / base - 1) * 100:+.1f}%)",
            f"plugin kernel WITHOUT flow cache : {uncached:7.0f} cycles/pkt "
            f"({(uncached / base - 1) * 100:+.1f}%)",
            "the cache is what makes the modular architecture ~8% instead of this",
        ],
    )
    # With the cache: the Table 3 regime.
    assert cached - base <= 600
    # Without it: at least 2x the overhead (classification each packet).
    assert (uncached - base) >= 2 * (cached - base)


def test_wall_time_cached_vs_uncached(benchmark, cycles_by_mode):
    router = _kernel(use_flow_cache=True)
    packets = list(round_robin_trains(table3_flows(), 50))
    index = {"i": 0}

    def one():
        packet = packets[index["i"] % len(packets)].copy()
        packet.iif = "atm0"
        index["i"] += 1
        router.receive(packet)

    benchmark(one)
    benchmark.extra_info["cached_modelled_cycles"] = round(cycles_by_mode["cached"])
    benchmark.extra_info["uncached_modelled_cycles"] = round(cycles_by_mode["uncached"])
