"""Wall-clock throughput benchmark for the forwarding data path.

Unlike the ``bench_fig_*`` / ``bench_table*`` experiments, which report
*modelled* cycles on the paper's P6/233, this benchmark measures real
Python packets-per-second on five workloads:

* ``cached_hit`` — a warmed flow cache; every packet takes the paper's
  fast path (one hash, a few indirections).
* ``cache_miss`` — every packet is a brand new flow; each takes the slow
  path (hash, miss, per-gate filter lookup, flow install).
* ``gates3`` — the Table 3 row-2 setup: a warmed cache plus an empty
  plugin bound at all three gates, so every packet makes three indirect
  plugin calls.
* ``miss_churn`` — high flow birth rate against a capped flow table:
  packets round-robin over 4x more flows than the table holds, so every
  packet misses, installs, and recycles an LRU record.
* ``filters256`` — the slow path against a large filter set: 256
  distinct /24 filters installed at one gate, every packet a new flow,
  so each miss classifies through a 256-filter DAG (the paper's claim is
  that this costs the same as a small set).
* ``batch_cached`` / ``batch_miss`` — the ``cached_hit`` / ``cache_miss``
  traffic driven through ``receive_batch`` in fixed 256-packet bursts:
  the DPDK-style arrival pattern the batched run-to-completion pipeline
  is built for, paying the per-batch prologue (plan check, loop lookup,
  context pooling) once per burst instead of once per pass.
* ``telemetry_off`` / ``telemetry_on`` — the ``cached_hit`` workload
  with and without a :class:`repro.telemetry.MetricsRegistry` attached.
  The pair gates the telemetry fast-path overhead: ``scripts/
  bench_check.sh`` fails if ``on`` is more than 5% slower than ``off``.
* ``telemetry_off_miss`` / ``telemetry_on_miss`` — the same pair over
  the ``cache_miss`` workload (the miss path additionally observes the
  packet-size histogram on every flow install).

A separate ``shard`` section measures the sharded data path
(``repro.shard``) on the same cached/miss traffic, three arms each:

* ``single`` — a one-shard inline ``ShardedRouter`` driving
  ``receive_wire`` (decode + batch data path, the honest same-process
  baseline: it pays the same codec cost the mp workers pay);
* ``mp`` — the real end-to-end 4-worker fork backend.  Its
  ``real_ratio`` over ``single`` is the wall-clock parallel speedup,
  which is only meaningful with >= 4 usable cores;
* ``dispatch`` — the parent-side pipeline alone, no IPC: RSS
  bucketing, scatter bookkeeping, batch slicing, request
  serialization, and reply deserialization (everything the parent
  does per packet in the mp backend except the kernel pipe syscalls,
  plus the worker-side reply serialization for good measure — the
  arm overcounts, so the ratio is conservative).  ``dispatch_ratio``
  over ``single`` is core-count independent: it proves the dispatcher
  can feed >= that many single-router equivalents, i.e. the parent is
  not the bottleneck when cores exist.  A null-path mp pool is *not*
  used for this number: on a box with fewer cores than workers the
  echo IPC shares the parent's core and the measurement collapses to
  core contention, not capacity.  ``scripts/bench_check.sh`` always
  gates ``dispatch_ratio`` and gates ``real_ratio`` only when the
  machine has >= 4 usable cores.

Usage::

    PYTHONPATH=src python benchmarks/bench_throughput.py                 # full run
    PYTHONPATH=src python benchmarks/bench_throughput.py --quick         # CI-sized
    PYTHONPATH=src python benchmarks/bench_throughput.py --save-baseline # record pre-PR pps

``--save-baseline`` writes ``benchmarks/baseline_throughput.json``.  The
committed baseline mixes capture points: ``cached_hit`` / ``cache_miss``
/ ``gates3`` were measured at the seed commit, while ``miss_churn`` and
``filters256`` (which did not exist then) were measured immediately
before the compiled slow path landed (PR 3) — both are "pre-optimisation"
for the speedups they gate.  A normal run measures the current tree,
compares against the stored baseline, and writes
``BENCH_throughput.json`` at the repo root with both series and the
speedup per workload.

The cost model is untouched by wall-clock optimisations — modelled
cycles are asserted bit-identical by ``tests/perf/test_cost_invariance``
(see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.gates import DEFAULT_GATES
from repro.core.plugin import Plugin, PluginInstance, TYPE_IP_SECURITY
from repro.core.router import Router
from repro.net.addresses import IPAddress
from repro.net.headers import PROTO_UDP
from repro.net.packet import Packet
from repro.shard import (
    ShardedRouter,
    dispatch_wire,
    encode_packet,
    mp_available,
    usable_cpus,
)

HERE = os.path.dirname(os.path.abspath(__file__))
BASELINE_PATH = os.path.join(HERE, "baseline_throughput.json")
OUTPUT_PATH = os.path.join(HERE, "..", "BENCH_throughput.json")

NSHARDS = 4         # worker count of the sharded-data-path section
FLOWS = 64          # distinct flows in the cached workloads
CHURN_FLOWS = 4096  # distinct flows in the miss_churn workload...
CHURN_CAP = 1024    # ...against a flow table capped this small
FILTERS = 256       # filter-set size of the filters256 workload
PAYLOAD = b"\x00" * 64


class _EmptyPlugin(Plugin):
    plugin_type = TYPE_IP_SECURITY
    name = "bench-empty"
    instance_class = PluginInstance


def build_router(with_gate_plugins: bool = False, max_flows=None) -> Router:
    router = Router(name="bench", gates=DEFAULT_GATES, max_flows=max_flows)
    router.add_interface("atm0", prefix="10.0.0.0/8")
    router.add_interface("atm1", prefix="20.0.0.0/8")
    if with_gate_plugins:
        plugin = _EmptyPlugin()
        router.pcu.load(plugin)
        instance = plugin.create_instance()
        for gate in DEFAULT_GATES:
            plugin.register_instance(instance, "*, *, UDP", gate=gate)
    return router


def _flow_addresses(count: int):
    return [
        (
            IPAddress.parse(f"10.0.{i // 200}.{i % 200 + 1}"),
            IPAddress.parse(f"20.0.{i // 200}.{i % 200 + 1}"),
            5000 + i,
        )
        for i in range(count)
    ]


def make_cached_packets(n: int, flows=None):
    """``n`` packets round-robinning over ``FLOWS`` distinct flows."""
    flows = flows or _flow_addresses(FLOWS)
    count = len(flows)
    return [
        Packet(
            src=flows[i % count][0],
            dst=flows[i % count][1],
            protocol=PROTO_UDP,
            src_port=flows[i % count][2],
            dst_port=9000,
            iif="atm0",
            payload=PAYLOAD,
        )
        for i in range(n)
    ]


def make_miss_packets(n: int):
    """``n`` packets, every one a brand-new five-tuple."""
    src = IPAddress.parse("10.0.0.1")
    dst = IPAddress.parse("20.0.0.1")
    return [
        Packet(
            src=src,
            dst=dst,
            protocol=PROTO_UDP,
            src_port=(i % 60000) + 1024,
            dst_port=(i // 60000) + 1024,
            iif="atm0",
            payload=PAYLOAD,
        )
        for i in range(n)
    ]


def make_churn_packets(n: int):
    """``n`` packets round-robinning over ``CHURN_FLOWS`` flows.

    With the flow table capped at ``CHURN_CAP`` records, a flow is always
    evicted before its next packet arrives, so every lookup misses and
    every install recycles an LRU record.
    """
    return make_cached_packets(n, flows=_flow_addresses(CHURN_FLOWS))


def install_bench_filters(router: Router, count: int = FILTERS) -> None:
    """``count`` distinct unbound /24 source filters at one gate.

    Source prefixes are pairwise disjoint (every 10.a.b.0/24 distinct),
    so DAG installation never replicates and the ambiguity pre-flight
    short-circuits; ports/protocol are shaped so the miss traffic below
    matches exactly one filter and walks the full six-level descent.
    """
    if count > 256 * 256:
        raise ValueError("filter workload supports at most 65536 filters")
    for i in range(count):
        router.aiu.create_filter(
            "ip_security", f"10.{i % 16}.{(i // 16) % 256}.0/24, 20.*, UDP"
        )


def make_filter_packets(n: int):
    """``n`` brand-new flows spread across the installed /24 filters."""
    dst = IPAddress.parse("20.0.0.1")
    sources = [
        IPAddress.parse(f"10.{i % 16}.{(i // 16) % 16}.1") for i in range(256)
    ]
    return [
        Packet(
            src=sources[i % 256],
            dst=dst,
            protocol=PROTO_UDP,
            src_port=(i % 60000) + 1024,
            dst_port=(i // 60000) + 1024,
            iif="atm0",
            payload=PAYLOAD,
        )
        for i in range(n)
    ]


BURST = 256         # burst size of the batch_* workloads


def _time_pass(router: Router, packets, use_batch: bool, burst: int = 0) -> float:
    receive_batch = getattr(router, "receive_batch", None)
    # A collector pass landing inside one timed run but not another is
    # the dominant noise source on the allocation-heavy miss workloads;
    # collect up front and keep the GC out of the timed region.
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        if burst and receive_batch is not None:
            for at in range(0, len(packets), burst):
                receive_batch(packets[at:at + burst])
        elif use_batch and receive_batch is not None:
            receive_batch(packets)
        else:
            receive = router.receive
            for packet in packets:
                receive(packet)
        return time.perf_counter() - start
    finally:
        if was_enabled:
            gc.enable()


WORKLOADS = (
    "cached_hit",
    "cache_miss",
    "gates3",
    "miss_churn",
    "filters256",
    "batch_cached",
    "batch_miss",
    "telemetry_off",
    "telemetry_on",
    "telemetry_off_miss",
    "telemetry_on_miss",
)


def run_workload(name: str, n: int, reps: int, use_batch: bool) -> float:
    """Best-of-``reps`` packets/second for one workload."""
    best = 0.0
    if name.startswith("telemetry"):
        # The on/off pairs gate a 5% ratio, well inside run-to-run
        # timing noise — more best-of samples keep the gate stable.
        reps *= 2
    for _ in range(reps):
        warmed = 0
        burst = 0
        if name == "cache_miss":
            router = build_router()           # fresh table: every packet misses
            packets = make_miss_packets(n)
        elif name == "batch_cached":
            router = build_router()
            for warm in make_cached_packets(FLOWS):
                router.receive(warm)
            warmed = FLOWS
            packets = make_cached_packets(n)
            burst = BURST
        elif name == "batch_miss":
            router = build_router()
            packets = make_miss_packets(n)
            burst = BURST
        elif name == "miss_churn":
            router = build_router(max_flows=CHURN_CAP)
            packets = make_churn_packets(n)
        elif name == "filters256":
            router = build_router()
            install_bench_filters(router)
            packets = make_filter_packets(n)
        elif name in ("telemetry_off_miss", "telemetry_on_miss"):
            router = build_router()
            packets = make_miss_packets(n)
            if name == "telemetry_on_miss":
                router.attach_telemetry()
        elif name in ("telemetry_off", "telemetry_on"):
            router = build_router()
            for warm in make_cached_packets(FLOWS):
                router.receive(warm)
            warmed = FLOWS
            packets = make_cached_packets(n)
            if name == "telemetry_on":
                router.attach_telemetry()
        else:
            router = build_router(with_gate_plugins=(name == "gates3"))
            for warm in make_cached_packets(FLOWS):
                router.receive(warm)
            warmed = FLOWS
            packets = make_cached_packets(n)
        elapsed = _time_pass(router, packets, use_batch, burst=burst)
        expected = router.counters["forwarded"] - warmed
        if expected != n:
            raise RuntimeError(f"{name}: forwarded {expected} of {n} packets")
        best = max(best, n / elapsed)
    return best


_TELEMETRY_PAIRS = {
    "telemetry_off": ("cached", "off"),
    "telemetry_on": ("cached", "on"),
    "telemetry_off_miss": ("miss", "off"),
    "telemetry_on_miss": ("miss", "on"),
}


def run_telemetry_pair(kind: str, n: int, reps: int, use_batch: bool):
    """Best-of pps for a telemetry off/on pair, measured interleaved.

    The pair gates a 5% ratio, well inside block-to-block timing drift:
    timing all the ``off`` reps and then all the ``on`` reps lets a
    frequency shift between the blocks masquerade as overhead.  Three
    defences keep the ratio about the seams rather than the machine:

    * off and on run in alternating passes (same conditions), with the
      order swapped every rep (cancels any fixed position bias);
    * one packet list is built up front and reused — each pass resets
      the per-packet flow caches (``fix = None``) instead of paying
      packet construction again, so passes are cheap and ``reps`` can be
      high enough for best-of to converge on a busy machine;
    * best-of, not mean: interference only ever makes a pass slower.

    Returns ``(off_pps, on_pps)``.
    """
    packets = make_miss_packets(n) if kind == "miss" else make_cached_packets(n)
    best = {"off": 0.0, "on": 0.0}
    for rep in range(reps):
        order = ("off", "on") if rep % 2 == 0 else ("on", "off")
        for mode in order:
            for packet in packets:
                packet.fix = None   # reset flow caches for reuse...
                packet.length       # ...and re-warm the length (wire
                # packets carry it from the parsed header; Packet.parse
                # warms it the same way)
            router = build_router()
            warmed = 0
            if kind != "miss":
                for warm in make_cached_packets(FLOWS):
                    router.receive(warm)
                warmed = FLOWS
            if mode == "on":
                router.attach_telemetry()
            if use_batch:
                # Compile the batch loop (and the AIU's compiled tables)
                # outside the timed region: the pair gates a 5% ratio,
                # and the one-off exec-compile on a fresh router's first
                # batch is the same order as the seam being measured.
                # The warm flows are disjoint from the measured set.
                warm_burst = [
                    Packet(
                        src=IPAddress.parse("10.255.0.1"),
                        dst=IPAddress.parse(f"20.255.0.{i + 1}"),
                        protocol=PROTO_UDP,
                        src_port=40000 + i,
                        dst_port=40000,
                        iif="atm0",
                        payload=PAYLOAD,
                    )
                    for i in range(32)
                ]
                router.receive_batch(warm_burst)
                warmed += len(warm_burst)
            elapsed = _time_pass(router, packets, use_batch)
            expected = router.counters["forwarded"] - warmed
            if expected != n:
                raise RuntimeError(
                    f"telemetry_{mode}/{kind}: forwarded {expected} of {n}"
                )
            best[mode] = max(best[mode], n / elapsed)
    return best["off"], best["on"]


def _shard_factory(index: int) -> Router:
    """Per-shard router for the shard section (runs inside each forked
    worker for the mp arms, so state never crosses the fork)."""
    return build_router()


def _time_wire(front, descs, now: float = 0.0) -> float:
    """Timed ``receive_wire`` pass with the GC parked (see _time_pass)."""
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        front.receive_wire(descs, now=now)
        return time.perf_counter() - start
    finally:
        if was_enabled:
            gc.enable()


def _time_dispatch_capacity(descs, batch_size: int = 256) -> float:
    """Timed pass over the parent's per-packet mp pipeline work, no IPC.

    Mirrors ``ShardWorkerPool.process_wire``: RSS bucket, slice
    ``batch_size`` chunks, serialize each ("batch", now, chunk) request,
    and deserialize a dispositions reply per chunk.  The reply blob is
    *produced* in the loop too (worker-side work in reality), so the
    measured rate understates true parent capacity — conservative.
    """
    import pickle
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        dumps, loads = pickle.dumps, pickle.loads
        start = time.perf_counter()
        buckets, indices = dispatch_wire(descs, NSHARDS)
        for s in range(NSHARDS):
            bucket, idx = buckets[s], indices[s]
            for at in range(0, len(bucket), batch_size):
                chunk = bucket[at:at + batch_size]
                dumps(("batch", 0.0, chunk), protocol=-1)
                scatter = idx[at:at + batch_size]
                reply = loads(dumps(["forwarded"] * len(chunk), protocol=-1))
                for i, d in zip(scatter, reply):
                    pass
        return time.perf_counter() - start
    finally:
        if was_enabled:
            gc.enable()


def run_shard_workload(kind: str, n: int, reps: int) -> dict:
    """Best-of pps for the three shard arms on one traffic kind.

    Every arm consumes the identical descriptor stream (fold
    precomputed by ``encode_packet``), so the only variable is the
    execution backend behind the RSS front end.
    """
    make = make_cached_packets if kind == "cached" else make_miss_packets
    warm_descs = (
        [encode_packet(p) for p in make_cached_packets(FLOWS)]
        if kind == "cached" else []
    )
    best = {"single": 0.0, "mp": 0.0, "dispatch": 0.0}
    for _ in range(reps):
        descs = [encode_packet(p) for p in make(n)]

        single = ShardedRouter(nshards=1, factory=_shard_factory,
                               backend="inline")
        if warm_descs:
            single.receive_wire(warm_descs)
        elapsed = _time_wire(single, descs)
        forwarded = single.counters["forwarded"] - len(warm_descs)
        if forwarded != n:
            raise RuntimeError(
                f"shard_{kind}/single: forwarded {forwarded} of {n}"
            )
        best["single"] = max(best["single"], n / elapsed)

        best["dispatch"] = max(
            best["dispatch"], n / _time_dispatch_capacity(descs)
        )

        if mp_available():
            with ShardedRouter(nshards=NSHARDS, factory=_shard_factory,
                               backend="mp") as front:
                if warm_descs:
                    front.receive_wire(warm_descs)
                elapsed = _time_wire(front, descs)
                counters = front.health()["counters"]
            forwarded = counters.get("forwarded", 0) - len(warm_descs)
            if forwarded != n:
                raise RuntimeError(
                    f"shard_{kind}/mp: forwarded {forwarded} of {n}"
                )
            best["mp"] = max(best["mp"], n / elapsed)

    row = {
        "single_pps": round(best["single"], 1),
        "mp_pps": round(best["mp"], 1) or None,
        "dispatch_pps": round(best["dispatch"], 1) or None,
    }
    if best["mp"]:
        row["real_ratio"] = round(best["mp"] / best["single"], 2)
    if best["dispatch"]:
        row["dispatch_ratio"] = round(best["dispatch"] / best["single"], 2)
    return row


def measure_shard(quick: bool) -> dict:
    """The shard section of the report (self-relative ratios, so it has
    no entry in the stored pre-PR baseline)."""
    n = 5_000 if quick else 20_000
    reps = 2 if quick else 3
    return {
        "nshards": NSHARDS,
        "usable_cpus": usable_cpus(),
        "mp_available": mp_available(),
        "shard_cached": run_shard_workload("cached", n, reps),
        "shard_miss": run_shard_workload("miss", n, reps),
    }


def measure(quick: bool, use_batch: bool) -> dict:
    n = 5_000 if quick else 30_000
    reps = 2 if quick else 4
    results = {}
    paired_done = set()
    for name in WORKLOADS:
        if name in _TELEMETRY_PAIRS:
            kind, _ = _TELEMETRY_PAIRS[name]
            if kind in paired_done:
                continue
            paired_done.add(kind)
            # The 5%/8% ratio gate needs a converged best-of: at 8 reps
            # the ratio of two best-of estimates still wobbles by a few
            # percent on a loaded machine; 16 reps of these cheap passes
            # is where it settles (the pair workloads are the smallest
            # in the suite, so this costs well under a second).
            off, on = run_telemetry_pair(kind, n, max(16, reps * 4), use_batch)
            suffix = "" if kind == "cached" else "_miss"
            results[f"telemetry_off{suffix}"] = round(off, 1)
            results[f"telemetry_on{suffix}"] = round(on, 1)
        else:
            results[name] = round(run_workload(name, n, reps, use_batch), 1)
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument(
        "--save-baseline",
        action="store_true",
        help="record the current tree's pps as the pre-PR baseline",
    )
    parser.add_argument(
        "--no-batch",
        action="store_true",
        help="measure per-packet receive() even when receive_batch exists",
    )
    args = parser.parse_args(argv)

    results = measure(args.quick, use_batch=not args.no_batch)
    if args.save_baseline:
        # Merge: committed pre-optimisation captures are preserved; only
        # workloads that have no baseline yet get one (so adding a new
        # workload records its pre-PR number without clobbering seed-era
        # entries).
        merged = {}
        if os.path.exists(BASELINE_PATH):
            with open(BASELINE_PATH) as fh:
                merged = json.load(fh).get("pps", {})
        merged.update({k: v for k, v in results.items() if k not in merged})
        with open(BASELINE_PATH, "w") as fh:
            json.dump({"pps": merged, "quick": args.quick}, fh, indent=2)
        print(f"baseline saved to {BASELINE_PATH}: {merged}")
        return 0

    baseline = None
    if os.path.exists(BASELINE_PATH):
        with open(BASELINE_PATH) as fh:
            baseline = json.load(fh)["pps"]
    report = {
        "workloads": list(WORKLOADS),
        "packets_per_second": results,
        "baseline_packets_per_second": baseline,
        "shard": measure_shard(args.quick),
    }
    if baseline:
        report["speedup"] = {
            name: round(results[name] / baseline[name], 2)
            for name in results
            if baseline.get(name)
        }
    with open(OUTPUT_PATH, "w") as fh:
        json.dump(report, fh, indent=2)
    print(json.dumps(report, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
