"""Wall-clock throughput benchmark for the forwarding data path.

Unlike the ``bench_fig_*`` / ``bench_table*`` experiments, which report
*modelled* cycles on the paper's P6/233, this benchmark measures real
Python packets-per-second on three workloads:

* ``cached_hit`` — a warmed flow cache; every packet takes the paper's
  fast path (one hash, a few indirections).
* ``cache_miss`` — every packet is a brand new flow; each takes the slow
  path (hash, miss, per-gate filter lookup, flow install).
* ``gates3`` — the Table 3 row-2 setup: a warmed cache plus an empty
  plugin bound at all three gates, so every packet makes three indirect
  plugin calls.

Usage::

    PYTHONPATH=src python benchmarks/bench_throughput.py                 # full run
    PYTHONPATH=src python benchmarks/bench_throughput.py --quick         # CI-sized
    PYTHONPATH=src python benchmarks/bench_throughput.py --save-baseline # record pre-PR pps

``--save-baseline`` writes ``benchmarks/baseline_throughput.json`` (the
numbers measured at the seed commit live there, committed).  A normal
run measures the current tree, compares against the stored baseline, and
writes ``BENCH_throughput.json`` at the repo root with both series and
the speedup per workload.

The cost model is untouched by wall-clock optimisations — modelled
cycles are asserted bit-identical by ``tests/perf/test_cost_invariance``
(see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.gates import DEFAULT_GATES
from repro.core.plugin import Plugin, PluginInstance, TYPE_IP_SECURITY
from repro.core.router import Router
from repro.net.addresses import IPAddress
from repro.net.headers import PROTO_UDP
from repro.net.packet import Packet

HERE = os.path.dirname(os.path.abspath(__file__))
BASELINE_PATH = os.path.join(HERE, "baseline_throughput.json")
OUTPUT_PATH = os.path.join(HERE, "..", "BENCH_throughput.json")

FLOWS = 64          # distinct flows in the cached workloads
PAYLOAD = b"\x00" * 64


class _EmptyPlugin(Plugin):
    plugin_type = TYPE_IP_SECURITY
    name = "bench-empty"
    instance_class = PluginInstance


def build_router(with_gate_plugins: bool = False) -> Router:
    router = Router(name="bench", gates=DEFAULT_GATES)
    router.add_interface("atm0", prefix="10.0.0.0/8")
    router.add_interface("atm1", prefix="20.0.0.0/8")
    if with_gate_plugins:
        plugin = _EmptyPlugin()
        router.pcu.load(plugin)
        instance = plugin.create_instance()
        for gate in DEFAULT_GATES:
            plugin.register_instance(instance, "*, *, UDP", gate=gate)
    return router


def _flow_addresses(count: int):
    return [
        (
            IPAddress.parse(f"10.0.{i // 200}.{i % 200 + 1}"),
            IPAddress.parse(f"20.0.{i // 200}.{i % 200 + 1}"),
            5000 + i,
        )
        for i in range(count)
    ]


def make_cached_packets(n: int, flows=None):
    """``n`` packets round-robinning over ``FLOWS`` distinct flows."""
    flows = flows or _flow_addresses(FLOWS)
    count = len(flows)
    return [
        Packet(
            src=flows[i % count][0],
            dst=flows[i % count][1],
            protocol=PROTO_UDP,
            src_port=flows[i % count][2],
            dst_port=9000,
            iif="atm0",
            payload=PAYLOAD,
        )
        for i in range(n)
    ]


def make_miss_packets(n: int):
    """``n`` packets, every one a brand-new five-tuple."""
    src = IPAddress.parse("10.0.0.1")
    dst = IPAddress.parse("20.0.0.1")
    return [
        Packet(
            src=src,
            dst=dst,
            protocol=PROTO_UDP,
            src_port=(i % 60000) + 1024,
            dst_port=(i // 60000) + 1024,
            iif="atm0",
            payload=PAYLOAD,
        )
        for i in range(n)
    ]


def _time_pass(router: Router, packets, use_batch: bool) -> float:
    receive_batch = getattr(router, "receive_batch", None)
    start = time.perf_counter()
    if use_batch and receive_batch is not None:
        receive_batch(packets)
    else:
        receive = router.receive
        for packet in packets:
            receive(packet)
    return time.perf_counter() - start


def run_workload(name: str, n: int, reps: int, use_batch: bool) -> float:
    """Best-of-``reps`` packets/second for one workload."""
    best = 0.0
    for _ in range(reps):
        if name == "cache_miss":
            router = build_router()           # fresh table: every packet misses
            packets = make_miss_packets(n)
        else:
            router = build_router(with_gate_plugins=(name == "gates3"))
            for warm in make_cached_packets(FLOWS):
                router.receive(warm)
            packets = make_cached_packets(n)
        elapsed = _time_pass(router, packets, use_batch)
        expected = (
            router.counters["forwarded"] - (0 if name == "cache_miss" else FLOWS)
        )
        if expected != n:
            raise RuntimeError(f"{name}: forwarded {expected} of {n} packets")
        best = max(best, n / elapsed)
    return best


def measure(quick: bool, use_batch: bool) -> dict:
    n = 5_000 if quick else 30_000
    reps = 2 if quick else 4
    return {
        name: round(run_workload(name, n, reps, use_batch), 1)
        for name in ("cached_hit", "cache_miss", "gates3")
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument(
        "--save-baseline",
        action="store_true",
        help="record the current tree's pps as the pre-PR baseline",
    )
    parser.add_argument(
        "--no-batch",
        action="store_true",
        help="measure per-packet receive() even when receive_batch exists",
    )
    args = parser.parse_args(argv)

    results = measure(args.quick, use_batch=not args.no_batch)
    if args.save_baseline:
        with open(BASELINE_PATH, "w") as fh:
            json.dump({"pps": results, "quick": args.quick}, fh, indent=2)
        print(f"baseline saved to {BASELINE_PATH}: {results}")
        return 0

    baseline = None
    if os.path.exists(BASELINE_PATH):
        with open(BASELINE_PATH) as fh:
            baseline = json.load(fh)["pps"]
    report = {
        "workloads": ["cached_hit", "cache_miss", "gates3"],
        "packets_per_second": results,
        "baseline_packets_per_second": baseline,
    }
    if baseline:
        report["speedup"] = {
            name: round(results[name] / baseline[name], 2)
            for name in results
            if baseline.get(name)
        }
    with open(OUTPUT_PATH, "w") as fh:
        json.dump(report, fh, indent=2)
    print(json.dumps(report, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
