"""Experiment E9 — classification cost vs the paper's reference points.

§7.3: "By carefully implementing packet classification, we achieve
faster lookups for IPv6 than other integrated services platforms for
IPv4 (e.g, [27] states that they require 2.6 µs for packet
classification for IPv4 packets), even though IPv6 addresses are
larger."

Modelled (cost-model) classification times, per path:

* cached (flow-table hit) IPv4 and IPv6 — the common case;
* uncached (full DAG filter lookup per gate) IPv4 and IPv6;

all compared against the [27] reference of 2.6 µs per IPv4
classification on comparable-era hardware.
"""

import pytest

from conftest import report
from repro.aiu import AIU
from repro.core.gates import DEFAULT_GATES
from repro.sim.cost import CycleMeter, MemoryMeter, cycles_to_us
from repro.workloads import random_filters, synthetic_flows

STOICA_REFERENCE_US = 2.6      # [27]'s IPv4 classification time


def _aiu_with_filters(width: int) -> AIU:
    aiu = AIU(DEFAULT_GATES, bmp_engine="bspl", flow_buckets=32768)
    filters = random_filters(512, width=width, seed=width, host_fraction=0.8)
    gate_names = list(DEFAULT_GATES)
    for i, flt in enumerate(filters):
        table = aiu._table(gate_names[i % 3], width)
        from repro.aiu.records import FilterRecord

        table.check_ambiguity = False
        table.install(FilterRecord(flt, gate=gate_names[i % 3]))
    return aiu


def _measure(width: int, ipv6: bool):
    aiu = _aiu_with_filters(width)
    flows = synthetic_flows(64, seed=13, ipv6=ipv6)
    packets = [flow.packet() for flow in flows]

    uncached_cycles = []
    for packet in packets:
        cycles = CycleMeter()
        meter = MemoryMeter(cycle_meter=cycles, label="classification")
        aiu.classify(packet, "ip_options", meter=meter, cycles=cycles)
        uncached_cycles.append(cycles.total)

    cached_cycles = []
    for packet in packets:
        again = packet.copy()
        again.iif = packet.iif
        cycles = CycleMeter()
        meter = MemoryMeter(cycle_meter=cycles, label="classification")
        aiu.classify(again, "ip_options", meter=meter, cycles=cycles)
        cached_cycles.append(cycles.total)

    return (
        cycles_to_us(sum(cached_cycles) / len(cached_cycles)),
        cycles_to_us(sum(uncached_cycles) / len(uncached_cycles)),
        aiu,
        packets,
    )


@pytest.mark.parametrize("width,ipv6,family", [(32, False, "IPv4"), (128, True, "IPv6")])
def test_classification_cost(benchmark, width, ipv6, family):
    cached_us, uncached_us, aiu, packets = _measure(width, ipv6)
    report(
        f"Classification cost ({family}, 512 filters, 3 gates)",
        [
            f"cached (flow-table hit)      : {cached_us:.3f} us",
            f"uncached (3 DAG lookups)     : {uncached_us:.3f} us",
            f"[27] reference, IPv4 cached  : {STOICA_REFERENCE_US} us",
        ],
    )
    # The paper's claim: even IPv6 classification here beats [27]'s IPv4.
    assert cached_us < STOICA_REFERENCE_US
    # And the uncached path (amortized over a flow) is also competitive.
    assert uncached_us < 3 * STOICA_REFERENCE_US

    index = {"i": 0}

    def classify_cached():
        packet = packets[index["i"] % len(packets)].copy()
        packet.iif = packets[0].iif
        index["i"] += 1
        aiu.classify(packet, "ip_options")

    benchmark(classify_cached)
    benchmark.extra_info["modelled_cached_us"] = round(cached_us, 3)
    benchmark.extra_info["modelled_uncached_us"] = round(uncached_us, 3)
    benchmark.extra_info["stoica_reference_us"] = STOICA_REFERENCE_US


def test_ipv6_not_slower_than_reference_despite_width(benchmark):
    """The headline sentence, asserted directly."""
    benchmark.pedantic(lambda: None, rounds=1)
    cached_v6, uncached_v6, _, _ = _measure(128, True)
    assert cached_v6 < STOICA_REFERENCE_US
    report(
        "IPv6 vs [27] IPv4 reference",
        [f"our IPv6 cached classification {cached_v6:.3f} us < 2.6 us ([27] IPv4)"],
    )
