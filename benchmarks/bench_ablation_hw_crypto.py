"""Ablation A5 — plugins as hardware drivers (§3).

"Easy integration with custom hardware ... a plugin could control
hardware engines for tasks such as packet classification or encryption."

Modelled ESP cost per packet, software cipher (per-byte work) vs the
hardware-engine driver (fixed setup), across packet sizes — the
crossover argument for the paper's hardware hook.
"""

import pytest

from conftest import report
from repro.core.plugin import PluginContext
from repro.net.packet import make_udp
from repro.security import EspPlugin, HwEspPlugin, SecurityAssociation
from repro.sim.cost import CycleMeter, cycles_to_us

SA_ARGS = dict(auth_key=b"a" * 16, encryption_key=b"e" * 16,
               mode="tunnel", tunnel_src="192.0.2.1", tunnel_dst="192.0.2.2")

SIZES = (64, 256, 1000, 4000, 8192)


def _out(plugin_class, spi):
    return plugin_class().create_instance(
        direction="out", sa=SecurityAssociation(spi=spi, **SA_ARGS)
    )


def _cost(instance, size):
    pkt = make_udp("10.1.0.5", "10.2.0.9", 4000, 80, payload_size=size - 28)
    meter = CycleMeter()
    instance.process(pkt, PluginContext(cycles=meter))
    return meter.total


@pytest.fixture(scope="module")
def crypto_curves():
    sw = _out(EspPlugin, 0x801)
    hw = _out(HwEspPlugin, 0x802)
    return (
        {size: _cost(sw, size) for size in SIZES},
        {size: _cost(hw, size) for size in SIZES},
    )


def test_hw_crypto_crossover(benchmark, crypto_curves):
    benchmark.pedantic(lambda: None, rounds=1)
    sw_curve, hw_curve = crypto_curves
    lines = [f"{'bytes':>6} {'software cycles':>16} {'hw driver cycles':>17}"]
    for size in SIZES:
        lines.append(f"{size:>6} {sw_curve[size]:>16} {hw_curve[size]:>17}")
    lines.append("")
    lines.append(
        f"software 8 KB packet: {cycles_to_us(sw_curve[8192]):.0f} us of cipher "
        f"work vs {cycles_to_us(hw_curve[8192]):.1f} us of driver work"
    )
    report("Ablation — software crypto vs hardware-engine driver plugin", lines)
    # Hardware driver cost is flat; software grows with size.
    assert hw_curve[8192] - hw_curve[64] < 100
    assert sw_curve[8192] > 20 * sw_curve[64] * 0.5
    # Crossover: hardware wins at every realistic IPsec packet size here.
    for size in SIZES:
        assert hw_curve[size] < sw_curve[size]


def test_sw_vs_hw_wall_time(benchmark):
    hw = _out(HwEspPlugin, 0x803)

    def encrypt_one():
        pkt = make_udp("10.1.0.5", "10.2.0.9", 4000, 80, payload_size=972)
        hw.process(pkt, PluginContext())

    benchmark(encrypt_one)
