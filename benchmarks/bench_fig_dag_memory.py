"""Experiment E5b — the DAG's memory blow-up under ambiguous filters.

§5.1.2: "if there are many ambiguous filters (see [7]), the memory
requirements of our algorithm can be excessive" — the set-pruning
replication cost the paper concedes.  We characterize it: DAG node count
as broad (covering) filters are added to a base of host filters.  Each
broad filter replicates into every more-specific sibling subtree, so
nodes grow ~linearly in (broad × hosts); with hosts only, growth is
linear in filters.
"""

import pytest

from conftest import report
from repro.aiu.dag import DagFilterTable
from repro.aiu.records import FilterRecord
from repro.workloads import random_filters

HOSTS = 2000
BROAD_COUNTS = (0, 4, 16, 64)


def _build(broad_count: int) -> DagFilterTable:
    table = DagFilterTable(width=32, check_ambiguity=False)
    # Hosts inside 10.0.0.0/8 so the broad filters genuinely cover them.
    hosts = random_filters(HOSTS, seed=1, host_fraction=1.0)
    for flt in hosts:
        table.install(FilterRecord(flt, gate="bench"))
    if broad_count:
        from repro.aiu.filters import Filter

        for i in range(broad_count):
            # Wildcard source (covers every host-src subtree) with a
            # distinct destination prefix: each one replicates a fresh
            # path into all ~HOSTS subtrees — the ambiguous-filter shape.
            spec = f"*, {i + 1}.0.0.0/8, UDP"
            table.install(FilterRecord(Filter.parse(spec), gate="bench"))
    return table


@pytest.fixture(scope="module")
def growth():
    return {count: _build(count).node_count() for count in BROAD_COUNTS}


def test_dag_memory_blowup_characterized(benchmark, growth):
    benchmark.pedantic(lambda: None, rounds=1)
    base = growth[0]
    lines = [f"{'broad filters':>14} {'DAG nodes':>10} {'vs host-only':>13}"]
    for count in BROAD_COUNTS:
        lines.append(
            f"{count:>14} {growth[count]:>10} {growth[count] / base:>12.2f}x"
        )
    lines.append("")
    lines.append("paper §5.1.2: 'the memory requirements of our algorithm can be"
                 " excessive' with ambiguous/covering filters — measured")
    report("DAG memory — replication blow-up under covering filters", lines)
    # Host-only growth is modest (~6 nodes per filter path).
    assert base <= HOSTS * 8
    # Each covering filter replicates into every host subtree: the node
    # count keeps climbing with the broad-filter count.
    assert growth[4] > base * 1.5
    assert growth[16] > growth[4]
    assert growth[64] > growth[16]
    # Roughly one replicated path per (broad filter x host subtree).
    assert growth[64] - base > 30 * HOSTS


def test_host_only_growth_is_linear(benchmark):
    """Without covering filters, nodes grow linearly in filters."""
    benchmark.pedantic(lambda: None, rounds=1)
    sizes = (500, 1000, 2000)
    nodes = {}
    for size in sizes:
        table = DagFilterTable(width=32, check_ambiguity=False)
        for flt in random_filters(size, seed=7, host_fraction=1.0):
            table.install(FilterRecord(flt, gate="bench"))
        nodes[size] = table.node_count()
    per_filter = {s: nodes[s] / s for s in sizes}
    report(
        "DAG memory — host-only filters grow linearly",
        [f"{s} filters: {nodes[s]} nodes ({per_filter[s]:.2f}/filter)"
         for s in sizes],
    )
    # Nodes per filter is flat (within 20%) across a 4x size range.
    values = list(per_filter.values())
    assert max(values) / min(values) < 1.2
