"""Experiment E2 — Table 2: worst-case memory accesses per filter lookup.

The paper's accounting for one DAG filter-table lookup with the binary-
search-on-prefix-lengths (BSPL) BMP engine:

    Access to function pointer for BMP function       1
    Access to function pointer for index hash          1
    IP address lookup (2*log2(32) / 2*log2(128))   10/14
    Port number lookup                                 2
    Access to DAG edges                                6
    Total                                          20/24

"With a very large number of filters (in the order of 50000), it
classifies IPv6 packets in 24 memory accesses" and the worst-case lookup
time is accesses × 60 ns ≈ 1.4 µs (IPv6, ×number of gates).

We build DAG tables with 50 000 filters per family, probe them with
matching traffic, and check both the measured worst case and the
per-row breakdown against the paper's bounds.
"""

import random

import pytest

from conftest import report
from repro.aiu.dag import DagFilterTable
from repro.aiu.records import FilterRecord
from repro.net.addresses import IPV4_WIDTH, IPV6_WIDTH
from repro.net.packet import Packet
from repro.net.addresses import IPAddress
from repro.sim.cost import MemoryMeter, memory_accesses_to_us
from repro.workloads import matching_probe, random_filters

FILTER_COUNT = 50_000
PROBES = 400

PAPER_ROWS = {
    IPV4_WIDTH: {"fnptr_bmp": 1, "fnptr_hash": 1, "address": 10, "port": 2,
                 "dag_edge": 6, "total": 20},
    IPV6_WIDTH: {"fnptr_bmp": 1, "fnptr_hash": 1, "address": 14, "port": 2,
                 "dag_edge": 6, "total": 24},
}


def _build_table(width: int):
    # Mostly fully-specified filters (per-flow reservations) with a
    # realistic mix of prefix lengths, like the paper's 50k scenario.
    filters = random_filters(FILTER_COUNT - 64, width=width, seed=width,
                             host_fraction=1.0)
    filters += random_filters(64, width=width, seed=width + 1, host_fraction=0.0)
    table = DagFilterTable(width=width, bmp_engine="bspl", check_ambiguity=False)
    for flt in filters:
        table.install(FilterRecord(flt, gate="bench"))
    return table, filters


def _packet_for(probe, width: int) -> Packet:
    src, dst, proto, sport, dport = probe
    packet = Packet(
        src=IPAddress(src, width),
        dst=IPAddress(dst, width),
        protocol=proto,
        src_port=sport,
        dst_port=dport,
    )
    return packet


@pytest.fixture(scope="module")
def tables():
    return {width: _build_table(width) for width in (IPV4_WIDTH, IPV6_WIDTH)}


@pytest.mark.parametrize("width,family", [(IPV4_WIDTH, "IPv4"), (IPV6_WIDTH, "IPv6")])
def test_table2_memory_accesses(benchmark, tables, width, family):
    table, filters = tables[width]
    rng = random.Random(99)
    packets = [
        _packet_for(matching_probe(flt, rng), width)
        for flt in rng.sample(filters, PROBES)
    ]
    paper = PAPER_ROWS[width]

    worst = MemoryMeter()
    worst_total = 0
    for packet in packets:
        meter = MemoryMeter()
        hit = table.lookup(packet, meter)
        assert hit is not None
        if meter.accesses > worst_total:
            worst_total, worst = meter.accesses, meter

    breakdown = worst.breakdown()
    address = breakdown.get("waldvogel", 0)
    rows = [
        f"{'Access to function pointer for BMP function':<46} "
        f"{breakdown.get('fnptr_bmp', 0):>3}   (paper {paper['fnptr_bmp']})",
        f"{'Access to function pointer for index hash':<46} "
        f"{breakdown.get('fnptr_hash', 0):>3}   (paper {paper['fnptr_hash']})",
        f"{'IP address lookup (2 addresses, BSPL)':<46} "
        f"{address:>3}   (paper {paper['address']})",
        f"{'Port number lookup':<46} {breakdown.get('port', 0):>3}   (paper {paper['port']})",
        f"{'Access to DAG edges':<46} {breakdown.get('dag_edge', 0):>3}   (paper {paper['dag_edge']})",
        f"{'Total':<46} {worst_total:>3}   (paper {paper['total']})",
        "",
        f"worst-case lookup time @60ns/access: {memory_accesses_to_us(worst_total):.2f} us "
        f"(paper: 1.4 us worst case for IPv6)",
        f"filters installed: {len(table)}; DAG nodes: {table.node_count()}",
    ]
    report(f"Table 2 — memory accesses per filter lookup ({family})", rows)

    # The paper's bound holds: the measured worst case never exceeds it.
    assert worst_total <= paper["total"]
    assert breakdown.get("fnptr_bmp", 0) == 1
    assert breakdown.get("fnptr_hash", 0) == 1
    assert breakdown.get("dag_edge", 0) == 6
    assert breakdown.get("port", 0) == 2
    assert address <= paper["address"]

    # Benchmark the wall-clock lookup itself.
    index = {"i": 0}

    def lookup_one():
        packet = packets[index["i"] % len(packets)]
        index["i"] += 1
        table.lookup(packet)

    benchmark(lookup_one)
    benchmark.extra_info["worst_case_accesses"] = worst_total
    benchmark.extra_info["paper_bound"] = paper["total"]
    benchmark.extra_info["modelled_worst_us"] = round(memory_accesses_to_us(worst_total), 3)


def test_table2_bound_is_independent_of_filter_count(benchmark, tables):
    """§5.1.2: the DAG's cost is O(fields), 'more or less independent of
    the number of filters' — the bound is identical at 1k and 50k."""
    width = IPV4_WIDTH
    small = DagFilterTable(width=width, bmp_engine="bspl", check_ambiguity=False)
    filters = random_filters(1000, width=width, seed=5, host_fraction=1.0)
    for flt in filters:
        small.install(FilterRecord(flt, gate="bench"))
    rng = random.Random(1)

    def measure(table, filter_pool):
        worst = 0
        for flt in rng.sample(filter_pool, 200):
            meter = MemoryMeter()
            table.lookup(_packet_for(matching_probe(flt, rng), width), meter)
            worst = max(worst, meter.accesses)
        return worst

    worst_small = benchmark.pedantic(measure, args=(small, filters), rounds=1)
    big_table, big_filters = tables[width]
    worst_big = measure(big_table, big_filters)
    report(
        "Table 2 corollary — accesses vs filter count",
        [f"worst case at  1k filters: {worst_small}",
         f"worst case at 50k filters: {worst_big}",
         "both within the fixed 20-access bound"],
    )
    assert worst_small <= 20 and worst_big <= 20
    # 50x more filters adds at most a couple of BSPL probes.
    assert worst_big - worst_small <= 4
