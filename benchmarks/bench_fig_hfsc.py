"""Experiment E8 — H-FSC behaviour (§6).

"One of its main advantages is the decoupling of delay and bandwidth
allocation, which is very useful if both real-time and hierarchical
link-sharing services are required concurrently."

Measured on a 10 Mbit/s modelled link:

* hierarchical link sharing honours the configured class tree;
* a 1 Mbit/s voice class with a steep first-slope rsc gets ~2 ms first-
  packet latency while a 9.9 Mbit/s bulk class is backlogged — the
  decoupling claim;
* the same voice class WITHOUT the concave rsc waits behind bulk, which
  is the ablation showing the service curve (not the bandwidth) buys
  the delay.
"""

from collections import Counter

import pytest

from conftest import report
from repro.core.plugin import PluginContext
from repro.net.packet import make_udp
from repro.sched.curves import ServiceCurve
from repro.sched.hfsc import HfscPlugin
from repro.sched.hsf import HsfPlugin

LINK_BPS = 10_000_000
PKT = 1000


def _pkt(flow, size=PKT):
    return make_udp(f"10.0.0.{flow}", "20.0.0.1", 5000 + flow, 53,
                    payload_size=size - 28)


def _backlog(sched, class_name, flow, count):
    leaf = sched.get_class(class_name)
    for _ in range(count):
        packet = _pkt(flow)
        if leaf.queue.push(packet):
            sched._backlog += 1
            if len(leaf.queue) == 1:
                sched._set_active(leaf, 0.0, packet.length)


def _drain(sched, n, link_bps=LINK_BPS):
    now, by_class, trace = 0.0, Counter(), []
    for _ in range(n):
        packet = sched.dequeue(now)
        if packet is None:
            break
        by_class[packet.annotations["hfsc_class"]] += packet.length
        trace.append((now, packet))
        now += packet.length * 8 / link_bps
    return by_class, trace


def test_hierarchical_link_sharing(benchmark):
    """Two agencies 50/50; inside agency1, web:ftp = 3:1."""
    sched = HfscPlugin().create_instance()
    sched.add_class("agency1", fsc=ServiceCurve.linear(5e6))
    sched.add_class("agency2", fsc=ServiceCurve.linear(5e6))
    sched.add_class("a1.web", parent="agency1", fsc=ServiceCurve.linear(3.75e6), qlimit=2000)
    sched.add_class("a1.ftp", parent="agency1", fsc=ServiceCurve.linear(1.25e6), qlimit=2000)
    sched.add_class("a2.all", parent="agency2", fsc=ServiceCurve.linear(5e6), qlimit=2000)
    for name, flow in [("a1.web", 1), ("a1.ftp", 2), ("a2.all", 3)]:
        _backlog(sched, name, flow, 1200)
    by_class, _ = _drain(sched, 1000)
    agency1 = by_class["a1.web"] + by_class["a1.ftp"]
    lines = [f"{'class':<8} {'bytes':>9} {'share':>7}"]
    total = sum(by_class.values())
    for name in ("a1.web", "a1.ftp", "a2.all"):
        lines.append(f"{name:<8} {by_class[name]:>9} {by_class[name] / total:>7.3f}")
    lines.append(f"agency1:agency2 = {agency1 / by_class['a2.all']:.2f} (target 1.0)")
    lines.append(f"web:ftp within agency1 = "
                 f"{by_class['a1.web'] / by_class['a1.ftp']:.2f} (target 3.0)")
    report("H-FSC hierarchical link sharing", lines)
    assert agency1 / by_class["a2.all"] == pytest.approx(1.0, rel=0.15)
    assert by_class["a1.web"] / by_class["a1.ftp"] == pytest.approx(3.0, rel=0.25)

    def dequeue_enqueue():
        _backlog(sched, "a1.web", 1, 1)
        sched.dequeue(0.0)

    benchmark(dequeue_enqueue)


@pytest.fixture(scope="module")
def delay_measurements():
    """Voice-packet first-service time with and without the concave rsc."""

    def run(with_rsc: bool) -> float:
        sched = HfscPlugin().create_instance()
        rsc = ServiceCurve.two_piece(4e6, 0.002, 1e6) if with_rsc else None
        sched.add_class("voice", rsc=rsc, fsc=ServiceCurve.linear(0.1e6))
        sched.add_class("bulk", fsc=ServiceCurve.linear(9.9e6), qlimit=2000)
        _backlog(sched, "bulk", 2, 1000)
        _backlog(sched, "voice", 1, 1)
        _, trace = _drain(sched, 200)
        voice_times = [t for t, p in trace
                       if p.annotations["hfsc_class"] == "voice"]
        return voice_times[0] if voice_times else float("inf")

    return {"with_rsc": run(True), "without_rsc": run(False)}


def test_delay_bandwidth_decoupling(benchmark, delay_measurements):
    benchmark.pedantic(lambda: None, rounds=1)
    with_rsc = delay_measurements["with_rsc"]
    without = delay_measurements["without_rsc"]
    report(
        "H-FSC delay/bandwidth decoupling — voice first-packet latency",
        [f"voice (0.1 Mbit/s share) WITH concave rsc : {with_rsc * 1000:7.3f} ms",
         f"voice (0.1 Mbit/s share) without rsc      : {without * 1000:7.3f} ms",
         "paper: the rsc buys delay independently of the bandwidth share"],
    )
    # With the rsc: served within the ~2 ms deadline (+1 MTU slack).
    assert with_rsc <= 0.004
    # Without it: the tiny link share makes voice wait much longer.
    assert without > with_rsc * 5


def test_rt_guarantee_under_overload(benchmark):
    """Voice's long-run throughput >= its rsc m2 despite 10:1 overload."""
    benchmark.pedantic(lambda: None, rounds=1)
    sched = HfscPlugin().create_instance()
    sched.add_class("voice", rsc=ServiceCurve.two_piece(4e6, 0.002, 1e6),
                    fsc=ServiceCurve.linear(0.1e6), qlimit=2000)
    sched.add_class("bulk", fsc=ServiceCurve.linear(9.9e6), qlimit=2000)
    _backlog(sched, "voice", 1, 1000)
    _backlog(sched, "bulk", 2, 1000)
    by_class, trace = _drain(sched, 1000)
    elapsed = trace[-1][0]
    voice_bps = by_class["voice"] * 8 / elapsed
    report(
        "H-FSC real-time guarantee under overload",
        [f"voice goodput: {voice_bps / 1e6:.2f} Mbit/s (rsc m2 guarantee: 1.0)"],
    )
    assert voice_bps >= 0.9e6


def test_hfsc_vs_cbq_decoupling(benchmark):
    """§6's comparison: 'hierarchical scheduling similar to CBQ with
    several advantages ... the decoupling of delay and bandwidth'.

    Both schedulers give voice a 1 Mbit/s allocation against a
    backlogged bulk class; H-FSC's concave rsc delivers the first voice
    packet in ~2 ms while CBQ's token rate makes voice wait ~8 ms per
    packet — to match H-FSC's delay, CBQ would need 4x the bandwidth.
    """
    benchmark.pedantic(lambda: None, rounds=1)
    from repro.sched.cbq import CbqPlugin

    # --- CBQ: 1 Mbit/s voice, 9 Mbit/s bulk --------------------------
    cbq = CbqPlugin().create_instance(link_bps=LINK_BPS)
    cbq.add_class("voice", rate_bps=1_000_000, qlimit=500, burst_bytes=PKT)
    cbq.add_class("bulk", rate_bps=9_000_000, qlimit=2000)
    for name, flow, count in [("voice", 1, 100), ("bulk", 2, 1500)]:
        cls = cbq.get_class(name)
        cbq.default_class = cls
        for _ in range(count):
            cbq.process(_pkt(flow), PluginContext(now=0.0))
    now, cbq_voice_times = 0.0, []
    for _ in range(600):
        pkt = cbq.dequeue(now)
        if pkt is None:
            now += PKT * 8 / LINK_BPS
            continue
        if pkt.annotations["cbq_class"] == "voice":
            cbq_voice_times.append(now)
        now += pkt.length * 8 / LINK_BPS
    cbq_gaps = [b - a for a, b in zip(cbq_voice_times, cbq_voice_times[1:])]
    cbq_mean_gap = sum(cbq_gaps) / len(cbq_gaps)

    # --- H-FSC: same 1 Mbit/s long-run allocation, concave rsc -------
    hfsc = HfscPlugin().create_instance()
    hfsc.add_class("voice", rsc=ServiceCurve.two_piece(4e6, 0.002, 1e6),
                   fsc=ServiceCurve.linear(0.1e6), qlimit=500)
    hfsc.add_class("bulk", fsc=ServiceCurve.linear(9.9e6), qlimit=2000)
    _backlog(hfsc, "voice", 1, 100)
    _backlog(hfsc, "bulk", 2, 1500)
    _, trace = _drain(hfsc, 600)
    hfsc_voice_times = [t for t, p in trace
                        if p.annotations["hfsc_class"] == "voice"]
    hfsc_first = hfsc_voice_times[0]

    report(
        "H-FSC vs CBQ — delay/bandwidth decoupling (voice at 1 Mbit/s)",
        [
            f"CBQ   mean inter-service gap : {cbq_mean_gap * 1000:6.2f} ms "
            "(token refill at the allocated rate)",
            f"H-FSC first voice service    : {hfsc_first * 1000:6.2f} ms "
            "(concave rsc, same 1 Mbit/s long-run)",
            "CBQ can only match that delay by over-allocating bandwidth",
        ],
    )
    assert cbq_mean_gap >= 0.006              # ~8 ms token spacing
    assert hfsc_first <= 0.004                # served within the rsc deadline


def test_hsf_drr_leaf(benchmark):
    """§8 future work (HSF): DRR fair queuing inside an H-FSC leaf."""
    sched = HsfPlugin().create_instance()
    sched.add_class("shared", fsc=ServiceCurve.linear(10e6),
                    leaf_discipline="drr", default=True)
    ctx = PluginContext(now=0.0)
    for _ in range(300):
        sched.process(_pkt(1), ctx)
    for _ in range(300):
        sched.process(_pkt(2), ctx)
    served = Counter()
    for _ in range(300):
        packet = sched.dequeue(0.0)
        served[packet.src_port - 5000] += 1
    report(
        "HSF — DRR inside an H-FSC leaf (flow 1 floods first)",
        [f"flow1={served[1]} flow2={served[2]} of 300 slots "
         "(plain FIFO leaf would give flow1 all 300)"],
    )
    assert served[2] >= 120

    def cycle():
        sched.process(_pkt(3), ctx)
        sched.dequeue(0.0)

    benchmark(cycle)
