"""Experiment E7 — weighted-DRR fairness (§6.1).

"we have implemented a weighted form of DRR which assigns weights to
queues ... a queue per flow which guarantees perfectly fair queuing for
all flows."

Measured: Jain fairness across equal backlogged flows (→ 1.0), byte
shares proportional to weights, and byte-fairness under mixed packet
sizes — plus the ALTQ comparison (fixed queue array ⇒ hash collisions
merge flows; the per-flow plugin never collides).
"""

from collections import Counter

import pytest

from conftest import report
from repro.aiu.filters import Filter
from repro.aiu.records import FilterRecord, FlowRecord, GateSlot
from repro.core.plugin import PluginContext
from repro.net.packet import make_udp
from repro.sched.altq import AltqWfq
from repro.sched.drr import DrrPlugin
from repro.stats import jain_fairness, share_error


def _pkt(flow, size=1000):
    return make_udp(
        f"10.{flow >> 8 & 255}.0.{flow & 255}", "20.0.0.1", 5000 + flow, 53,
        payload_size=size - 28,
    )


def _flow_ctx(record=None):
    slot = GateSlot()
    slot.filter_record = record
    flow = FlowRecord(None, 0)
    flow.slots = [slot]
    return PluginContext(slot=slot, flow=flow)


def test_equal_flows_jain_index(benchmark):
    """16 backlogged flows, equal weights -> Jain index ~1.0."""
    drr = DrrPlugin().create_instance(quantum=1000, limit=200)
    n_flows, per_flow = 16, 100
    for flow in range(n_flows):
        for _ in range(per_flow):
            drr.process(_pkt(flow), PluginContext())
    served = Counter()
    for _ in range(n_flows * per_flow // 2):
        packet = drr.dequeue(0.0)
        served[packet.src_port] += packet.length
    fairness = jain_fairness(served.values())
    report(
        "DRR fairness — 16 equal flows",
        [f"Jain index over byte shares: {fairness:.4f} (1.0 = perfect)"],
    )
    assert fairness > 0.999

    def dequeue_enqueue():
        drr.process(_pkt(1), PluginContext())
        drr.dequeue(0.0)

    benchmark(dequeue_enqueue)
    benchmark.extra_info["jain_index"] = round(fairness, 5)


def test_weighted_shares_proportional(benchmark):
    """Weights 1:2:4:8 -> byte shares 1:2:4:8."""
    benchmark.pedantic(lambda: None, rounds=1)
    drr = DrrPlugin().create_instance(quantum=500, limit=2000)
    weights = {1: 1.0, 2: 2.0, 3: 4.0, 4: 8.0}
    contexts = {}
    for flow, weight in weights.items():
        record = FilterRecord(Filter.parse(f"10.0.0.{flow}, *, UDP"), gate="g")
        drr.set_weight(record, weight)
        contexts[flow] = _flow_ctx(record)
    for _ in range(1500):
        for flow in weights:
            drr.process(_pkt(flow), contexts[flow])
    served = Counter()
    for _ in range(3000):
        packet = drr.dequeue(0.0)
        served[packet.src_port - 5000] += packet.length
    error = share_error(served, weights)
    lines = [f"{'flow':>5} {'weight':>7} {'bytes served':>13} {'share':>7}"]
    total = sum(served.values())
    for flow, weight in weights.items():
        lines.append(
            f"{flow:>5} {weight:>7.1f} {served[flow]:>13} {served[flow] / total:>7.3f}"
        )
    lines.append(f"max relative share error: {error:.3f}")
    report("Weighted DRR — shares proportional to weights", lines)
    # Packet-granularity rounding (1000 B packets vs 500 B quanta) caps
    # precision around a few percent over this horizon.
    assert error < 0.10


def test_byte_fairness_mixed_sizes(benchmark):
    """1500 B vs 300 B packets: byte shares equal (DRR's deficit)."""
    benchmark.pedantic(lambda: None, rounds=1)
    drr = DrrPlugin().create_instance(quantum=1500, limit=2000)
    for _ in range(1000):
        drr.process(_pkt(1, size=1500), PluginContext())
        drr.process(_pkt(2, size=300), PluginContext())
    served = Counter()
    for _ in range(1200):
        packet = drr.dequeue(0.0)
        served[packet.src_port - 5000] += packet.length
    ratio = served[1] / served[2]
    report(
        "DRR byte fairness — 1500 B vs 300 B flows",
        [f"byte ratio big/small = {ratio:.3f} (1.0 = byte-fair)"],
    )
    assert 0.9 <= ratio <= 1.1


def test_scfq_plugin_comparison(benchmark):
    """Swappability: SCFQ drops into the same gate and matches DRR's
    fairness — the 'fluid implementations' the framework exists for."""
    from repro.sched.scfq import ScfqPlugin

    scfq = ScfqPlugin().create_instance(limit=200)
    n_flows, per_flow = 16, 100
    for flow in range(n_flows):
        for _ in range(per_flow):
            scfq.process(_pkt(flow), PluginContext())
    served = Counter()
    for _ in range(n_flows * per_flow // 2):
        packet = scfq.dequeue(0.0)
        served[packet.src_port] += packet.length
    fairness = jain_fairness(served.values())
    report(
        "SCFQ plugin — same gate, same fairness",
        [f"Jain index over byte shares: {fairness:.4f}"],
    )
    assert fairness > 0.99

    def cycle():
        scfq.process(_pkt(1), PluginContext())
        scfq.dequeue(0.0)

    benchmark(cycle)


def test_altq_collisions_vs_per_flow_plugin(benchmark):
    """The architectural point: ALTQ's fixed queues collide; the plugin
    DRR keyed by flow-table soft state never does."""
    benchmark.pedantic(lambda: None, rounds=1)
    flows = 128
    altq = AltqWfq(nqueues=64, quantum=1000)
    drr = DrrPlugin().create_instance(quantum=1000)
    for flow in range(flows):
        altq.enqueue(_pkt(flow))
        drr.process(_pkt(flow), PluginContext())
    report(
        "ALTQ fixed queues vs per-flow plugin DRR (128 flows)",
        [f"ALTQ (64 queues) collisions: {altq.collisions}",
         f"plugin DRR distinct queues : {drr.active_flows()} (no collisions)"],
    )
    assert altq.collisions > 0
    assert drr.active_flows() == flows
