"""Experiment E4 — flow-table performance (§5.2, §7).

Paper claims reproduced here:

* "in the best case, the IPv6 flow entry for a packet can be found in
  1.3 µs (when the flow is cached in the flow table)" — we report the
  modelled time of the cached path (hash 17 cycles + bucket + chain
  accesses) and the wall-clock time of the Python implementation;
* lookup cost stays flat as the table fills (hashing, 32768 buckets),
  with collision chains growing only as occupancy approaches the bucket
  count.
"""

import pytest

from conftest import report
from repro.aiu.flow_table import FlowTable
from repro.sim.cost import Costs, CycleMeter, MemoryMeter, cycles_to_us
from repro.workloads import synthetic_flows

OCCUPANCIES = (128, 1024, 8192, 65536)


def _filled_table(count, ipv6=False):
    table = FlowTable(gate_count=3, buckets=32768)
    flows = synthetic_flows(count, seed=count, ipv6=ipv6)
    packets = [flow.packet() for flow in flows]
    for packet in packets:
        table.install(packet)
    return table, packets


def test_cached_lookup_modelled_cost(benchmark):
    """The cached fast path, modelled on the paper's cost terms."""
    table, packets = _filled_table(1024, ipv6=True)
    meter = MemoryMeter()
    cycles = CycleMeter()
    for packet in packets[:256]:
        table.lookup(packet, meter, cycles)
    per_lookup_cycles = cycles.total / 256 + meter.accesses / 256 * Costs.MEMORY_ACCESS
    modelled_us = cycles_to_us(per_lookup_cycles)
    report(
        "Flow table — cached lookup cost (IPv6)",
        [
            f"hash: {Costs.FLOW_HASH} cycles; memory accesses/lookup: "
            f"{meter.accesses / 256:.2f}",
            f"modelled cached lookup: {modelled_us:.3f} us "
            f"(paper best case: 1.3 us)",
        ],
    )
    assert modelled_us <= 1.3  # at least as fast as the paper's best case

    index = {"i": 0}

    def lookup_one():
        packet = packets[index["i"] % 1024]
        index["i"] += 1
        table.lookup(packet)

    benchmark(lookup_one)
    benchmark.extra_info["modelled_us"] = round(modelled_us, 3)
    benchmark.extra_info["paper_best_case_us"] = 1.3


@pytest.mark.parametrize("occupancy", OCCUPANCIES)
def test_lookup_flat_across_occupancy(benchmark, occupancy):
    """Figure-style series: accesses per hit vs number of cached flows."""
    table, packets = _filled_table(occupancy)
    meter = MemoryMeter()
    for packet in packets[: min(512, occupancy)]:
        table.lookup(packet, meter)
    sampled = min(512, occupancy)
    accesses = meter.accesses / sampled
    benchmark.extra_info["occupancy"] = occupancy
    benchmark.extra_info["accesses_per_hit"] = round(accesses, 3)
    report(
        f"Flow table — occupancy {occupancy}",
        [f"avg accesses per hit: {accesses:.3f} "
         f"(bucket + chain; 32768 buckets)"],
    )
    # With 32768 buckets, chains stay short: even at 2x buckets the
    # expected chain is ~2, far from O(n) degradation.
    expected_chain = max(1.0, occupancy / 32768)
    assert accesses <= 1 + 2 * expected_chain + 0.5

    index = {"i": 0}

    def lookup_one():
        packet = packets[index["i"] % len(packets)]
        index["i"] += 1
        table.lookup(packet)

    benchmark(lookup_one)


def test_miss_cost_and_install(benchmark):
    """Uncached flows: the miss detection itself is cheap (the expense
    is the filter lookup, measured in E2/E5)."""
    table, _packets = _filled_table(1024)
    fresh = [flow.packet() for flow in synthetic_flows(512, seed=777)]
    meter = MemoryMeter()
    for packet in fresh:
        table.lookup(packet, meter)
    per_miss = meter.accesses / len(fresh)
    report(
        "Flow table — miss path",
        [f"avg accesses per miss: {per_miss:.3f} (bucket probe + chain scan)"],
    )
    assert per_miss <= 2.0

    def install_and_remove():
        packet = fresh[0]
        record = table.install(packet)
        table.invalidate(record)

    benchmark(install_and_remove)


def test_flow_label_hash_variant(benchmark):
    """§7.3's footnote ("IPv6 flow label NOT used") implies the cheaper
    (src, label) hash exists; measured: 9 vs 17 cycles per lookup."""
    labelled = FlowTable(gate_count=1, buckets=32768, use_flow_label=True)
    flows = synthetic_flows(256, seed=5, ipv6=True)
    packets = []
    for i, flow in enumerate(flows):
        packet = flow.packet(flow_label=i + 1)
        labelled.install(packet)
        packets.append(packet)
    cycles = CycleMeter()
    for packet in packets:
        assert labelled.lookup(packet, cycles=cycles) is not None
    per_lookup = cycles.breakdown()["flow_hash"] / len(packets)
    report(
        "Flow table — IPv6 flow-label hash variant",
        [f"hash cycles/lookup: {per_lookup:.0f} "
         f"(five-tuple fold: {Costs.FLOW_HASH})"],
    )
    assert per_lookup == Costs.FLOW_LABEL_HASH

    index = {"i": 0}

    def lookup_one():
        labelled.lookup(packets[index["i"] % len(packets)])
        index["i"] += 1

    benchmark(lookup_one)


def test_lru_recycling_under_cap(benchmark):
    """§5.2: with the pool capped, the oldest records recycle; hit rate
    degrades gracefully rather than failing."""
    table = FlowTable(gate_count=1, buckets=1024, initial_records=64, max_records=256)
    flows = synthetic_flows(512, seed=42)
    packets = [flow.packet() for flow in flows]

    def churn():
        for packet in packets:
            if table.lookup(packet) is None:
                table.install(packet)

    benchmark.pedantic(churn, rounds=3)
    stats = table.stats()
    report(
        "Flow table — LRU recycling at cap",
        [f"allocated: {stats['allocated']} (cap 256), active: {stats['active']}, "
         f"recycled: {stats['recycled']}"],
    )
    assert stats["allocated"] <= 256
    assert stats["recycled"] > 0
    assert len(table) <= 256
