"""Ablations A2 and A3 — BMP engine choice and gate-count scaling.

A2 (§5.1.1): "For IP address matching, we implemented two such plugins:
one is based on the slower but freely available PATRICIA algorithm, and
the second is based on the patented binary search on prefix length".
We compare the DAG's memory accesses with PATRICIA, BSPL, and the CPE
multibit trie as the address-level match function.

A3 (§3.2): "Our architecture is scalable to a very large number of gates
since the number of gates matters only for the first packet arriving on
a (uncached) flow."  We sweep 1→8 gates and show the *cached* per-packet
cost grows only by the per-gate FIX indirection while the *uncached*
cost grows by a full filter lookup per gate.
"""

import random

import pytest

from conftest import report
from repro.aiu.dag import DagFilterTable
from repro.aiu.records import FilterRecord
from repro.core import Router
from repro.core.plugin import Plugin, PluginInstance, TYPE_IP_SECURITY
from repro.net.addresses import IPAddress, IPV4_WIDTH
from repro.net.packet import Packet
from repro.sim.cost import CycleMeter, MemoryMeter
from repro.workloads import matching_probe, random_filters, table3_flows

ENGINES = ("patricia", "bspl", "cpe")


def _packet_for(probe):
    src, dst, proto, sport, dport = probe
    return Packet(src=IPAddress(src, IPV4_WIDTH), dst=IPAddress(dst, IPV4_WIDTH),
                  protocol=proto, src_port=sport, dst_port=dport)


@pytest.mark.parametrize("engine", ENGINES)
def test_bmp_engine_choice(benchmark, engine):
    """A2: accesses per DAG lookup by address match-function plugin."""
    filters = random_filters(4096, seed=11, host_fraction=0.8)
    table = DagFilterTable(width=IPV4_WIDTH, bmp_engine=engine,
                           check_ambiguity=False)
    for flt in filters:
        table.install(FilterRecord(flt, gate="bench"))
    rng = random.Random(2)
    total, worst = 0, 0
    probes = []
    for flt in rng.sample(filters, 200):
        packet = _packet_for(matching_probe(flt, rng))
        probes.append(packet)
        meter = MemoryMeter()
        assert table.lookup(packet, meter) is not None
        total += meter.accesses
        worst = max(worst, meter.accesses)
    mean = total / 200
    report(
        f"Ablation — BMP engine {engine!r} at the DAG address levels",
        [f"mean accesses/lookup: {mean:.2f}; worst: {worst}"],
    )
    benchmark.extra_info.update(engine=engine, mean_accesses=round(mean, 2), worst=worst)
    if engine == "bspl":
        assert worst <= 20       # the Table 2 bound
    if engine == "cpe":
        assert worst <= 22       # 4 accesses/address x2 + fixed overhead

    index = {"i": 0}

    def lookup_one():
        table.lookup(probes[index["i"] % len(probes)])
        index["i"] += 1

    benchmark(lookup_one)


class _Empty(PluginInstance):
    pass


class _EmptyPlugin(Plugin):
    plugin_type = TYPE_IP_SECURITY
    name = "empty-gates"
    instance_class = _Empty


GATE_COUNTS = (1, 2, 4, 8)


def _router_with_gates(count: int) -> Router:
    gates = tuple(f"gate{i}" for i in range(count))
    router = Router(gates=gates, flow_buckets=4096)
    router.add_interface("atm0", prefix="10.0.0.0/8")
    router.add_interface("atm1", prefix="20.0.0.0/8")
    plugin = _EmptyPlugin()
    router.pcu.load(plugin)
    instance = plugin.create_instance()
    for gate in gates:
        plugin.register_instance(instance, "*, *, UDP", gate=gate)
    return router


@pytest.fixture(scope="module")
def gate_sweep():
    results = {}
    for count in GATE_COUNTS:
        router = _router_with_gates(count)
        flow = table3_flows()[0]
        first = CycleMeter()
        router.receive(flow.packet(), cycles=first)
        cached_total = 0
        for _ in range(50):
            meter = CycleMeter()
            router.receive(flow.packet(), cycles=meter)
            cached_total += meter.total
        results[count] = (first.total, cached_total / 50)
    return results


def test_gate_scaling(benchmark, gate_sweep):
    """A3: cached cost ~flat in gates; uncached cost pays per gate."""
    benchmark.pedantic(lambda: None, rounds=1)
    lines = [f"{'gates':>6} {'first pkt cycles':>17} {'cached cycles':>14}"]
    for count, (first, cached) in gate_sweep.items():
        lines.append(f"{count:>6} {first:>17.0f} {cached:>14.0f}")
    report("Ablation — cost vs number of gates", lines)
    first_1, cached_1 = gate_sweep[1]
    first_8, cached_8 = gate_sweep[8]
    per_gate_first = (first_8 - first_1) / 7
    per_gate_cached = (cached_8 - cached_1) / 7
    # Cached packets pay only the unavoidable per-gate work (gate check,
    # FIX fetch, the indirect call into the bound plugin) — ~124 cycles.
    assert per_gate_cached < 300
    # The first packet additionally pays a filter-table lookup per gate
    # ("n filter table lookups to create a single entry", §3.2).
    assert per_gate_first > per_gate_cached * 2
    # And classification is the dominant share of the first-packet
    # per-gate increment.
    assert per_gate_first - per_gate_cached > 100


@pytest.mark.parametrize("count", GATE_COUNTS)
def test_gate_count_wall_time(benchmark, count):
    router = _router_with_gates(count)
    flow = table3_flows()[0]
    router.receive(flow.packet())

    def one():
        router.receive(flow.packet())

    benchmark(one)
    benchmark.extra_info["gates"] = count
