"""Shared benchmark plumbing.

Every benchmark prints the paper-style table it reproduces (visible with
``pytest benchmarks/ --benchmark-only -s`` and summarized in
EXPERIMENTS.md) and stores the key numbers in ``benchmark.extra_info``.
"""

import pytest


def report(title: str, lines) -> str:
    """Format and emit one experiment's output block."""
    body = "\n".join(lines if isinstance(lines, (list, tuple)) else [lines])
    block = f"\n=== {title} ===\n{body}\n"
    print(block)
    return block
