"""Shim so `python setup.py develop` works on offline boxes without the
`wheel` package (pip's PEP 660 editable path needs bdist_wheel)."""
from setuptools import setup

setup()
