"""Multiprocessing backend: one forked worker Router per shard.

Topology is shared-nothing by construction: each worker process calls
the user's ``factory(shard_index)`` *after* the fork, so every shard
owns a private Router — its own :class:`~repro.core.shard_state.
ShardLocalState` (AIU, flow table, fault domains, governor) with no
shared mutable memory.  The parent talks to each worker over a pair of
simplex pipes (SPSC: the parent is the only writer of the work pipe,
the worker the only writer of the result pipe).

Batch handoff is credit-windowed: at most ``window`` batches are in
flight per worker, and the parent drains results opportunistically
while it feeds, so neither side can fill an OS pipe buffer while the
other blocks (the classic send/send deadlock).  Batches are descriptor
lists (see :mod:`repro.shard.dispatch`) sized to the compiled batch
loops — the worker decodes and calls ``Router.receive_batch``, so the
per-shard data path is exactly the single-process one.

The control plane rides the same work pipe between batches: ``script``
messages run a pmgr configuration script on the worker's own
PluginManager (the fanout used by :class:`~repro.shard.control.
ShardedPluginLibrary`), and ``query`` messages return the worker
library's structured ``query()`` dict for cross-shard aggregation.

Requires the ``fork`` start method (factory closures never cross a
pickle boundary); callers should check :func:`mp_available` first.
"""

from __future__ import annotations

import multiprocessing
import os
from collections import deque
from multiprocessing.connection import wait as _conn_wait
from typing import Callable, List, Optional, Sequence

from .dispatch import decode_packet, dispatch_wire


def mp_available() -> bool:
    """True when the fork-based backend can run here."""
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:
        return False


def usable_cpus() -> int:
    """CPUs this process may schedule on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _worker_main(index: int, factory: Callable, work_r, result_w, null_path: bool):
    """Worker loop: decode -> receive_batch -> send dispositions.

    ``null_path`` short-circuits the router entirely (echo back a
    constant disposition per packet): the bench uses it to measure the
    parent-side dispatch pipeline capacity on machines without enough
    cores to demonstrate real parallel speedup.
    """
    router = factory(index)
    from ..mgr.pmgr import PluginManager

    manager = PluginManager(router)
    receive_batch = router.receive_batch
    decode = decode_packet
    while True:
        msg = work_r.recv()
        tag = msg[0]
        if tag == "batch":
            now, descs = msg[1], msg[2]
            if null_path:
                result_w.send(["forwarded"] * len(descs))
            else:
                packets = [decode(d) for d in descs]
                result_w.send(receive_batch(packets, now=now))
        elif tag == "script":
            try:
                manager.run_script(msg[1])
                result_w.send(("ok", None))
            except Exception as exc:  # noqa: BLE001  # rp: ignore[RP206]
                result_w.send(("err", f"{type(exc).__name__}: {exc}"))
        elif tag == "query":
            try:
                result_w.send(("ok", manager.library.query(msg[1], **msg[2])))
            except Exception as exc:  # noqa: BLE001  # rp: ignore[RP206]
                result_w.send(("err", f"{type(exc).__name__}: {exc}"))
        elif tag == "health":
            result_w.send(("ok", router.health()))
        elif tag == "stop":
            break


class ShardWorkerPool:
    """N forked shard workers plus the parent-side dispatch pipeline."""

    def __init__(
        self,
        nshards: int,
        factory: Callable,
        batch_size: int = 256,
        window: int = 8,
        null_path: bool = False,
    ):
        if not mp_available():
            raise RuntimeError(
                "multiprocessing backend needs the 'fork' start method; "
                "use the inline backend here"
            )
        ctx = multiprocessing.get_context("fork")
        self.nshards = nshards
        self.batch_size = batch_size
        self.window = window
        self._work_w = []
        self._result_r = []
        self._procs = []
        self._closed = False
        for i in range(nshards):
            work_r, work_w = ctx.Pipe(duplex=False)
            result_r, result_w = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_worker_main,
                args=(i, factory, work_r, result_w, null_path),
                daemon=True,
            )
            proc.start()
            # Parent-side ends only; the worker holds the other two.
            work_r.close()
            result_w.close()
            self._work_w.append(work_w)
            self._result_r.append(result_r)
            self._procs.append(proc)

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def process_wire(self, descs: Sequence, now: float = 0.0) -> List[str]:
        """Dispatch descriptors to the shards; dispositions in input order.

        The hot loop: RSS bucket (fold % n), then per shard a credit
        window of ``batch_size`` descriptor chunks with results drained
        as they complete.
        """
        n = self.nshards
        buckets, indices = dispatch_wire(descs, n)
        out: List[Optional[str]] = [None] * len(descs)
        size = self.batch_size
        window = self.window
        pos = [0] * n
        inflight = [deque() for _ in range(n)]
        pending_shards = set(range(n))
        while pending_shards:
            blocked = True
            for s in list(pending_shards):
                result_r = self._result_r[s]
                flight = inflight[s]
                while flight and result_r.poll():
                    idxs = flight.popleft()
                    for i, d in zip(idxs, result_r.recv()):
                        out[i] = d
                    blocked = False
                bucket = buckets[s]
                send = self._work_w[s].send
                while len(flight) < window and pos[s] < len(bucket):
                    p = pos[s]
                    send(("batch", now, bucket[p:p + size]))
                    flight.append(indices[s][p:p + size])
                    pos[s] += size
                    blocked = False
                if not flight and pos[s] >= len(bucket):
                    pending_shards.discard(s)
            if blocked and pending_shards:
                # Every shard is window-full: sleep until some result
                # lands instead of spinning.
                _conn_wait(
                    [self._result_r[s] for s in pending_shards if inflight[s]]
                )
        return out  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def _roundtrip(self, message: tuple) -> list:
        """Broadcast one control message; collect one reply per shard.

        Control messages ride the work pipes, so they are naturally
        ordered after any batches already submitted.
        """
        for w in self._work_w:
            w.send(message)
        # Drain every reply before raising: a partial read would leave
        # stale replies queued and desynchronize the next roundtrip.
        replies = [r.recv() for r in self._result_r]
        errors = [value for status, value in replies if status == "err"]
        if errors:
            raise RuntimeError(f"shard worker error: {errors[0]}")
        return [value for _, value in replies]

    def run_script(self, text: str) -> None:
        """Run a pmgr configuration script on every shard."""
        self._roundtrip(("script", text))

    def query(self, topic: str, **filters) -> list:
        """Per-shard ``RouterPluginLibrary.query`` dicts."""
        return self._roundtrip(("query", topic, filters))

    def health(self) -> list:
        return self._roundtrip(("health",))

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for w in self._work_w:
            try:
                w.send(("stop",))
                w.close()
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
        for r in self._result_r:
            try:
                r.close()
            except OSError:
                pass

    def __del__(self):  # pragma: no cover — belt and braces
        try:
            self.close()
        except Exception:
            pass
