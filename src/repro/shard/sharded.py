"""``ShardedRouter`` — an RSS front end over N shared-nothing Routers.

Two execution backends share one dispatch rule (deterministic five-tuple
fold, :mod:`repro.shard.dispatch`):

* ``inline`` — the worker Routers live in this process and batches run
  shard-by-shard on the caller's thread.  Deterministic and fully
  introspectable, this is the differential-testing backend: per-flow
  dispositions, ordering, flow stats, and telemetry are provably equal
  to a single router (tests/shard/).
* ``mp`` — each shard is a forked worker process
  (:class:`~repro.shard.mp.ShardWorkerPool`) fed batched descriptors
  over SPSC pipes.  This is the throughput backend: the per-shard data
  path is byte-for-byte the single-process one, so wall-clock scaling
  is bounded only by the parent's dispatch pipeline and the machine's
  cores (benchmarks/bench_throughput.py ``shard_*`` workloads).

The front end also exposes the aggregate views the existing tooling
expects of a router — ``counters``, ``aiu.flow_table``, ``_overload``,
``health()`` — so harnesses like
:func:`repro.workloads.adversarial.run_scenario` drive a sharded router
unmodified (inline backend).
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, List, Optional, Sequence

from ..core.overload import TIERS
from ..core.router import Router
from .dispatch import dispatch_packets, dispatch_wire, decode_packet, encode_packet
from .mp import ShardWorkerPool


class _AggregateFlowTable:
    """Read-only cross-shard sum of the per-shard flow tables."""

    def __init__(self, sharded: "ShardedRouter"):
        self._sharded = sharded

    def _sum(self, attr: str) -> int:
        return sum(
            getattr(r.aiu.flow_table, attr) for r in self._sharded.shards
        )

    @property
    def active(self) -> int:
        return self._sum("active")

    @property
    def hits(self) -> int:
        return self._sum("hits")

    @property
    def misses(self) -> int:
        return self._sum("misses")

    @property
    def births(self) -> int:
        return self._sum("births")

    @property
    def evictions(self) -> int:
        return self._sum("evictions")

    @property
    def max_records(self) -> Optional[int]:
        caps = [r.aiu.flow_table.max_records for r in self._sharded.shards]
        if any(c is None for c in caps):
            return None
        return sum(caps)


class _AggregateAIU:
    """The slice of the AIU surface cross-shard harnesses touch.

    Reads aggregate; writes fan out, because a filter installed on one
    shard only would break the configured-identically invariant the
    dispatch equivalence rests on.  ``create_filter`` returns the tuple
    of per-shard records; passing that tuple back to ``remove_filter``
    removes the filter everywhere.
    """

    def __init__(self, sharded: "ShardedRouter"):
        self._sharded = sharded
        self.flow_table = _AggregateFlowTable(sharded)

    def create_filter(self, gate: str, flt, **kwargs) -> tuple:
        return tuple(
            r.aiu.create_filter(gate, flt, **kwargs)
            for r in self._sharded.shards
        )

    def remove_filter(self, records) -> None:
        for shard, record in zip(self._sharded.shards, records):
            shard.aiu.remove_filter(record)

    def filter_count(self) -> int:
        shards = self._sharded.shards
        return shards[0].aiu.filter_count() if shards else 0


class _FanoutRoutingTable:
    """Route changes broadcast to every shard (reads go to shard 0 —
    the fanout keeps all shard tables identical)."""

    def __init__(self, sharded: "ShardedRouter"):
        self._sharded = sharded

    def add(self, prefix, interface, **kwargs):
        results = [
            r.routing_table.add(prefix, interface, **kwargs)
            for r in self._sharded.shards
        ]
        return results[0] if results else None

    def remove(self, prefix) -> bool:
        removed = [r.routing_table.remove(prefix) for r in self._sharded.shards]
        return any(removed)

    def lookup(self, dst):
        return self._sharded.shards[0].routing_table.lookup(dst)


class _AggregateGovernor:
    """Worst-tier / summed-capacity view over per-shard governors."""

    def __init__(self, sharded: "ShardedRouter"):
        self._sharded = sharded

    def _governors(self):
        return [
            r._overload for r in self._sharded.shards
            if r._overload is not None
        ]

    @property
    def tier(self) -> str:
        tiers = [g.tier for g in self._governors()]
        if not tiers:
            return TIERS[0]
        return max(tiers, key=TIERS.index)

    def capacity(self) -> Optional[int]:
        caps = [g.capacity() for g in self._governors()]
        if not caps or any(c is None for c in caps):
            return None
        return sum(caps)


class ShardedRouter:
    """Flow-hash sharding front end over N worker Routers.

    ``factory(shard_index) -> Router`` builds each shard; every shard
    must be configured identically (the control fanout,
    :class:`~repro.shard.control.ShardedPluginLibrary`, keeps it that
    way for live changes).  With no factory, each shard is a bare
    ``Router(**router_kwargs)`` named ``{name}/{i}``.

    For the ``mp`` backend the factory runs *inside* each forked worker,
    so shard state never crosses a process boundary.
    """

    def __init__(
        self,
        nshards: int = 4,
        factory: Optional[Callable[[int], Router]] = None,
        backend: str = "inline",
        name: str = "sharded",
        batch_size: int = 256,
        window: int = 8,
        _null_path: bool = False,
        **router_kwargs,
    ):
        if nshards < 1:
            raise ValueError("nshards must be >= 1")
        if backend not in ("inline", "mp"):
            raise ValueError(f"unknown shard backend {backend!r}")
        if factory is None:
            def factory(index: int, _kw=router_kwargs, _name=name) -> Router:
                return Router(name=f"{_name}/{index}", **_kw)
        self.name = name
        self.nshards = nshards
        self.backend = backend
        self._factory = factory
        self.shards: List[Router] = []
        self._pool: Optional[ShardWorkerPool] = None
        if backend == "inline":
            self.shards = [factory(i) for i in range(nshards)]
        else:
            self._pool = ShardWorkerPool(
                nshards,
                factory,
                batch_size=batch_size,
                window=window,
                null_path=_null_path,
            )
        self.aiu = _AggregateAIU(self)
        self.routing_table = _FanoutRoutingTable(self)
        self._overload = _AggregateGovernor(self)

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def receive(self, packet, now: float = 0.0) -> str:
        """Scalar entry: route one packet to its shard."""
        if self._pool is not None:
            return self._pool.process_wire([encode_packet(packet)], now=now)[0]
        shard = self.shards[packet.flow_fold32() % self.nshards]
        return shard.receive(packet, now=now)

    def receive_batch(self, packets: Sequence, now: float = 0.0) -> List[str]:
        """Batch entry: dispositions in input order."""
        if self._pool is not None:
            return self._pool.process_wire(
                [encode_packet(p) for p in packets], now=now
            )
        buckets, indices = dispatch_packets(packets, self.nshards)
        out: List[Optional[str]] = [None] * len(packets)
        for s, shard in enumerate(self.shards):
            bucket = buckets[s]
            if bucket:
                for i, d in zip(indices[s], shard.receive_batch(bucket, now=now)):
                    out[i] = d
        return out  # type: ignore[return-value]

    def receive_wire(self, descs: Sequence, now: float = 0.0) -> List[str]:
        """Descriptor entry (the RX-ring view, fold precomputed).

        The mp backend forwards descriptors untouched; inline decodes
        per shard — so both backends charge the decode cost to the shard
        side, mirroring where it runs on real parallel hardware.
        """
        if self._pool is not None:
            return self._pool.process_wire(descs, now=now)
        buckets, indices = dispatch_wire(descs, self.nshards)
        out: List[Optional[str]] = [None] * len(descs)
        for s, shard in enumerate(self.shards):
            bucket = buckets[s]
            if bucket:
                packets = [decode_packet(d) for d in bucket]
                for i, d in zip(indices[s], shard.receive_batch(packets, now=now)):
                    out[i] = d
        return out  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Aggregate introspection
    # ------------------------------------------------------------------
    @property
    def counters(self) -> Counter:
        """Summed disposition counters across shards (inline backend)."""
        total: Counter = Counter()
        for r in self.shards:
            total.update(r.counters)
        return total

    @property
    def telemetry(self):
        """Shard 0's registry handle (fanout attaches one per shard)."""
        return self.shards[0].telemetry if self.shards else None

    def health(self) -> dict:
        """Aggregated health: summed counters/flow-table, per-shard rows."""
        if self._pool is not None:
            per_shard = self._pool.health()
        else:
            per_shard = [r.health() for r in self.shards]
        counters: Counter = Counter()
        quarantined: set = set()
        flow_table = Counter()
        caps: List[Optional[int]] = []
        for h in per_shard:
            counters.update(h["counters"])
            quarantined.update(h["quarantined"])
            for key in ("active", "allocated", "births", "evictions",
                        "recycled", "hits", "misses"):
                flow_table[key] += h["flow_table"][key]
            caps.append(h["flow_table"]["max_records"])
        max_records = None if any(c is None for c in caps) else sum(caps)
        tiers = [h["overload"].get("tier", "normal") for h in per_shard]
        return {
            "router": self.name,
            "nshards": self.nshards,
            "backend": self.backend,
            "counters": dict(counters),
            "quarantined": sorted(quarantined),
            "flow_table": {
                **dict(flow_table),
                "max_records": max_records,
                "occupancy": (
                    flow_table["active"] / max_records if max_records else None
                ),
            },
            "overload": {
                "enabled": any(h["overload"].get("enabled", True) is not False
                               for h in per_shard),
                "tier": max(tiers, key=TIERS.index) if tiers else "normal",
            },
            "shards": per_shard,
        }

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down mp workers (no-op for the inline backend)."""
        if self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "ShardedRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ShardedRouter({self.name!r}, nshards={self.nshards}, "
            f"backend={self.backend!r})"
        )
