"""RSS-style deterministic flow-hash dispatch and the shard handoff codec.

Shard selection reuses the data path's deterministic five-tuple fold
(:func:`repro.net.packet.fold_five_tuple`, cached per packet lifetime as
``Packet.flow_fold32``) — **never** builtin ``hash()``, which is
process-seeded (``PYTHONHASHSEED``) and would send the same flow to
different shards in different processes.  Because the fold is a pure
function of the five-tuple, every packet of a flow lands on the same
shard in arrival order, which is what gives the sharded router per-flow
disposition and ordering equivalence with a single router (RP209 lints
this module against ``hash()`` regressions).

The handoff codec is pickle-light by construction: a packet encodes to a
flat tuple of ints / interned strings / ``bytes`` (no ``IPAddress`` or
``memoryview`` objects, both of which are either slow or impossible to
pickle), so a batch of descriptors crosses a ``multiprocessing`` pipe as
one cheap C-pickle.  The fold is computed on the encode side and carried
in the descriptor — exactly like a NIC writing the RSS hash into the RX
descriptor — so the dispatcher's per-packet work is one modulo and one
list append, and the decode side never re-derives the tuple
(``PARSE_STATS.tuple_derivations`` stays one-per-lifetime).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..net.addresses import IPAddress
from ..net.packet import Packet

#: Descriptor layout (all picklable primitives):
#: (src_value, dst_value, width, protocol, src_port, dst_port, iif,
#:  payload_bytes, ttl, tos, flow_label, fold, packet_id, arrival_time)
WireDescriptor = Tuple

_P_NEW = Packet.__new__
_A_NEW = IPAddress.__new__


def shard_of(fold: int, nshards: int) -> int:
    """Shard index for a 32-bit five-tuple fold."""
    return fold % nshards


def encode_packet(packet: Packet) -> WireDescriptor:
    """Packet -> primitive descriptor tuple (the RX-ring view).

    Computes the five-tuple fold if the packet has not folded yet (one
    derivation per lifetime, same contract as the data path) and carries
    it in the descriptor so dispatchers and decoders never re-derive.
    """
    payload = packet.payload
    return (
        packet.src.value,
        packet.dst.value,
        packet.src.width,
        packet.protocol,
        packet.src_port,
        packet.dst_port,
        packet.iif,
        payload if type(payload) is bytes else bytes(payload),
        packet.ttl,
        packet.tos,
        packet.flow_label,
        packet.flow_fold32(),
        packet.packet_id,
        packet.arrival_time,
    )


def decode_packet(desc: WireDescriptor) -> Packet:
    """Descriptor tuple -> Packet, bypassing the dataclass constructor.

    ``Packet`` is a slots dataclass; building it through ``__init__``
    costs default-factory calls and ``__post_init__`` validation the
    descriptor already guarantees.  Direct slot stores decode in ~0.6us
    — small enough that per-shard decode parallelizes away.  The carried
    fold is installed into the packet's hash cache, mirroring a NIC-
    computed RSS hash: the five-tuple is never folded twice.
    """
    (
        sv, dv, width, proto, sport, dport, iif,
        payload, ttl, tos, label, fold, pid, at,
    ) = desc
    src = _A_NEW(IPAddress)
    src.value = sv
    src.width = width
    dst = _A_NEW(IPAddress)
    dst.value = dv
    dst.width = width
    pkt = _P_NEW(Packet)
    pkt.src = src
    pkt.dst = dst
    pkt.protocol = proto
    pkt.src_port = sport
    pkt.dst_port = dport
    pkt.iif = iif
    pkt.payload = payload
    pkt.ttl = ttl
    pkt.tos = tos
    pkt.flow_label = label
    pkt.hop_options = []
    pkt.arrival_time = at
    pkt.departure_time = None
    pkt.packet_id = pid
    pkt.annotations = {}
    pkt._fix = None
    pkt._flow_key = None
    pkt._flow_fold = fold
    pkt._label_fold = None
    pkt._length = -1
    pkt._length_payload = -1
    return pkt


def dispatch_wire(
    descs: Sequence[WireDescriptor], nshards: int
) -> Tuple[List[list], List[List[int]]]:
    """Bucket descriptors per shard, preserving arrival order.

    Returns ``(buckets, indices)`` where ``indices[s][k]`` is the
    position of ``buckets[s][k]`` in the input, so dispositions scatter
    back to input order.  The fold rides at descriptor slot 11; the
    per-packet cost is one modulo and two appends.
    """
    buckets: List[list] = [[] for _ in range(nshards)]
    indices: List[List[int]] = [[] for _ in range(nshards)]
    appends = [b.append for b in buckets]
    iappends = [ix.append for ix in indices]
    for i, desc in enumerate(descs):
        s = desc[11] % nshards
        appends[s](desc)
        iappends[s](i)
    return buckets, indices


def dispatch_packets(
    packets: Sequence[Packet], nshards: int
) -> Tuple[List[list], List[List[int]]]:
    """In-process twin of :func:`dispatch_wire` over live Packet objects."""
    buckets: List[list] = [[] for _ in range(nshards)]
    indices: List[List[int]] = [[] for _ in range(nshards)]
    appends = [b.append for b in buckets]
    iappends = [ix.append for ix in indices]
    for i, packet in enumerate(packets):
        s = packet.flow_fold32() % nshards
        appends[s](packet)
        iappends[s](i)
    return buckets, indices
