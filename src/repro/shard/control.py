"""Control-plane fanout: one management surface over N shards.

:class:`ShardedPluginLibrary` mirrors the
:class:`~repro.mgr.library.RouterPluginLibrary` call surface.  Every
configuration call — modload, create/bind, quarantine, fault policy,
telemetry, overload, routes — broadcasts to all shards, which is what
keeps the shards identically configured (the invariant the dispatch
layer's equivalence guarantee rests on).  Every ``query()`` aggregates:
counters are summed, histograms merged bucket-wise, worst-tier wins,
and the ``shards`` topic exposes the per-shard breakdown
(``pmgr show shards --json``).

Backends:

* inline — one :class:`~repro.mgr.pmgr.PluginManager` per shard router;
  typed calls go straight to each shard's library.
* mp — typed calls are rendered to their pmgr script line and broadcast
  to the workers (each runs it on its own in-worker manager); queries
  round-trip structured dicts.

``PluginManager(ShardedRouter(...))`` selects this library
automatically, so ``pmgr`` scripts and ``show X [--json]`` drive a
sharded router exactly like a single one.
"""

from __future__ import annotations

import shlex
from typing import Callable, List, Optional

from ..core.errors import ConfigurationError
from ..mgr.format import attach_schema, get_topic, merge_topic, topic_names
from ..mgr.library import RouterPluginLibrary


class ShardedPluginLibrary:
    """Fanout twin of RouterPluginLibrary over a ShardedRouter."""

    def __init__(self, sharded):
        from .sharded import ShardedRouter  # local: avoid import cycle

        if not isinstance(sharded, ShardedRouter):
            raise ConfigurationError(
                "ShardedPluginLibrary wraps a ShardedRouter"
            )
        self.sharded = sharded
        self.router = sharded  # pmgr reads .router for status commands
        self.libraries: List[RouterPluginLibrary] = [
            RouterPluginLibrary(r) for r in sharded.shards
        ]

    # ------------------------------------------------------------------
    # Fanout plumbing
    # ------------------------------------------------------------------
    def _fanout(self, call: Callable, script_line: str):
        """Apply a typed call per shard (inline) or its script rendering
        (mp).  Returns the per-shard results (inline) or None (mp)."""
        pool = self.sharded._pool
        if pool is not None:
            pool.run_script(script_line)
            return None
        results = [call(lib) for lib in self.libraries]
        return results

    @staticmethod
    def _q(token) -> str:
        return shlex.quote(str(token))

    # ------------------------------------------------------------------
    # Configuration calls (broadcast)
    # ------------------------------------------------------------------
    def modload(self, name: str):
        results = self._fanout(
            lambda lib: lib.modload(name), f"modload {self._q(name)}"
        )
        return results[0] if results else None

    def modunload(self, name: str) -> None:
        self._fanout(
            lambda lib: lib.modunload(name), f"modunload {self._q(name)}"
        )

    def create_instance(self, plugin_name: str, instance_name: str, **config):
        keyvals = " ".join(
            f"{key}={self._q(value)}" for key, value in config.items()
        )
        results = self._fanout(
            lambda lib: lib.create_instance(plugin_name, instance_name, **config),
            f"create {self._q(plugin_name)} {self._q(instance_name)} {keyvals}".strip(),
        )
        return results[0] if results else None

    def free_instance(self, instance_name: str) -> None:
        self._fanout(
            lambda lib: lib.free_instance(instance_name),
            f"free {self._q(instance_name)}",
        )

    def instance(self, name: str):
        """Shard 0's instance handle (for message plumbing)."""
        if not self.libraries:
            raise ConfigurationError(
                "instance handles are not available on the mp backend"
            )
        return self.libraries[0].instance(name)

    def instances(self) -> List[str]:
        return self.libraries[0].instances() if self.libraries else []

    def bind(self, instance_name: str, filter_spec: str,
             gate: Optional[str] = None, priority: int = 0):
        gate_token = "-" if gate is None else self._q(gate)
        results = self._fanout(
            lambda lib: lib.bind(
                instance_name, filter_spec, gate=gate, priority=priority
            ),
            f"bind {self._q(instance_name)} {gate_token} {filter_spec}",
        )
        return results[0] if results else None

    def unbind(self, instance_name: str):
        results = self._fanout(
            lambda lib: lib.unbind(instance_name),
            f"unbind {self._q(instance_name)}",
        )
        return results[0] if results else None

    def set_scheduler(self, interface: str, instance_name: str) -> None:
        self._fanout(
            lambda lib: lib.set_scheduler(interface, instance_name),
            f"scheduler {self._q(interface)} {self._q(instance_name)}",
        )

    def add_route(self, prefix: str, interface: str,
                  next_hop: Optional[str] = None) -> None:
        tail = f" {self._q(next_hop)}" if next_hop is not None else ""
        self._fanout(
            lambda lib: lib.add_route(prefix, interface, next_hop=next_hop),
            f"route {self._q(prefix)} {self._q(interface)}{tail}",
        )

    def quarantine(self, plugin_name: str, action: Optional[str] = None):
        tail = f" {self._q(action)}" if action is not None else ""
        results = self._fanout(
            lambda lib: lib.quarantine(plugin_name, action=action),
            f"quarantine {self._q(plugin_name)}{tail}",
        )
        return results[0] if results else None

    def reinstate(self, plugin_name: str):
        results = self._fanout(
            lambda lib: lib.reinstate(plugin_name),
            f"reinstate {self._q(plugin_name)}",
        )
        return results[0] if results else None

    def set_fault_policy(self, plugin_name: str, **kwargs):
        keyvals = " ".join(
            f"{key}={self._q(value)}" for key, value in kwargs.items()
        )
        results = self._fanout(
            lambda lib: lib.set_fault_policy(plugin_name, **kwargs),
            f"faultpolicy {self._q(plugin_name)} {keyvals}".strip(),
        )
        return results[0] if results else None

    def enable_telemetry(self, registry=None):
        if registry is not None:
            raise ConfigurationError(
                "sharded telemetry attaches one registry per shard; "
                "pass none and read the aggregated query('telemetry')"
            )
        results = self._fanout(
            lambda lib: lib.enable_telemetry(), "telemetry on"
        )
        return results[0] if results else None

    def disable_telemetry(self) -> None:
        self._fanout(lambda lib: lib.disable_telemetry(), "telemetry off")

    def enable_overload(self, **config):
        keyvals = " ".join(
            f"{key}={self._q(value)}" for key, value in config.items()
        )
        results = self._fanout(
            lambda lib: lib.enable_overload(**config),
            f"overload on {keyvals}".strip(),
        )
        return results[0] if results else None

    def disable_overload(self) -> None:
        self._fanout(lambda lib: lib.disable_overload(), "overload off")

    def start_trace(self, sample: int = 1, capacity: int = 256):
        results = self._fanout(
            lambda lib: lib.start_trace(sample=sample, capacity=capacity),
            f"trace on sample={sample} capacity={capacity}",
        )
        return results[0] if results else None

    def stop_trace(self) -> None:
        self._fanout(lambda lib: lib.stop_trace(), "trace off")

    def run_script(self, text: str) -> None:
        """Broadcast a whole pmgr configuration script to every shard."""
        pool = self.sharded._pool
        if pool is not None:
            pool.run_script(text)
            return
        from ..mgr.pmgr import PluginManager

        for shard_library in self.libraries:
            manager = PluginManager(shard_library.router)
            # Reuse the shard's library so instance maps stay coherent.
            manager.library = shard_library
            manager.run_script(text)

    def analyze(self, include_plugins: bool = True):
        """Full sharded sweep: plugin lints once (fanout keeps shards
        identically configured), per-shard equivalence + codegen audits,
        and the RP404 query-mergeability audit.  Inline backend only —
        worker processes cannot ship live analysis objects back."""
        if not self.libraries or self.sharded._pool is not None:
            raise ConfigurationError(
                "analyze needs the inline backend (worker processes "
                "cannot ship live analysis objects back)"
            )
        from ..analysis import analyze_sharded

        report = analyze_sharded(
            self.sharded,
            libraries=self.libraries,
            include_plugins=include_plugins,
        )
        # Seed every shard's freshness cache — the sweep audited each
        # shard, so each shard's ``show aiu`` reports it instead of
        # "never"/"stale".
        for shard_library in self.libraries:
            shard_library._analysis_cache = (
                shard_library.router.aiu.plan_epoch,
                shard_library._config_revision,
                report,
            )
        return report

    # ------------------------------------------------------------------
    # Aggregated queries
    # ------------------------------------------------------------------
    def query(self, topic: str, **filters) -> dict:
        """Cross-shard aggregate of every show topic.

        Aggregation is declared per topic in the
        :mod:`repro.mgr.format` registry (docs/OBSERVABILITY.md):
        counters and flow/fault totals are summed; histograms merge
        bucket-wise; tiers take the worst rung; configuration views
        (plugins, filters) come from shard 0 because the fanout keeps
        shards identical.  ``"frontend"`` topics are answered by this
        front end itself (``health``, ``shards``); a topic registered
        without a front-end handler falls back to its query function
        run against this library.
        """
        try:
            spec = get_topic(topic)
        except KeyError:
            raise ConfigurationError(
                f"unknown query topic {topic!r}; known: {list(topic_names())}"
            ) from None
        if spec.merge == "frontend":
            handler = getattr(self, f"_frontend_{topic}", None)
            if handler is not None:
                data = handler(**filters)
            else:
                data = spec.run_query(self, **filters)
        else:
            per_shard = self._per_shard_query(topic, **filters)
            data = merge_topic(spec, per_shard)
        return attach_schema(spec, data)

    def _frontend_health(self) -> dict:
        return self.sharded.health()

    def _frontend_shards(self) -> dict:
        return self._query_shards()

    def _per_shard_query(self, topic: str, **filters) -> List[dict]:
        pool = self.sharded._pool
        if pool is not None:
            return pool.query(topic, **filters)
        return [lib.query(topic, **filters) for lib in self.libraries]

    def _query_shards(self) -> dict:
        pool = self.sharded._pool
        if pool is not None:
            rows = pool.query("shards")
            summaries = [row["shards"][0] for row in rows]
        else:
            summaries = [
                r.shard_state.summary() for r in self.sharded.shards
            ]
        return {
            "nshards": self.sharded.nshards,
            "backend": self.sharded.backend,
            "shards": [
                {"shard": i, **summary} for i, summary in enumerate(summaries)
            ],
        }
