"""Sharded multi-worker data path (RSS-style flow-hash dispatch).

See :mod:`repro.shard.sharded` for the front end,
:mod:`repro.shard.dispatch` for the deterministic dispatch rule and the
pickle-light handoff codec, :mod:`repro.shard.mp` for the forked worker
pool, and :mod:`repro.shard.control` for the control-plane fanout.
"""

from .control import ShardedPluginLibrary
from .dispatch import decode_packet, dispatch_packets, dispatch_wire, encode_packet, shard_of
from .mp import ShardWorkerPool, mp_available, usable_cpus
from .sharded import ShardedRouter

__all__ = [
    "ShardedPluginLibrary",
    "ShardedRouter",
    "ShardWorkerPool",
    "decode_packet",
    "dispatch_packets",
    "dispatch_wire",
    "encode_packet",
    "mp_available",
    "shard_of",
    "usable_cpus",
]
