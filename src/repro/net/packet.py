"""The packet object — our analogue of the BSD ``mbuf``.

A :class:`Packet` carries the parsed header fields the data path needs
(addresses, protocol, ports, input interface) plus the mbuf-style metadata
the paper relies on: the **flow index** (``fix``) written by the AIU at the
first gate and consumed by later gates, arrival timestamps, and scratch
space for plugins.

Packets can also round-trip to real wire bytes (``serialize``/``parse``)
so plugins that authenticate or transform byte ranges (IPsec) and option
walkers see genuine encodings.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .addresses import IPAddress, IPV4_WIDTH, IPV6_WIDTH
from .headers import (
    HeaderError,
    IPv4Header,
    IPv6Header,
    OptionsHeader,
    OptionTLV,
    PROTO_HOPOPTS,
    PROTO_TCP,
    PROTO_UDP,
    TCPHeader,
    UDPHeader,
)

_packet_ids = itertools.count(1)

# Header sizes as module globals: the cold path of ``Packet.length``
# loads these once each instead of two attribute lookups per constant.
_V4_HDR = IPv4Header.HEADER_LEN
_V6_HDR = IPv6Header.HEADER_LEN
_TCP_HDR = TCPHeader.HEADER_LEN
_UDP_HDR = UDPHeader.HEADER_LEN


class ParseStats:
    """Module-wide counter of five-tuple fold derivations.

    Every place that folds a five-tuple from header fields — here, or
    the inline fold in the compiled batch loops — bumps
    ``tuple_derivations``, so tests can assert the cache contract: one
    derivation per packet lifetime, zero when :meth:`Packet.parse`
    already warmed the caches.
    """

    __slots__ = ("tuple_derivations",)

    def __init__(self):
        self.tuple_derivations = 0


PARSE_STATS = ParseStats()


def fold_five_tuple(src: int, dst: int, protocol: int, sport: int, dport: int) -> int:
    """The paper's 17-cycle fold of the five-tuple into 32 bits.

    Shared by :meth:`repro.aiu.filters.FlowKey.hash_index` and the
    per-packet hash cache so both always agree bit-for-bit; callers mask
    the result down to the bucket-array size.
    """
    PARSE_STATS.tuple_derivations += 1
    folded = src ^ dst
    # Fold 128-bit addresses down to 32 bits.
    while folded >> 32:
        folded = (folded & 0xFFFFFFFF) ^ (folded >> 32)
    folded ^= (protocol << 24) ^ (sport << 12) ^ dport
    folded ^= folded >> 16
    return folded


def fold_flow_label(src: int, flow_label: int) -> int:
    """The cheaper (src, IPv6 flow label) fold (``FLOW_LABEL_HASH``)."""
    folded = src ^ flow_label
    while folded >> 32:
        folded = (folded & 0xFFFFFFFF) ^ (folded >> 32)
    folded ^= folded >> 16
    return folded


@dataclass(slots=True)
class Packet:
    """A routed datagram plus its mbuf metadata.

    Transport ports are 0 for protocols without ports; the classifier
    treats them as exact values, matching the paper's six-tuple model.

    The flow index (``fix``) and the derived classification caches
    (flow key, five-tuple hash, total length) share one lifecycle:
    assigning ``packet.fix = None`` — the established "this is now a
    different flow" signal used by the interfaces on delivery and by the
    IPsec plugins after en/decapsulation — also drops every cache, so a
    packet folds its five-tuple exactly once per hop.
    """

    src: IPAddress
    dst: IPAddress
    protocol: int
    src_port: int = 0
    dst_port: int = 0
    iif: Optional[str] = None
    payload: bytes = b""
    ttl: int = 64
    tos: int = 0
    flow_label: int = 0
    hop_options: List[OptionTLV] = field(default_factory=list)

    # mbuf metadata — not part of the wire format.
    arrival_time: float = 0.0
    departure_time: Optional[float] = None
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    annotations: Dict[str, Any] = field(default_factory=dict)

    # Fast-path caches (see class docstring).  ``_flow_key`` is written
    # by the AIU layer (a cached repro.aiu.filters.FlowKey); the folds
    # and length are computed here.
    _fix: Optional[Any] = field(default=None, init=False, repr=False, compare=False)
    _flow_key: Optional[Any] = field(default=None, init=False, repr=False, compare=False)
    _flow_fold: Optional[int] = field(default=None, init=False, repr=False, compare=False)
    _label_fold: Optional[int] = field(default=None, init=False, repr=False, compare=False)
    _length: int = field(default=-1, init=False, repr=False, compare=False)
    _length_payload: int = field(default=-1, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.src.width != self.dst.width:
            raise ValueError("src/dst address family mismatch")

    # ------------------------------------------------------------------
    # Flow index + cache lifecycle
    # ------------------------------------------------------------------
    @property
    def fix(self) -> Optional[Any]:
        """Flow index: the AIU flow-table row handle (mbuf metadata)."""
        return self._fix

    @fix.setter
    def fix(self, value: Optional[Any]) -> None:
        self._fix = value
        if value is None:
            # The packet is (potentially) a different flow now: drop the
            # derived caches so the next classification recomputes them.
            self._flow_key = None
            self._flow_fold = None
            self._label_fold = None
            self._length = -1

    def invalidate_flow_cache(self) -> None:
        """Drop cached classification state after mutating the five-tuple,
        incoming interface, or headers.  Equivalent to ``fix = None``."""
        self.fix = None

    # ------------------------------------------------------------------
    # Classification views
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        return 6 if self.src.width == IPV6_WIDTH else 4

    @property
    def is_ipv6(self) -> bool:
        return self.src.width == IPV6_WIDTH

    def five_tuple(self) -> Tuple[int, int, int, int, int]:
        """⟨src, dst, proto, sport, dport⟩ as plain ints (flow-table key)."""
        return (
            self.src.value,
            self.dst.value,
            self.protocol,
            self.src_port,
            self.dst_port,
        )

    def six_tuple(self) -> Tuple[int, int, int, int, int, Optional[str]]:
        """The paper's filter six-tuple, with the incoming interface."""
        return self.five_tuple() + (self.iif,)

    def flow_fold32(self) -> int:
        """The 32-bit five-tuple fold, computed once per packet lifetime."""
        fold = self._flow_fold
        if fold is None:
            fold = fold_five_tuple(
                self.src.value,
                self.dst.value,
                self.protocol,
                self.src_port,
                self.dst_port,
            )
            self._flow_fold = fold
        return fold

    def flow_label_fold32(self) -> int:
        """The 32-bit (src, flow label) fold, cached like the five-tuple."""
        fold = self._label_fold
        if fold is None:
            fold = fold_flow_label(self.src.value, self.flow_label)
            self._label_fold = fold
        return fold

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def header_length(self) -> int:
        if "frag" in self.annotations:
            # A fragment's payload is the raw byte slice (the transport
            # header, if any, is inside the first slice already).
            return IPv4Header.HEADER_LEN
        base = IPv6Header.HEADER_LEN if self.is_ipv6 else IPv4Header.HEADER_LEN
        if self.hop_options:
            base += len(OptionsHeader(0, list(self.hop_options)).serialize())
        if self.protocol == PROTO_TCP:
            base += TCPHeader.HEADER_LEN
        elif self.protocol == PROTO_UDP:
            base += UDPHeader.HEADER_LEN
        return base

    @property
    def length(self) -> int:
        """Total datagram length in bytes.

        Cached: the data path reads this several times per packet (MTU
        check, serialization delay, byte counters).  The cache revalidates
        against the payload length and is dropped with ``fix = None``, so
        transforms that change headers (IPsec) recompute it.

        The cold path inlines ``header_length`` for the plain UDP/TCP
        shapes (no fragments, no options): the first length read happens
        on hot code — the telemetry miss seam, byte counters — where the
        two extra property frames are measurable.
        """
        payload_len = len(self.payload)
        if self._length >= 0 and payload_len == self._length_payload:
            return self._length
        if self.annotations or self.hop_options:
            base = self.header_length
        else:
            base = _V6_HDR if self.src.width == IPV6_WIDTH else _V4_HDR
            protocol = self.protocol
            if protocol == PROTO_TCP:
                base += _TCP_HDR
            elif protocol == PROTO_UDP:
                base += _UDP_HDR
        value = base + payload_len
        self._length = value
        self._length_payload = payload_len
        return value

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def serialize(self) -> bytes:
        """Encode the packet as a real IPv4/IPv6 datagram."""
        payload = self.payload
        if type(payload) is not bytes:
            payload = bytes(payload)    # zero-copy parse stores a memoryview
        transport = b""
        if self.protocol == PROTO_UDP:
            transport = UDPHeader(
                self.src_port, self.dst_port, UDPHeader.HEADER_LEN + len(payload)
            ).serialize()
        elif self.protocol == PROTO_TCP:
            transport = TCPHeader(self.src_port, self.dst_port).serialize()
        body = transport + payload

        if self.is_ipv6:
            next_header = self.protocol
            ext = b""
            if self.hop_options:
                ext = OptionsHeader(self.protocol, list(self.hop_options)).serialize()
                next_header = PROTO_HOPOPTS
            header = IPv6Header(
                src=self.src,
                dst=self.dst,
                next_header=next_header,
                payload_length=len(ext) + len(body),
                hop_limit=self.ttl,
                traffic_class=self.tos,
                flow_label=self.flow_label,
            )
            return header.serialize() + ext + body
        if self.hop_options:
            raise HeaderError("hop-by-hop options only exist in IPv6")
        header = IPv4Header(
            src=self.src,
            dst=self.dst,
            protocol=self.protocol,
            total_length=IPv4Header.HEADER_LEN + len(body),
            ttl=self.ttl,
            tos=self.tos,
        )
        return header.serialize() + body

    @classmethod
    def parse(cls, data: bytes, iif: Optional[str] = None) -> "Packet":
        """Decode a wire datagram into a Packet.

        Zero-copy: the payload is a :class:`memoryview` slice into the
        caller's buffer, never a copied ``bytes`` (a ~64 B payload copy
        per packet was measurable at batch rates).  Consumers that need
        real bytes — serialization, ICV computation — convert at the
        edge with ``bytes(packet.payload)``; everything the data path
        does with a payload (``len``, slicing, equality, hashing into an
        HMAC) accepts a buffer view directly.

        Parse also warms every derived cache the classify stage would
        otherwise compute per packet: total length, the five-tuple fold
        (counted by :data:`PARSE_STATS`, asserted once-per-packet by
        tests), and the packet's flow-key view.
        """
        if not data:
            raise HeaderError("empty datagram")
        view = memoryview(data)
        version = data[0] >> 4
        if version == 4:
            header = IPv4Header.parse(data)
            offset = IPv4Header.HEADER_LEN
            protocol = header.protocol
            src, dst = header.src, header.dst
            ttl, tos, flow_label = header.ttl, header.tos, 0
            hop_options: List[OptionTLV] = []
            body = view[offset : header.total_length]
        elif version == 6:
            header6 = IPv6Header.parse(data)
            offset = IPv6Header.HEADER_LEN
            end = offset + header6.payload_length
            protocol = header6.next_header
            hop_options = []
            if protocol == PROTO_HOPOPTS:
                opts, consumed = OptionsHeader.parse(view[offset:end])
                hop_options = opts.options
                protocol = opts.next_header
                offset += consumed
            src, dst = header6.src, header6.dst
            ttl, tos = header6.hop_limit, header6.traffic_class
            flow_label = header6.flow_label
            body = view[offset:end]
        else:
            raise HeaderError(f"unknown IP version {version}")

        src_port = dst_port = 0
        payload = body
        annotations = None
        if protocol == PROTO_UDP and len(body) >= UDPHeader.HEADER_LEN:
            udp = UDPHeader.parse(body)
            src_port, dst_port = udp.src_port, udp.dst_port
            payload = body[UDPHeader.HEADER_LEN :]
        elif protocol == PROTO_TCP and len(body) >= TCPHeader.HEADER_LEN:
            tcp = TCPHeader.parse(body)
            src_port, dst_port = tcp.src_port, tcp.dst_port
            payload = body[TCPHeader.HEADER_LEN :]
            annotations = {"tcp_seq": tcp.seq, "tcp_flags": tcp.flags}

        packet = cls(
            src=src,
            dst=dst,
            protocol=protocol,
            src_port=src_port,
            dst_port=dst_port,
            iif=iif,
            payload=payload,
            ttl=ttl,
            tos=tos,
            flow_label=flow_label,
            hop_options=hop_options,
        )
        if annotations:
            packet.annotations.update(annotations)
        packet.length       # wire packets know their length; warm the cache
        packet.flow_fold32()  # ...and the five-tuple fold the AIU hashes on
        return packet

    def copy(self) -> "Packet":
        """A shallow copy with fresh mbuf metadata (new packet id, no FIX)."""
        return Packet(
            src=self.src,
            dst=self.dst,
            protocol=self.protocol,
            src_port=self.src_port,
            dst_port=self.dst_port,
            iif=self.iif,
            payload=self.payload,
            ttl=self.ttl,
            tos=self.tos,
            flow_label=self.flow_label,
            hop_options=list(self.hop_options),
        )

    def __repr__(self) -> str:
        return (
            f"Packet(#{self.packet_id} {self.src}:{self.src_port} -> "
            f"{self.dst}:{self.dst_port} proto={self.protocol} "
            f"len={self.length} iif={self.iif})"
        )


def make_udp(
    src: str,
    dst: str,
    src_port: int,
    dst_port: int,
    payload_size: int = 0,
    iif: Optional[str] = None,
    **kwargs,
) -> Packet:
    """Convenience constructor for a UDP packet from string addresses."""
    return Packet(
        src=IPAddress.parse(src),
        dst=IPAddress.parse(dst),
        protocol=PROTO_UDP,
        src_port=src_port,
        dst_port=dst_port,
        payload=b"\x00" * payload_size,
        iif=iif,
        **kwargs,
    )


def make_tcp(
    src: str,
    dst: str,
    src_port: int,
    dst_port: int,
    payload_size: int = 0,
    iif: Optional[str] = None,
    seq: Optional[int] = None,
    **kwargs,
) -> Packet:
    """Convenience constructor for a TCP packet from string addresses.

    ``seq`` (if given) rides in ``annotations['tcp_seq']`` — the field
    the TCP-monitor plugin reads.
    """
    packet = Packet(
        src=IPAddress.parse(src),
        dst=IPAddress.parse(dst),
        protocol=PROTO_TCP,
        src_port=src_port,
        dst_port=dst_port,
        payload=b"\x00" * payload_size,
        iif=iif,
        **kwargs,
    )
    if seq is not None:
        packet.annotations["tcp_seq"] = seq
    return packet
