"""The Internet checksum (RFC 1071) used by IPv4/UDP/TCP headers."""

from __future__ import annotations


def internet_checksum(data: bytes) -> int:
    """Compute the 16-bit one's-complement Internet checksum of ``data``.

    Odd-length input is padded with a zero byte, per RFC 1071.
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def verify_checksum(data: bytes) -> bool:
    """True if ``data`` (including its checksum field) sums to zero."""
    return internet_checksum(data) == 0


def pseudo_header_v4(src: int, dst: int, protocol: int, length: int) -> bytes:
    """The IPv4 pseudo-header used by TCP/UDP checksums."""
    return (
        src.to_bytes(4, "big")
        + dst.to_bytes(4, "big")
        + bytes([0, protocol])
        + length.to_bytes(2, "big")
    )


def pseudo_header_v6(src: int, dst: int, protocol: int, length: int) -> bytes:
    """The IPv6 pseudo-header (RFC 2460 §8.1) used by upper-layer checksums."""
    return (
        src.to_bytes(16, "big")
        + dst.to_bytes(16, "big")
        + length.to_bytes(4, "big")
        + bytes([0, 0, 0, protocol])
    )
