"""Simulated network interfaces and point-to-point links.

This replaces the paper's ATM hardware: an interface has an MTU and a link
rate, models serialization delay when transmitting, and hands packets to
the peer interface across a :class:`Link` with a propagation delay.

The router core pulls received packets with :meth:`NetworkInterface.poll`;
a discrete-event driver (see :mod:`repro.sim`) can instead register a
delivery callback to be woken exactly at arrival times.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from .packet import Packet

DEFAULT_MTU = 9180            # the paper's ATM MTU
DEFAULT_RATE_BPS = 155_520_000  # OC-3, typical for 1998 ATM gear

_seq = itertools.count()


class InterfaceError(RuntimeError):
    """Raised on interface misuse (e.g. oversized frame, no peer)."""


class NetworkInterface:
    """One router port: an MTU, a transmit rate, and RX/TX accounting."""

    def __init__(
        self,
        name: str,
        mtu: int = DEFAULT_MTU,
        rate_bps: float = DEFAULT_RATE_BPS,
    ):
        self.name = name
        self.mtu = mtu
        self.rate_bps = float(rate_bps)
        self.link: Optional["Link"] = None
        # Pending arrivals: (arrival_time, seq, packet).
        self._inbox: List[Tuple[float, int, Packet]] = []
        self._next_free = 0.0  # when the transmitter finishes its last frame
        self.rx_packets = 0
        self.rx_bytes = 0
        self.tx_packets = 0
        self.tx_bytes = 0
        self.tx_drops = 0
        self.on_deliver: Optional[Callable[[float, Packet], None]] = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def connect(self, other: "NetworkInterface", delay: float = 0.0) -> "Link":
        """Create a bidirectional link between this interface and ``other``."""
        link = Link(self, other, delay)
        self.link = link
        other.link = link
        return link

    @property
    def peer(self) -> Optional["NetworkInterface"]:
        if self.link is None:
            return None
        return self.link.other_end(self)

    # ------------------------------------------------------------------
    # Transmit side
    # ------------------------------------------------------------------
    @property
    def next_free(self) -> float:
        """When the transmitter finishes the frame it is clocking out."""
        return self._next_free

    def serialization_delay(self, packet: Packet) -> float:
        """Seconds needed to clock the packet onto the wire."""
        return packet.length * 8 / self.rate_bps

    def output(self, packet: Packet, now: float = 0.0) -> float:
        """Transmit a packet; returns the time it fully leaves the wire.

        If no link is attached the interface behaves as a sink (the packet
        is counted as transmitted and discarded) which is convenient for
        single-router benchmarks.
        """
        length = packet.length
        if length > self.mtu:
            self.tx_drops += 1
            raise InterfaceError(
                f"{self.name}: packet of {length} B exceeds MTU {self.mtu}"
            )
        start = max(now, self._next_free)
        done = start + length * 8 / self.rate_bps
        self._next_free = done
        self.tx_packets += 1
        self.tx_bytes += length
        packet.departure_time = done
        if self.link is not None:
            self.link.carry(self, packet, done)
        return done

    # ------------------------------------------------------------------
    # Receive side
    # ------------------------------------------------------------------
    def deliver(self, packet: Packet, at_time: float) -> None:
        """Called by the link when a packet arrives at this interface."""
        packet.iif = self.name
        packet.arrival_time = at_time
        packet.fix = None  # a fresh mbuf: flow indices never cross the wire
        self.rx_packets += 1
        self.rx_bytes += packet.length
        if self.on_deliver is not None:
            self.on_deliver(at_time, packet)
        else:
            heapq.heappush(self._inbox, (at_time, next(_seq), packet))

    def inject(self, packet: Packet, at_time: float = 0.0) -> None:
        """Place a packet directly into the RX queue (traffic generators)."""
        self.deliver(packet, at_time)

    def poll(self, now: Optional[float] = None) -> List[Packet]:
        """Drain packets that have arrived by ``now`` (all, if None)."""
        out: List[Packet] = []
        while self._inbox and (now is None or self._inbox[0][0] <= now):
            _t, _s, packet = heapq.heappop(self._inbox)
            out.append(packet)
        return out

    @property
    def pending_rx(self) -> int:
        return len(self._inbox)

    def __repr__(self) -> str:
        return f"NetworkInterface({self.name!r}, mtu={self.mtu}, rate={self.rate_bps:g}bps)"


class Link:
    """A full-duplex point-to-point link with a fixed propagation delay."""

    def __init__(self, a: NetworkInterface, b: NetworkInterface, delay: float = 0.0):
        self.a = a
        self.b = b
        self.delay = delay

    def other_end(self, iface: NetworkInterface) -> NetworkInterface:
        if iface is self.a:
            return self.b
        if iface is self.b:
            return self.a
        raise InterfaceError("interface is not on this link")

    def carry(self, sender: NetworkInterface, packet: Packet, departure: float) -> None:
        receiver = self.other_end(sender)
        receiver.deliver(packet, departure + self.delay)

    def __repr__(self) -> str:
        return f"Link({self.a.name} <-> {self.b.name}, delay={self.delay})"
