"""Wire-format headers: IPv4, IPv6 (+ extension headers), UDP, TCP.

The router core mostly works on the parsed :class:`repro.net.packet.Packet`
object, but every header here round-trips to real wire bytes so that the
security plugins (which authenticate byte ranges) and the option plugins
(which walk TLVs) operate on genuine encodings, as they would in NetBSD.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .addresses import IPAddress, IPV4_WIDTH, IPV6_WIDTH
from .checksum import internet_checksum

# IP protocol numbers (the subset the router cares about).
PROTO_HOPOPTS = 0
PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17
PROTO_IPV6 = 41
PROTO_ROUTING = 43
PROTO_FRAGMENT = 44
PROTO_ESP = 50
PROTO_AH = 51
PROTO_ICMPV6 = 58
PROTO_NONE = 59
PROTO_DSTOPTS = 60
PROTO_OSPF = 89
PROTO_SSP = 253          # "use for experimentation" range, our SSP daemon
PROTO_RSVP = 46

PROTOCOL_NAMES = {
    PROTO_HOPOPTS: "HOPOPTS",
    PROTO_ICMP: "ICMP",
    PROTO_TCP: "TCP",
    PROTO_UDP: "UDP",
    PROTO_IPV6: "IPV6",
    PROTO_ROUTING: "ROUTING",
    PROTO_FRAGMENT: "FRAGMENT",
    PROTO_ESP: "ESP",
    PROTO_AH: "AH",
    PROTO_ICMPV6: "ICMPV6",
    PROTO_NONE: "NONE",
    PROTO_DSTOPTS: "DSTOPTS",
    PROTO_OSPF: "OSPF",
    PROTO_SSP: "SSP",
    PROTO_RSVP: "RSVP",
}

PROTOCOL_NUMBERS = {name: num for num, name in PROTOCOL_NAMES.items()}


class HeaderError(ValueError):
    """Raised when a header fails to parse or validate."""


@dataclass
class IPv4Header:
    """An IPv4 header (RFC 791), options unsupported (ihl == 5)."""

    src: IPAddress
    dst: IPAddress
    protocol: int
    total_length: int = 20
    ttl: int = 64
    tos: int = 0
    identification: int = 0
    flags: int = 0
    fragment_offset: int = 0

    HEADER_LEN = 20

    def __post_init__(self) -> None:
        if self.src.width != IPV4_WIDTH or self.dst.width != IPV4_WIDTH:
            raise HeaderError("IPv4 header requires 32-bit addresses")

    def serialize(self) -> bytes:
        head = struct.pack(
            "!BBHHHBBH4s4s",
            (4 << 4) | 5,
            self.tos,
            self.total_length,
            self.identification,
            (self.flags << 13) | self.fragment_offset,
            self.ttl,
            self.protocol,
            0,
            self.src.to_bytes(),
            self.dst.to_bytes(),
        )
        checksum = internet_checksum(head)
        return head[:10] + struct.pack("!H", checksum) + head[12:]

    @classmethod
    def parse(cls, data: bytes) -> "IPv4Header":
        if len(data) < cls.HEADER_LEN:
            raise HeaderError("short IPv4 header")
        (
            ver_ihl,
            tos,
            total_length,
            identification,
            flags_frag,
            ttl,
            protocol,
            _checksum,
            src,
            dst,
        ) = struct.unpack("!BBHHHBBH4s4s", data[: cls.HEADER_LEN])
        if ver_ihl >> 4 != 4:
            raise HeaderError("not an IPv4 packet")
        if (ver_ihl & 0xF) != 5:
            raise HeaderError("IPv4 options unsupported")
        if internet_checksum(data[: cls.HEADER_LEN]) != 0:
            raise HeaderError("bad IPv4 header checksum")
        return cls(
            src=IPAddress.from_bytes(src),
            dst=IPAddress.from_bytes(dst),
            protocol=protocol,
            total_length=total_length,
            ttl=ttl,
            tos=tos,
            identification=identification,
            flags=flags_frag >> 13,
            fragment_offset=flags_frag & 0x1FFF,
        )


@dataclass
class IPv6Header:
    """The fixed 40-byte IPv6 header (RFC 2460)."""

    src: IPAddress
    dst: IPAddress
    next_header: int
    payload_length: int = 0
    hop_limit: int = 64
    traffic_class: int = 0
    flow_label: int = 0

    HEADER_LEN = 40

    def __post_init__(self) -> None:
        if self.src.width != IPV6_WIDTH or self.dst.width != IPV6_WIDTH:
            raise HeaderError("IPv6 header requires 128-bit addresses")
        if not 0 <= self.flow_label < (1 << 20):
            raise HeaderError("flow label out of range")

    def serialize(self) -> bytes:
        first = (6 << 28) | (self.traffic_class << 20) | self.flow_label
        return struct.pack(
            "!IHBB16s16s",
            first,
            self.payload_length,
            self.next_header,
            self.hop_limit,
            self.src.to_bytes(),
            self.dst.to_bytes(),
        )

    @classmethod
    def parse(cls, data: bytes) -> "IPv6Header":
        if len(data) < cls.HEADER_LEN:
            raise HeaderError("short IPv6 header")
        first, payload_length, next_header, hop_limit, src, dst = struct.unpack(
            "!IHBB16s16s", data[: cls.HEADER_LEN]
        )
        if first >> 28 != 6:
            raise HeaderError("not an IPv6 packet")
        return cls(
            src=IPAddress.from_bytes(src),
            dst=IPAddress.from_bytes(dst),
            next_header=next_header,
            payload_length=payload_length,
            hop_limit=hop_limit,
            traffic_class=(first >> 20) & 0xFF,
            flow_label=first & 0xFFFFF,
        )


# IPv6 option TLV types (RFC 2460 §4.2, RFC 2711, RFC 2675).
OPT_PAD1 = 0x00
OPT_PADN = 0x01
OPT_JUMBO = 0xC2
OPT_ROUTER_ALERT = 0x05


@dataclass
class OptionTLV:
    """One TLV inside a hop-by-hop or destination options header."""

    opt_type: int
    data: bytes = b""

    @property
    def action_bits(self) -> int:
        """Top two bits: what to do when the option is unrecognized."""
        return self.opt_type >> 6


@dataclass
class OptionsHeader:
    """A hop-by-hop or destination options extension header."""

    next_header: int
    options: List[OptionTLV] = field(default_factory=list)

    def serialize(self) -> bytes:
        body = bytearray()
        for opt in self.options:
            if opt.opt_type == OPT_PAD1:
                body.append(OPT_PAD1)
            else:
                body.append(opt.opt_type)
                body.append(len(opt.data))
                body.extend(opt.data)
        # Total header length must be a multiple of 8 bytes, including the
        # 2-byte (next_header, hdr_ext_len) prelude.
        total = 2 + len(body)
        pad = (8 - total % 8) % 8
        if pad == 1:
            body.append(OPT_PAD1)
        elif pad > 1:
            body.append(OPT_PADN)
            body.append(pad - 2)
            body.extend(b"\x00" * (pad - 2))
        hdr_ext_len = (2 + len(body)) // 8 - 1
        return bytes([self.next_header, hdr_ext_len]) + bytes(body)

    @classmethod
    def parse(cls, data: bytes) -> Tuple["OptionsHeader", int]:
        """Parse from ``data``; return (header, bytes consumed)."""
        if len(data) < 2:
            raise HeaderError("short options header")
        next_header = data[0]
        length = (data[1] + 1) * 8
        if len(data) < length:
            raise HeaderError("truncated options header")
        options: List[OptionTLV] = []
        i = 2
        while i < length:
            opt_type = data[i]
            if opt_type == OPT_PAD1:
                i += 1
                continue
            if i + 1 >= length:
                raise HeaderError("truncated option TLV")
            opt_len = data[i + 1]
            if i + 2 + opt_len > length:
                raise HeaderError("option TLV overruns header")
            payload = bytes(data[i + 2 : i + 2 + opt_len])
            if opt_type != OPT_PADN:
                options.append(OptionTLV(opt_type, payload))
            i += 2 + opt_len
        return cls(next_header, options), length


@dataclass
class UDPHeader:
    """A UDP header (RFC 768); checksum computed over the pseudo-header."""

    src_port: int
    dst_port: int
    length: int = 8

    HEADER_LEN = 8

    def serialize(self, checksum: int = 0) -> bytes:
        return struct.pack("!HHHH", self.src_port, self.dst_port, self.length, checksum)

    @classmethod
    def parse(cls, data: bytes) -> "UDPHeader":
        if len(data) < cls.HEADER_LEN:
            raise HeaderError("short UDP header")
        src_port, dst_port, length, _checksum = struct.unpack("!HHHH", data[:8])
        return cls(src_port, dst_port, length)


# TCP flag bits.
TCP_FIN = 0x01
TCP_SYN = 0x02
TCP_RST = 0x04
TCP_PSH = 0x08
TCP_ACK = 0x10
TCP_URG = 0x20


@dataclass
class TCPHeader:
    """A TCP header (RFC 793), options unsupported (data offset 5)."""

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: int = TCP_ACK
    window: int = 65535

    HEADER_LEN = 20

    def serialize(self, checksum: int = 0) -> bytes:
        return struct.pack(
            "!HHIIBBHHH",
            self.src_port,
            self.dst_port,
            self.seq,
            self.ack,
            5 << 4,
            self.flags,
            self.window,
            checksum,
            0,
        )

    @classmethod
    def parse(cls, data: bytes) -> "TCPHeader":
        if len(data) < cls.HEADER_LEN:
            raise HeaderError("short TCP header")
        (
            src_port,
            dst_port,
            seq,
            ack,
            offset_byte,
            flags,
            window,
            _checksum,
            _urgent,
        ) = struct.unpack("!HHIIBBHHH", data[:20])
        if offset_byte >> 4 != 5:
            raise HeaderError("TCP options unsupported")
        return cls(src_port, dst_port, seq, ack, flags, window)


@dataclass
class AHHeader:
    """IPsec Authentication Header (RFC 1826/4302)."""

    next_header: int
    spi: int
    sequence: int
    icv: bytes = b""

    def serialize(self) -> bytes:
        # payload len is in 32-bit words minus 2 (RFC 4302 §2.2).
        payload_words = (12 + len(self.icv)) // 4 - 2
        return (
            struct.pack("!BBHII", self.next_header, payload_words, 0, self.spi, self.sequence)
            + self.icv
        )

    @classmethod
    def parse(cls, data: bytes) -> Tuple["AHHeader", int]:
        if len(data) < 12:
            raise HeaderError("short AH header")
        next_header, payload_words, _res, spi, sequence = struct.unpack(
            "!BBHII", data[:12]
        )
        total = (payload_words + 2) * 4
        if len(data) < total:
            raise HeaderError("truncated AH header")
        return cls(next_header, spi, sequence, bytes(data[12:total])), total


@dataclass
class ESPHeader:
    """IPsec ESP prelude (RFC 1827/4303): SPI + sequence, opaque body."""

    spi: int
    sequence: int
    body: bytes = b""

    def serialize(self) -> bytes:
        return struct.pack("!II", self.spi, self.sequence) + self.body

    @classmethod
    def parse(cls, data: bytes) -> "ESPHeader":
        if len(data) < 8:
            raise HeaderError("short ESP header")
        spi, sequence = struct.unpack("!II", data[:8])
        return cls(spi, sequence, bytes(data[8:]))


def protocol_name(number: int) -> str:
    """Human-readable name for an IP protocol number."""
    return PROTOCOL_NAMES.get(number, str(number))


def protocol_number(name_or_number) -> int:
    """Accept 'TCP', 'udp', 6, or '6' and return the protocol number."""
    if isinstance(name_or_number, int):
        return name_or_number
    text = str(name_or_number).strip()
    if text.isdigit():
        return int(text)
    try:
        return PROTOCOL_NUMBERS[text.upper()]
    except KeyError as exc:
        raise HeaderError(f"unknown protocol {name_or_number!r}") from exc
