"""The routing table: destination prefix → (next hop, output interface).

The longest-prefix-match engine is *pluggable* — this is one of the
paper's plugin types ("best-matching prefix" plugins).  Any object with
``insert(prefix, value)``, ``remove(prefix)`` and ``lookup(value_int)``
works; :mod:`repro.bmp` supplies PATRICIA, binary-search-on-prefix-lengths
and controlled-prefix-expansion engines.  A naive linear engine lives here
both as the default fallback and as the baseline for benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from .addresses import IPAddress, Prefix


@dataclass
class Route:
    """One routing entry."""

    prefix: Prefix
    next_hop: Optional[IPAddress]
    interface: str
    metric: int = 1
    #: Member interfaces when this route is an ECMP bundle; the data
    #: path still forwards on ``interface`` (a synthetic bundle name),
    #: so plain routers stay oblivious — only topology links fan the
    #: bundle out per flow.
    ecmp_group: Optional[Tuple[str, ...]] = None

    @property
    def is_directly_connected(self) -> bool:
        return self.next_hop is None

    def __repr__(self) -> str:
        via = str(self.next_hop) if self.next_hop else "direct"
        return f"Route({self.prefix} via {via} dev {self.interface} metric {self.metric})"


class LinearLPM:
    """O(n) longest-prefix match over a sorted list — the naive baseline."""

    def __init__(self, width: Optional[int] = None) -> None:
        self.width = width
        self._entries: List[Tuple[Prefix, object]] = []

    def insert(self, prefix: Prefix, value: object) -> None:
        self.remove(prefix)
        self._entries.append((prefix, value))
        # Longest prefixes first so the first hit is the best match.
        self._entries.sort(key=lambda e: -e[0].length)

    def remove(self, prefix: Prefix) -> bool:
        before = len(self._entries)
        self._entries = [(p, v) for p, v in self._entries if p != prefix]
        return len(self._entries) != before

    def lookup(self, value: int) -> Optional[object]:
        for prefix, stored in self._entries:
            if prefix.matches(value):
                return stored
        return None

    # The scan is already meter-free; the fast-path name is an alias so
    # RoutingTable can call one method on any engine.
    lookup_fast = lookup

    def lookup_prefix(self, value: int) -> Optional[Prefix]:
        for prefix, _stored in self._entries:
            if prefix.matches(value):
                return prefix
        return None

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Tuple[Prefix, object]]:
        return iter(self._entries)


#: Sentinel distinguishing "memoized as unroutable" (None) from "not
#: memoized"; a bench-sized cap keeps hostile destination sweeps from
#: turning the memo into a leak.
_MEMO_MISS = object()
_MEMO_CAP = 65536


class RoutingTable:
    """A per-family routing table over a pluggable LPM engine."""

    def __init__(self, lpm_factory=LinearLPM):
        self._lpm_factory = lpm_factory
        self._engines: Dict[int, object] = {}
        self._routes: Dict[Prefix, Route] = {}
        #: Bumped on every add/remove; per-flow route memos (the router's
        #: fast path) revalidate against it, so no stale route survives
        #: a table change.
        self.version = 0
        # width -> bound fast-lookup callable; engines are created once
        # per width and never replaced, so this never goes stale.
        self._fast_lookups: Dict[int, object] = {}
        # Destination-value -> Route memos, one per family so the raw
        # int value can key the dict without a (width, value) tuple per
        # lookup.  Cleared on any add/remove (alongside the version
        # bump), so a memoized route can never outlive the table state
        # that produced it.  Bounded: churny destination sets reset the
        # memo rather than growing it without limit.
        self._memo4: Dict[int, Optional[Route]] = {}
        self._memo6: Dict[int, Optional[Route]] = {}

    def _engine(self, width: int):
        if width not in self._engines:
            self._engines[width] = self._lpm_factory(width)
        return self._engines[width]

    def add(
        self,
        prefix,
        interface: str,
        next_hop=None,
        metric: int = 1,
    ) -> Route:
        """Install a route.  ``prefix``/``next_hop`` accept strings."""
        if isinstance(prefix, str):
            prefix = Prefix.parse(prefix)
        if isinstance(next_hop, str):
            next_hop = IPAddress.parse(next_hop)
        route = Route(prefix, next_hop, interface, metric)
        self._routes[prefix] = route
        self._engine(prefix.width).insert(prefix, route)
        self.version += 1
        self._memo4.clear()
        self._memo6.clear()
        return route

    def add_ecmp(
        self,
        prefix,
        interfaces,
        next_hop=None,
        metric: int = 1,
    ) -> Route:
        """Install an equal-cost multi-path route over ``interfaces``.

        The entry's ``interface`` is a synthetic bundle name
        (``"ecmp:ge1+ge2"``): a router that owns no such interface
        treats the packet exactly like any other unknown egress, while
        a topology binds the bundle name to a per-flow selector that
        folds the five-tuple over the member edges (deterministic —
        never builtin ``hash()``)."""
        if isinstance(prefix, str):
            prefix = Prefix.parse(prefix)
        if isinstance(next_hop, str):
            next_hop = IPAddress.parse(next_hop)
        members = tuple(interfaces)
        if len(members) < 2:
            raise ValueError("an ECMP bundle needs at least two interfaces")
        bundle = "ecmp:" + "+".join(members)
        route = Route(prefix, next_hop, bundle, metric, ecmp_group=members)
        self._routes[prefix] = route
        self._engine(prefix.width).insert(prefix, route)
        self.version += 1
        self._memo4.clear()
        self._memo6.clear()
        return route

    def remove(self, prefix) -> bool:
        if isinstance(prefix, str):
            prefix = Prefix.parse(prefix)
        if prefix not in self._routes:
            return False
        del self._routes[prefix]
        self._engine(prefix.width).remove(prefix)
        self.version += 1
        self._memo4.clear()
        self._memo6.clear()
        return True

    def lookup(self, dst) -> Optional[Route]:
        """Longest-prefix match for a destination address."""
        if isinstance(dst, str):
            dst = IPAddress.parse(dst)
        engine = self._engines.get(dst.width)
        if engine is None:
            return None
        return engine.lookup(dst.value)

    def lookup_fast(self, dst) -> Optional[Route]:
        """Compiled-path longest-prefix match: no meter, no modelled
        cost.  BMP engines expose a compiled ``lookup_fast``; any other
        engine falls back to its plain ``lookup``.  The bound callable is
        resolved once per width, not per packet, and results are memoized
        per destination value until the next add/remove — under flow
        churn the per-flow route memo dies with the evicted record, so
        this is what keeps a repeated destination from re-walking the
        BMP trie on every flow rebirth."""
        if isinstance(dst, str):
            dst = IPAddress.parse(dst)
        memo = self._memo4 if dst.width == 32 else self._memo6
        value = dst.value
        route = memo.get(value, _MEMO_MISS)
        if route is not _MEMO_MISS:
            return route
        fast = self._fast_lookups.get(dst.width)
        if fast is None:
            engine = self._engines.get(dst.width)
            if engine is None:
                return None
            fast = getattr(engine, "lookup_fast", None) or engine.lookup
            self._fast_lookups[dst.width] = fast
        route = fast(value)
        if len(memo) >= _MEMO_CAP:
            memo.clear()
        memo[value] = route
        return route

    def routes(self) -> List[Route]:
        return list(self._routes.values())

    def __len__(self) -> int:
        return len(self._routes)

    def __contains__(self, prefix) -> bool:
        if isinstance(prefix, str):
            prefix = Prefix.parse(prefix)
        return prefix in self._routes
