"""IP addresses and prefixes as plain integers with explicit bit widths.

The classifier (:mod:`repro.aiu`) and the best-matching-prefix engines
(:mod:`repro.bmp`) need cheap bit-level operations on addresses: extract
the top *k* bits, compare under a mask, enumerate prefix lengths.  We
therefore represent an address as ``(int value, int width)`` wrapped in a
small immutable class, and a prefix as ``(value, prefix_len, width)``.

Both IPv4 (width 32) and IPv6 (width 128) are supported.  Parsing accepts
the paper's wildcard notation too: ``129.*.*.*`` or ``129.*`` denote the
prefix ``129.0.0.0/8`` and a bare ``*`` is the zero-length prefix that
matches everything.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

IPV4_WIDTH = 32
IPV6_WIDTH = 128


class AddressError(ValueError):
    """Raised for malformed address or prefix strings."""


def _parse_ipv4_int(text: str) -> int:
    parts = text.split(".")
    if len(parts) != 4:
        raise AddressError(f"bad IPv4 address {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise AddressError(f"bad IPv4 octet {part!r} in {text!r}")
        octet = int(part)
        if octet > 255:
            raise AddressError(f"IPv4 octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def _parse_ipv6_int(text: str) -> int:
    """Parse an IPv6 address (supports ``::`` compression) to an int."""
    if text.count("::") > 1:
        raise AddressError(f"multiple '::' in {text!r}")
    if "::" in text:
        head, _, tail = text.partition("::")
        head_groups = head.split(":") if head else []
        tail_groups = tail.split(":") if tail else []
        missing = 8 - len(head_groups) - len(tail_groups)
        if missing < 1:
            raise AddressError(f"'::' expands to nothing in {text!r}")
        groups = head_groups + ["0"] * missing + tail_groups
    else:
        groups = text.split(":")
    if len(groups) != 8:
        raise AddressError(f"bad IPv6 group count in {text!r}")
    value = 0
    for group in groups:
        if group == "" or len(group) > 4:
            raise AddressError(f"bad IPv6 group {group!r} in {text!r}")
        try:
            word = int(group, 16)
        except ValueError as exc:
            raise AddressError(f"bad IPv6 group {group!r} in {text!r}") from exc
        value = (value << 16) | word
    return value


def _format_ipv4(value: int) -> str:
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def _format_ipv6(value: int) -> str:
    groups = [(value >> shift) & 0xFFFF for shift in range(112, -16, -16)]
    # Find the longest run of zero groups (length >= 2) to compress.
    best_start, best_len = -1, 0
    run_start, run_len = -1, 0
    for i, g in enumerate(groups):
        if g == 0:
            if run_start < 0:
                run_start, run_len = i, 1
            else:
                run_len += 1
            if run_len > best_len:
                best_start, best_len = run_start, run_len
        else:
            run_start, run_len = -1, 0
    if best_len >= 2:
        head = ":".join(f"{g:x}" for g in groups[:best_start])
        tail = ":".join(f"{g:x}" for g in groups[best_start + best_len:])
        return f"{head}::{tail}"
    return ":".join(f"{g:x}" for g in groups)


class IPAddress:
    """An IPv4 or IPv6 address: an integer value plus a bit width."""

    __slots__ = ("value", "width")

    def __init__(self, value: int, width: int):
        if width not in (IPV4_WIDTH, IPV6_WIDTH):
            raise AddressError(f"unsupported address width {width}")
        if not 0 <= value < (1 << width):
            raise AddressError(f"address value out of range for /{width}")
        self.value = value
        self.width = width

    @classmethod
    def parse(cls, text: str) -> "IPAddress":
        """Parse either an IPv4 dotted quad or an IPv6 address."""
        if ":" in text:
            return cls(_parse_ipv6_int(text), IPV6_WIDTH)
        return cls(_parse_ipv4_int(text), IPV4_WIDTH)

    @classmethod
    def v4(cls, text_or_int) -> "IPAddress":
        if isinstance(text_or_int, int):
            return cls(text_or_int, IPV4_WIDTH)
        return cls(_parse_ipv4_int(text_or_int), IPV4_WIDTH)

    @classmethod
    def v6(cls, text_or_int) -> "IPAddress":
        if isinstance(text_or_int, int):
            return cls(text_or_int, IPV6_WIDTH)
        return cls(_parse_ipv6_int(text_or_int), IPV6_WIDTH)

    @property
    def is_ipv6(self) -> bool:
        return self.width == IPV6_WIDTH

    @property
    def is_multicast(self) -> bool:
        """224.0.0.0/4 for IPv4, ff00::/8 for IPv6."""
        if self.width == IPV4_WIDTH:
            return (self.value >> 28) == 0xE
        return (self.value >> 120) == 0xFF

    def top_bits(self, n: int) -> int:
        """Return the top ``n`` bits of the address as an integer."""
        if n == 0:
            return 0
        return self.value >> (self.width - n)

    def to_bytes(self) -> bytes:
        return self.value.to_bytes(self.width // 8, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "IPAddress":
        return cls(int.from_bytes(data, "big"), len(data) * 8)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, IPAddress)
            and self.value == other.value
            and self.width == other.width
        )

    def __hash__(self) -> int:
        return hash((self.value, self.width))

    def __lt__(self, other: "IPAddress") -> bool:
        return (self.width, self.value) < (other.width, other.value)

    def __str__(self) -> str:
        if self.width == IPV4_WIDTH:
            return _format_ipv4(self.value)
        return _format_ipv6(self.value)

    def __repr__(self) -> str:
        return f"IPAddress({str(self)!r})"


class Prefix:
    """An address prefix ``value/prefix_len`` over a ``width``-bit space.

    The stored ``value`` is canonical: bits below the prefix are zero.
    A zero-length prefix matches every address (the paper's ``*``).
    """

    __slots__ = ("value", "length", "width")

    def __init__(self, value: int, length: int, width: int):
        if width not in (IPV4_WIDTH, IPV6_WIDTH):
            raise AddressError(f"unsupported prefix width {width}")
        if not 0 <= length <= width:
            raise AddressError(f"prefix length {length} out of range for /{width}")
        mask = self.mask_for(length, width)
        self.value = value & mask
        self.length = length
        self.width = width

    @staticmethod
    def mask_for(length: int, width: int) -> int:
        if length == 0:
            return 0
        return ((1 << length) - 1) << (width - length)

    @classmethod
    def parse(cls, text: str, width: Optional[int] = None) -> "Prefix":
        """Parse ``a.b.c.d/len``, the paper's ``129.*.*.*`` style, or ``*``.

        ``width`` forces the address family for the bare-``*`` form (it
        defaults to IPv4 when the family cannot be inferred).
        """
        text = text.strip()
        if text == "*":
            return cls(0, 0, width or IPV4_WIDTH)
        if "/" in text:
            addr_text, _, len_text = text.partition("/")
            addr = IPAddress.parse(addr_text)
            try:
                length = int(len_text)
            except ValueError as exc:
                raise AddressError(f"bad prefix length in {text!r}") from exc
            return cls(addr.value, length, addr.width)
        if ":" in text:
            addr = IPAddress.parse(text)
            return cls(addr.value, addr.width, addr.width)
        # IPv4 with possible '*' octets: 129.*.*.* or the shorthand 129.*
        parts = text.split(".")
        if "*" in parts:
            star = parts.index("*")
            if any(p != "*" for p in parts[star:]):
                raise AddressError(f"non-contiguous wildcard octets in {text!r}")
            octets = parts[:star]
            if len(octets) > 4:
                raise AddressError(f"too many octets in {text!r}")
            value = 0
            for octet_text in octets:
                octet = int(octet_text)
                if octet > 255:
                    raise AddressError(f"octet out of range in {text!r}")
                value = (value << 8) | octet
            length = 8 * len(octets)
            return cls(value << (IPV4_WIDTH - length), length, IPV4_WIDTH)
        addr = IPAddress.parse(text)
        return cls(addr.value, addr.width, addr.width)

    @classmethod
    def host(cls, addr: IPAddress) -> "Prefix":
        """The fully-specified /width prefix for one address."""
        return cls(addr.value, addr.width, addr.width)

    @classmethod
    def default(cls, width: int = IPV4_WIDTH) -> "Prefix":
        return cls(0, 0, width)

    @property
    def mask(self) -> int:
        return self.mask_for(self.length, self.width)

    @property
    def is_wildcard(self) -> bool:
        return self.length == 0

    @property
    def is_host(self) -> bool:
        return self.length == self.width

    def matches(self, addr) -> bool:
        """True if ``addr`` (IPAddress or raw int) falls inside this prefix."""
        value = addr.value if isinstance(addr, IPAddress) else addr
        return (value & self.mask) == self.value

    def covers(self, other: "Prefix") -> bool:
        """True if every address in ``other`` is also in ``self``."""
        return (
            self.width == other.width
            and self.length <= other.length
            and (other.value & self.mask) == self.value
        )

    def key_bits(self) -> int:
        """The prefix's significant top bits, right-aligned."""
        if self.length == 0:
            return 0
        return self.value >> (self.width - self.length)

    def enumerate_parents(self) -> Iterator["Prefix"]:
        """Yield every strictly shorter prefix of this prefix, longest first."""
        for length in range(self.length - 1, -1, -1):
            yield Prefix(self.value, length, self.width)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Prefix)
            and self.value == other.value
            and self.length == other.length
            and self.width == other.width
        )

    def __hash__(self) -> int:
        return hash((self.value, self.length, self.width))

    def __lt__(self, other: "Prefix") -> bool:
        return (self.width, self.length, self.value) < (
            other.width,
            other.length,
            other.value,
        )

    def __str__(self) -> str:
        if self.length == 0:
            return "*"
        return f"{IPAddress(self.value, self.width)}/{self.length}"

    def __repr__(self) -> str:
        return f"Prefix({str(self)!r})"


def parse_host(text: str) -> IPAddress:
    """Convenience: parse a host address (no prefix syntax allowed)."""
    if "/" in text or "*" in text:
        raise AddressError(f"{text!r} is a prefix, not a host address")
    return IPAddress.parse(text)


def common_prefix_len(a: IPAddress, b: IPAddress) -> int:
    """Number of leading bits shared by two same-width addresses."""
    if a.width != b.width:
        raise AddressError("addresses from different families")
    diff = a.value ^ b.value
    if diff == 0:
        return a.width
    return a.width - diff.bit_length()


def prefix_range(prefix: Prefix) -> Tuple[int, int]:
    """Return the (low, high) inclusive integer range covered by a prefix."""
    low = prefix.value
    high = prefix.value | ((1 << (prefix.width - prefix.length)) - 1)
    return low, high
