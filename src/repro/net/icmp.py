"""ICMP / ICMPv6 error generation — the control messages a real router
emits for TTL expiry, unroutable destinations, oversized packets, and
bad options (the option plugin's "drop + ICMP" action bits).

Errors quote the leading bytes of the offending datagram (RFC 792 /
RFC 4443) and are rate-limited by a token bucket, as every production
stack does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .addresses import IPAddress
from .packet import Packet

# ICMPv4 types/codes (RFC 792).
ICMP_DEST_UNREACHABLE = 3
ICMP_TIME_EXCEEDED = 11
ICMP_PARAM_PROBLEM = 12
UNREACH_NET = 0
UNREACH_HOST = 1
UNREACH_FRAG_NEEDED = 4

# ICMPv6 types (RFC 4443).
ICMP6_DEST_UNREACHABLE = 1
ICMP6_PACKET_TOO_BIG = 2
ICMP6_TIME_EXCEEDED = 3
ICMP6_PARAM_PROBLEM = 4

PROTO_ICMP = 1
PROTO_ICMPV6 = 58

#: How much of the offending datagram an error quotes.
QUOTE_BYTES = 28 + 8          # original header + 8 payload bytes (v4 rule)


@dataclass(frozen=True)
class IcmpInfo:
    """Parsed ICMP semantics carried in ``packet.annotations['icmp']``."""

    icmp_type: int
    code: int = 0
    mtu: Optional[int] = None    # for packet-too-big / frag-needed

    @property
    def is_time_exceeded(self) -> bool:
        return self.icmp_type in (ICMP_TIME_EXCEEDED, ICMP6_TIME_EXCEEDED)

    @property
    def is_unreachable(self) -> bool:
        return self.icmp_type in (ICMP_DEST_UNREACHABLE, ICMP6_DEST_UNREACHABLE)

    @property
    def is_too_big(self) -> bool:
        return self.icmp_type == ICMP6_PACKET_TOO_BIG or (
            self.icmp_type == ICMP_DEST_UNREACHABLE and self.code == UNREACH_FRAG_NEEDED
        )


def icmp_error(
    original: Packet,
    source: Optional[IPAddress],
    icmp_type: int,
    code: int = 0,
    mtu: Optional[int] = None,
) -> Optional[Packet]:
    """Build the ICMP error a router sends about ``original``.

    Returns None when no error may be generated: no usable source
    address, the offending packet is itself an ICMP error (never answer
    errors with errors, RFC 1122), or the source family mismatches.
    """
    if source is None:
        return None
    if original.protocol in (PROTO_ICMP, PROTO_ICMPV6):
        existing = original.annotations.get("icmp")
        if existing is None or existing.icmp_type not in (128, 129, 8, 0):
            return None  # don't answer errors (echo req/reply are fine)
    if source.width != original.src.width:
        return None
    try:
        quote = original.serialize()[:QUOTE_BYTES]
    except Exception:
        quote = b""
    error = Packet(
        src=source,
        dst=original.src,
        protocol=PROTO_ICMPV6 if original.is_ipv6 else PROTO_ICMP,
        payload=quote,
        ttl=64,
    )
    error.annotations["icmp"] = IcmpInfo(icmp_type=icmp_type, code=code, mtu=mtu)
    return error


def time_exceeded(original: Packet, source: IPAddress) -> Optional[Packet]:
    icmp_type = ICMP6_TIME_EXCEEDED if original.is_ipv6 else ICMP_TIME_EXCEEDED
    return icmp_error(original, source, icmp_type)


def destination_unreachable(
    original: Packet, source: IPAddress, code: int = UNREACH_NET
) -> Optional[Packet]:
    if original.is_ipv6:
        return icmp_error(original, source, ICMP6_DEST_UNREACHABLE, code=0)
    return icmp_error(original, source, ICMP_DEST_UNREACHABLE, code=code)


def packet_too_big(original: Packet, source: IPAddress, mtu: int) -> Optional[Packet]:
    if original.is_ipv6:
        return icmp_error(original, source, ICMP6_PACKET_TOO_BIG, mtu=mtu)
    return icmp_error(
        original, source, ICMP_DEST_UNREACHABLE, code=UNREACH_FRAG_NEEDED, mtu=mtu
    )


class IcmpRateLimiter:
    """A token bucket bounding error generation (default 10/s, burst 10)."""

    def __init__(self, rate_per_s: float = 10.0, burst: int = 10):
        self.rate = rate_per_s
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last = 0.0
        self.suppressed = 0

    def allow(self, now: float) -> bool:
        elapsed = max(0.0, now - self._last)
        self._last = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        self.suppressed += 1
        return False
