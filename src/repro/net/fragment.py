"""IPv4 fragmentation and reassembly.

The paper sidesteps fragmentation ("The ATM MTU was 9180, so there was
no fragmentation"), but a router library needs it: IPv4 packets larger
than the output MTU are fragmented (unless DF), IPv6 packets are never
fragmented in the network (the router answers Packet Too Big instead).

Fragments are modelled as packets whose fragmentation fields ride in
``annotations['frag']``; the payload is the corresponding byte slice.
Fragment boundaries fall on 8-byte multiples, per RFC 791.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .packet import Packet

_ident = itertools.count(1)

IPV4_HEADER = 20


class FragmentationError(ValueError):
    """Cannot fragment (DF set, IPv6, or absurd MTU)."""


@dataclass(frozen=True)
class FragInfo:
    """The fragmentation header fields for one fragment."""

    ident: int
    offset: int          # in bytes (multiple of 8 except implied)
    more_fragments: bool

    @property
    def is_first(self) -> bool:
        return self.offset == 0


def fragment_v4(packet: Packet, mtu: int, df: bool = False) -> List[Packet]:
    """Split an IPv4 packet into MTU-sized fragments.

    The transport header travels only in the first fragment (as on the
    wire); per-fragment payloads are the raw byte slices of the original
    transport payload.
    """
    if packet.is_ipv6:
        raise FragmentationError("IPv6 packets are never fragmented in the network")
    if packet.length <= mtu:
        return [packet]
    if df:
        raise FragmentationError("DF set on an oversized packet")
    chunk = mtu - IPV4_HEADER
    chunk -= chunk % 8
    if chunk <= 0:
        raise FragmentationError(f"MTU {mtu} cannot carry any payload")
    # The fragmentable part: transport header + payload, as raw bytes.
    body = packet.serialize()[IPV4_HEADER:]
    ident = next(_ident)
    fragments: List[Packet] = []
    offset = 0
    while offset < len(body):
        piece = body[offset : offset + chunk]
        frag = Packet(
            src=packet.src,
            dst=packet.dst,
            protocol=packet.protocol,
            # Ports are classification metadata: only the first fragment
            # carries the transport header, so later fragments have none
            # (the classic fragment/classifier interaction).
            src_port=packet.src_port if offset == 0 else 0,
            dst_port=packet.dst_port if offset == 0 else 0,
            iif=packet.iif,
            payload=piece,
            ttl=packet.ttl,
            tos=packet.tos,
        )
        more = offset + chunk < len(body)
        frag.annotations["frag"] = FragInfo(ident, offset, more)
        frag.annotations["frag_raw"] = piece
        fragments.append(frag)
        offset += chunk
    return fragments


class Reassembler:
    """End-host reassembly of fragmented v4 packets (for tests/hosts)."""

    def __init__(self, timeout: float = 30.0):
        self.timeout = timeout
        # (src, dst, ident) -> {offset: bytes}, plus bookkeeping.
        self._partial: Dict[Tuple, Dict[int, bytes]] = {}
        self._seen_last: Dict[Tuple, int] = {}
        self._started: Dict[Tuple, float] = {}
        self.completed = 0
        self.timed_out = 0

    def add(self, fragment: Packet, now: float = 0.0) -> Optional[Packet]:
        """Feed one fragment; returns the reassembled packet when done."""
        info: Optional[FragInfo] = fragment.annotations.get("frag")
        if info is None:
            return fragment  # not a fragment
        key = (fragment.src.value, fragment.dst.value, info.ident)
        pieces = self._partial.setdefault(key, {})
        self._started.setdefault(key, now)
        pieces[info.offset] = fragment.annotations["frag_raw"]
        if not info.more_fragments:
            self._seen_last[key] = info.offset + len(
                fragment.annotations["frag_raw"]
            )
        total = self._seen_last.get(key)
        if total is None:
            return None
        have = sum(len(piece) for piece in pieces.values())
        if have < total:
            return None
        body = b"".join(pieces[offset] for offset in sorted(pieces))
        del self._partial[key], self._seen_last[key], self._started[key]
        self.completed += 1
        # Rebuild the original datagram from header info + body bytes.
        header = bytearray(20)
        header[0] = 0x45
        total_len = 20 + len(body)
        header[2:4] = total_len.to_bytes(2, "big")
        header[8] = fragment.ttl
        header[9] = fragment.protocol
        header[12:16] = fragment.src.to_bytes()
        header[16:20] = fragment.dst.to_bytes()
        from .checksum import internet_checksum

        csum = internet_checksum(bytes(header))
        header[10:12] = csum.to_bytes(2, "big")
        return Packet.parse(bytes(header) + body, iif=fragment.iif)

    def expire(self, now: float) -> int:
        stale = [k for k, started in self._started.items()
                 if now - started > self.timeout]
        for key in stale:
            self._partial.pop(key, None)
            self._seen_last.pop(key, None)
            self._started.pop(key, None)
            self.timed_out += 1
        return len(stale)

    @property
    def pending(self) -> int:
        return len(self._partial)
