"""Text formatters over :meth:`RouterPluginLibrary.query` results.

Every ``pmgr show X`` text output is produced by rendering the
structured query dict through :func:`render_topic` — the text view is a
pure function of the JSON view, so the two can never drift (asserted
topic-by-topic by ``tests/mgr/test_query_roundtrip.py``).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..core.faults import render_fault

#: Topics ``query``/``show`` understand, in help order.
TOPICS = (
    "plugins", "filters", "flows", "aiu", "faults", "health",
    "telemetry", "trace", "overload", "shards",
)


def _render_plugins(data: dict) -> List[str]:
    return [entry["name"] for entry in data["plugins"]]


def _render_filters(data: dict) -> List[str]:
    return [
        f"{entry['gate']}: {entry['filter']} -> "
        f"{entry['instance'] if entry['bound'] else 'unbound'}"
        for entry in data["filters"]
    ]


def _render_flows(data: dict) -> List[str]:
    return [str(data)]


def _render_aiu(data: dict) -> List[str]:
    lines = [
        f"{gate}: filters={stats['filters']} "
        f"lookups={stats['lookups']} compiled={stats['compiled']} "
        f"matches={stats['matches']}"
        for gate, stats in data["gates"].items()
    ]
    cache = data["flow_cache"]
    lines.append(
        f"flow cache: hits={cache['hits']} misses={cache['misses']} "
        f"active={cache['active']} filter_lookups={cache['filter_lookups']}"
    )
    lines.append(f"analyzed: {data['analyzed']}")
    return lines


def _render_faults(data: dict) -> List[str]:
    plugins = data["plugins"]
    if not plugins:
        return ["no plugin faults recorded"]
    lines: List[str] = []
    for name, snap in plugins.items():
        lines.append(
            f"{name}: {snap['state']} action={snap['action']} "
            f"faults={snap['faults_total']} "
            f"quarantines={snap['quarantine_count']}"
        )
        for record in snap["records"]:
            lines.append(f"  {render_fault(record)}")
    return lines


def _render_health(data: dict) -> List[str]:
    return [str(data)]


def _render_telemetry(data: dict) -> List[str]:
    if not data.get("enabled"):
        return ["telemetry disabled (pmgr: telemetry on)"]
    lines = [f"{name} {value}" for name, value in sorted(data["counters"].items())]
    lines.extend(
        f"{name} {value}" for name, value in sorted(data["gauges"].items())
    )
    for name, hist in sorted(data["histograms"].items()):
        lines.append(
            f"{name} count={hist['count']} sum={hist['sum']:g} "
            f"buckets={hist['counts']}"
        )
    return lines


def _render_trace(data: dict) -> List[str]:
    if not data.get("enabled"):
        return ["tracing disabled (pmgr: trace on [sample=N] [capacity=N])"]
    lines = [
        f"trace: sample=1/{data['sample']} capacity={data['capacity']} "
        f"sampled={data['sampled']} recorded={data['recorded']} "
        f"open={data['open']}"
    ]
    for span in data["spans"]:
        stages = " ".join(
            f"{stage['stage']}={stage['cycles']}cyc"
            + (f"/{stage['vtime']:g}s" if stage["vtime"] else "")
            for stage in span["stages"]
        )
        lines.append(
            f"  #{span['packet_id']} {span['flow']} -> {span['disposition']} "
            f"({span['total_cycles']} cycles) {stages}"
        )
    return lines


def _render_overload(data: dict) -> List[str]:
    if not data.get("enabled"):
        return ["overload governor disabled (pmgr: overload on [key=value...])"]
    window = data["window"]
    counters = data["counters"]
    occupancy = window["occupancy"]
    lines = [
        f"tier: {data['tier']}",
        "window: "
        f"packets={window['packets']} "
        f"miss_ratio={window['miss_ratio']:.3f} "
        f"evict_frac={window['evict_frac']:.3f} "
        f"occupancy={'-' if occupancy is None else f'{occupancy:.3f}'}",
        "admission: "
        f"admitted={counters['admitted']} bypassed={counters['bypassed']} "
        f"shed={counters['shed']}",
        "ladder: "
        f"escalations={counters['escalations']} "
        f"deescalations={counters['deescalations']} "
        f"samples={counters['samples']}",
    ]
    for t in data["transitions"]:
        lines.append(
            f"  t={t['time']:g} {t['from']} -> {t['to']} ({t['reason']}, "
            f"miss={t['miss_ratio']} evict={t['evict_frac']})"
        )
    return lines


def _render_shards(data: dict) -> List[str]:
    lines = [f"shards: {data['nshards']} backend={data['backend']}"]
    for row in data["shards"]:
        lines.append(
            f"  shard {row['shard']}: rx={row['rx']} "
            f"forwarded={row['forwarded']} dropped={row['dropped']} "
            f"flows={row['flows_active']} "
            f"hits={row['flow_hits']} misses={row['flow_misses']} "
            f"evictions={row['evictions']} filters={row['filters']} "
            f"tier={row['overload_tier']}"
            + (f" quarantined={','.join(row['quarantined'])}"
               if row["quarantined"] else "")
        )
    return lines


_RENDERERS: Dict[str, Callable[[dict], List[str]]] = {
    "plugins": _render_plugins,
    "filters": _render_filters,
    "flows": _render_flows,
    "aiu": _render_aiu,
    "faults": _render_faults,
    "health": _render_health,
    "telemetry": _render_telemetry,
    "trace": _render_trace,
    "overload": _render_overload,
    "shards": _render_shards,
}


def render_topic(topic: str, data: dict) -> List[str]:
    """Render one query result as the pmgr text lines for its topic."""
    try:
        renderer = _RENDERERS[topic]
    except KeyError as exc:
        raise KeyError(
            f"no text formatter for topic {topic!r}; known: {sorted(_RENDERERS)}"
        ) from exc
    return renderer(data)
