"""The versioned management-API topic registry and its text formatters.

Every ``pmgr show X`` topic is a :class:`TopicSpec` registered here via
:func:`register_topic`: a structured query function, a text renderer, a
schema version, and a cross-node merge strategy.  ``query()`` results
carry a ``"schema": {"topic": ..., "version": N}`` envelope;  the text
view is a pure function of the JSON view minus that envelope, so the two
can never drift (asserted topic-by-topic by
``tests/mgr/test_query_roundtrip.py``).

Core topics are registered at import time; subsystems add their own the
same way (``repro.topo`` registers ``topology`` and ``paths``), and
``pmgr show <topic> --json``, the sharded/topology fanout libraries, and
the ci_check.sh JSON-roundtrip gate pick new registrations up
automatically.

Merge strategies (the :class:`~repro.shard.control.ShardedPluginLibrary`
and :class:`~repro.topo.control.TopologyPluginLibrary` aggregation
rules, declared per topic instead of hardcoded per library):

* ``"sum"`` — key-wise numeric sum, dicts recursed (flows, aiu).
* ``"bucketwise"`` — counters/gauges summed, histograms merged
  bucket-by-bucket (telemetry).
* ``"worst-wins"`` — worst tier rung wins, window pressure is the
  per-node max, counters summed, transitions time-sorted (overload).
* ``"concat"`` — lists concatenated, numerics summed (paths).
* ``"shard0"`` — configuration views identical across nodes by fanout
  construction; node 0 answers (plugins, filters).
* ``"frontend"`` — the fanout front end answers directly instead of
  merging per-node payloads (health, shards, topology).
* a callable ``merge(per_node: List[dict]) -> dict`` for bespoke
  shapes (trace, faults).

The pre-registry module surface (``TOPICS`` tuple, ``_RENDERERS`` dict)
remains importable through deprecation shims that warn once; use
:func:`topic_names` / :func:`get_topic` instead.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, List, Tuple, Union

from ..core.errors import ConfigurationError
from ..core.faults import render_fault
from ..core.overload import TIERS

QueryFn = Union[str, Callable[..., dict]]
Renderer = Callable[[dict], List[str]]
MergeFn = Callable[[List[dict]], dict]


class TopicSpec:
    """One registered management topic: query + render + schema + merge."""

    __slots__ = ("name", "query_fn", "renderer", "schema_version", "merge")

    def __init__(
        self,
        name: str,
        query_fn: QueryFn,
        renderer: Renderer,
        schema_version: int = 1,
        merge: Union[str, MergeFn] = "sum",
    ):
        self.name = name
        self.query_fn = query_fn
        self.renderer = renderer
        self.schema_version = schema_version
        self.merge = merge

    def run_query(self, library, **filters) -> dict:
        """Run the topic's query against a library.  A string query_fn
        names a library method (core topics); a callable receives the
        library as its first argument (registered topics)."""
        fn = self.query_fn
        if isinstance(fn, str):
            return getattr(library, fn)(**filters)
        return fn(library, **filters)

    def envelope(self) -> dict:
        return {"topic": self.name, "version": self.schema_version}

    def __repr__(self) -> str:
        merge = self.merge if isinstance(self.merge, str) else "custom"
        return (
            f"TopicSpec({self.name!r}, v{self.schema_version}, "
            f"merge={merge!r})"
        )


#: name -> TopicSpec, in registration (= help) order.
_REGISTRY: Dict[str, TopicSpec] = {}


def register_topic(
    name: str,
    query_fn: QueryFn,
    renderer: Renderer,
    schema_version: int = 1,
    merge: Union[str, MergeFn] = "sum",
    replace: bool = False,
) -> TopicSpec:
    """Register a management topic; ``pmgr show <name> [--json]`` and
    every fanout library pick it up immediately.

    ``query_fn`` is ``fn(library, **filters) -> dict`` (or the name of a
    library method), ``renderer`` is ``fn(payload) -> List[str]`` over
    the schema-stripped payload, and ``merge`` declares how per-node
    payloads aggregate (a strategy name or a callable — see the module
    docstring).
    """
    if not name or not name.replace("_", "").isalnum():
        raise ConfigurationError(f"bad topic name {name!r}")
    if name in _REGISTRY and not replace:
        raise ConfigurationError(
            f"topic {name!r} is already registered (pass replace=True "
            "to override)"
        )
    if not callable(renderer):
        raise ConfigurationError(f"renderer for {name!r} must be callable")
    if not (callable(query_fn) or isinstance(query_fn, str)):
        raise ConfigurationError(
            f"query_fn for {name!r} must be callable or a method name"
        )
    if not isinstance(schema_version, int) or schema_version < 1:
        raise ConfigurationError(
            f"schema_version for {name!r} must be a positive int"
        )
    if not callable(merge) and merge not in MERGE_STRATEGIES and merge != "frontend":
        raise ConfigurationError(
            f"unknown merge strategy {merge!r} for topic {name!r}; known: "
            f"{sorted(MERGE_STRATEGIES)} + 'frontend' or a callable"
        )
    spec = TopicSpec(name, query_fn, renderer, schema_version, merge)
    _REGISTRY[name] = spec
    return spec


def topic_names() -> Tuple[str, ...]:
    """All registered topics, in registration (= help) order."""
    return tuple(_REGISTRY)


def get_topic(name: str) -> TopicSpec:
    """The spec for a registered topic (KeyError with the known set)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown query topic {name!r}; known: {list(_REGISTRY)}"
        ) from None


def attach_schema(spec: TopicSpec, data: dict) -> dict:
    """Shallow-copy a query payload and stamp the schema envelope."""
    out = dict(data)
    out["schema"] = spec.envelope()
    return out


def strip_schema(data: dict) -> dict:
    if "schema" not in data:
        return data
    return {k: v for k, v in data.items() if k != "schema"}


# ----------------------------------------------------------------------
# Merge strategies (cross-node aggregation, docs/OBSERVABILITY.md)
# ----------------------------------------------------------------------
def merge_sum_dict(dicts: List[dict]) -> dict:
    """Key-wise merge: numerics summed, dicts recursed, first otherwise."""
    out: dict = {}
    for d in dicts:
        for key, value in d.items():
            if isinstance(value, bool):
                out.setdefault(key, value)
            elif isinstance(value, (int, float)):
                out[key] = out.get(key, 0) + value
            elif isinstance(value, dict):
                out[key] = merge_sum_dict([out.get(key, {}), value])
            else:
                out.setdefault(key, value)
    return out


def _merge_bucketwise(per_node: List[dict]) -> dict:
    """Telemetry-shaped merge: counters/gauges summed, histograms merged
    bucket-by-bucket; any disabled node disables the aggregate."""
    if not all(d.get("enabled", True) for d in per_node):
        return {"enabled": False}
    merged: dict = {"enabled": True, "counters": {}, "gauges": {},
                    "histograms": {}}
    for d in per_node:
        for name, value in d.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0) + value
        for name, value in d.get("gauges", {}).items():
            merged["gauges"][name] = merged["gauges"].get(name, 0) + value
        for name, hist in d.get("histograms", {}).items():
            slot = merged["histograms"].get(name)
            if slot is None:
                merged["histograms"][name] = {
                    "bounds": list(hist["bounds"]),
                    "counts": list(hist["counts"]),
                    "count": hist["count"],
                    "sum": hist["sum"],
                }
            else:
                slot["counts"] = [
                    a + b for a, b in zip(slot["counts"], hist["counts"])
                ]
                slot["count"] += hist["count"]
                slot["sum"] += hist["sum"]
    return merged


def _merge_worst_wins(per_node: List[dict]) -> dict:
    """Overload-shaped merge: worst tier rung wins and window pressure
    is the per-node max — one thrashing node is an incident even when
    its peers are idle.  Counters sum; transitions interleave by time."""
    enabled = [d for d in per_node if d.get("enabled")]
    if not enabled:
        return {"enabled": False}
    return {
        "enabled": True,
        "tier": max((d["tier"] for d in enabled), key=TIERS.index),
        "window": {
            "packets": sum(d["window"]["packets"] for d in enabled),
            "miss_ratio": max(d["window"]["miss_ratio"] for d in enabled),
            "evict_frac": max(d["window"]["evict_frac"] for d in enabled),
            "occupancy": max(
                (d["window"]["occupancy"] for d in enabled
                 if d["window"]["occupancy"] is not None),
                default=None,
            ),
        },
        "counters": merge_sum_dict([d["counters"] for d in enabled]),
        "transitions": sorted(
            (t for d in enabled for t in d["transitions"]),
            key=lambda t: t["time"],
        ),
    }


def _merge_concat(per_node: List[dict]) -> dict:
    """List-carrying merge: lists concatenated in node order, numerics
    summed, dicts recursed, first value otherwise."""
    out: dict = {}
    for d in per_node:
        for key, value in d.items():
            if isinstance(value, list):
                out[key] = list(out.get(key, [])) + list(value)
            elif isinstance(value, bool):
                out.setdefault(key, value)
            elif isinstance(value, (int, float)):
                out[key] = out.get(key, 0) + value
            elif isinstance(value, dict):
                out[key] = merge_sum_dict([out.get(key, {}), value])
            else:
                out.setdefault(key, value)
    return out


def _merge_shard0(per_node: List[dict]) -> dict:
    """Configuration views are identical across nodes by fanout
    construction; node 0 answers for all."""
    return per_node[0] if per_node else {}


def _merge_trace(per_node: List[dict]) -> dict:
    """Bespoke: sample/capacity are per-node configuration (identical by
    fanout), so first-wins rather than summed; spans concatenate."""
    enabled = [d for d in per_node if d.get("enabled")]
    if not enabled:
        return {"enabled": False}
    first = enabled[0]
    return {
        "enabled": True,
        "sample": first["sample"],
        "capacity": first["capacity"],
        "sampled": sum(d["sampled"] for d in enabled),
        "recorded": sum(d["recorded"] for d in enabled),
        "open": sum(d["open"] for d in enabled),
        "spans": [span for d in enabled for span in d["spans"]],
    }


def _merge_faults(per_node: List[dict]) -> dict:
    """Bespoke: per-plugin fault snapshots merge field-by-field, and any
    node reporting a quarantine surfaces it on the aggregate."""
    plugins: dict = {}
    for d in per_node:
        for name, snap in d["plugins"].items():
            slot = plugins.get(name)
            if slot is None:
                plugins[name] = dict(snap)
            else:
                for key, value in snap.items():
                    if isinstance(value, bool):
                        slot[key] = slot.get(key) or value
                    elif isinstance(value, (int, float)):
                        slot[key] = slot.get(key, 0) + value
                    elif key == "records":
                        slot[key] = list(slot.get(key, [])) + list(value)
                    elif key == "state" and slot.get(key) != value:
                        # Any node quarantined -> surface it.
                        if value == "quarantined":
                            slot[key] = value
    return {"plugins": plugins}


#: Named strategies a TopicSpec.merge may reference.  "frontend" is
#: handled by the fanout libraries themselves (no payload merge).
MERGE_STRATEGIES: Dict[str, MergeFn] = {
    "sum": merge_sum_dict,
    "bucketwise": _merge_bucketwise,
    "worst-wins": _merge_worst_wins,
    "concat": _merge_concat,
    "shard0": _merge_shard0,
}


def merge_topic(topic: Union[str, TopicSpec], per_node: List[dict]) -> dict:
    """Merge per-node query payloads per the topic's declared strategy.
    Schema envelopes are stripped before merging (so version ints are
    never summed); the caller re-attaches via :func:`attach_schema`."""
    spec = topic if isinstance(topic, TopicSpec) else get_topic(topic)
    if spec.merge == "frontend":
        raise ConfigurationError(
            f"topic {spec.name!r} is answered by the fanout front end, "
            "not merged from per-node payloads"
        )
    stripped = [strip_schema(d) for d in per_node]
    strategy = spec.merge if callable(spec.merge) else MERGE_STRATEGIES[spec.merge]
    return strategy(stripped)


# ----------------------------------------------------------------------
# Core topic renderers
# ----------------------------------------------------------------------
def _render_plugins(data: dict) -> List[str]:
    return [entry["name"] for entry in data["plugins"]]


def _render_filters(data: dict) -> List[str]:
    return [
        f"{entry['gate']}: {entry['filter']} -> "
        f"{entry['instance'] if entry['bound'] else 'unbound'}"
        for entry in data["filters"]
    ]


def _render_flows(data: dict) -> List[str]:
    return [str(data)]


def _render_aiu(data: dict) -> List[str]:
    lines = [
        f"{gate}: filters={stats['filters']} "
        f"lookups={stats['lookups']} compiled={stats['compiled']} "
        f"matches={stats['matches']}"
        for gate, stats in data["gates"].items()
    ]
    cache = data["flow_cache"]
    lines.append(
        f"flow cache: hits={cache['hits']} misses={cache['misses']} "
        f"active={cache['active']} filter_lookups={cache['filter_lookups']}"
    )
    lines.append(f"analyzed: {data['analyzed']}")
    return lines


def _render_faults(data: dict) -> List[str]:
    plugins = data["plugins"]
    if not plugins:
        return ["no plugin faults recorded"]
    lines: List[str] = []
    for name, snap in plugins.items():
        lines.append(
            f"{name}: {snap['state']} action={snap['action']} "
            f"faults={snap['faults_total']} "
            f"quarantines={snap['quarantine_count']}"
        )
        for record in snap["records"]:
            lines.append(f"  {render_fault(record)}")
    return lines


def _render_health(data: dict) -> List[str]:
    return [str(data)]


def _render_telemetry(data: dict) -> List[str]:
    if not data.get("enabled"):
        return ["telemetry disabled (pmgr: telemetry on)"]
    lines = [f"{name} {value}" for name, value in sorted(data["counters"].items())]
    lines.extend(
        f"{name} {value}" for name, value in sorted(data["gauges"].items())
    )
    for name, hist in sorted(data["histograms"].items()):
        lines.append(
            f"{name} count={hist['count']} sum={hist['sum']:g} "
            f"buckets={hist['counts']}"
        )
    return lines


def _render_trace(data: dict) -> List[str]:
    if not data.get("enabled"):
        return ["tracing disabled (pmgr: trace on [sample=N] [capacity=N])"]
    lines = [
        f"trace: sample=1/{data['sample']} capacity={data['capacity']} "
        f"sampled={data['sampled']} recorded={data['recorded']} "
        f"open={data['open']}"
    ]
    for span in data["spans"]:
        stages = " ".join(
            f"{stage['stage']}={stage['cycles']}cyc"
            + (f"/{stage['vtime']:g}s" if stage["vtime"] else "")
            for stage in span["stages"]
        )
        lines.append(
            f"  #{span['packet_id']} {span['flow']} -> {span['disposition']} "
            f"({span['total_cycles']} cycles) {stages}"
        )
    return lines


def _render_overload(data: dict) -> List[str]:
    if not data.get("enabled"):
        return ["overload governor disabled (pmgr: overload on [key=value...])"]
    window = data["window"]
    counters = data["counters"]
    occupancy = window["occupancy"]
    lines = [
        f"tier: {data['tier']}",
        "window: "
        f"packets={window['packets']} "
        f"miss_ratio={window['miss_ratio']:.3f} "
        f"evict_frac={window['evict_frac']:.3f} "
        f"occupancy={'-' if occupancy is None else f'{occupancy:.3f}'}",
        "admission: "
        f"admitted={counters['admitted']} bypassed={counters['bypassed']} "
        f"shed={counters['shed']}",
        "ladder: "
        f"escalations={counters['escalations']} "
        f"deescalations={counters['deescalations']} "
        f"samples={counters['samples']}",
    ]
    for t in data["transitions"]:
        lines.append(
            f"  t={t['time']:g} {t['from']} -> {t['to']} ({t['reason']}, "
            f"miss={t['miss_ratio']} evict={t['evict_frac']})"
        )
    return lines


def _render_shards(data: dict) -> List[str]:
    lines = [f"shards: {data['nshards']} backend={data['backend']}"]
    for row in data["shards"]:
        lines.append(
            f"  shard {row['shard']}: rx={row['rx']} "
            f"forwarded={row['forwarded']} dropped={row['dropped']} "
            f"flows={row['flows_active']} "
            f"hits={row['flow_hits']} misses={row['flow_misses']} "
            f"evictions={row['evictions']} filters={row['filters']} "
            f"tier={row['overload_tier']}"
            + (f" quarantined={','.join(row['quarantined'])}"
               if row["quarantined"] else "")
        )
    return lines


# Core registrations, in the historical TOPICS help order.  String
# query_fns name RouterPluginLibrary methods; fanout libraries override
# "frontend" topics with their own handlers.
register_topic("plugins", "_query_plugins", _render_plugins, merge="shard0")
register_topic("filters", "_query_filters", _render_filters, merge="shard0")
register_topic("flows", "_query_flows", _render_flows, merge="sum")
register_topic("aiu", "_query_aiu", _render_aiu, merge="sum")
register_topic("faults", "_query_faults", _render_faults, merge=_merge_faults)
register_topic("health", "_query_health", _render_health, merge="frontend")
register_topic("telemetry", "_query_telemetry", _render_telemetry,
               merge="bucketwise")
register_topic("trace", "_query_trace", _render_trace, merge=_merge_trace)
register_topic("overload", "_query_overload", _render_overload,
               merge="worst-wins")
register_topic("shards", "_query_shards", _render_shards, merge="frontend")


def render_topic(topic: str, data: dict) -> List[str]:
    """Render one query result as the pmgr text lines for its topic.

    The schema envelope is stripped before rendering, so the text view
    stays a pure function of the payload.  Envelope-less dicts (the
    pre-registry ``query()`` shape) still render, with a one-release
    :class:`DeprecationWarning`.
    """
    try:
        spec = _REGISTRY[topic]
    except KeyError as exc:
        raise KeyError(
            f"no text formatter for topic {topic!r}; known: {sorted(_REGISTRY)}"
        ) from exc
    if "schema" not in data:
        warnings.warn(
            f"rendering a query payload for {topic!r} without the "
            "'schema' envelope is deprecated; query() now returns "
            "schema-enveloped dicts (removed in 2.0)",
            DeprecationWarning,
            stacklevel=2,
        )
    return spec.renderer(strip_schema(data))


def _deprecated_renderers() -> Dict[str, Renderer]:
    return {name: spec.renderer for name, spec in _REGISTRY.items()}


def __getattr__(name: str):
    # Pre-registry module surface, kept importable one release.
    if name == "TOPICS":
        warnings.warn(
            "repro.mgr.format.TOPICS is deprecated (removed in 2.0); "
            "use repro.mgr.format.topic_names()",
            DeprecationWarning,
            stacklevel=2,
        )
        return topic_names()
    if name == "_RENDERERS":
        warnings.warn(
            "repro.mgr.format._RENDERERS is deprecated (removed in 2.0); "
            "use repro.mgr.format.get_topic(name).renderer",
            DeprecationWarning,
            stacklevel=2,
        )
        return _deprecated_renderers()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | {"TOPICS", "_RENDERERS"})
