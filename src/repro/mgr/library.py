"""The Router Plugin Library (§3.1): "a simple application which takes
arguments from the command line and translates them into calls to the
user-space Router Plugin Library ... This library implements the
function calls needed to configure all kernel level components."

`PLUGIN_REGISTRY` is the modload search path: plugin names → plugin
classes.  :class:`RouterPluginLibrary` wraps one router and exposes the
calls the Plugin Manager and the daemons use.
"""

from __future__ import annotations

import math
import shlex
from typing import Dict, List, Optional, Type

from ..core.errors import ConfigurationError, UnknownPluginError
from ..core.faults import FaultPolicy, PluginFaultDomain
from ..core.plugin import Plugin, PluginInstance
from ..core.router import Router
from ..core.routing_plugin import L4RoutingPlugin
from ..options import HopByHopPlugin, JumboPlugin, RouterAlertPlugin
from ..sched import (
    CbqPlugin,
    DrrPlugin,
    FifoPlugin,
    HfscPlugin,
    HsfPlugin,
    RedPlugin,
    ScfqPlugin,
)
from ..security import AhPlugin, EspPlugin, FirewallPlugin, HwEspPlugin
from ..stats import StatisticsPlugin, TcpMonitorPlugin
from .format import attach_schema, get_topic, render_topic, topic_names

PLUGIN_REGISTRY: Dict[str, Type[Plugin]] = {
    "cbq": CbqPlugin,
    "drr": DrrPlugin,
    "fifo": FifoPlugin,
    "hfsc": HfscPlugin,
    "hsf": HsfPlugin,
    "red": RedPlugin,
    "scfq": ScfqPlugin,
    "ah": AhPlugin,
    "esp": EspPlugin,
    "hwesp": HwEspPlugin,
    "firewall": FirewallPlugin,
    "hopbyhop": HopByHopPlugin,
    "routeralert": RouterAlertPlugin,
    "jumbo": JumboPlugin,
    "stats": StatisticsPlugin,
    "tcpmon": TcpMonitorPlugin,
    "l4route": L4RoutingPlugin,
}


def _coerce(value: str):
    """Best-effort typing for key=value config arguments."""
    lowered = value.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        return value


class RouterPluginLibrary:
    """User-space configuration calls against one router."""

    def __init__(self, router: Router):
        self.router = router
        self._instances: Dict[str, PluginInstance] = {}
        # (aiu.plan_epoch, _config_revision at analysis time,
        # AnalysisReport); purely control-path state — the data path
        # never reads it.  plan_epoch only moves on filter changes, so
        # configuration calls that do not touch filters (modload,
        # create, scheduler changes — exactly what a sharded fanout
        # replays per shard) bump the revision counter instead; the
        # cache is stale when either component moved.
        self._analysis_cache: Optional[tuple] = None
        self._config_revision = 0

    # ------------------------------------------------------------------
    # modload / modunload
    # ------------------------------------------------------------------
    def modload(self, name: str) -> Plugin:
        """Load a plugin by registry name (NetBSD's modload analogue)."""
        if self.router.pcu.is_loaded(name):
            return self.router.pcu.get(name)
        plugin_class = PLUGIN_REGISTRY.get(name)
        if plugin_class is None:
            raise UnknownPluginError(
                f"no plugin {name!r} in the registry; known: {sorted(PLUGIN_REGISTRY)}"
            )
        plugin = plugin_class()
        self.router.pcu.load(plugin)
        self._config_revision += 1
        return plugin

    def modunload(self, name: str) -> None:
        self.router.pcu.unload(name)
        self._instances = {
            key: inst for key, inst in self._instances.items()
            if inst.plugin.name != name
        }
        self._config_revision += 1

    # ------------------------------------------------------------------
    # Instance lifecycle
    # ------------------------------------------------------------------
    def create_instance(self, plugin_name: str, instance_name: str, **config) -> PluginInstance:
        plugin = self.router.pcu.get(plugin_name)
        if instance_name in self._instances:
            raise ConfigurationError(f"duplicate instance name {instance_name!r}")
        instance = plugin.create_instance(name=instance_name, **config)
        self._instances[instance_name] = instance
        self._config_revision += 1
        return instance

    def free_instance(self, instance_name: str) -> None:
        instance = self.instance(instance_name)
        instance.plugin.free_instance(instance)
        del self._instances[instance_name]
        self._config_revision += 1

    def instance(self, name: str) -> PluginInstance:
        try:
            return self._instances[name]
        except KeyError as exc:
            raise ConfigurationError(f"no instance named {name!r}") from exc

    def instances(self) -> List[str]:
        return sorted(self._instances)

    # ------------------------------------------------------------------
    # Filters and bindings
    # ------------------------------------------------------------------
    def bind(self, instance_name: str, filter_spec: str, gate: Optional[str] = None, priority: int = 0):
        """Create a filter and bind it to an instance (register_instance)."""
        instance = self.instance(instance_name)
        return instance.plugin.register_instance(
            instance, filter_spec, gate=gate, priority=priority
        )

    def unbind(self, instance_name: str) -> bool:
        instance = self.instance(instance_name)
        return instance.plugin.deregister_instance(instance)

    # ------------------------------------------------------------------
    # Router-level configuration
    # ------------------------------------------------------------------
    def set_scheduler(self, interface: str, instance_name: str) -> None:
        self.router.set_scheduler(interface, self.instance(instance_name))
        self._config_revision += 1

    def add_route(self, prefix: str, interface: str, next_hop: Optional[str] = None) -> None:
        self.router.routing_table.add(prefix, interface, next_hop=next_hop)

    # ------------------------------------------------------------------
    # Fault domains / quarantine (docs/ROBUSTNESS.md)
    # ------------------------------------------------------------------
    def quarantine(self, plugin_name: str, action: Optional[str] = None) -> PluginFaultDomain:
        """Manually quarantine a plugin, indefinitely (until
        ``reinstate``); ``action`` overrides the policy's degradation."""
        return self.router.faults.quarantine(
            plugin_name, until=math.inf, action=action
        )

    def reinstate(self, plugin_name: str) -> PluginFaultDomain:
        """Lift a quarantine and restart the plugin's fault window."""
        return self.router.faults.reinstate(plugin_name)

    def set_fault_policy(self, plugin_name: str, **kwargs) -> PluginFaultDomain:
        """Install a per-plugin FaultPolicy (threshold, window, action,
        cooldown, ring_size); unspecified fields keep their defaults."""
        try:
            policy = FaultPolicy(**kwargs)
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(f"bad fault policy: {exc}") from exc
        return self.router.faults.set_policy(plugin_name, policy)

    # ------------------------------------------------------------------
    # Telemetry (docs/OBSERVABILITY.md)
    # ------------------------------------------------------------------
    def enable_telemetry(self, registry=None):
        """Attach a metrics registry to the router (created if None)."""
        return self.router.attach_telemetry(registry)

    def disable_telemetry(self) -> None:
        self.router.detach_telemetry()

    # ------------------------------------------------------------------
    # Overload protection (docs/ROBUSTNESS.md)
    # ------------------------------------------------------------------
    def enable_overload(self, **config):
        """Attach an overload governor; ``config`` keywords are the
        :class:`~repro.core.overload.OverloadGovernor` thresholds."""
        try:
            return self.router.attach_overload_governor(**config)
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(f"bad overload config: {exc}") from exc

    def disable_overload(self) -> None:
        self.router.detach_overload_governor()

    def start_trace(self, sample: int = 1, capacity: int = 256):
        """Attach a packet-lifecycle tracer (1-in-``sample`` flows)."""
        try:
            return self.router.attach_lifecycle_tracer(
                sample=sample, capacity=capacity
            )
        except ValueError as exc:
            raise ConfigurationError(str(exc)) from exc

    def stop_trace(self) -> None:
        self.router.detach_lifecycle_tracer()

    # ------------------------------------------------------------------
    # Structured introspection: query() is the API, text is a formatter
    # ------------------------------------------------------------------
    def query(self, topic: str, **filters) -> dict:
        """The structured twin of every ``pmgr show`` topic: a JSON-able
        dict carrying a ``"schema": {"topic", "version"}`` envelope.
        The text outputs are ``format.render_topic`` over this same dict
        (round-trip asserted by tests/mgr), so they cannot drift.
        Topics resolve through the :mod:`repro.mgr.format` registry, so
        subsystem registrations (``repro.topo``) answer here too.
        Supported filters: ``gate=`` (filters), ``plugin=`` (faults)."""
        try:
            spec = get_topic(topic)
        except KeyError:
            raise ConfigurationError(
                f"unknown query topic {topic!r}; known: {list(topic_names())}"
            ) from None
        try:
            data = spec.run_query(self, **filters)
        except TypeError as exc:
            raise ConfigurationError(
                f"bad filters for query {topic!r}: {exc}"
            ) from exc
        return attach_schema(spec, data)

    def _query_plugins(self) -> dict:
        plugins = []
        for plugin in sorted(self.router.pcu.plugins(), key=lambda p: p.name):
            plugins.append(
                {
                    "name": plugin.name,
                    "code": f"0x{plugin.code:08x}",
                    "type": plugin.plugin_type,
                    "instances": sorted(
                        str(inst.name) for inst in getattr(plugin, "instances", [])
                    ),
                }
            )
        return {"plugins": plugins}

    def _query_filters(self, gate: Optional[str] = None) -> dict:
        return {
            "filters": [
                {
                    "gate": record.gate,
                    "filter": str(record.filter),
                    "bound": record.instance is not None,
                    "instance": (
                        record.instance.name if record.instance is not None else None
                    ),
                    "priority": record.priority,
                    "active": record.active,
                }
                for record in self.router.aiu.filters(gate)
            ]
        }

    def _query_flows(self) -> dict:
        return self.router.aiu.stats()

    def _query_aiu(self) -> dict:
        return {
            "gates": self.router.aiu.classification_stats(),
            "flow_cache": self.router.aiu.stats(),
            "analyzed": self._analysis_status(),
        }

    def _query_faults(self, plugin: Optional[str] = None) -> dict:
        plugins = {}
        for name, dom in sorted(self.router.faults.domains().items()):
            if plugin is not None and name != plugin:
                continue
            snap = dom.snapshot()
            snap["records"] = [record.to_dict() for record in dom.records]
            plugins[name] = snap
        return {"plugins": plugins}

    def _query_health(self) -> dict:
        return self.router.health()

    def _query_telemetry(self) -> dict:
        registry = self.router.telemetry
        if registry is None:
            return {"enabled": False}
        return registry.snapshot()

    def _query_overload(self) -> dict:
        governor = self.router._overload
        if governor is None:
            return {"enabled": False}
        return governor.snapshot()

    def _query_trace(self) -> dict:
        tracer = self.router._lifecycle
        if tracer is None:
            return {"enabled": False}
        data = {"enabled": True}
        data.update(tracer.to_dict())
        return data

    def _query_shards(self) -> dict:
        """A single router is the one-shard degenerate case: same shape
        as the sharded fanout's cross-shard breakdown (repro.shard)."""
        return {
            "nshards": 1,
            "backend": "local",
            "shards": [dict(shard=0, **self.router.shard_state.summary())],
        }

    # ------------------------------------------------------------------
    # Introspection ("show" commands) — formatters over query()
    # ------------------------------------------------------------------
    def show_plugins(self) -> List[str]:
        return render_topic("plugins", self.query("plugins"))

    def show_filters(self) -> List[str]:
        return render_topic("filters", self.query("filters"))

    def show_flows(self) -> dict:
        return self.query("flows")

    def show_aiu(self) -> List[str]:
        """Per-gate classification counters: installed filters, slow-path
        lookups, how many took the compiled walk, and how many matched."""
        return render_topic("aiu", self.query("aiu"))

    def show_faults(self) -> List[str]:
        return render_topic("faults", self.query("faults"))

    # ------------------------------------------------------------------
    # Static analysis (repro.analysis)
    # ------------------------------------------------------------------
    def analyze(self, include_plugins: bool = True):
        """Run the static analyzers over this router and cache the report
        keyed on (AIU plan epoch, configuration revision), so ``show
        aiu`` can report analysis freshness without re-walking anything
        — and so fanout configuration ops that never touch a filter
        (modload/create through a ShardedPluginLibrary) still invalidate
        it."""
        from ..analysis import analyze_router, audit_query_mergeability

        report = analyze_router(self.router, include_plugins=include_plugins)
        report.extend(audit_query_mergeability(self.query))
        self._analysis_cache = (
            self.router.aiu.plan_epoch,
            self._config_revision,
            report,
        )
        return report

    def _analysis_status(self) -> str:
        if self._analysis_cache is None:
            return "never"
        epoch, revision, report = self._analysis_cache
        if epoch != self.router.aiu.plan_epoch:
            return f"stale (filters changed since epoch {epoch}; rerun analyze)"
        if revision != self._config_revision:
            return (
                f"stale (configuration changed since revision {revision}; "
                "rerun analyze)"
            )
        counts = report.counts()
        return f"{len(report)} findings ({counts['error']} errors)"


def load_plugin(router: Router, name: str) -> Plugin:
    """Convenience for embedders (docs/API.md): load a registry plugin
    into a router without constructing a library first."""
    return RouterPluginLibrary(router).modload(name)


def parse_config_value(token: str):
    key, _, value = token.partition("=")
    if not _:
        raise ConfigurationError(f"expected key=value, got {token!r}")
    return key, _coerce(value)


def split_command(line: str) -> List[str]:
    """Tokenize a pmgr command line (shell-style quoting)."""
    return shlex.split(line, comments=True)
