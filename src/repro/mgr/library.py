"""The Router Plugin Library (§3.1): "a simple application which takes
arguments from the command line and translates them into calls to the
user-space Router Plugin Library ... This library implements the
function calls needed to configure all kernel level components."

`PLUGIN_REGISTRY` is the modload search path: plugin names → plugin
classes.  :class:`RouterPluginLibrary` wraps one router and exposes the
calls the Plugin Manager and the daemons use.
"""

from __future__ import annotations

import math
import shlex
from typing import Dict, List, Optional, Type

from ..core.errors import ConfigurationError, UnknownPluginError
from ..core.faults import FaultPolicy, PluginFaultDomain
from ..core.plugin import Plugin, PluginInstance
from ..core.router import Router
from ..core.routing_plugin import L4RoutingPlugin
from ..options import HopByHopPlugin, JumboPlugin, RouterAlertPlugin
from ..sched import (
    CbqPlugin,
    DrrPlugin,
    FifoPlugin,
    HfscPlugin,
    HsfPlugin,
    RedPlugin,
    ScfqPlugin,
)
from ..security import AhPlugin, EspPlugin, FirewallPlugin, HwEspPlugin
from ..stats import StatisticsPlugin, TcpMonitorPlugin

PLUGIN_REGISTRY: Dict[str, Type[Plugin]] = {
    "cbq": CbqPlugin,
    "drr": DrrPlugin,
    "fifo": FifoPlugin,
    "hfsc": HfscPlugin,
    "hsf": HsfPlugin,
    "red": RedPlugin,
    "scfq": ScfqPlugin,
    "ah": AhPlugin,
    "esp": EspPlugin,
    "hwesp": HwEspPlugin,
    "firewall": FirewallPlugin,
    "hopbyhop": HopByHopPlugin,
    "routeralert": RouterAlertPlugin,
    "jumbo": JumboPlugin,
    "stats": StatisticsPlugin,
    "tcpmon": TcpMonitorPlugin,
    "l4route": L4RoutingPlugin,
}


def _coerce(value: str):
    """Best-effort typing for key=value config arguments."""
    lowered = value.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        return value


class RouterPluginLibrary:
    """User-space configuration calls against one router."""

    def __init__(self, router: Router):
        self.router = router
        self._instances: Dict[str, PluginInstance] = {}
        # (aiu.plan_epoch at analysis time, AnalysisReport); purely
        # control-path state — the data path never reads it.
        self._analysis_cache: Optional[tuple] = None

    # ------------------------------------------------------------------
    # modload / modunload
    # ------------------------------------------------------------------
    def modload(self, name: str) -> Plugin:
        """Load a plugin by registry name (NetBSD's modload analogue)."""
        if self.router.pcu.is_loaded(name):
            return self.router.pcu.get(name)
        plugin_class = PLUGIN_REGISTRY.get(name)
        if plugin_class is None:
            raise UnknownPluginError(
                f"no plugin {name!r} in the registry; known: {sorted(PLUGIN_REGISTRY)}"
            )
        plugin = plugin_class()
        self.router.pcu.load(plugin)
        return plugin

    def modunload(self, name: str) -> None:
        self.router.pcu.unload(name)
        self._instances = {
            key: inst for key, inst in self._instances.items()
            if inst.plugin.name != name
        }

    # ------------------------------------------------------------------
    # Instance lifecycle
    # ------------------------------------------------------------------
    def create_instance(self, plugin_name: str, instance_name: str, **config) -> PluginInstance:
        plugin = self.router.pcu.get(plugin_name)
        if instance_name in self._instances:
            raise ConfigurationError(f"duplicate instance name {instance_name!r}")
        instance = plugin.create_instance(name=instance_name, **config)
        self._instances[instance_name] = instance
        return instance

    def free_instance(self, instance_name: str) -> None:
        instance = self.instance(instance_name)
        instance.plugin.free_instance(instance)
        del self._instances[instance_name]

    def instance(self, name: str) -> PluginInstance:
        try:
            return self._instances[name]
        except KeyError as exc:
            raise ConfigurationError(f"no instance named {name!r}") from exc

    def instances(self) -> List[str]:
        return sorted(self._instances)

    # ------------------------------------------------------------------
    # Filters and bindings
    # ------------------------------------------------------------------
    def bind(self, instance_name: str, filter_spec: str, gate: Optional[str] = None, priority: int = 0):
        """Create a filter and bind it to an instance (register_instance)."""
        instance = self.instance(instance_name)
        return instance.plugin.register_instance(
            instance, filter_spec, gate=gate, priority=priority
        )

    def unbind(self, instance_name: str) -> bool:
        instance = self.instance(instance_name)
        return instance.plugin.deregister_instance(instance)

    # ------------------------------------------------------------------
    # Router-level configuration
    # ------------------------------------------------------------------
    def set_scheduler(self, interface: str, instance_name: str) -> None:
        self.router.set_scheduler(interface, self.instance(instance_name))

    def add_route(self, prefix: str, interface: str, next_hop: Optional[str] = None) -> None:
        self.router.routing_table.add(prefix, interface, next_hop=next_hop)

    # ------------------------------------------------------------------
    # Fault domains / quarantine (docs/ROBUSTNESS.md)
    # ------------------------------------------------------------------
    def quarantine(self, plugin_name: str, action: Optional[str] = None) -> PluginFaultDomain:
        """Manually quarantine a plugin, indefinitely (until
        ``reinstate``); ``action`` overrides the policy's degradation."""
        return self.router.faults.quarantine(
            plugin_name, until=math.inf, action=action
        )

    def reinstate(self, plugin_name: str) -> PluginFaultDomain:
        """Lift a quarantine and restart the plugin's fault window."""
        return self.router.faults.reinstate(plugin_name)

    def set_fault_policy(self, plugin_name: str, **kwargs) -> PluginFaultDomain:
        """Install a per-plugin FaultPolicy (threshold, window, action,
        cooldown, ring_size); unspecified fields keep their defaults."""
        try:
            policy = FaultPolicy(**kwargs)
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(f"bad fault policy: {exc}") from exc
        return self.router.faults.set_policy(plugin_name, policy)

    def show_faults(self) -> List[str]:
        lines: List[str] = []
        health = self.router.faults.health()
        if not health:
            return ["no plugin faults recorded"]
        for name, snap in health.items():
            lines.append(
                f"{name}: {snap['state']} action={snap['action']} "
                f"faults={snap['faults_total']} "
                f"quarantines={snap['quarantine_count']}"
            )
            for record in self.router.faults.records(name):
                lines.append(f"  {record.render()}")
        return lines

    # ------------------------------------------------------------------
    # Introspection ("show" commands)
    # ------------------------------------------------------------------
    def show_plugins(self) -> List[str]:
        return sorted(p.name for p in self.router.pcu.plugins())

    def show_filters(self) -> List[str]:
        return [
            f"{record.gate}: {record.filter} -> "
            f"{record.instance.name if record.instance else 'unbound'}"
            for record in self.router.aiu.filters()
        ]

    def show_flows(self) -> dict:
        return self.router.aiu.stats()

    def show_aiu(self) -> List[str]:
        """Per-gate classification counters: installed filters, slow-path
        lookups, how many took the compiled walk, and how many matched."""
        lines: List[str] = []
        for gate, stats in self.router.aiu.classification_stats().items():
            lines.append(
                f"{gate}: filters={stats['filters']} "
                f"lookups={stats['lookups']} compiled={stats['compiled']} "
                f"matches={stats['matches']}"
            )
        totals = self.router.aiu.stats()
        lines.append(
            f"flow cache: hits={totals['hits']} misses={totals['misses']} "
            f"active={totals['active']} filter_lookups={totals['filter_lookups']}"
        )
        lines.append(f"analyzed: {self._analysis_status()}")
        return lines

    # ------------------------------------------------------------------
    # Static analysis (repro.analysis)
    # ------------------------------------------------------------------
    def analyze(self, include_plugins: bool = True):
        """Run the static analyzers over this router and cache the report
        keyed on the AIU plan epoch, so ``show aiu`` can report analysis
        freshness without re-walking anything."""
        from ..analysis import analyze_router

        report = analyze_router(self.router, include_plugins=include_plugins)
        self._analysis_cache = (self.router.aiu.plan_epoch, report)
        return report

    def _analysis_status(self) -> str:
        if self._analysis_cache is None:
            return "never"
        epoch, report = self._analysis_cache
        if epoch != self.router.aiu.plan_epoch:
            return f"stale (filters changed since epoch {epoch}; rerun analyze)"
        counts = report.counts()
        return f"{len(report)} findings ({counts['error']} errors)"


def parse_config_value(token: str):
    key, _, value = token.partition("=")
    if not _:
        raise ConfigurationError(f"expected key=value, got {token!r}")
    return key, _coerce(value)


def split_command(line: str) -> List[str]:
    """Tokenize a pmgr command line (shell-style quoting)."""
    return shlex.split(line, comments=True)
