"""``pmgr`` — the Plugin Manager (§3.1, §6.1).

"The Plugin Manager is a user space utility used to configure the
system ... In most cases, the plugin manager is invoked from a
configuration script during system initialization, but it can also be
used to manually issue commands to various plugins."

Command language (one command per line; ``#`` comments allowed)::

    modload <plugin>                          # load a plugin module
    modunload <plugin>
    create <plugin> <instance> [key=value...] # create_instance message
    free <instance>
    bind <instance> <gate|-> <filter...>      # register_instance + filter
    unbind <instance>
    scheduler <interface> <instance>          # per-interface scheduler
    route <prefix> <interface> [next_hop]
    mroute <group> <oif1,oif2,...> [source|*] [expected_iif]
    msg <plugin> <type> [key=value...]        # plugin-specific message
    quarantine <plugin> [drop|bypass|unload]  # manual circuit-breaker trip
    reinstate <plugin>                        # lift a quarantine
    faultpolicy <plugin> [threshold=N] [window=S] [action=A] [cooldown=S]
    analyze [--json]                          # static analysis (repro.analysis)
    telemetry on|off|status                   # metrics registry (docs/OBSERVABILITY.md)
    trace on [sample=N] [capacity=N]          # packet-lifecycle tracer
    trace off
    trace path <src> <dst> [proto=P] [sport=N] [dport=N] [entry=node]
                                              # hop-by-hop path trace
                                              # (topology routers only;
                                              # results: show paths)
    overload on [key=value...]                # overload governor thresholds
    overload off|status                       # (docs/ROBUSTNESS.md)
    show <topic> [--json]                     # any registered topic

``show`` accepts every topic in the :mod:`repro.mgr.format` registry
(plugins, filters, flows, aiu, faults, health, telemetry, trace,
overload, shards — plus subsystem registrations such as ``topology``
and ``paths`` from :mod:`repro.topo`).  Every ``show`` topic has a
structured twin: ``show X --json`` prints the
:meth:`RouterPluginLibrary.query` dict for the topic (with its
``schema`` version envelope), and the plain-text output is a formatter
over that same dict (``repro.mgr.format``).

The §6.1 example script from the paper runs verbatim through
:func:`run_script` (see ``tests/mgr/test_pmgr_paper_script.py``).  A
failing script line raises :class:`~repro.core.errors.ScriptError`
naming the line number and command; ``run_script(...,
continue_on_error=True)`` logs the error and keeps going instead.
"""

from __future__ import annotations

import json
import sys
from typing import Callable, Dict, List, Optional

from ..core.errors import ConfigurationError, ScriptError
from ..core.messages import Message
from ..core.router import Router
from .format import render_topic, topic_names
from .library import RouterPluginLibrary, parse_config_value, split_command


class PluginManager:
    """The command interpreter over the Router Plugin Library."""

    def __init__(self, router: Router, output: Optional[Callable[[str], None]] = None):
        # Duck-typed: a Topology front end gets the per-node fanout
        # library (docs/TOPOLOGY.md); a ShardedRouter front end gets the
        # per-shard fanout library so every command broadcasts to all
        # shards and every ``show`` aggregates (docs/OBSERVABILITY.md).
        if hasattr(router, "nodes") and hasattr(router, "links"):
            from ..topo.control import TopologyPluginLibrary

            self.library = TopologyPluginLibrary(router)
        elif hasattr(router, "nshards") and hasattr(router, "shards"):
            from ..shard.control import ShardedPluginLibrary

            self.library = ShardedPluginLibrary(router)
        else:
            self.library = RouterPluginLibrary(router)
        self.router = router
        self._print = output or (lambda line: None)
        self._commands: Dict[str, Callable[[List[str]], None]] = {
            "modload": self._cmd_modload,
            "modunload": self._cmd_modunload,
            "create": self._cmd_create,
            "free": self._cmd_free,
            "bind": self._cmd_bind,
            "unbind": self._cmd_unbind,
            "scheduler": self._cmd_scheduler,
            "route": self._cmd_route,
            "mroute": self._cmd_mroute,
            "msg": self._cmd_msg,
            "quarantine": self._cmd_quarantine,
            "reinstate": self._cmd_reinstate,
            "faultpolicy": self._cmd_faultpolicy,
            "analyze": self._cmd_analyze,
            "telemetry": self._cmd_telemetry,
            "trace": self._cmd_trace,
            "overload": self._cmd_overload,
            "show": self._cmd_show,
        }
        #: Errors collected by the last ``run_script(...,
        #: continue_on_error=True)`` run.
        self.script_errors: List[ScriptError] = []

    # ------------------------------------------------------------------
    def run_command(self, line: str) -> None:
        tokens = split_command(line)
        if not tokens:
            return
        # Tolerate a leading "pmgr" so the paper's script lines run as-is.
        if tokens[0] == "pmgr":
            tokens = tokens[1:]
            if not tokens:
                return
        command = tokens[0]
        handler = self._commands.get(command)
        if handler is None:
            raise ConfigurationError(
                f"unknown pmgr command {command!r}; known: {sorted(self._commands)}"
            )
        handler(tokens[1:])

    def run_script(self, text: str, continue_on_error: bool = False) -> int:
        """Execute a configuration script; returns commands executed.

        A failing command raises :class:`ScriptError` carrying the line
        number and the command text.  With ``continue_on_error`` the
        error is printed and collected in :attr:`script_errors` instead,
        and the rest of the script still runs — one bad admin command no
        longer aborts a whole boot configuration.
        """
        executed = 0
        self.script_errors = []
        for lineno, raw_line in enumerate(text.splitlines(), start=1):
            line = raw_line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                self.run_command(line)
            except Exception as exc:
                error = ScriptError(lineno, line, exc)
                if not continue_on_error:
                    raise error from exc
                self.script_errors.append(error)
                self._print(f"error: {error}")
                continue
            executed += 1
        return executed

    # ------------------------------------------------------------------
    # Command handlers
    # ------------------------------------------------------------------
    def _cmd_modload(self, args: List[str]) -> None:
        self._need(args, 1, "modload <plugin>")
        plugin = self.library.modload(args[0])
        # Fanout libraries (repro.shard) broadcast and return no handle.
        if plugin is None:
            self._print(f"loaded {args[0]}")
        else:
            self._print(f"loaded {plugin.name} code=0x{plugin.code:08x}")

    def _cmd_modunload(self, args: List[str]) -> None:
        self._need(args, 1, "modunload <plugin>")
        self.library.modunload(args[0])
        self._print(f"unloaded {args[0]}")

    def _cmd_create(self, args: List[str]) -> None:
        if len(args) < 2:
            raise ConfigurationError("usage: create <plugin> <instance> [key=value...]")
        config = dict(parse_config_value(token) for token in args[2:])
        instance = self.library.create_instance(args[0], args[1], **config)
        self._print(f"created {instance.name if instance else args[1]}")

    def _cmd_free(self, args: List[str]) -> None:
        self._need(args, 1, "free <instance>")
        self.library.free_instance(args[0])
        self._print(f"freed {args[0]}")

    def _cmd_bind(self, args: List[str]) -> None:
        if len(args) < 3:
            raise ConfigurationError("usage: bind <instance> <gate|-> <filter...>")
        instance_name, gate = args[0], args[1]
        filter_spec = " ".join(args[2:])
        record = self.library.bind(
            instance_name, filter_spec, gate=None if gate == "-" else gate
        )
        if record is None:
            self._print(f"bound {instance_name}: {filter_spec}")
        else:
            self._print(f"bound {instance_name} at {record.gate}: {record.filter}")

    def _cmd_unbind(self, args: List[str]) -> None:
        self._need(args, 1, "unbind <instance>")
        self.library.unbind(args[0])
        self._print(f"unbound {args[0]}")

    def _cmd_scheduler(self, args: List[str]) -> None:
        self._need(args, 2, "scheduler <interface> <instance>")
        self.library.set_scheduler(args[0], args[1])
        self._print(f"scheduler on {args[0]} = {args[1]}")

    def _cmd_route(self, args: List[str]) -> None:
        if len(args) not in (2, 3):
            raise ConfigurationError("usage: route <prefix> <interface> [next_hop]")
        self.library.add_route(args[0], args[1], args[2] if len(args) == 3 else None)
        self._print(f"route {args[0]} dev {args[1]}")

    def _cmd_mroute(self, args: List[str]) -> None:
        if len(args) not in (2, 3, 4):
            raise ConfigurationError(
                "usage: mroute <group> <oif1,oif2,...> [source|*] [expected_iif]"
            )
        group, oifs = args[0], args[1].split(",")
        source = None if len(args) < 3 or args[2] == "*" else args[2]
        expected_iif = args[3] if len(args) == 4 else None
        self.router.multicast_table.add(
            group, oifs, source=source, expected_iif=expected_iif
        )
        self._print(f"mroute ({source or '*'}, {group}) -> {oifs}")

    def _cmd_msg(self, args: List[str]) -> None:
        if len(args) < 2:
            raise ConfigurationError("usage: msg <plugin> <type> [key=value...]")
        plugin_name, msg_type = args[0], args[1]
        msg_args = {}
        for token in args[2:]:
            key, value = parse_config_value(token)
            # Instance references resolve by name.
            if key in ("instance",) or key.endswith("_instance"):
                value = self.library.instance(str(value))
            msg_args[key] = value
        result = self.router.pcu.send(plugin_name, Message(msg_type, msg_args))
        self._print(f"msg {msg_type} -> {result!r}")

    def _cmd_quarantine(self, args: List[str]) -> None:
        if len(args) not in (1, 2):
            raise ConfigurationError("usage: quarantine <plugin> [drop|bypass|unload]")
        action = args[1] if len(args) == 2 else None
        domain = self.library.quarantine(args[0], action=action)
        self._print(
            f"quarantined {args[0]}"
            + (f" action={domain.policy.action}" if domain else "")
        )

    def _cmd_reinstate(self, args: List[str]) -> None:
        self._need(args, 1, "reinstate <plugin>")
        self.library.reinstate(args[0])
        self._print(f"reinstated {args[0]}")

    def _cmd_faultpolicy(self, args: List[str]) -> None:
        if len(args) < 2:
            raise ConfigurationError(
                "usage: faultpolicy <plugin> [threshold=N] [window=S] "
                "[action=drop|bypass|unload] [cooldown=S] [ring_size=N]"
            )
        config = dict(parse_config_value(token) for token in args[1:])
        domain = self.library.set_fault_policy(args[0], **config)
        self._print(f"faultpolicy {args[0]}" + (f": {domain.policy}" if domain else ""))

    def _cmd_analyze(self, args: List[str]) -> None:
        if args not in ([], ["--json"]):
            raise ConfigurationError("usage: analyze [--json]")
        report = self.library.analyze()
        if args:
            self._print(report.to_json())
        else:
            for line in report.render():
                self._print(line)

    def _cmd_telemetry(self, args: List[str]) -> None:
        if args not in (["on"], ["off"], ["status"]):
            raise ConfigurationError("usage: telemetry on|off|status")
        if args[0] == "on":
            self.library.enable_telemetry()
            self._print("telemetry enabled")
        elif args[0] == "off":
            self.library.disable_telemetry()
            self._print("telemetry disabled")
        else:
            state = "enabled" if self.router.telemetry is not None else "disabled"
            self._print(f"telemetry {state}")

    def _cmd_trace(self, args: List[str]) -> None:
        if args and args[0] == "path":
            self._cmd_trace_path(args[1:])
            return
        if not args or args[0] not in ("on", "off"):
            raise ConfigurationError(
                "usage: trace on [sample=N] [capacity=N] | trace off | "
                "trace path <src> <dst> [proto=P] [sport=N] [dport=N] "
                "[entry=node]"
            )
        if args[0] == "off":
            if len(args) != 1:
                raise ConfigurationError("usage: trace off")
            self.library.stop_trace()
            self._print("tracing disabled")
            return
        config = dict(parse_config_value(token) for token in args[1:])
        unknown = set(config) - {"sample", "capacity"}
        if unknown:
            raise ConfigurationError(
                f"unknown trace options {sorted(unknown)}; known: sample, capacity"
            )
        tracer = self.library.start_trace(**config)
        if tracer is None:
            self._print("tracing enabled")
        else:
            self._print(
                f"tracing enabled sample=1/{tracer.sample} capacity={tracer.capacity}"
            )

    def _cmd_trace_path(self, args: List[str]) -> None:
        usage = (
            "usage: trace path <src> <dst> [proto=P] [sport=N] [dport=N] "
            "[entry=node]"
        )
        if len(args) < 2:
            raise ConfigurationError(usage)
        trace_path = getattr(self.library, "trace_path", None)
        if trace_path is None:
            raise ConfigurationError(
                "path tracing needs a multi-router topology "
                "(PluginManager over repro.topo.Topology)"
            )
        src, dst = args[0], args[1]
        options = dict(parse_config_value(token) for token in args[2:])
        unknown = set(options) - {"proto", "sport", "dport", "entry"}
        if unknown:
            raise ConfigurationError(
                f"unknown trace path options {sorted(unknown)}; "
                "known: proto, sport, dport, entry"
            )
        proto = options.get("proto", "udp")
        if isinstance(proto, str):
            from ..net.headers import protocol_number

            proto = protocol_number(proto)
        five_tuple = (
            src, dst, proto,
            int(options.get("sport", 5000)), int(options.get("dport", 9000)),
        )
        trace = trace_path(five_tuple, entry=options.get("entry"))
        for line in trace.render():
            self._print(line)

    def _cmd_overload(self, args: List[str]) -> None:
        usage = "usage: overload on [key=value...] | overload off | overload status"
        if not args or args[0] not in ("on", "off", "status"):
            raise ConfigurationError(usage)
        if args[0] == "off":
            if len(args) != 1:
                raise ConfigurationError(usage)
            self.library.disable_overload()
            self._print("overload governor disabled")
            return
        if args[0] == "status":
            if len(args) != 1:
                raise ConfigurationError(usage)
            governor = self.router._overload
            if governor is None:
                self._print("overload governor disabled")
            else:
                self._print(f"overload governor enabled tier={governor.tier}")
            return
        config = dict(parse_config_value(token) for token in args[1:])
        governor = self.library.enable_overload(**config)
        if governor is None:
            self._print("overload governor enabled")
        else:
            self._print(
                f"overload governor enabled tier={governor.tier} "
                f"sample_interval={governor.sample_interval}"
            )

    def _cmd_show(self, args: List[str]) -> None:
        json_out = "--json" in args
        args = [a for a in args if a != "--json"]
        topics = topic_names()
        usage = f"show {'|'.join(topics)} [--json]"
        self._need(args, 1, usage)
        what = args[0]
        if what not in topics:
            raise ConfigurationError(f"unknown show target {what!r}")
        data = self.library.query(what)
        if json_out:
            self._print(json.dumps(data, indent=2))
        else:
            for line in render_topic(what, data):
                self._print(line)

    @staticmethod
    def _need(args: List[str], count: int, usage: str) -> None:
        if len(args) != count:
            raise ConfigurationError(f"usage: {usage}")


def run_script(
    text: str, router: Router, output=None, continue_on_error: bool = False
) -> PluginManager:
    """Convenience: run a config script against a router; returns the
    manager for further commands."""
    manager = PluginManager(router, output=output)
    manager.run_script(text, continue_on_error=continue_on_error)
    return manager


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: ``pmgr <script-file>`` builds a demo router and
    runs the script against it (stateless across invocations — see
    README; real deployments embed :class:`PluginManager`)."""
    argv = list(sys.argv[1:] if argv is None else argv)
    continue_on_error = False
    if argv and argv[0] in ("-k", "--continue-on-error"):
        continue_on_error = True
        argv = argv[1:]
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    router = Router(name="pmgr-router")
    router.add_interface("atm0", prefix="0.0.0.0/0")
    manager = PluginManager(router, output=print)
    with open(argv[0], "r", encoding="utf-8") as handle:
        manager.run_script(handle.read(), continue_on_error=continue_on_error)
    return 1 if manager.script_errors else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
