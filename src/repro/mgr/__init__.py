"""User space: the Router Plugin Library and the pmgr Plugin Manager."""

from .format import TOPICS, render_topic
from .library import (
    PLUGIN_REGISTRY,
    RouterPluginLibrary,
    load_plugin,
    parse_config_value,
    split_command,
)
from .pmgr import PluginManager, main, run_script

__all__ = [
    "PLUGIN_REGISTRY",
    "RouterPluginLibrary",
    "TOPICS",
    "load_plugin",
    "parse_config_value",
    "render_topic",
    "split_command",
    "PluginManager",
    "main",
    "run_script",
]
