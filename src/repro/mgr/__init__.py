"""User space: the Router Plugin Library and the pmgr Plugin Manager."""

from .format import (
    TopicSpec,
    get_topic,
    merge_topic,
    register_topic,
    render_topic,
    topic_names,
)
from .library import (
    PLUGIN_REGISTRY,
    RouterPluginLibrary,
    load_plugin,
    parse_config_value,
    split_command,
)
from .pmgr import PluginManager, main, run_script

__all__ = [
    "PLUGIN_REGISTRY",
    "RouterPluginLibrary",
    "TopicSpec",
    "get_topic",
    "load_plugin",
    "merge_topic",
    "parse_config_value",
    "register_topic",
    "render_topic",
    "split_command",
    "topic_names",
    "PluginManager",
    "main",
    "run_script",
]


def __getattr__(name):
    # ``TOPICS`` froze the topic set at import time; the registry is
    # dynamic (repro.topo adds topics on import), so forward the shim to
    # format's own deprecation hook.
    if name == "TOPICS":
        from . import format as _format

        return _format.TOPICS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(__all__) | {"TOPICS"} | set(globals()))
