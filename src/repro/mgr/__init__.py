"""User space: the Router Plugin Library and the pmgr Plugin Manager."""

from .library import (
    PLUGIN_REGISTRY,
    RouterPluginLibrary,
    parse_config_value,
    split_command,
)
from .pmgr import PluginManager, main, run_script

__all__ = [
    "PLUGIN_REGISTRY",
    "RouterPluginLibrary",
    "parse_config_value",
    "split_command",
    "PluginManager",
    "main",
    "run_script",
]
