"""The TCP congestion-backoff monitoring plugin — one of the paper's
envisioned plugin types (§4: "a plugin monitoring TCP congestion backoff
behaviour").

Per-flow soft state tracks the highest sequence number seen; a segment
at or below the high-water mark is a retransmission.  The instance
classifies flows as *responsive* (retransmission rate decays after
loss events, i.e. sending slows) or *unresponsive* — the information a
router needs to police flows that ignore congestion signals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..core.messages import Message
from ..core.plugin import Plugin, PluginContext, PluginInstance, TYPE_MONITOR, Verdict
from ..net.headers import PROTO_TCP
from ..net.packet import Packet


@dataclass
class TcpFlowState:
    """Per-flow monitoring soft state (lives in the flow-table slot)."""

    highest_seq: int = -1
    segments: int = 0
    retransmissions: int = 0
    bytes_seen: int = 0
    # (time, inter-arrival) samples around retransmissions, to observe
    # whether the sender actually backed off.
    last_arrival: float = -1.0
    gap_before_loss: float = 0.0
    gap_after_loss: float = 0.0
    backoff_events: int = 0

    @property
    def retransmission_rate(self) -> float:
        if self.segments == 0:
            return 0.0
        return self.retransmissions / self.segments

    @property
    def backed_off(self) -> bool:
        """True if inter-arrival gaps grew after retransmissions."""
        if self.retransmissions == 0:
            return True  # nothing to back off from
        return self.gap_after_loss > self.gap_before_loss * 1.5


class TcpMonitorInstance(PluginInstance):
    """Watches TCP flows for retransmissions and backoff behaviour."""

    def __init__(self, plugin, **config):
        super().__init__(plugin, **config)
        self._flows: Dict[Tuple, TcpFlowState] = {}
        self.non_tcp_ignored = 0

    def _state_for(self, packet: Packet, ctx: PluginContext) -> TcpFlowState:
        if ctx.slot is not None:
            if not isinstance(ctx.slot.private, TcpFlowState):
                ctx.slot.private = TcpFlowState()
                self._flows[packet.five_tuple()] = ctx.slot.private
            return ctx.slot.private
        return self._flows.setdefault(packet.five_tuple(), TcpFlowState())

    def process(self, packet: Packet, ctx: PluginContext) -> str:
        super().process(packet, ctx)
        if packet.protocol != PROTO_TCP:
            self.non_tcp_ignored += 1
            return Verdict.CONTINUE
        state = self._state_for(packet, ctx)
        seq = packet.annotations.get("tcp_seq", 0)
        state.segments += 1
        state.bytes_seen += packet.length
        gap = 0.0
        if state.last_arrival >= 0:
            gap = ctx.now - state.last_arrival
        state.last_arrival = ctx.now
        if seq <= state.highest_seq:
            state.retransmissions += 1
            state.gap_before_loss = gap or state.gap_before_loss
            state.backoff_events += 1
        else:
            if state.backoff_events and gap:
                state.gap_after_loss = max(state.gap_after_loss, gap)
            state.highest_seq = seq
        return Verdict.CONTINUE

    # ------------------------------------------------------------------
    def report(self) -> Dict[Tuple, TcpFlowState]:
        return dict(self._flows)

    def unresponsive_flows(self) -> List[Tuple]:
        """Flows that keep retransmitting without slowing down."""
        return [
            key
            for key, state in self._flows.items()
            if state.retransmission_rate > 0.05 and not state.backed_off
        ]


class TcpMonitorPlugin(Plugin):
    """Loadable TCP-backoff monitor module."""

    plugin_type = TYPE_MONITOR
    name = "tcpmon"
    instance_class = TcpMonitorInstance

    def handle_custom(self, message: Message):
        if message.type == "report":
            return message.args["instance"].report()
        if message.type == "unresponsive":
            return message.args["instance"].unresponsive_flows()
        return super().handle_custom(message)
