"""Experiment metrics: fairness indices, percentiles, rate meters."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence


def jain_fairness(allocations: Iterable[float]) -> float:
    """Jain's fairness index: 1.0 is perfectly fair, 1/n is worst."""
    values = [v for v in allocations]
    if not values:
        raise ValueError("no allocations")
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        return 1.0
    return total * total / (len(values) * squares)


def percentile(samples: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile, p in [0, 100]."""
    if not samples:
        raise ValueError("no samples")
    if not 0 <= p <= 100:
        raise ValueError("percentile out of range")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = p / 100 * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


def mean(samples: Sequence[float]) -> float:
    if not samples:
        raise ValueError("no samples")
    return sum(samples) / len(samples)


def stddev(samples: Sequence[float]) -> float:
    if not samples:
        raise ValueError("no samples")
    if len(samples) < 2:
        return 0.0
    mu = mean(samples)
    return math.sqrt(sum((s - mu) ** 2 for s in samples) / (len(samples) - 1))


def summarize(samples: Sequence[float]) -> Dict[str, float]:
    """The usual five-number-ish summary used by benchmark output."""
    if not samples:
        raise ValueError("no samples")
    return {
        "mean": mean(samples),
        "stddev": stddev(samples),
        "min": min(samples),
        "p50": percentile(samples, 50),
        "p99": percentile(samples, 99),
        "max": max(samples),
    }


class RateMeter:
    """Bytes/packets observed over a time window -> rates."""

    def __init__(self):
        self.packets = 0
        self.bytes = 0
        self.first_time: float = math.inf
        self.last_time: float = -math.inf

    def observe(self, size: int, at_time: float) -> None:
        self.packets += 1
        self.bytes += size
        self.first_time = min(self.first_time, at_time)
        self.last_time = max(self.last_time, at_time)

    @property
    def duration(self) -> float:
        if self.packets == 0:
            return 0.0
        return max(self.last_time - self.first_time, 0.0)

    @property
    def bps(self) -> float:
        if self.packets == 0:
            raise ValueError("no samples")
        if self.duration <= 0:
            return 0.0
        return self.bytes * 8 / self.duration

    @property
    def pps(self) -> float:
        if self.packets == 0:
            raise ValueError("no samples")
        if self.duration <= 0:
            return 0.0
        return self.packets / self.duration


def share_error(served: Dict[object, float], weights: Dict[object, float]) -> float:
    """Max relative deviation of served shares from weighted ideal."""
    total_served = sum(served.values())
    total_weight = sum(weights.values())
    if total_served == 0 or total_weight == 0:
        raise ValueError("nothing served or zero weights")
    worst = 0.0
    for key, weight in weights.items():
        ideal = weight / total_weight
        actual = served.get(key, 0.0) / total_served
        worst = max(worst, abs(actual - ideal) / ideal)
    return worst
