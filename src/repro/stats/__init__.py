"""Statistics plugin and experiment metrics."""

from .metrics import (
    RateMeter,
    jain_fairness,
    mean,
    percentile,
    share_error,
    stddev,
    summarize,
)
from .plugin import (
    COLLECTORS,
    StatisticsInstance,
    StatisticsPlugin,
    collect_protocols,
    collect_sizes,
    collect_volume,
)
from .tcp_monitor import TcpFlowState, TcpMonitorInstance, TcpMonitorPlugin

__all__ = [
    "RateMeter",
    "jain_fairness",
    "mean",
    "percentile",
    "share_error",
    "stddev",
    "summarize",
    "COLLECTORS",
    "StatisticsInstance",
    "StatisticsPlugin",
    "collect_protocols",
    "collect_sizes",
    "collect_volume",
    "TcpFlowState",
    "TcpMonitorInstance",
    "TcpMonitorPlugin",
]
