"""The statistics-gathering plugin the paper envisions for network
management (§2: "it is important to be able to quickly and easily change
the kinds of statistics being collected, and to do this without
incurring significant overhead on the data path").

Per-flow counters ride in the flow table's soft-state slot, so steady
state costs one pointer dereference and two additions per packet.
Collectors are swappable at run time via a plugin-specific message —
exactly the "change the kinds of statistics" requirement.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, Optional, Tuple

from ..core.messages import Message
from ..core.plugin import Plugin, PluginContext, PluginInstance, TYPE_STATISTICS, Verdict
from ..net.headers import protocol_name
from ..net.packet import Packet


def collect_volume(packet: Packet, record: Dict) -> None:
    """Default collector: per-flow packet and byte counts."""
    record["packets"] = record.get("packets", 0) + 1
    record["bytes"] = record.get("bytes", 0) + packet.length


def collect_sizes(packet: Packet, record: Dict) -> None:
    """Histogram of packet sizes in 256-byte bins."""
    bins = record.setdefault("size_bins", Counter())
    bins[packet.length // 256] += 1


def collect_protocols(packet: Packet, record: Dict) -> None:
    """Per-protocol packet counts."""
    protos = record.setdefault("protocols", Counter())
    protos[protocol_name(packet.protocol)] += 1


COLLECTORS = {
    "volume": collect_volume,
    "sizes": collect_sizes,
    "protocols": collect_protocols,
}


class StatisticsInstance(PluginInstance):
    """Counts traffic on bound flows with a swappable collector."""

    def __init__(self, plugin, collector: str = "volume", **config):
        super().__init__(plugin, **config)
        self.collector_name = collector
        self._collector: Callable = COLLECTORS[collector]
        self._flows: Dict[Tuple, Dict] = {}

    # ------------------------------------------------------------------
    def set_collector(self, name: str) -> None:
        """Swap what is being collected, live."""
        self._collector = COLLECTORS[name]
        self.collector_name = name

    # ------------------------------------------------------------------
    def on_flow_created(self, flow, slot) -> None:
        record: Dict = {}
        slot.private = record
        self._flows[flow.key.src, flow.key.dst, flow.key.protocol,
                    flow.key.sport, flow.key.dport] = record

    def process(self, packet: Packet, ctx: PluginContext) -> str:
        super().process(packet, ctx)
        if ctx.slot is not None:
            if ctx.slot.private is None:
                self.on_flow_created(ctx.flow, ctx.slot)
            record = ctx.slot.private
        else:
            record = self._flows.setdefault(packet.five_tuple(), {})
        self._collector(packet, record)
        return Verdict.CONTINUE

    # ------------------------------------------------------------------
    def report(self) -> Dict[Tuple, Dict]:
        """Snapshot of all per-flow records."""
        return {key: dict(value) for key, value in self._flows.items()}

    def totals(self) -> Dict[str, int]:
        packets = sum(r.get("packets", 0) for r in self._flows.values())
        size = sum(r.get("bytes", 0) for r in self._flows.values())
        return {"flows": len(self._flows), "packets": packets, "bytes": size}


class StatisticsPlugin(Plugin):
    """Loadable statistics module."""

    plugin_type = TYPE_STATISTICS
    name = "stats"
    instance_class = StatisticsInstance

    def handle_custom(self, message: Message):
        if message.type == "set_collector":
            message.args["instance"].set_collector(message.args["collector"])
            return True
        if message.type == "report":
            return message.args["instance"].report()
        return super().handle_custom(message)
