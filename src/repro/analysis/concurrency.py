"""Shard-safety / concurrency lint (RP4xx) — plugin state that diverges
or breaks under the sharded data path.

The sharded front end (:mod:`repro.shard`) replicates every plugin into
N shared-nothing workers and keeps them identically *configured* via
control-plane fanout — but nothing keeps them identically *stateful*.
Plugin state that lives anywhere other than the instance itself silently
diverges per shard today and becomes a data race the moment a
shared-memory backend lands.  This pass walks plugin classes, their
data-path closure (same traversal as :mod:`repro.analysis.hotpath`),
and — when live instances are available — the instances' actual state,
and flags:

* RP401 — module-level mutable globals written from a data-path hook
  (``global`` rebinds, subscript/attribute stores, or mutator calls such
  as ``.append``/``.update`` on a module-level container).  Each shard
  has its own copy of the module, so the "shared" state is N diverging
  copies.
* RP402 — class-attribute state shared across instances mutated on the
  data path (``type(self).x``/``ClassName.x`` writes, or mutation of a
  mutable class attribute never shadowed by an ``__init__`` assignment).
* RP403 — fork/codec-hostile instance state: open files, sockets,
  locks, threads, generators.  These break :class:`ShardWorkerPool`'s
  post-fork plugin factory (the object cannot be re-created identically
  in the child) and can never transit the descriptor codec.
* RP404 — query-topic payloads the cross-shard aggregation in
  :class:`~repro.shard.control.ShardedPluginLibrary` cannot merge: the
  sum-merge rule understands numeric/bool/str leaves and nested dicts;
  anything else (lists, arbitrary objects) silently takes shard 0's
  value and drops the rest.
* RP405 — control commands (``handle_custom`` and its closure) whose
  configuration effect is guarded by shard-local traffic state (flow
  table contents, hit counters).  A fanout command must act identically
  on every shard; deciding from local traffic makes shards diverge.

Findings are suppressible with ``# rp: ignore[RP4xx]`` on the flagged
line, exactly like the RP2xx lint.  Everything here runs on source text
and control-path object inspection — no packet flows through it.
"""

from __future__ import annotations

import ast
import collections
import collections.abc
import inspect
import io
import socket
import textwrap
import threading
import types
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .diagnostics import AnalysisReport, Diagnostic, is_suppressed
from .hotpath import BATCH_HOOKS, ROOT_METHODS, _closure_lints

#: Container types whose in-place mutation the lint recognizes.
_MUTABLE_TYPES = (
    list,
    dict,
    set,
    bytearray,
    collections.deque,
    collections.Counter,
    collections.defaultdict,
    collections.OrderedDict,
)

#: Method names that mutate a container in place.
_MUTATORS = {
    "append", "appendleft", "add", "update", "pop", "popleft", "popitem",
    "extend", "extendleft", "insert", "remove", "discard", "clear",
    "setdefault", "sort", "reverse", "rotate",
}

#: Module roots whose factories produce fork/codec-hostile objects.
_HOSTILE_MODULES = {"threading", "socket", "multiprocessing", "tempfile"}

#: Attribute names that read as shard-local traffic state (RP405).
_LOCAL_STATE_ATTRS = {
    "flow_table", "flow_cache", "flows", "active", "hits", "misses",
    "evictions", "births", "packets_processed", "counters", "occupancy",
}

#: Library/plugin calls that change configuration (RP405): if any shard
#: skips one of these based on local state, the shards diverge.
_CONFIG_CALLS = {
    "create_filter", "remove_filter", "register_instance",
    "deregister_instance", "bind", "unbind", "quarantine", "reinstate",
    "set_scheduler", "add_route", "modload", "modunload",
    "set_fault_policy", "create_instance", "free_instance",
}


_LOCK_TYPES = (type(threading.Lock()), type(threading.RLock()))
_GENERATOR_TYPES = (
    types.GeneratorType,
    types.CoroutineType,
    types.AsyncGeneratorType,
)


# ----------------------------------------------------------------------
# Per-function checks
# ----------------------------------------------------------------------
class _ConcurrencyCheck:
    """RP401/402/403/405 checks over one parsed function.

    Wraps a :class:`~repro.analysis.hotpath._FunctionLint` (which did the
    ``inspect``/``ast`` parsing and the closure discovery) and runs its
    own walk; the hot-path lint's RP2xx findings are discarded here —
    the two passes report independently.
    """

    def __init__(self, lint, shared_attrs: Optional[Set[str]] = None):
        self.lint = lint
        self.fn = lint.fn
        self.owner = lint.owner
        self.node = lint.node
        self.shared_attrs = shared_attrs or set()
        self.diagnostics: List[Diagnostic] = []
        self.locals = self._local_bindings()
        self.global_decls: Set[str] = set()
        for sub in ast.walk(self.node):
            if isinstance(sub, ast.Global):
                self.global_decls.update(sub.names)
        self.locals -= self.global_decls

    def _local_bindings(self) -> Set[str]:
        args = self.node.args
        names = {
            a.arg
            for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        }
        if args.vararg is not None:
            names.add(args.vararg.arg)
        if args.kwarg is not None:
            names.add(args.kwarg.arg)
        for sub in ast.walk(self.node):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
                names.add(sub.id)
            elif isinstance(sub, (ast.Import, ast.ImportFrom)):
                for alias in sub.names:
                    names.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(sub, ast.ExceptHandler) and sub.name:
                names.add(sub.name)
        return names

    def emit(self, code: str, node: ast.AST, message: str, hint: str) -> None:
        if is_suppressed(code, self.lint.source_line(node)):
            return
        self.diagnostics.append(
            Diagnostic(
                code,
                message,
                subject=self.lint._subject(),
                file=self.lint.file,
                line=self.lint.absolute_line(node),
                hint=hint,
            )
        )

    # ------------------------------------------------------------------
    def run_datapath(self) -> None:
        """RP401 + RP402 + RP403 (factory form) over a data-path hook."""
        for node in ast.walk(self.node):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                self._check_store(node)
                self.check_class_alias_store(node)
                self._check_self_factory_assign(node, in_init=False)
            elif isinstance(node, ast.Call):
                self._check_mutator_call(node)

    def run_init(self) -> None:
        """RP403 (factory form) over ``__init__``: hostile state created
        at construction time breaks the post-fork factory just as badly
        as state created per packet."""
        for node in ast.walk(self.node):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                self._check_self_factory_assign(node, in_init=True)

    def _check_self_factory_assign(self, node: ast.AST, in_init: bool) -> None:
        """RP403 fires only on hostile objects *stored on the instance*
        — a scoped ``with open(...)`` temporary is RP201's business."""
        targets: List[ast.expr] = []
        value = None
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
            value = node.value
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
            value = node.value
        if value is None or not isinstance(value, ast.Call):
            return
        stores_on_self = any(
            isinstance(t, ast.Attribute)
            and isinstance(t.value, ast.Name)
            and t.value.id == "self"
            for t in targets
        )
        if stores_on_self:
            self._check_hostile_factory(value, in_init=in_init)

    def run_control(self) -> None:
        """RP405 over a control-path handler (``handle_custom``)."""
        for node in ast.walk(self.node):
            if isinstance(node, ast.If) and self._reads_local_state(node.test):
                call = self._config_call_in(node.body + node.orelse)
                if call is not None:
                    self.emit(
                        "RP405",
                        node,
                        f"control command calls {call}() only when shard-local "
                        "traffic state says so; each shard will decide "
                        "differently and the fanout diverges",
                        "decide on the control plane from the aggregated "
                        "query() view, then fan out unconditionally",
                    )

    # ------------------------------------------------------------------
    # RP401
    # ------------------------------------------------------------------
    @staticmethod
    def _root_name(expr: ast.expr) -> Tuple[Optional[str], List[str]]:
        """(root Name id, attribute chain) of a dotted/subscripted target."""
        chain: List[str] = []
        node = expr
        while True:
            if isinstance(node, ast.Attribute):
                chain.append(node.attr)
                node = node.value
            elif isinstance(node, ast.Subscript):
                node = node.value
            elif isinstance(node, ast.Name):
                chain.reverse()
                return node.id, chain
            else:
                return None, []

    def _module_global(self, name: str):
        """The module-level object ``name`` resolves to from this
        function, or None when it is local, missing, or innocuous
        (modules, classes, and functions are code, not state)."""
        if name in self.locals or name == "self":
            return None
        obj = self.fn.__globals__.get(name)
        if obj is None:
            return None
        if inspect.ismodule(obj) or isinstance(obj, type) or callable(obj):
            return None
        return obj

    @staticmethod
    def _is_mutable_state(obj) -> bool:
        if isinstance(obj, _MUTABLE_TYPES):
            return True
        if isinstance(
            obj,
            (
                collections.abc.MutableMapping,
                collections.abc.MutableSequence,
                collections.abc.MutableSet,
            ),
        ):
            return True
        # A module-level instance with mutable attribute storage is a
        # stats object / registry — attribute stores into it diverge
        # per shard exactly like a dict.
        return hasattr(obj, "__dict__") or hasattr(type(obj), "__slots__")

    def _check_store(self, node: ast.AST) -> None:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name):
                if target.id in self.global_decls:
                    self.emit(
                        "RP401",
                        node,
                        f"rebinds module global {target.id!r} from a "
                        "data-path hook; each shard rebinds its own copy",
                        "keep per-flow/per-plugin state on the instance "
                        "(self.*); it is created identically in every shard",
                    )
                continue
            if not isinstance(target, (ast.Attribute, ast.Subscript)):
                continue
            root, chain = self._root_name(target)
            if root is None:
                continue
            if root == "self":
                self._check_self_store(node, target, chain)
                continue
            if self._is_class_alias(target):
                continue  # handled as RP402 by _check_self_store path
            obj = self._module_global(root)
            if obj is not None and self._is_mutable_state(obj):
                self.emit(
                    "RP401",
                    node,
                    f"writes into module-level mutable global {root!r} from "
                    "a data-path hook; shards each mutate their own copy "
                    "and diverge",
                    "move the state onto the instance (self.*) or expose it "
                    "as a telemetry metric so cross-shard merge applies",
                )

    def _check_mutator_call(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in _MUTATORS:
            return
        root, chain = self._root_name(func)
        if root is None or not chain:
            return
        holder_chain = chain[:-1]
        if root == "self":
            if (
                len(holder_chain) >= 1
                and holder_chain[0] in self.shared_attrs
            ):
                self._emit_shared_attr(node, holder_chain[0], func.attr)
            return
        if self._class_alias_root(func) is not None:
            cls_attr = holder_chain[0] if holder_chain else None
            if cls_attr is not None:
                self._emit_shared_attr(node, cls_attr, func.attr)
            return
        obj = self._module_global(root)
        if obj is None:
            return
        holder = obj
        for attr in holder_chain:
            holder = getattr(holder, attr, None)
            if holder is None:
                return
        if isinstance(holder, _MUTABLE_TYPES) or isinstance(
            holder,
            (
                collections.abc.MutableMapping,
                collections.abc.MutableSequence,
                collections.abc.MutableSet,
            ),
        ):
            dotted = ".".join([root, *holder_chain])
            self.emit(
                "RP401",
                node,
                f"{dotted}.{func.attr}() mutates a module-level container "
                "from a data-path hook; shards each mutate their own copy "
                "and diverge",
                "move the state onto the instance (self.*) or expose it as "
                "a telemetry metric so cross-shard merge applies",
            )

    # ------------------------------------------------------------------
    # RP402
    # ------------------------------------------------------------------
    @staticmethod
    def _class_alias_node(expr: ast.expr) -> Optional[ast.expr]:
        """The ``type(self)`` / ``self.__class__`` root of ``expr``."""
        node = expr
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            parent = node
            node = node.value
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "type"
                and len(node.args) == 1
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id == "self"
            ):
                return parent
            if (
                isinstance(node, ast.Attribute)
                and node.attr == "__class__"
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                return parent
        return None

    def _class_alias_root(self, expr: ast.expr) -> Optional[ast.expr]:
        alias = self._class_alias_node(expr)
        if alias is not None:
            return alias
        root, _ = self._root_name(expr)
        if root is None or self.owner is None:
            return None
        mro_names = {base.__name__ for base in self.owner.__mro__[:-1]}
        if root in mro_names and self.fn.__globals__.get(root) in set(
            self.owner.__mro__
        ):
            return expr
        return None

    def _is_class_alias(self, expr: ast.expr) -> bool:
        return self._class_alias_root(expr) is not None

    def _check_self_store(
        self, node: ast.AST, target: ast.expr, chain: List[str]
    ) -> None:
        if chain and chain[0] in self.shared_attrs:
            if isinstance(target, ast.Attribute) and len(chain) == 1:
                return  # plain rebind self.x = ... creates instance state
            self._emit_shared_attr(node, chain[0], "[...]=")

    def _emit_shared_attr(self, node: ast.AST, attr: str, how: str) -> None:
        owner_name = self.owner.__name__ if self.owner else "?"
        self.emit(
            "RP402",
            node,
            f"mutates class attribute {owner_name}.{attr} ({how}), which "
            "every instance — and after fanout, every shard — shares",
            f"initialize per-instance state in __init__ "
            f"(self.{attr} = ...) instead of a class-level default",
        )

    def check_class_alias_store(self, node: ast.AST) -> None:
        """Direct class-attribute writes: ``type(self).x = ...``."""
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            alias = self._class_alias_root(target)
            if alias is None:
                continue
            attr = alias.attr if isinstance(alias, ast.Attribute) else "?"
            self._emit_shared_attr(node, attr, "=")

    # ------------------------------------------------------------------
    # RP403 (AST factory form)
    # ------------------------------------------------------------------
    def _check_hostile_factory(self, node: ast.Call, in_init: bool) -> None:
        func = node.func
        what = None
        if isinstance(func, ast.Name):
            if func.id == "open" and self._module_global("open") is None and (
                "open" not in self.locals
            ):
                what = "open() file handle"
        elif isinstance(func, ast.Attribute):
            root = func.value
            chain = [func.attr]
            while isinstance(root, ast.Attribute):
                chain.append(root.attr)
                root = root.value
            if isinstance(root, ast.Name):
                top = root.id
                resolved = self.fn.__globals__.get(top)
                if inspect.ismodule(resolved):
                    top = resolved.__name__.split(".")[0]
                if top in _HOSTILE_MODULES and top not in self.locals:
                    what = f"{top}.{'.'.join(reversed(chain))}() object"
        if what is None:
            return
        where = "__init__" if in_init else "a data-path hook"
        self.emit(
            "RP403",
            node,
            f"creates a fork/codec-hostile {what} in {where}; it cannot "
            "be rebuilt by ShardWorkerPool's post-fork factory and never "
            "transits the descriptor codec",
            "keep I/O and synchronization on the control path; instances "
            "must hold only plain, reconstructible state (a seeded "
            "self._rng is fine)",
        )

    # ------------------------------------------------------------------
    # RP405 helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _reads_local_state(test: ast.expr) -> bool:
        for sub in ast.walk(test):
            if isinstance(sub, ast.Attribute) and sub.attr in _LOCAL_STATE_ATTRS:
                return True
        return False

    @staticmethod
    def _config_call_in(body: List[ast.stmt]) -> Optional[str]:
        for stmt in body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Call):
                    func = sub.func
                    name = None
                    if isinstance(func, ast.Name):
                        name = func.id
                    elif isinstance(func, ast.Attribute):
                        name = func.attr
                    if name in _CONFIG_CALLS:
                        return name
        return None


# ----------------------------------------------------------------------
# Class-level helpers
# ----------------------------------------------------------------------
def _shared_mutable_attrs(cls: type) -> Set[str]:
    """Mutable class attributes never shadowed by an ``__init__`` self
    assignment anywhere in the MRO — the ones instances actually share."""
    mutable: Set[str] = set()
    for base in cls.__mro__:
        for name, value in base.__dict__.items():
            if isinstance(value, _MUTABLE_TYPES):
                mutable.add(name)
    if not mutable:
        return mutable
    shadowed: Set[str] = set()
    for base in cls.__mro__:
        init = base.__dict__.get("__init__")
        if init is None or not inspect.isfunction(init):
            continue
        try:
            source = textwrap.dedent(inspect.getsource(init))
        except (OSError, TypeError):
            continue
        tree = ast.parse(source)
        for sub in ast.walk(tree):
            if isinstance(sub, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    sub.targets
                    if isinstance(sub, ast.Assign)
                    else [sub.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        shadowed.add(target.attr)
    return mutable - shadowed


def _dedup_extend(
    out: List[Diagnostic],
    seen: Set[Tuple[str, Optional[str], Optional[int]]],
    found: Iterable[Diagnostic],
) -> None:
    for diagnostic in found:
        key = (diagnostic.code, diagnostic.file, diagnostic.line)
        if key not in seen:
            seen.add(key)
            out.append(diagnostic)


# ----------------------------------------------------------------------
# Live-instance object-graph scan (RP403)
# ----------------------------------------------------------------------
def _hostile_kind(value) -> Optional[str]:
    if isinstance(value, io.IOBase):
        return "open file handle"
    if isinstance(value, socket.socket):
        return "socket"
    if isinstance(value, _LOCK_TYPES):
        return "lock"
    if isinstance(value, threading.Thread):
        return "thread"
    if isinstance(
        value, (threading.Event, threading.Condition, threading.Semaphore)
    ):
        return "thread-synchronization primitive"
    if isinstance(value, _GENERATOR_TYPES):
        return "generator/coroutine"
    return None


def _instance_state(instance) -> Dict[str, object]:
    state: Dict[str, object] = dict(getattr(instance, "__dict__", {}) or {})
    for base in type(instance).__mro__:
        slots = base.__dict__.get("__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        for slot in slots:
            if slot not in state and hasattr(instance, slot):
                state[slot] = getattr(instance, slot)
    return state


def lint_instance_state(instance, subject: Optional[str] = None) -> List[Diagnostic]:
    """RP403 over a live instance's actual attribute values."""
    diagnostics: List[Diagnostic] = []
    cls = type(instance)
    subject = subject or f"{cls.__name__} ({getattr(instance, 'name', '?')})"
    file = None
    line = None
    try:
        file = inspect.getsourcefile(cls)
        _, line = inspect.getsourcelines(cls)
    except (OSError, TypeError):
        pass
    for name, value in sorted(_instance_state(instance).items()):
        kind = _hostile_kind(value)
        if kind is None:
            continue
        diagnostics.append(
            Diagnostic(
                "RP403",
                f"instance attribute {name!r} holds a live {kind}; it "
                "cannot be rebuilt by the post-fork plugin factory and "
                "never transits the descriptor codec",
                subject=subject,
                file=file,
                line=line,
                hint="hold only plain, reconstructible state on instances "
                "(a seeded self._rng is fine); do I/O on the control path",
            )
        )
    return diagnostics


# ----------------------------------------------------------------------
# Plugin entry points
# ----------------------------------------------------------------------
def lint_plugin_concurrency(plugin) -> List[Diagnostic]:
    """RP401/402/403/405 over one plugin (class or live object)."""
    plugin_cls = plugin if isinstance(plugin, type) else type(plugin)
    from .hotpath import _instance_classes, _lintable

    diagnostics: List[Diagnostic] = []
    seen: Set[Tuple[str, Optional[str], Optional[int]]] = set()
    instance_classes = _instance_classes(plugin_cls)
    for instance_cls in instance_classes:
        shared = _shared_mutable_attrs(instance_cls)
        for method_name in (*ROOT_METHODS, *BATCH_HOOKS):
            root = getattr(instance_cls, method_name, None)
            if root is None or not callable(root):
                continue
            for lint in _closure_lints(root, instance_cls):
                check = _ConcurrencyCheck(lint, shared_attrs=shared)
                check.run_datapath()
                _dedup_extend(diagnostics, seen, check.diagnostics)
        init = instance_cls.__dict__.get("__init__")
        if init is not None and inspect.isfunction(init) and _lintable(init):
            for lint in _closure_lints(init, instance_cls):
                check = _ConcurrencyCheck(lint, shared_attrs=shared)
                check.run_init()
                _dedup_extend(diagnostics, seen, check.diagnostics)
    for cls in (plugin_cls, *instance_classes):
        handler = cls.__dict__.get("handle_custom")
        if handler is None or not inspect.isfunction(handler):
            continue
        if not _lintable(handler):
            continue
        for lint in _closure_lints(handler, cls):
            check = _ConcurrencyCheck(lint)
            check.run_control()
            _dedup_extend(diagnostics, seen, check.diagnostics)
    if not isinstance(plugin, type):
        for instance in getattr(plugin, "instances", ()):
            _dedup_extend(diagnostics, seen, lint_instance_state(instance))
    return diagnostics


def lint_plugins_concurrency(plugins: Iterable[object]) -> AnalysisReport:
    report = AnalysisReport()
    seen: Set[Tuple[str, Optional[str], Optional[int]]] = set()
    for plugin in plugins:
        _dedup_extend(report.diagnostics, seen, lint_plugin_concurrency(plugin))
    return report


def lint_builtin_concurrency() -> AnalysisReport:
    from .hotpath import builtin_plugin_classes

    return lint_plugins_concurrency(builtin_plugin_classes())


# ----------------------------------------------------------------------
# Module sweep (the self-lint over repro.shard / repro.core.batch)
# ----------------------------------------------------------------------
def lint_module_concurrency(module) -> List[Diagnostic]:
    """RP401/402 over every function and method defined in ``module``.

    Used by the self-lint to hold the shard/batch layers themselves to
    the same standard as plugins: the dispatch loop, worker pool, and
    generated-loop compiler must not stash state in module globals."""
    from .hotpath import _FunctionLint, _lintable

    diagnostics: List[Diagnostic] = []
    seen: Set[Tuple[str, Optional[str], Optional[int]]] = set()

    def _sweep(fn, owner: Optional[type]) -> None:
        if not _lintable(fn):
            return
        lint = _FunctionLint(fn, owner)
        shared = _shared_mutable_attrs(owner) if owner is not None else set()
        check = _ConcurrencyCheck(lint, shared_attrs=shared)
        check.run_datapath()
        _dedup_extend(diagnostics, seen, check.diagnostics)

    for name in sorted(vars(module)):
        obj = vars(module)[name]
        if inspect.isfunction(obj) and obj.__module__ == module.__name__:
            _sweep(obj, None)
        elif isinstance(obj, type) and obj.__module__ == module.__name__:
            for attr_name in sorted(vars(obj)):
                member = vars(obj)[attr_name]
                if inspect.isfunction(member):
                    _sweep(member, obj)
    return diagnostics


def lint_shard_concurrency() -> AnalysisReport:
    """The self-lint sweep: RP4xx over ``repro.shard`` and the batch
    compiler/state modules themselves."""
    import importlib

    report = AnalysisReport()
    seen: Set[Tuple[str, Optional[str], Optional[int]]] = set()
    for module_name in (
        "repro.shard.dispatch",
        "repro.shard.mp",
        "repro.shard.sharded",
        "repro.shard.control",
        "repro.core.batch",
        "repro.core.shard_state",
    ):
        module = importlib.import_module(module_name)
        _dedup_extend(
            report.diagnostics, seen, lint_module_concurrency(module)
        )
    return report


# ----------------------------------------------------------------------
# Query mergeability (RP404)
# ----------------------------------------------------------------------
def _audit_payload(
    topic: str, value, path: str, diagnostics: List[Diagnostic]
) -> None:
    if isinstance(value, dict):
        for key, child in value.items():
            child_path = f"{path}.{key}" if path else str(key)
            _audit_payload(topic, child, child_path, diagnostics)
        return
    if value is None or isinstance(value, (bool, int, float, str)):
        return
    diagnostics.append(
        Diagnostic(
            "RP404",
            f"query topic {topic!r} carries a {type(value).__name__} at "
            f"{path or '<root>'}; the cross-shard sum-merge only understands "
            "numeric/bool/str leaves and nested dicts, so shards 1..N-1 "
            "would be silently dropped",
            subject=f"query({topic!r})",
            hint="flatten the payload to mergeable leaves or register "
            "the topic with a non-sum merge strategy",
        )
    )


def audit_query_mergeability(query, topics=None) -> List[Diagnostic]:
    """RP404: validate each sum-merged query topic's payload shape
    against the aggregation rules the topic registry declares.
    ``query`` is a ``query(topic, **filters) -> dict`` callable (a
    library's).  Only topics registered with the ``"sum"`` merge
    strategy are audited — every other strategy (bucketwise,
    worst-wins, shard0, frontend, or a bespoke callable) owns its own
    payload shape."""
    from ..mgr.format import get_topic, strip_schema, topic_names

    diagnostics: List[Diagnostic] = []
    for topic in topics if topics is not None else topic_names():
        try:
            spec = get_topic(topic)
        except KeyError:
            continue
        if spec.merge != "sum":
            continue
        payload = strip_schema(query(topic))
        _audit_payload(topic, payload, "", diagnostics)
    return diagnostics
