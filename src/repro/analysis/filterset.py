"""Filter-set semantic analyzer (RP1xx).

Detects, *exactly*, the pathologies a sane AIU configuration must not
contain:

* **RP101 shadowed filter** — an installed filter that no packet can
  ever select.  Because :meth:`FilterRecord.sort_key` orders by
  specificity before priority, a filter is shadowed precisely when every
  DAG leaf it is replicated into is either unreachable or won by another
  record, so the analysis is a reachability walk over the set-pruning
  DAG itself rather than a pairwise covers() heuristic — it catches
  multi-cover shadowing (a /8 partitioned away by two /9s) that no
  pairwise check can see.
* **RP102 redundant filter** — a bound filter whose removal would leave
  every packet's instance binding unchanged (at every reachable leaf it
  wins, the runner-up is bound to the very same instance).
* **RP103 conflicting bindings** — identical six-tuples at one gate
  bound to different instances with equal priority: installation order
  silently decides which instance gets the traffic.
* **RP104 ambiguous partial overlap** — port specs that partially
  overlap (only possible in tables that bypass the DAG's insert-time
  rejection, e.g. the linear oracle).
* **RP105 instance bound at multiple gates** — usually a configuration
  mistake (one instance's soft state shared across gates), occasionally
  deliberate; a warning.
* **RP106 unreachable DAG branch** — an edge whose label is fully
  covered by more-specific sibling labels; harmless replication debris,
  but operators watching ``node_count`` should know.

The walk reads DAG nodes without mutating them; non-DAG tables (the
linear oracle) are analyzed through a private shadow DAG built from
mirrored records, so the analyzer never touches live data-path state.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..aiu.dag import DagFilterTable, LEVELS, _Node
from ..aiu.filters import PortSpec
from ..aiu.matchers import AmbiguousFilterError, WILDCARD
from ..aiu.records import FilterRecord
from ..net.addresses import Prefix, prefix_range
from .diagnostics import AnalysisReport, Diagnostic

#: Exact-match value-space sizes per level (None = unbounded).  Only the
#: protocol level has a finite space a wildcard edge could exhaust.
_EXACT_SPACE = {"protocol": 256, "iif": None}


def _filter_id(record: FilterRecord) -> str:
    bound = record.instance.name if record.instance is not None else "unbound"
    return f"{record.gate}: {record.filter} -> {bound}"


def _intervals_cover(low: int, high: int, intervals: Iterable[Tuple[int, int]]) -> bool:
    """True if the union of ``intervals`` covers all of ``[low, high]``."""
    merged = sorted(i for i in intervals if i[0] <= high and i[1] >= low)
    cursor = low
    for start, stop in merged:
        if start > cursor:
            return False
        cursor = max(cursor, stop + 1)
        if cursor > high:
            return True
    return cursor > high


def _edge_reachable(level: int, label: object, siblings: Sequence[object], width: int) -> bool:
    """Can any packet field value select this edge over its siblings?

    An edge is selected when its label is the *most specific* match for
    the value, so it is unreachable exactly when strictly-more-specific
    sibling labels cover its entire value set.
    """
    name = LEVELS[level]
    if name in ("src", "dst"):
        prefix: Prefix = label  # type: ignore[assignment]
        low, high = prefix_range(prefix)
        inner = [
            prefix_range(s)
            for s in siblings
            if isinstance(s, Prefix) and s.length > prefix.length and prefix.covers(s)
        ]
        return not _intervals_cover(low, high, inner)
    if name in ("sport", "dport"):
        spec: PortSpec = label  # type: ignore[assignment]
        inner = [
            (s.low, s.high)
            for s in siblings
            if isinstance(s, PortSpec) and s != spec and spec.covers(s)
        ]
        return not _intervals_cover(spec.low, spec.high, inner)
    # Exact levels: a specific label always beats the wildcard, so it is
    # always selectable; the wildcard edge dies only if the specific
    # siblings exhaust a finite value space.
    if label != WILDCARD:
        return True
    space = _EXACT_SPACE.get(name)
    if space is None:
        return True
    return len([s for s in siblings if s != WILDCARD]) < space


class _WalkResult:
    """Per-table outcome of the reachability walk."""

    def __init__(self) -> None:
        # record -> list of runner-ups (None = no runner-up) at each
        # reachable leaf the record wins.
        self.wins: Dict[int, List[Optional[FilterRecord]]] = {}
        self.win_records: Dict[int, FilterRecord] = {}
        # record -> an example record that beats it somewhere.
        self.beaten_by: Dict[int, FilterRecord] = {}
        # (level, label-str) -> one representative unreachable edge.
        self.unreachable: Dict[Tuple[int, str], object] = {}


def _walk_dag(dag: DagFilterTable) -> _WalkResult:
    result = _WalkResult()

    def visit(node: _Node, level: int) -> None:
        if level == len(LEVELS):
            best: Optional[FilterRecord] = None
            second: Optional[FilterRecord] = None
            for record in node.filters:
                if best is None or record.sort_key() > best.sort_key():
                    best, second = record, best
                elif second is None or record.sort_key() > second.sort_key():
                    second = record
            if best is None:
                return
            result.wins.setdefault(id(best), []).append(second)
            result.win_records[id(best)] = best
            for record in node.filters:
                if record is not best:
                    result.beaten_by.setdefault(id(record), best)
            return
        labels = list(node.edges)
        for label in labels:
            if _edge_reachable(level, label, labels, dag.width):
                visit(node.edges[label], level + 1)
            else:
                result.unreachable.setdefault((level, str(label)), label)

    visit(dag._root, 0)
    return result


def _shadow_dag(
    records: Sequence[FilterRecord], width: int, diagnostics: List[Diagnostic]
) -> Tuple[DagFilterTable, Dict[int, FilterRecord]]:
    """Mirror ``records`` into a private DAG (original records are never
    installed twice — that would corrupt their leaf/via bookkeeping).

    Install order follows the original ``seq`` so exact-tie behavior
    (latest installed wins) is reproduced by the mirrors' fresh seqs.
    """
    shadow = DagFilterTable(width=width, check_ambiguity=True)
    mapping: Dict[int, FilterRecord] = {}
    for record in sorted(records, key=lambda r: r.seq):
        mirror = FilterRecord(
            record.filter, record.gate, record.instance, record.priority
        )
        try:
            shadow.install(mirror)
        except AmbiguousFilterError as exc:
            diagnostics.append(
                Diagnostic(
                    "RP104",
                    f"filter {record.filter} has a partially overlapping port "
                    f"spec with an installed filter: {exc}",
                    subject=_filter_id(record),
                    hint="split the range into nested or disjoint port specs",
                )
            )
            continue
        mapping[id(mirror)] = record
    return shadow, mapping


def analyze_table(
    table: object, width: int, gate: str
) -> Tuple[List[Diagnostic], _WalkResult, Dict[int, FilterRecord]]:
    """Walk one filter table; returns (RP104/RP106 diagnostics, walk
    result over *mirror or real* records, mirror->original mapping)."""
    diagnostics: List[Diagnostic] = []
    records: List[FilterRecord] = table.records()
    if isinstance(table, DagFilterTable):
        dag = table
        mapping = {id(r): r for r in records}
    else:
        dag, mapping = _shadow_dag(records, width, diagnostics)
    result = _walk_dag(dag)
    for (level, label_text), _label in sorted(result.unreachable.items()):
        diagnostics.append(
            Diagnostic(
                "RP106",
                f"DAG edge {label_text!r} at level {LEVELS[level]!r} is fully "
                "covered by more-specific sibling labels; no packet can "
                "select it",
                subject=f"{gate}/{width}-bit table",
                hint="the broader filter only matches through replicas; "
                "consider removing it if RP101 also fires",
            )
        )
    return diagnostics, result, mapping


def _conflict_groups(records: Sequence[FilterRecord]) -> List[Diagnostic]:
    """RP103: identical six-tuples at one gate, equal priority, bound to
    different instances — installation order silently picks the winner."""
    diagnostics: List[Diagnostic] = []
    groups: Dict[Tuple, List[FilterRecord]] = {}
    for record in records:
        flt = record.filter
        key = (record.gate, flt.src, flt.dst, flt.protocol, flt.sport, flt.dport, flt.iif)
        groups.setdefault(key, []).append(record)
    for group in groups.values():
        if len(group) < 2:
            continue
        top_priority = max(r.priority for r in group)
        contenders = [r for r in group if r.priority == top_priority]
        instances = {id(r.instance): r.instance for r in contenders if r.instance is not None}
        if len(instances) < 2:
            continue
        names = sorted(
            i.name if hasattr(i, "name") else repr(i) for i in instances.values()
        )
        winner = max(contenders, key=lambda r: r.seq)
        diagnostics.append(
            Diagnostic(
                "RP103",
                f"{len(contenders)} identical filters {winner.filter} at gate "
                f"{winner.gate!r} with equal priority are bound to different "
                f"instances ({', '.join(names)}); installation order decides "
                "which one gets the traffic",
                subject=_filter_id(winner),
                hint="give the intended winner a higher priority or remove "
                "the duplicates",
            )
        )
    return diagnostics


def _conflict_losers(records: Sequence[FilterRecord]) -> Set[int]:
    """Records whose shadowing is already explained by an RP103 group."""
    losers: Set[int] = set()
    groups: Dict[Tuple, List[FilterRecord]] = {}
    for record in records:
        flt = record.filter
        key = (record.gate, flt.src, flt.dst, flt.protocol, flt.sport, flt.dport, flt.iif)
        groups.setdefault(key, []).append(record)
    for group in groups.values():
        if len(group) < 2:
            continue
        # Mirror the RP103 condition exactly: only a *reported* conflict
        # explains the shadowing.  A priority-resolved duplicate is not
        # a conflict, so its loser still deserves its own RP101.
        top_priority = max(r.priority for r in group)
        contenders = [r for r in group if r.priority == top_priority]
        instances = {id(r.instance) for r in contenders if r.instance is not None}
        if len(instances) < 2:
            continue
        winner = max(contenders, key=lambda r: r.seq)
        losers.update(id(r) for r in group if r is not winner)
    return losers


def analyze_filterset(aiu: object) -> AnalysisReport:
    """Analyze every filter table of an AIU; returns an AnalysisReport."""
    report = AnalysisReport()
    # Per-gate aggregation across address-family tables: a record is
    # shadowed only if it wins nowhere in *any* table of its gate.
    gate_records: Dict[str, Dict[int, FilterRecord]] = {}
    gate_wins: Dict[str, Dict[int, List[Optional[FilterRecord]]]] = {}
    gate_beaten: Dict[str, Dict[int, FilterRecord]] = {}
    for (gate, width), table in sorted(
        aiu._tables.items(), key=lambda item: (item[0][0], item[0][1])
    ):
        diagnostics, result, mapping = analyze_table(table, width, gate)
        report.extend(diagnostics)
        records_here = gate_records.setdefault(gate, {})
        for record in table.records():
            records_here[id(record)] = record
        wins_here = gate_wins.setdefault(gate, {})
        for mirror_id, seconds in result.wins.items():
            original = mapping.get(mirror_id)
            if original is None:
                continue
            resolved = [
                mapping.get(id(s)) if s is not None else None for s in seconds
            ]
            wins_here.setdefault(id(original), []).extend(resolved)
        beaten_here = gate_beaten.setdefault(gate, {})
        for mirror_id, winner in result.beaten_by.items():
            original = mapping.get(mirror_id)
            winner_orig = mapping.get(id(winner))
            if original is not None and winner_orig is not None:
                beaten_here.setdefault(id(original), winner_orig)

    all_records: Dict[int, FilterRecord] = {}
    for records in gate_records.values():
        all_records.update(records)
    losers = _conflict_losers(list(all_records.values()))

    for gate in sorted(gate_records):
        records = gate_records[gate]
        wins = gate_wins.get(gate, {})
        beaten = gate_beaten.get(gate, {})
        for record_id, record in sorted(
            records.items(), key=lambda item: item[1].seq
        ):
            if not record.active:
                continue
            if record_id not in wins:
                if record_id in losers:
                    continue  # explained by RP103 below
                winner = beaten.get(record_id)
                why = (
                    f"every packet it matches is claimed by "
                    f"{winner.filter} (priority {winner.priority})"
                    if winner is not None
                    else "every leaf it reaches is unreachable or won by "
                    "more-specific filters"
                )
                report.add(
                    Diagnostic(
                        "RP101",
                        f"filter {record.filter} at gate {record.gate!r} can "
                        f"never match: {why}",
                        subject=_filter_id(record),
                        hint="remove the filter, raise its priority, or "
                        "narrow the filters covering it",
                    )
                )
                continue
            if record.instance is None:
                continue
            seconds = wins[record_id]
            if seconds and all(
                s is not None and s.instance is record.instance for s in seconds
            ):
                covering = seconds[0]
                report.add(
                    Diagnostic(
                        "RP102",
                        f"filter {record.filter} at gate {record.gate!r} is "
                        f"redundant: wherever it wins, {covering.filter} "
                        "already binds the same instance "
                        f"({getattr(record.instance, 'name', None) or record.instance!r})",
                        subject=_filter_id(record),
                        hint="remove the narrower filter unless it exists "
                        "for priority or accounting reasons",
                    )
                )

    report.extend(_conflict_groups(list(all_records.values())))

    # RP105: one instance bound at several gates.
    by_instance: Dict[int, Tuple[object, Set[str]]] = {}
    for record in all_records.values():
        if record.instance is None or not record.active:
            continue
        entry = by_instance.setdefault(id(record.instance), (record.instance, set()))
        entry[1].add(record.gate)
    for instance, gates in by_instance.values():
        if len(gates) > 1:
            name = instance.name if hasattr(instance, "name") else repr(instance)
            report.add(
                Diagnostic(
                    "RP105",
                    f"instance {name!r} is bound at {len(gates)} gates "
                    f"({', '.join(sorted(gates))}); its per-flow soft state "
                    "is shared across gates",
                    subject=name,
                    hint="create one instance per gate unless sharing is "
                    "deliberate",
                )
            )
    return report


def analyze_records(records: Sequence[FilterRecord], width: int = 32) -> AnalysisReport:
    """Analyze a bare record list (no AIU) by building a shadow DAG."""
    report = AnalysisReport()
    diagnostics: List[Diagnostic] = []
    shadow, mapping = _shadow_dag(records, width, diagnostics)
    report.extend(diagnostics)
    result = _walk_dag(shadow)
    winners = {id(mapping[mid]) for mid in result.wins if mid in mapping}
    losers = _conflict_losers(records)
    for record in sorted(mapping.values(), key=lambda r: r.seq):
        if id(record) not in winners and id(record) not in losers:
            report.add(
                Diagnostic(
                    "RP101",
                    f"filter {record.filter} at gate {record.gate!r} can "
                    "never match",
                    subject=_filter_id(record),
                    hint="remove the filter, raise its priority, or narrow "
                    "the filters covering it",
                )
            )
    report.extend(_conflict_groups(records))
    return report
