"""Plugin hot-path lint (RP2xx) — AST checks over data-path methods.

The data path must never block, must be deterministic (replayable seeded
simulations are the repo's ground truth), must not swallow faults the
circuit breaker needs to see, and must charge the :mod:`repro.sim.cost`
model for any packet-byte work so modelled-cycle experiments stay
honest.  This lint walks the AST of every data-path root method
(``process``, ``enqueue``, ``dequeue``, ``on_flow_created``,
``on_flow_removed``) of a plugin's instance classes, following the
transitive closure of ``self.*``/``super()`` method calls and
same-package helper functions, and flags:

* RP201 — blocking I/O (``open``/``input``, ``socket``/``subprocess``/
  ``requests``/``urllib``, ``time.sleep``, ``os.system`` & co).
* RP202 — nondeterminism (module-level ``random``/``uuid``/``secrets``,
  ``time.*``, ``datetime.now``, ``os.urandom``).  A *seeded* private RNG
  (``self._rng``) is fine and not flagged.
* RP203 — bare ``except``.
* RP204 — attribute creation outside ``__init__`` on a class whose MRO
  declares ``__slots__``.
* RP205 — packet-byte touches (``.payload`` access, ``.serialize()``)
  with no ``charge``/``charge_memory``/``access`` call anywhere in the
  root's closure.
* RP206 — ``except Exception`` (warning; the fault domains already
  contain plugin exceptions, catching them hides real bugs).
* RP207 — metric emission that bypasses the telemetry registry: a
  subscript store into a metric-named ``self`` dict (``self.stats[...]``,
  ``self.counters[...] += 1``, …) on the data path.  Plugin-local metrics
  belong in registry handles grabbed at bind time (docs/OBSERVABILITY.md)
  so exporters and ``pmgr show telemetry`` can see them.
* RP208 — per-packet work inside a batch hook (``on_batch_start``,
  ``process_batch``, ``on_batch_end``) that does not depend on the
  packet being iterated: an assignment inside a loop over a hook
  parameter whose right-hand side calls or dereferences only
  loop-invariant names.  The whole point of the batch hooks is hoisting
  such work to one evaluation per batch (docs/PERFORMANCE.md, "Batched
  pipeline"); recomputing it per packet silently re-creates the scalar
  overhead the compiled batch loops removed.

Findings on a source line carrying ``# rp: ignore[RPxxx]`` (or a blanket
``# rp: ignore``) are suppressed.  Everything runs on source text via
``inspect``/``ast`` — no packet ever flows through the lint.
"""

from __future__ import annotations

import ast
import inspect
import sys
import textwrap
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core.plugin import PluginInstance
from .diagnostics import (
    AnalysisReport,
    Diagnostic,
    is_suppressed,
    unknown_suppressed_codes,
)

#: Data-path root methods, per the plugin/scheduler contracts.
ROOT_METHODS = ("process", "enqueue", "dequeue", "on_flow_created", "on_flow_removed")

#: Batch-pipeline hooks (repro.core.batch): called once per batch, so
#: they are data-path roots too — and additionally get the RP208
#: loop-invariance check.
BATCH_HOOKS = ("on_batch_start", "process_batch", "on_batch_end")

_BLOCKING_BUILTINS = {"open", "input"}
_BLOCKING_MODULES = {"socket", "subprocess", "requests", "urllib", "http", "select"}
_BLOCKING_OS = {"system", "popen", "read", "write", "open", "fork", "wait"}
_NONDET_MODULES = {"random", "uuid", "secrets"}
_NONDET_DATETIME = {"now", "utcnow", "today"}
_CHARGE_NAMES = {"charge", "charge_memory", "access"}
_TOUCH_ATTRS = {"payload"}
_TOUCH_CALLS = {"serialize"}
#: self-attribute names that read as ad-hoc metric stores (RP207).
_METRIC_ATTRS = {
    "stats", "metrics", "counters", "counts", "histograms", "gauges",
    "telemetry", "meters",
}


class _FunctionLint:
    """One function's parsed source plus its per-function findings."""

    def __init__(self, fn, owner: Optional[type]):
        self.fn = fn
        self.owner = owner
        self.file = inspect.getsourcefile(fn)
        lines, start = inspect.getsourcelines(fn)
        self.lines = lines
        self.start = start
        tree = ast.parse(textwrap.dedent("".join(lines)))
        self.node = tree.body[0]
        # Function-local imports (``import time`` inside the body) bind
        # names that never appear in ``fn.__globals__``; track them so
        # local imports cannot smuggle blocking modules past the lint.
        self.local_modules: Dict[str, str] = {}          # alias -> module
        self.local_names: Dict[str, Tuple[str, str]] = {}  # alias -> (module, attr)
        for sub in ast.walk(self.node):
            if isinstance(sub, ast.Import):
                for alias in sub.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    self.local_modules[bound] = alias.name
            elif isinstance(sub, ast.ImportFrom) and sub.module and sub.level == 0:
                for alias in sub.names:
                    bound = alias.asname or alias.name
                    self.local_names[bound] = (sub.module, alias.name)
        self.calls_self: Set[str] = set()
        self.calls_super: Set[str] = set()
        self.calls_global: Set[str] = set()
        self.has_charge = False
        self.touches: List[Tuple[int, str]] = []      # (lineno, what)
        self.diagnostics: List[Diagnostic] = []

    def absolute_line(self, node: ast.AST) -> int:
        return self.start + getattr(node, "lineno", 1) - 1

    def source_line(self, node: ast.AST) -> str:
        index = getattr(node, "lineno", 1) - 1
        if 0 <= index < len(self.lines):
            return self.lines[index]
        return ""

    def emit(self, code: str, node: ast.AST, message: str, hint: str) -> None:
        if is_suppressed(code, self.source_line(node)):
            return
        subject = self._subject()
        self.diagnostics.append(
            Diagnostic(
                code,
                message,
                subject=subject,
                file=self.file,
                line=self.absolute_line(node),
                hint=hint,
            )
        )

    def _subject(self) -> str:
        qual = getattr(self.fn, "__qualname__", getattr(self.fn, "__name__", "?"))
        if self.owner is not None:
            return f"{self.owner.__name__}.{self.fn.__name__}"
        return qual

    # ------------------------------------------------------------------
    def run(self) -> None:
        slots = _slot_union(self.owner) if self.owner is not None else None
        for node in ast.walk(self.node):
            if isinstance(node, ast.Call):
                self._check_call(node)
            elif isinstance(node, ast.ExceptHandler):
                self._check_except(node)
            elif isinstance(node, ast.Attribute):
                if node.attr in _TOUCH_ATTRS:
                    self.touches.append((self.absolute_line(node), f".{node.attr}"))
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                if slots is not None:
                    self._check_slots_assign(node, slots)
                self._check_metric_assign(node)
        self._check_suppressions()

    def _check_suppressions(self) -> None:
        """RP210: a ``# rp: ignore[...]`` comment naming a code that does
        not exist suppresses nothing — usually a typo that leaves the
        author believing a finding is handled."""
        for offset, line in enumerate(self.lines):
            unknown = sorted(unknown_suppressed_codes(line))
            if not unknown or is_suppressed("RP210", line):
                continue
            self.diagnostics.append(
                Diagnostic(
                    "RP210",
                    "suppression names unknown diagnostic code(s) "
                    f"{', '.join(unknown)}; nothing is suppressed",
                    subject=self._subject(),
                    file=self.file,
                    line=self.start + offset,
                    hint="valid codes are listed in docs/STATIC_ANALYSIS.md; "
                    "fix the typo or drop the comment",
                )
            )

    # ------------------------------------------------------------------
    def _check_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in _CHARGE_NAMES:
                self.has_charge = True
            if func.attr in _TOUCH_CALLS:
                self.touches.append((self.absolute_line(node), f".{func.attr}()"))
            self._check_dotted(node, func)
            return
        if isinstance(func, ast.Name):
            name = func.id
            if name in _BLOCKING_BUILTINS:
                self.emit(
                    "RP201",
                    node,
                    f"call to {name}() blocks the data path",
                    "move I/O to the control path (a plugin message handler)",
                )
                return
            if (
                name == "hash"
                and name not in self.local_names
                and self.fn.__globals__.get(name) is None
                and node.args
                and not isinstance(node.args[0], ast.Constant)
            ):
                self.emit(
                    "RP209",
                    node,
                    "builtin hash() is process-seeded (PYTHONHASHSEED): the "
                    "same packet hashes differently in different workers",
                    "derive placement from the deterministic five-tuple fold "
                    "(Packet.flow_fold32 / fold_five_tuple), never hash()",
                )
                return
            if name in self.local_names:
                module, attr = self.local_names[name]
                top = module.split(".")[0]
                if (
                    top in _NONDET_MODULES
                    or (top == "time" and attr != "sleep")
                    or (top == "os" and attr == "urandom")
                    or (top == "datetime" and attr in _NONDET_DATETIME)
                ):
                    self.emit(
                        "RP202",
                        node,
                        f"call to {top}.{attr} is nondeterministic on the "
                        "data path",
                        "use a seeded RNG created in __init__ (self._rng) or "
                        "take time from ctx.now",
                    )
                elif (
                    top == "time"
                    or top in _BLOCKING_MODULES
                    or (top == "os" and attr in _BLOCKING_OS)
                ):
                    self.emit(
                        "RP201",
                        node,
                        f"call to {top}.{attr} blocks the data path",
                        "move I/O to the control path (a plugin message "
                        "handler)",
                    )
                return
            target = self.fn.__globals__.get(name)
            if target is None:
                return
            module_name = getattr(target, "__module__", None)
            if inspect.ismodule(target):
                return  # handled via the Attribute branch
            if module_name in _NONDET_MODULES or (
                module_name == "time" and getattr(target, "__name__", "") != "sleep"
            ):
                self.emit(
                    "RP202",
                    node,
                    f"call to {module_name}.{getattr(target, '__name__', name)} "
                    "is nondeterministic on the data path",
                    "use a seeded RNG created in __init__ (self._rng) or take "
                    "time from ctx.now",
                )
                return
            if module_name == "time" or (
                module_name == "os" and getattr(target, "__name__", "") in _BLOCKING_OS
            ):
                self.emit(
                    "RP201",
                    node,
                    f"call to {module_name}.{getattr(target, '__name__', name)} "
                    "blocks the data path",
                    "move I/O to the control path (a plugin message handler)",
                )
                return
            if inspect.isfunction(target) and module_name and module_name.startswith("repro."):
                self.calls_global.add(name)

    def _check_dotted(self, node: ast.Call, func: ast.Attribute) -> None:
        """Calls of the form root.a.b(): resolve the root through the
        function's globals so ``self._rng.random()`` is never confused
        with module-level ``random.random()``."""
        chain = [func.attr]
        root = func.value
        while isinstance(root, ast.Attribute):
            chain.append(root.attr)
            root = root.value
        chain.reverse()
        if isinstance(root, ast.Call) and isinstance(root.func, ast.Name):
            if root.func.id == "super" and len(chain) == 1:
                self.calls_super.add(chain[0])
            return
        if not isinstance(root, ast.Name):
            return
        if root.id == "self":
            if len(chain) == 1:
                self.calls_self.add(chain[0])
            return
        target = self.fn.__globals__.get(root.id)
        if target is not None and inspect.ismodule(target):
            top = getattr(target, "__name__", "").split(".")[0]
        elif root.id in self.local_modules:
            top = self.local_modules[root.id].split(".")[0]
        else:
            return
        last = chain[-1]
        if top in _BLOCKING_MODULES:
            self.emit(
                "RP201",
                node,
                f"call to {top}.{'.'.join(chain)} blocks the data path",
                "move I/O to the control path (a plugin message handler)",
            )
        elif top == "time":
            if last == "sleep":
                self.emit(
                    "RP201",
                    node,
                    "call to time.sleep blocks the data path",
                    "schedulers must return CONSUMED and rely on dequeue(now)",
                )
            else:
                self.emit(
                    "RP202",
                    node,
                    f"call to time.{last} is nondeterministic on the data path",
                    "take time from ctx.now; the simulator owns the clock",
                )
        elif top in _NONDET_MODULES:
            self.emit(
                "RP202",
                node,
                f"call to {top}.{'.'.join(chain)} is nondeterministic on the "
                "data path",
                "create a seeded RNG in __init__ (self._rng = "
                "random.Random(seed)) and use that instead",
            )
        elif top == "os":
            if last == "urandom":
                self.emit(
                    "RP202",
                    node,
                    "call to os.urandom is nondeterministic on the data path",
                    "use a seeded RNG created in __init__",
                )
            elif last in _BLOCKING_OS:
                self.emit(
                    "RP201",
                    node,
                    f"call to os.{last} blocks the data path",
                    "move I/O to the control path (a plugin message handler)",
                )
        elif top == "datetime" and last in _NONDET_DATETIME:
            self.emit(
                "RP202",
                node,
                f"call to {'.'.join(chain)} is nondeterministic on the data path",
                "take time from ctx.now; the simulator owns the clock",
            )

    def _check_except(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.emit(
                "RP203",
                node,
                "bare except swallows every fault, including the ones the "
                "circuit breaker must count",
                "catch the specific exceptions the operation can raise",
            )
        elif isinstance(node.type, ast.Name) and node.type.id in (
            "Exception",
            "BaseException",
        ):
            self.emit(
                "RP206",
                node,
                f"except {node.type.id} hides real bugs; the per-plugin fault "
                "domain already contains uncaught exceptions",
                "catch the specific exceptions the operation can raise",
            )

    def _check_slots_assign(self, node: ast.AST, slots: Set[str]) -> None:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and target.attr not in slots
            ):
                self.emit(
                    "RP204",
                    node,
                    f"assignment to self.{target.attr} outside __init__ on a "
                    "__slots__ class",
                    f"declare {target.attr!r} in __slots__ (or assign it in "
                    "__init__)",
                )

    def check_batch_invariants(self) -> None:
        """RP208: loop-invariant work recomputed per packet in a batch
        hook.  Walks each ``for`` loop over a hook parameter, tracking a
        taint set seeded with the loop targets (names derived from the
        per-item value are loop-variant); an assignment whose right-hand
        side performs work (a call, attribute load, or subscript) while
        referencing no tainted name could have been hoisted."""
        args = self.node.args
        params = {
            a.arg
            for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
            if a.arg != "self"
        }
        for loop in ast.walk(self.node):
            if isinstance(loop, ast.For) and self._loops_over(loop.iter, params):
                tainted = {
                    n.id for n in ast.walk(loop.target) if isinstance(n, ast.Name)
                }
                self._flag_invariant_assigns(loop.body, tainted)

    @staticmethod
    def _loops_over(iter_node: ast.expr, params: Set[str]) -> bool:
        if isinstance(iter_node, ast.Name):
            return iter_node.id in params
        if (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Name)
            and iter_node.func.id in ("enumerate", "reversed", "sorted")
            and iter_node.args
        ):
            first = iter_node.args[0]
            return isinstance(first, ast.Name) and first.id in params
        return False

    def _flag_invariant_assigns(self, body: List[ast.stmt], tainted: Set[str]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.Assign):
                refs = {
                    n.id for n in ast.walk(stmt.value) if isinstance(n, ast.Name)
                }
                works = any(
                    isinstance(n, (ast.Call, ast.Attribute, ast.Subscript))
                    for n in ast.walk(stmt.value)
                )
                if refs & tainted or not works:
                    # Loop-variant (or trivially cheap): its targets now
                    # carry per-item values.
                    for target in stmt.targets:
                        for n in ast.walk(target):
                            if isinstance(n, ast.Name):
                                tainted.add(n.id)
                else:
                    self.emit(
                        "RP208",
                        stmt,
                        "loop-invariant work recomputed per packet inside a "
                        "batch hook",
                        "hoist the assignment to the per-batch prologue "
                        "(before the packet loop)",
                    )
            elif isinstance(stmt, ast.AugAssign):
                if isinstance(stmt.target, ast.Name):
                    tainted.add(stmt.target.id)
            elif isinstance(stmt, ast.For):
                tainted |= {
                    n.id for n in ast.walk(stmt.target) if isinstance(n, ast.Name)
                }
                self._flag_invariant_assigns(stmt.body, tainted)
                self._flag_invariant_assigns(stmt.orelse, tainted)
                continue
            for field in ("body", "orelse", "finalbody"):
                self._flag_invariant_assigns(getattr(stmt, field, []), tainted)

    def _check_metric_assign(self, node: ast.AST) -> None:
        """RP207: ``self.stats[...] = / += ...`` style ad-hoc metric
        stores on the data path, invisible to exporters."""
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if not isinstance(target, ast.Subscript):
                continue
            container = target.value
            if (
                isinstance(container, ast.Attribute)
                and isinstance(container.value, ast.Name)
                and container.value.id == "self"
                and container.attr in _METRIC_ATTRS
            ):
                self.emit(
                    "RP207",
                    node,
                    f"metric emission into self.{container.attr}[...] bypasses "
                    "the telemetry registry",
                    "grab a Counter/Histogram handle from router.telemetry at "
                    "bind time instead (docs/OBSERVABILITY.md)",
                )


def _slot_union(cls: type) -> Optional[Set[str]]:
    """Union of declared slots and class attributes across the MRO, or
    ``None`` when no class in the MRO uses ``__slots__`` (plain classes
    may create attributes anywhere; that is idiomatic Python)."""
    has_slots = False
    allowed: Set[str] = set()
    for base in cls.__mro__:
        if base is object:
            continue
        slots = base.__dict__.get("__slots__")
        if slots is not None:
            has_slots = True
            if isinstance(slots, str):
                allowed.add(slots)
            else:
                allowed.update(slots)
        allowed.update(base.__dict__.keys())
    return allowed if has_slots else None


def _overrides_create_instance(plugin_cls: type) -> bool:
    from ..core.plugin import Plugin

    for base in plugin_cls.__mro__:
        if base is Plugin or base is object:
            break
        if "create_instance" in base.__dict__:
            return True
    return False


def _instance_classes(plugin_cls: type) -> List[type]:
    """The plugin's instance classes.  Normally just ``instance_class``;
    when the plugin overrides ``create_instance`` (AH/ESP construct
    direction-specific instances there) the declared class alone is
    incomplete, so every PluginInstance subclass defined in the plugin's
    own module is linted too."""
    classes: Dict[str, type] = {}
    declared = getattr(plugin_cls, "instance_class", None)
    if isinstance(declared, type) and issubclass(declared, PluginInstance):
        classes[declared.__qualname__] = declared
    module = sys.modules.get(plugin_cls.__module__)
    if module is not None and _overrides_create_instance(plugin_cls):
        for obj in vars(module).values():
            if (
                isinstance(obj, type)
                and issubclass(obj, PluginInstance)
                and obj.__module__ == plugin_cls.__module__
            ):
                classes[obj.__qualname__] = obj
    return [classes[name] for name in sorted(classes)]


def _lintable(fn) -> bool:
    try:
        inspect.getsourcelines(fn)
        return True
    except (OSError, TypeError):
        return False


def _closure_lints(root_fn, owner: type) -> List[_FunctionLint]:
    """Lint the root and every reachable helper: ``self.x()`` resolved on
    the concrete instance class (so subclass overrides like the hardware
    crypto ``_charge_crypto`` are honored), ``super().x()`` resolved as
    every base implementation, plus same-package module functions."""
    lints: List[_FunctionLint] = []
    seen: Set[Tuple[int, Optional[int]]] = set()
    work: List[Tuple[object, Optional[type]]] = [(root_fn, owner)]
    while work:
        fn, fn_owner = work.pop()
        fn = inspect.unwrap(fn)
        key = (id(getattr(fn, "__code__", fn)), id(fn_owner))
        if key in seen or not _lintable(fn):
            continue
        seen.add(key)
        lint = _FunctionLint(fn, fn_owner)
        lint.run()
        lints.append(lint)
        for name in lint.calls_self:
            if fn_owner is None:
                continue
            target = getattr(fn_owner, name, None)
            if callable(target) and not isinstance(target, type):
                work.append((target, fn_owner))
        for name in lint.calls_super:
            if fn_owner is None:
                continue
            for base in fn_owner.__mro__[1:]:
                target = base.__dict__.get(name)
                if callable(target) and not isinstance(target, type):
                    work.append((target, fn_owner))
        for name in lint.calls_global:
            target = fn.__globals__.get(name)
            if inspect.isfunction(target):
                work.append((target, None))
    return lints


def lint_plugin(plugin) -> List[Diagnostic]:
    """Lint every data-path root of a plugin (class or instance)."""
    plugin_cls = plugin if isinstance(plugin, type) else type(plugin)
    diagnostics: List[Diagnostic] = []
    seen: Set[Tuple[str, Optional[str], Optional[int]]] = set()
    for instance_cls in _instance_classes(plugin_cls):
        for method_name in (*ROOT_METHODS, *BATCH_HOOKS):
            root = getattr(instance_cls, method_name, None)
            if root is None or not callable(root):
                continue
            lints = _closure_lints(root, instance_cls)
            if method_name in BATCH_HOOKS and lints:
                # The root lint is first on the closure list; only the
                # hook body itself gets the loop-invariance check.
                lints[0].check_batch_invariants()
            has_charge = any(l.has_charge for l in lints)
            for lint in lints:
                for diagnostic in lint.diagnostics:
                    key = (diagnostic.code, diagnostic.file, diagnostic.line)
                    if key not in seen:
                        seen.add(key)
                        diagnostics.append(diagnostic)
            if not has_charge:
                for lint in lints:
                    for line, what in lint.touches:
                        if is_suppressed("RP205", lint.lines[line - lint.start]):
                            continue
                        key = ("RP205", lint.file, line)
                        if key in seen:
                            continue
                        seen.add(key)
                        diagnostics.append(
                            Diagnostic(
                                "RP205",
                                f"packet-byte touch ({what}) in the "
                                f"{instance_cls.__name__}.{method_name} path "
                                "never charges the cost model",
                                subject=f"{instance_cls.__name__}.{method_name}",
                                file=lint.file,
                                line=line,
                                hint="charge per-byte work via ctx.cycles."
                                "charge(n, label) (see Costs.SW_AUTH_PER_BYTE)",
                            )
                        )
    return diagnostics


def lint_plugins(plugins: Iterable[object]) -> AnalysisReport:
    report = AnalysisReport()
    seen: Set[Tuple[str, Optional[str], Optional[int]]] = set()
    for plugin in plugins:
        for diagnostic in lint_plugin(plugin):
            key = (diagnostic.code, diagnostic.file, diagnostic.line)
            if key not in seen:
                seen.add(key)
                report.add(diagnostic)
    return report


def lint_module_functions(module) -> List[Diagnostic]:
    """Lint every module-level function defined in ``module`` (plus its
    closure) as data-path code.  Used for non-plugin hot paths like the
    shard dispatch layer, where an RP209 ``hash()`` regression would
    silently break cross-process flow placement."""
    diagnostics: List[Diagnostic] = []
    seen: Set[Tuple[str, Optional[str], Optional[int]]] = set()
    for name in sorted(vars(module)):
        fn = vars(module)[name]
        if not inspect.isfunction(fn) or fn.__module__ != module.__name__:
            continue
        for lint in _closure_lints(fn, None):
            for diagnostic in lint.diagnostics:
                key = (diagnostic.code, diagnostic.file, diagnostic.line)
                if key not in seen:
                    seen.add(key)
                    diagnostics.append(diagnostic)
    return diagnostics


def lint_shard_dispatch() -> AnalysisReport:
    """RP2xx over the shard dispatch/handoff layer (repro.shard.dispatch
    and the worker pool's hot methods)."""
    import importlib

    from ..shard import mp as shard_mp

    report = AnalysisReport()
    dispatch = importlib.import_module("repro.shard.dispatch")
    for diagnostic in lint_module_functions(dispatch):
        report.add(diagnostic)
    seen: Set[Tuple[str, Optional[str], Optional[int]]] = set()
    for root in (shard_mp.ShardWorkerPool.process_wire, shard_mp._worker_main):
        owner = shard_mp.ShardWorkerPool if root.__name__ == "process_wire" else None
        for lint in _closure_lints(root, owner):
            for diagnostic in lint.diagnostics:
                key = (diagnostic.code, diagnostic.file, diagnostic.line)
                if key not in seen:
                    seen.add(key)
                    report.add(diagnostic)
    return report


def builtin_plugin_classes() -> List[type]:
    """Every plugin class shipped in the registry, deduplicated."""
    from ..mgr.library import PLUGIN_REGISTRY

    unique: Dict[str, type] = {}
    for cls in PLUGIN_REGISTRY.values():
        unique.setdefault(f"{cls.__module__}.{cls.__qualname__}", cls)
    return [unique[name] for name in sorted(unique)]


def lint_builtin_plugins() -> AnalysisReport:
    """Run the hot-path lint over every registry plugin (the self-lint
    gate pinned by tests/analysis/test_self_lint.py)."""
    return lint_plugins(builtin_plugin_classes())
