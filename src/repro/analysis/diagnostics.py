"""Structured diagnostics for the static-analysis subsystem.

Every finding any analyzer produces is a :class:`Diagnostic` carrying a
stable code (``RP1xx`` filter-set semantics, ``RP2xx`` plugin hot-path
lint, ``RP3xx`` compiled/interpreted equivalence), a severity derived
from the code registry, the subject it is about (a filter, a plugin
method, a table), an optional source location, and a fix hint.  Codes
are API: tests and CI pin them, and suppression comments name them
(``# rp: ignore[RP201]``), so existing codes must never be renumbered.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

ERROR = "error"
WARNING = "warning"
INFO = "info"

#: code -> (severity, short title).  The registry is the single source of
#: truth for severities; ``Diagnostic`` derives its severity from it.
CODES: Dict[str, Tuple[str, str]] = {
    # RP1xx — filter-set semantics (repro.analysis.filterset).
    "RP101": (ERROR, "shadowed filter (never matchable)"),
    "RP102": (WARNING, "redundant filter (covered with identical binding)"),
    "RP103": (ERROR, "conflicting bindings on identical filters"),
    "RP104": (WARNING, "ambiguous partial port overlap"),
    "RP105": (WARNING, "instance bound at multiple gates"),
    "RP106": (INFO, "unreachable DAG branch"),
    "RP107": (WARNING, "configuration script line failed"),
    # RP2xx — plugin hot-path lint (repro.analysis.hotpath).
    "RP201": (ERROR, "blocking I/O on the data path"),
    "RP202": (ERROR, "nondeterministic time/random source on the data path"),
    "RP203": (ERROR, "bare except swallows data-path faults"),
    "RP204": (ERROR, "attribute created outside __init__ on a __slots__ class"),
    "RP205": (ERROR, "packet-bytes touch without a cost-model charge"),
    "RP206": (WARNING, "over-broad except Exception on the data path"),
    "RP207": (WARNING, "metric emission bypasses the telemetry registry"),
    "RP208": (WARNING, "per-packet recomputation of loop-invariant work in a batch hook"),
    "RP209": (ERROR, "process-seeded builtin hash() on packet/flow state"),
    "RP210": (WARNING, "suppression names an unknown diagnostic code"),
    # RP3xx — compiled/interpreted equivalence (repro.analysis.equivalence).
    "RP301": (ERROR, "compiled DAG walk diverges from interpreted matchers"),
    "RP302": (ERROR, "compiled BMP lookup diverges from engine lookup"),
    # RP4xx — shard-safety / concurrency (repro.analysis.concurrency).
    "RP401": (ERROR, "module-global mutable state written from a data-path hook"),
    "RP402": (ERROR, "class-attribute state shared across instances mutated on the data path"),
    "RP403": (ERROR, "fork/codec-hostile instance state (file, socket, lock, thread, generator)"),
    "RP404": (WARNING, "query payload not mergeable by cross-shard aggregation"),
    "RP405": (WARNING, "control-command effect depends on shard-local traffic state"),
    # RP5xx — exec-codegen audit (repro.analysis.codegen_audit).
    "RP501": (ERROR, "compiled loop references a name outside its allowlisted closure"),
    "RP502": (ERROR, "nondeterministic builtin in generated data-path code"),
    "RP503": (ERROR, "generated fault handler lacks a split/resume path"),
    "RP504": (ERROR, "compiled loop source does not reflect its specialization key"),
    "RP505": (ERROR, "compiled lookup structure violates its shape invariants"),
}


def severity_of(code: str) -> str:
    try:
        return CODES[code][0]
    except KeyError as exc:
        raise ValueError(f"unknown diagnostic code {code!r}") from exc


def title_of(code: str) -> str:
    return CODES[code][1]


#: ``# rp: ignore`` or ``# rp: ignore[RP201]`` or ``# rp: ignore[RP201, RP205]``
_SUPPRESS_RE = re.compile(r"#\s*rp:\s*ignore(?:\[([A-Z0-9,\s]*)\])?")


def suppressed_codes(source_line: str) -> Optional[Set[str]]:
    """Codes suppressed by a ``# rp: ignore`` comment on a source line.

    Returns ``None`` when the line has no suppression comment, the empty
    set for a blanket ``# rp: ignore`` (suppress everything), and the
    named code set for the bracketed form.
    """
    match = _SUPPRESS_RE.search(source_line)
    if match is None:
        return None
    names = match.group(1)
    if names is None:
        return set()
    return {name.strip() for name in names.split(",") if name.strip()}


def is_suppressed(code: str, source_line: str) -> bool:
    codes = suppressed_codes(source_line)
    if codes is None:
        return False
    return not codes or code in codes


def unknown_suppressed_codes(source_line: str) -> Set[str]:
    """Codes a ``# rp: ignore[...]`` comment names that do not exist in
    the registry — a typo there silently fails to suppress anything, so
    the hot-path lint flags it (RP210)."""
    codes = suppressed_codes(source_line)
    if not codes:
        return set()
    return {code for code in codes if code not in CODES}


@dataclass
class Diagnostic:
    """One finding: a coded, located, actionable statement."""

    code: str
    message: str
    subject: Optional[str] = None     # filter id, plugin.method, table name
    file: Optional[str] = None
    line: Optional[int] = None
    hint: Optional[str] = None
    severity: str = field(init=False)

    def __post_init__(self) -> None:
        self.severity = severity_of(self.code)

    def location(self) -> str:
        if self.file is None:
            return self.subject or "<filter table>"
        where = self.file if self.line is None else f"{self.file}:{self.line}"
        return f"{where} ({self.subject})" if self.subject else where

    def render(self) -> str:
        text = f"{self.code} {self.severity}: {self.message} [{self.location()}]"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "severity": self.severity,
            "title": title_of(self.code),
            "message": self.message,
            "subject": self.subject,
            "file": self.file,
            "line": self.line,
            "hint": self.hint,
        }


class AnalysisReport:
    """An ordered collection of diagnostics with rendering helpers."""

    def __init__(self, diagnostics: Optional[Iterable[Diagnostic]] = None):
        self.diagnostics: List[Diagnostic] = list(diagnostics or ())

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def has_errors(self) -> bool:
        return any(d.severity == ERROR for d in self.diagnostics)

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {ERROR: 0, WARNING: 0, INFO: 0}
        for diagnostic in self.diagnostics:
            out[diagnostic.severity] += 1
        return out

    def summary(self) -> str:
        counts = self.counts()
        return (
            f"{len(self.diagnostics)} findings "
            f"({counts[ERROR]} errors, {counts[WARNING]} warnings, "
            f"{counts[INFO]} info)"
        )

    def render(self) -> List[str]:
        lines = [d.render() for d in self.diagnostics]
        lines.append(self.summary())
        return lines

    def to_dict(self) -> Dict[str, object]:
        return {
            "findings": [d.to_dict() for d in self.diagnostics],
            "counts": self.counts(),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def to_sarif(self, tool_name: str = "repro-analyze") -> Dict[str, object]:
        """SARIF 2.1.0 rendering: one rule per registry code (the rule
        set is stable, not just the codes that fired), one result per
        diagnostic.  CI uploads this for inline annotations."""
        level_of = {ERROR: "error", WARNING: "warning", INFO: "note"}
        codes = sorted(CODES)
        index = {code: i for i, code in enumerate(codes)}
        rules: List[Dict[str, object]] = [
            {
                "id": code,
                "shortDescription": {"text": CODES[code][1]},
                "defaultConfiguration": {"level": level_of[CODES[code][0]]},
            }
            for code in codes
        ]
        results: List[Dict[str, object]] = []
        for d in self.diagnostics:
            text = d.message if not d.hint else f"{d.message} (hint: {d.hint})"
            result: Dict[str, object] = {
                "ruleId": d.code,
                "ruleIndex": index[d.code],
                "level": level_of[d.severity],
                "message": {"text": text},
            }
            location: Dict[str, object] = {}
            if d.file is not None:
                physical: Dict[str, object] = {
                    "artifactLocation": {"uri": d.file}
                }
                if d.line is not None:
                    physical["region"] = {"startLine": d.line}
                location["physicalLocation"] = physical
            if d.subject:
                location["logicalLocations"] = [
                    {"fullyQualifiedName": d.subject}
                ]
            if location:
                result["locations"] = [location]
            results.append(result)
        return {
            "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": tool_name,
                            "informationUri": "docs/STATIC_ANALYSIS.md",
                            "rules": rules,
                        }
                    },
                    "results": results,
                }
            ],
        }

    def to_sarif_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_sarif(), indent=indent)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __repr__(self) -> str:
        return f"AnalysisReport({self.summary()})"
