"""Compiled/interpreted equivalence verifier (RP3xx) — no traffic needed.

PR 3 gave the DAG classifier and every BMP engine a compiled fast path
(``lookup_fast``) that must return *the identical record* as the
interpreted, metered walk.  The differential fuzz tests check this with
random traffic; this verifier checks it **statically**, by enumerating
the boundary points where the two implementations could plausibly
disagree — prefix-range edges (first/last covered address and the
addresses just outside), port-interval endpoints (low/high and the
values just outside), the installed protocol values plus an absent one,
and installed/absent incoming interfaces — and asserting agreement at
each.  Off-by-one bugs in interval flattening, shift arithmetic in the
per-length tables, or stale-epoch compilations all surface as exact
probe-point divergences, so the boundary set is the right test basis.

Probing charges nothing: the interpreted walk runs with the null meter
and the compiled walk is cost-free by construction, so the verifier is
safe to run against live tables from the control path.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

from ..aiu.filters import PORT_MAX
from ..net.addresses import IPAddress, prefix_range
from ..net.packet import Packet
from ..sim.cost import NULL_METER
from .diagnostics import AnalysisReport, Diagnostic

#: Interface name that no test or workload installs; probes the
#: wildcard-iif edge against the "unknown interface" case.
_ABSENT_IIF = "rp-verify0"
#: Protocol number no built-in filter uses (253/254 are RFC 3692
#: experimental values); probes the wildcard-protocol edge.
_ABSENT_PROTO = 254


def _addr_candidates(prefixes: Iterable, width: int) -> List[int]:
    """Boundary addresses for one prefix: first/last covered and the two
    just outside (clipped to the address space)."""
    out: Set[int] = set()
    top = (1 << width) - 1
    for prefix in prefixes:
        low, high = prefix_range(prefix)
        out.update((low, high))
        if low > 0:
            out.add(low - 1)
        if high < top:
            out.add(high + 1)
    return sorted(out)


def _port_candidates(specs: Iterable) -> List[int]:
    out: Set[int] = set()
    for spec in specs:
        out.update((spec.low, spec.high))
        if spec.low > 0:
            out.add(spec.low - 1)
        if spec.high < PORT_MAX:
            out.add(spec.high + 1)
    return sorted(out)


def _record_probes(record, width: int, max_per_record: int) -> List[Packet]:
    """Boundary probes anchored on one record: vary each field through
    its boundary candidates while holding the others at in-range values,
    plus the src x dst boundary cross product (address levels interact
    through per-length table probing order)."""
    flt = record.filter
    src_c = _addr_candidates([flt.src], width)
    dst_c = _addr_candidates([flt.dst], width)
    sport_c = _port_candidates([flt.sport])
    dport_c = _port_candidates([flt.dport])
    proto_c = [flt.protocol if flt.protocol is not None else 6, _ABSENT_PROTO]
    iif_c = [flt.iif if flt.iif is not None else "atm0", None, _ABSENT_IIF]
    base = (
        prefix_range(flt.src)[0],
        prefix_range(flt.dst)[0],
        proto_c[0],
        flt.sport.low,
        flt.dport.low,
        iif_c[0],
    )
    combos: List[Tuple[int, int, int, int, int, Optional[str]]] = []
    for src in src_c:
        for dst in dst_c:
            combos.append((src, dst, base[2], base[3], base[4], base[5]))
    for sport in sport_c:
        combos.append((base[0], base[1], base[2], sport, base[4], base[5]))
    for dport in dport_c:
        combos.append((base[0], base[1], base[2], base[3], dport, base[5]))
    for proto in proto_c:
        combos.append((base[0], base[1], proto, base[3], base[4], base[5]))
    for iif in iif_c:
        combos.append((base[0], base[1], base[2], base[3], base[4], iif))
    packets = []
    for src, dst, proto, sport, dport, iif in combos[:max_per_record]:
        packets.append(
            Packet(
                src=IPAddress(src, width),
                dst=IPAddress(dst, width),
                protocol=proto,
                src_port=sport,
                dst_port=dport,
                iif=iif,
            )
        )
    return packets


def _describe(packet: Packet) -> str:
    return (
        f"<src={packet.src} dst={packet.dst} proto={packet.protocol} "
        f"sport={packet.src_port} dport={packet.dst_port} iif={packet.iif}>"
    )


def verify_table(
    table, width: Optional[int] = None, subject: str = "filter table",
    max_probes: int = 50000,
) -> List[Diagnostic]:
    """Assert ``lookup_fast`` == ``lookup`` at every boundary probe of a
    filter table (DAG or linear); RP301 diagnostics on divergence."""
    width = width if width is not None else getattr(table, "width", 32)
    diagnostics: List[Diagnostic] = []
    probes = 0
    for record in table.records():
        if probes >= max_probes:
            break
        per_record = min(256, max_probes - probes)
        for packet in _record_probes(record, width, per_record):
            probes += 1
            interpreted = table.lookup(packet, NULL_METER)
            compiled = table.lookup_fast(packet)
            if compiled is not interpreted:
                diagnostics.append(
                    Diagnostic(
                        "RP301",
                        f"compiled walk returned "
                        f"{compiled.filter if compiled else None} but the "
                        f"interpreted walk returned "
                        f"{interpreted.filter if interpreted else None} for "
                        f"probe {_describe(packet)}",
                        subject=subject,
                        hint="the compiled table is stale or mis-flattened; "
                        "bump the table epoch (any install/remove) to force "
                        "a recompile and report the divergence",
                    )
                )
                if len(diagnostics) >= 16:
                    return diagnostics
    return diagnostics


def verify_engine(engine, subject: str = "bmp engine") -> List[Diagnostic]:
    """Assert a BMP engine's compiled per-length tables agree with its
    interpreted lookup at every prefix boundary; RP302 on divergence."""
    diagnostics: List[Diagnostic] = []
    entries = list(engine.entries())
    candidates = _addr_candidates((prefix for prefix, _ in entries), engine.width)
    top = (1 << engine.width) - 1
    candidates.extend(c for c in (0, top) if c not in candidates)
    for addr in candidates:
        interpreted = engine.lookup_entry(addr, NULL_METER)
        compiled = engine.lookup_entry_fast(addr)
        if interpreted != compiled:
            diagnostics.append(
                Diagnostic(
                    "RP302",
                    f"compiled lookup returned {compiled!r} but the "
                    f"interpreted lookup returned {interpreted!r} for address "
                    f"{IPAddress(addr, engine.width)}",
                    subject=subject,
                    hint="the per-length fast tables are stale or "
                    "mis-keyed; check the engine's mutation_epoch plumbing",
                )
            )
            if len(diagnostics) >= 16:
                return diagnostics
    return diagnostics


def verify_aiu(aiu) -> AnalysisReport:
    """Verify every filter table of an AIU (all gates, both families)."""
    report = AnalysisReport()
    for (gate, width), table in sorted(
        aiu._tables.items(), key=lambda item: (item[0][0], item[0][1])
    ):
        report.extend(
            verify_table(table, width, subject=f"{gate}/{width}-bit table")
        )
    return report


def verify_engines(engines: Sequence, subject_prefix: str = "") -> AnalysisReport:
    report = AnalysisReport()
    for engine in engines:
        name = f"{subject_prefix}{type(engine).__name__}/{engine.width}"
        report.extend(verify_engine(engine, subject=name))
    return report
