"""Static analysis for the plugin router (filter semantics, hot-path
lint, compiled/interpreted equivalence).

Public API::

    from repro.analysis import (
        AnalysisReport, Diagnostic, CODES,
        analyze_filterset, analyze_table, analyze_records,
        lint_plugin, lint_plugins, lint_builtin_plugins,
        verify_table, verify_engine, verify_aiu,
        analyze_router, analyze_script, self_lint,
    )

Everything here runs from the control path with the null meter — an
analysis pass charges zero modelled cycles and never mutates router
state.  Stable diagnostic codes and the suppression-comment grammar are
documented in ``docs/STATIC_ANALYSIS.md``.
"""

from .diagnostics import (
    CODES,
    ERROR,
    INFO,
    WARNING,
    AnalysisReport,
    Diagnostic,
    is_suppressed,
    severity_of,
    suppressed_codes,
    title_of,
)
from .equivalence import verify_aiu, verify_engine, verify_engines, verify_table
from .filterset import analyze_filterset, analyze_records, analyze_table
from .hotpath import (
    builtin_plugin_classes,
    lint_builtin_plugins,
    lint_plugin,
    lint_plugins,
)
from .runner import analyze_router, analyze_script, self_lint

__all__ = [
    "CODES",
    "ERROR",
    "INFO",
    "WARNING",
    "AnalysisReport",
    "Diagnostic",
    "is_suppressed",
    "severity_of",
    "suppressed_codes",
    "title_of",
    "analyze_filterset",
    "analyze_records",
    "analyze_table",
    "builtin_plugin_classes",
    "lint_builtin_plugins",
    "lint_plugin",
    "lint_plugins",
    "verify_aiu",
    "verify_engine",
    "verify_engines",
    "verify_table",
    "analyze_router",
    "analyze_script",
    "self_lint",
]
