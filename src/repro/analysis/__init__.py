"""Static analysis for the plugin router (filter semantics, hot-path
lint, shard-safety/concurrency lint, exec-codegen audit,
compiled/interpreted equivalence).

Public API::

    from repro.analysis import (
        AnalysisReport, Diagnostic, CODES,
        analyze_filterset, analyze_table, analyze_records,
        lint_plugin, lint_plugins, lint_builtin_plugins,
        lint_plugin_concurrency, lint_plugins_concurrency,
        audit_router_codegen, audit_query_mergeability,
        verify_table, verify_engine, verify_aiu,
        analyze_router, analyze_sharded, analyze_script, self_lint,
    )

Everything here runs from the control path with the null meter — an
analysis pass charges zero modelled cycles and never mutates router
state.  Stable diagnostic codes and the suppression-comment grammar are
documented in ``docs/STATIC_ANALYSIS.md``.
"""

from .codegen_audit import (
    audit_dag_table,
    audit_engine,
    audit_loop,
    audit_loop_source,
    audit_router_codegen,
)
from .concurrency import (
    audit_query_mergeability,
    lint_builtin_concurrency,
    lint_instance_state,
    lint_module_concurrency,
    lint_plugin_concurrency,
    lint_plugins_concurrency,
    lint_shard_concurrency,
)
from .diagnostics import (
    CODES,
    ERROR,
    INFO,
    WARNING,
    AnalysisReport,
    Diagnostic,
    is_suppressed,
    severity_of,
    suppressed_codes,
    title_of,
    unknown_suppressed_codes,
)
from .equivalence import verify_aiu, verify_engine, verify_engines, verify_table
from .filterset import analyze_filterset, analyze_records, analyze_table
from .hotpath import (
    builtin_plugin_classes,
    lint_builtin_plugins,
    lint_plugin,
    lint_plugins,
)
from .runner import analyze_router, analyze_script, analyze_sharded, self_lint

__all__ = [
    "CODES",
    "ERROR",
    "INFO",
    "WARNING",
    "AnalysisReport",
    "Diagnostic",
    "is_suppressed",
    "severity_of",
    "suppressed_codes",
    "title_of",
    "unknown_suppressed_codes",
    "analyze_filterset",
    "analyze_records",
    "analyze_table",
    "audit_dag_table",
    "audit_engine",
    "audit_loop",
    "audit_loop_source",
    "audit_query_mergeability",
    "audit_router_codegen",
    "builtin_plugin_classes",
    "lint_builtin_concurrency",
    "lint_builtin_plugins",
    "lint_instance_state",
    "lint_module_concurrency",
    "lint_plugin",
    "lint_plugin_concurrency",
    "lint_plugins",
    "lint_plugins_concurrency",
    "lint_shard_concurrency",
    "verify_aiu",
    "verify_engine",
    "verify_engines",
    "verify_table",
    "analyze_router",
    "analyze_script",
    "analyze_sharded",
    "self_lint",
]
