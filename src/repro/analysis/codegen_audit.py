"""Exec-codegen audit (RP5xx) — verify generated data-path code.

The hottest code in the repo is *generated*: :mod:`repro.core.batch`
emits a specialized batch loop per (plan epoch, configuration) key and
``exec``\\ s it against an allowlisted namespace, and the DAG classifier
and BMP engines flatten themselves into compiled lookup structures.
Nothing at runtime re-checks any of it — a codegen regression surfaces
as a heisenbug three layers away.  This auditor re-parses every cached
loop (all three shapes: ``single``, ``lanes``, ``fused``) and walks the
compiled lookup structures, turning structural invariants into ordinary
diagnostics:

* RP501 — a free name in the generated source that resolves neither to
  the compile-time namespace (the allowlisted closure) nor to the small
  set of safe builtins the emitter is permitted to use.
* RP502 — nondeterministic builtins in generated code: ``hash()`` (the
  RP209 hazard, fatal in generated code), ``time``/``random``/
  ``datetime``/``uuid``/``os`` references.
* RP503 — a fault handler that neither resumes through a ``_split_*``
  helper (non-fused shapes) nor classifies through ``on_fault`` (fused)
  nor re-raises: plugin faults would escape the per-plugin fault domain.
* RP504 — the specialization key's fields are not reflected in the
  emitted source (a ``tm`` plan without telemetry cells, a ``bounded``
  plan that never consults ``MAXR``, ...): the cache would serve a loop
  compiled for a different configuration.
* RP505 — a compiled lookup structure violating its shape invariants:
  stale compile epochs, per-length prefix tables not probed
  longest-first, unsorted range boundaries, or entry counts that do not
  match the interpreted structure.

RP5xx findings are never suppressible in spirit (they indicate a
compiler bug, not a style choice), but the standard ``# rp: ignore``
grammar still applies to AST-anchored ones for emergencies.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from .diagnostics import AnalysisReport, Diagnostic

#: Builtins the loop emitter is allowed to reference freely.
_SAFE_BUILTINS = {
    "len", "enumerate", "range", "zip", "isinstance", "getattr", "iter",
    "next", "min", "max", "abs", "id", "True", "False", "None",
    "Exception", "StopIteration", "AttributeError", "KeyError",
}

#: Free names that make generated data-path code nondeterministic.
_FORBIDDEN_FREE = {
    "hash", "time", "random", "datetime", "uuid", "os", "secrets",
    "urandom", "globals", "locals", "eval", "exec", "compile",
    "__import__",
}

#: (plan field, source marker, reverse direction too?) — RP504.  A
#: forward check asserts the marker appears when the field is set; a
#: bidirectional one additionally asserts it is absent when unset.
_PLAN_MARKERS: Tuple[Tuple[str, str, bool], ...] = (
    ("tm", "_tm_gate_cells", True),
    ("local", "local_addrs", True),
    ("bounded", "MAXR", True),
    ("clock", "record.ref = True", False),
)


def _function_node(source: str) -> Optional[ast.FunctionDef]:
    tree = ast.parse(source)
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            return node
    return None


def _bound_names(fn_node: ast.FunctionDef) -> Set[str]:
    args = fn_node.args
    bound = {a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)}
    if args.vararg is not None:
        bound.add(args.vararg.arg)
    if args.kwarg is not None:
        bound.add(args.kwarg.arg)
    bound.add(fn_node.name)
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            bound.add(node.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ExceptHandler) and node.name:
            bound.add(node.name)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            bound.add(node.name)
    return bound


def _free_names(fn_node: ast.FunctionDef) -> Dict[str, int]:
    """Free (load-context, never-bound) names -> first line referenced."""
    bound = _bound_names(fn_node)
    free: Dict[str, int] = {}
    for node in ast.walk(fn_node):
        if (
            isinstance(node, ast.Name)
            and isinstance(node.ctx, ast.Load)
            and node.id not in bound
            and node.id not in free
        ):
            free[node.id] = node.lineno
    return free


def audit_loop_source(
    source: str,
    namespace: Dict[str, object],
    plan: Optional[dict] = None,
    subject: str = "compiled batch loop",
) -> List[Diagnostic]:
    """RP501/502/503/504 over one generated loop's source text."""
    diagnostics: List[Diagnostic] = []
    fn_node = _function_node(source)
    if fn_node is None:
        diagnostics.append(
            Diagnostic(
                "RP504",
                "generated source contains no function definition",
                subject=subject,
                hint="the emitter must produce exactly one _batch_loop def",
            )
        )
        return diagnostics

    # RP501 / RP502 — free-name discipline.
    for name, line in sorted(_free_names(fn_node).items()):
        if name in _FORBIDDEN_FREE:
            diagnostics.append(
                Diagnostic(
                    "RP502",
                    f"generated code references {name!r}: nondeterministic "
                    "or environment-dependent in a compiled data-path loop",
                    subject=subject,
                    file="<repro.core.batch>",
                    line=line,
                    hint="the emitter must derive everything from the "
                    "router state captured in the namespace",
                )
            )
        elif name not in namespace and name not in _SAFE_BUILTINS:
            diagnostics.append(
                Diagnostic(
                    "RP501",
                    f"free name {name!r} resolves neither to the compile "
                    "namespace nor to a safe builtin; at run time it is a "
                    "NameError (or worse, a shadowed builtin)",
                    subject=subject,
                    file="<repro.core.batch>",
                    line=line,
                    hint="add the object to the _compile namespace "
                    "allowlist or stop emitting the reference",
                )
            )

    # RP503 — every fault handler must resume or classify.
    handlers = [
        node for node in ast.walk(fn_node)
        if isinstance(node, ast.ExceptHandler)
    ]
    if not handlers:
        diagnostics.append(
            Diagnostic(
                "RP503",
                "generated loop has no fault handler at all; a plugin "
                "exception would unwind the whole batch instead of being "
                "charged to the faulting plugin's domain",
                subject=subject,
                hint="every emitted plugin call must sit inside a "
                "try/except that splits or classifies the fault",
            )
        )
    for handler in handlers:
        if not _handler_resumes(handler):
            diagnostics.append(
                Diagnostic(
                    "RP503",
                    "generated fault handler neither resumes via a "
                    "_split_* helper nor classifies via on_fault nor "
                    "re-raises",
                    subject=subject,
                    file="<repro.core.batch>",
                    line=handler.lineno,
                    hint="faults must re-enter the scalar path with the "
                    "batch's residue (the _split_* contract)",
                )
            )

    # RP504 — plan/source coherence.
    if plan is not None:
        diagnostics.extend(_audit_plan_markers(source, plan, subject))
    return diagnostics


def _handler_resumes(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name is not None and (
                name.startswith("_split_") or name == "on_fault"
            ):
                return True
    return False


def _audit_plan_markers(source: str, plan: dict, subject: str) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []

    def bad(field: str, detail: str) -> None:
        diagnostics.append(
            Diagnostic(
                "RP504",
                f"specialization key field {field!r} is not reflected in "
                f"the generated source: {detail}",
                subject=subject,
                hint="the loop cache key and the emitter disagree; the "
                "cache would serve a loop compiled for a different "
                "configuration",
            )
        )

    for field, marker, bidirectional in _PLAN_MARKERS:
        present = marker in source
        if plan.get(field) and not present:
            bad(field, f"plan sets {field} but {marker!r} never appears")
        elif bidirectional and not plan.get(field) and present:
            bad(field, f"plan clears {field} but {marker!r} appears")
    if plan.get("fused"):
        if "on_fault" not in source:
            bad("fused", "fused loops must classify faults via on_fault")
    elif "_split_" not in source:
        bad("fused", "non-fused loops must resume faults via _split_*")
    if plan.get("hooks") and "for hook in HOOKS" not in source:
        bad("hooks", "batch hooks registered but never dispatched")
    if not plan.get("plain") and "iface.output(packet, now)" not in source:
        bad("plain", "non-plain interfaces must emit via iface.output()")
    for gate_entry in plan.get("pre") or ():
        gate_name = gate_entry[0] if isinstance(gate_entry, tuple) else gate_entry
        if f"'{gate_name}'" not in source and f'"{gate_name}"' not in source:
            bad("pre", f"active pre gate {gate_name!r} never referenced")
    return diagnostics


def audit_loop(fn, subject: str = "compiled batch loop") -> List[Diagnostic]:
    """Audit one cached compiled loop via its introspection attributes."""
    source = getattr(fn, "_source", None)
    plan = getattr(fn, "_plan", None)
    if source is None:
        return [
            Diagnostic(
                "RP504",
                "compiled loop carries no _source introspection attribute; "
                "it cannot be audited",
                subject=subject,
                hint="_compile must attach fn._source and fn._plan",
            )
        ]
    return audit_loop_source(
        source, fn.__globals__, plan=plan, subject=subject
    )


# ----------------------------------------------------------------------
# Compiled lookup structures (RP505)
# ----------------------------------------------------------------------
def audit_dag_table(table, subject: str = "filter table") -> List[Diagnostic]:
    """Shape invariants of the DAG's compiled root (repro.aiu.dag)."""
    from ..aiu.dag import _C_EXACT, _C_PREFIX, _C_RANGE

    diagnostics: List[Diagnostic] = []

    def bad(detail: str) -> None:
        diagnostics.append(
            Diagnostic(
                "RP505",
                f"compiled DAG structure violated: {detail}",
                subject=subject,
                hint="re-run analyze after reproducing; this is a "
                "_compile_node bug, not a configuration problem",
            )
        )

    table.ensure_compiled()
    if table._compiled_epoch != table.epoch:
        bad(
            f"ensure_compiled left epoch {table._compiled_epoch} != "
            f"table epoch {table.epoch}"
        )
        return diagnostics
    root = table._compiled_root
    if table.records() and root is None:
        bad("table has records but compiled root is None")
        return diagnostics

    seen: Set[int] = set()

    def walk(node) -> None:
        if node is None or id(node) in seen:
            return
        seen.add(id(node))
        if not (
            isinstance(node, tuple)
            and len(node) == 3
            and node[0] in (_C_PREFIX, _C_RANGE, _C_EXACT)
        ):
            return  # leaf FilterRecord
        kind, a, b = node
        if kind == _C_PREFIX:
            shifts = [shift for shift, _ in a]
            if shifts != sorted(shifts) or len(set(shifts)) != len(shifts):
                bad(
                    "prefix tables are not strictly longest-first "
                    f"(shifts {shifts})"
                )
            for _, children in a:
                for child in children.values():
                    walk(child)
        elif kind == _C_RANGE:
            boundaries = list(a)
            if boundaries != sorted(boundaries):
                bad(f"range boundaries unsorted ({boundaries[:8]}...)")
            if len(b) != len(boundaries) + 1:
                bad(
                    f"range node has {len(boundaries)} boundaries but "
                    f"{len(b)} children (must be boundaries+1)"
                )
            for child in b:
                walk(child)
        else:
            for child in a.values():
                walk(child)
            walk(b)

    walk(root)
    return diagnostics


def audit_engine(engine, subject: str = "bmp engine") -> List[Diagnostic]:
    """Shape invariants of a BMP engine's per-length fast tables."""
    diagnostics: List[Diagnostic] = []

    def bad(detail: str) -> None:
        diagnostics.append(
            Diagnostic(
                "RP505",
                f"compiled BMP fast-table structure violated: {detail}",
                subject=subject,
                hint="re-run analyze after reproducing; this is a "
                "_compile_fast bug, not a configuration problem",
            )
        )

    engine.lookup_entry_fast(0)  # force a (re)compile
    if engine._fast_epoch != engine.mutation_epoch:
        bad(
            f"fast tables left at epoch {engine._fast_epoch} != "
            f"mutation epoch {engine.mutation_epoch}"
        )
        return diagnostics
    shifts = [shift for shift, _ in engine._fast_tables]
    if shifts != sorted(shifts) or len(set(shifts)) != len(shifts):
        bad(f"per-length tables are not strictly longest-first ({shifts})")
    compiled = sum(len(t) for _, t in engine._fast_tables)
    interpreted = len(
        {(p.length, p.key_bits()) for p, _ in engine.entries()}
    )
    if compiled != interpreted:
        bad(
            f"fast tables hold {compiled} entries but the engine holds "
            f"{interpreted}"
        )
    return diagnostics


# ----------------------------------------------------------------------
# Router-level entry point
# ----------------------------------------------------------------------
def audit_router_codegen(
    router, warm: bool = True, subject_prefix: str = ""
) -> List[Diagnostic]:
    """Audit every cached compiled loop on a router plus its compiled
    lookup structures.  With ``warm=True`` the current plan's loop is
    compiled first, so a freshly configured router is never vacuously
    clean."""
    from ..core.batch import loop_for

    diagnostics: List[Diagnostic] = []
    if warm:
        refresh = getattr(router, "_refresh_plan", None)
        if refresh is not None:
            refresh()
        loop_for(router)  # may be None (unspecialized config): that is fine
    for index, (key, fn) in enumerate(
        sorted(getattr(router, "_batch_loops", {}).items(), key=lambda kv: repr(kv[0]))
    ):
        plan = getattr(fn, "_plan", None) or {}
        if plan.get("fused"):
            shape = "fused"
        elif plan.get("pre"):
            shape = "lanes"
        else:
            shape = "single"
        diagnostics.extend(
            audit_loop(
                fn,
                subject=f"{subject_prefix}batch loop #{index} ({shape})",
            )
        )
    for (gate, width), table in sorted(
        getattr(router.aiu, "_tables", {}).items(),
        key=lambda item: (item[0][0], item[0][1]),
    ):
        if hasattr(table, "ensure_compiled"):
            diagnostics.extend(
                audit_dag_table(
                    table,
                    subject=f"{subject_prefix}{gate}/{width}-bit table",
                )
            )
    for width, engine in sorted(
        getattr(router.routing_table, "_engines", {}).items()
    ):
        if hasattr(engine, "entries") and hasattr(engine, "lookup_entry_fast"):
            diagnostics.extend(
                audit_engine(
                    engine,
                    subject=f"{subject_prefix}routing/{width}-bit engine",
                )
            )
    return diagnostics


def audit_codegen(router) -> AnalysisReport:
    """Report-typed convenience wrapper around audit_router_codegen."""
    return AnalysisReport(audit_router_codegen(router))
