"""Analysis entry points: whole-router, sharded, script, and self-lint.

``analyze_router`` is what ``pmgr analyze`` and ``scripts/analyze.py``
call: the filter-set semantic analysis over the AIU, the hot-path and
shard-safety lints over every loaded plugin, the compiled/interpreted
equivalence verification over every filter table and BMP-backed routing
engine, and the exec-codegen audit over every cached compiled batch
loop.  ``analyze_sharded`` sweeps all shards of a ``ShardedRouter``.
Everything runs from the control path and charges zero modelled cost.
"""

from __future__ import annotations

from typing import List, Optional

from .codegen_audit import audit_router_codegen
from .concurrency import (
    audit_query_mergeability,
    lint_builtin_concurrency,
    lint_plugins_concurrency,
    lint_shard_concurrency,
)
from .diagnostics import AnalysisReport
from .equivalence import verify_aiu, verify_engine
from .filterset import analyze_filterset
from .hotpath import lint_builtin_plugins, lint_plugins, lint_shard_dispatch


def analyze_router(router, include_plugins: bool = True) -> AnalysisReport:
    """Run every analyzer against one live router."""
    report = AnalysisReport()
    report.extend(analyze_filterset(router.aiu))
    if include_plugins:
        plugins = router.pcu.plugins()
        report.extend(lint_plugins(plugins))
        report.extend(lint_plugins_concurrency(plugins))
    report.extend(verify_aiu(router.aiu))
    for width, engine in sorted(getattr(router.routing_table, "_engines", {}).items()):
        if hasattr(engine, "entries") and hasattr(engine, "lookup_entry_fast"):
            report.extend(
                verify_engine(engine, subject=f"routing/{width}-bit engine")
            )
    report.extend(audit_router_codegen(router))
    return report


def analyze_sharded(
    sharded, libraries=None, include_plugins: bool = True
) -> AnalysisReport:
    """Sweep every shard of a ``ShardedRouter``: plugin lints once (the
    fanout keeps shard configuration identical), filter-set semantics on
    shard 0, then per-shard equivalence and codegen audits (per-shard
    state *can* diverge — that is the point), plus the RP404 query
    mergeability audit when the per-shard libraries are available."""
    from ..core.errors import ConfigurationError

    if getattr(sharded, "_pool", None) is not None:
        raise ConfigurationError(
            "analyze_sharded needs the inline backend (worker processes "
            "cannot ship live analysis objects back)"
        )
    report = AnalysisReport()
    shard0 = sharded.shards[0]
    report.extend(analyze_filterset(shard0.aiu))
    if include_plugins:
        plugins = shard0.pcu.plugins()
        report.extend(lint_plugins(plugins))
        report.extend(lint_plugins_concurrency(plugins))
    for index, shard in enumerate(sharded.shards):
        prefix = f"shard{index}: "
        report.extend(verify_aiu(shard.aiu))
        for width, engine in sorted(
            getattr(shard.routing_table, "_engines", {}).items()
        ):
            if hasattr(engine, "entries") and hasattr(engine, "lookup_entry_fast"):
                report.extend(
                    verify_engine(
                        engine, subject=f"{prefix}routing/{width}-bit engine"
                    )
                )
        report.extend(audit_router_codegen(shard, subject_prefix=prefix))
    if libraries:
        report.extend(audit_query_mergeability(libraries[0].query))
    return report


def analyze_script(text: str, router=None) -> AnalysisReport:
    """Run a pmgr configuration script on a scratch router (or the given
    one), then analyze the state it built.  Script errors are collected
    rather than raised, so a broken script still gets its filters (the
    ones that installed) analyzed."""
    from ..core.router import Router
    from ..mgr.pmgr import PluginManager

    if router is None:
        router = Router(name="analyze-router")
        router.add_interface("atm0", prefix="0.0.0.0/0")
    manager = PluginManager(router)
    manager.run_script(text, continue_on_error=True)
    report = analyze_router(router)
    for error in manager.script_errors:
        report.add(_script_diagnostic(error))
    return report


def _script_diagnostic(error):
    from .diagnostics import Diagnostic

    return Diagnostic(
        "RP107",
        f"script line {error.lineno} failed: {error.cause}",
        subject=f"line {error.lineno}: {error.command}",
        hint="fix the command; the remaining lines were still analyzed",
    )


def _self_codegen_audit() -> List:
    """Warm each generated loop shape (single, lanes, fused) on a
    scratch router and audit it, so the self-lint gate exercises the
    RP5xx checks against real emitter output on every CI run."""
    from ..core.gates import DEFAULT_GATES, GATE_IP_SECURITY
    from ..core.router import Router
    from ..mgr.library import RouterPluginLibrary
    from ..net.packet import make_udp

    diagnostics: List = []
    for shape, max_flows, with_plugin in (
        ("single", None, False),
        ("lanes", None, True),
        ("fused", 64, True),
    ):
        router = Router(
            name=f"self-lint-{shape}", gates=DEFAULT_GATES, max_flows=max_flows
        )
        router.add_interface("atm0", prefix="10.0.0.0/8")
        router.add_interface("atm1", prefix="20.0.0.0/8")
        if with_plugin:
            library = RouterPluginLibrary(router)
            library.modload("firewall")
            library.create_instance("firewall", "fw0")
            library.bind("fw0", "*, *, UDP", gate=GATE_IP_SECURITY)
        router.receive_batch(
            [make_udp("10.0.0.1", "20.0.1.1", 5000, 9000, iif="atm0")]
        )
        diagnostics.extend(
            audit_router_codegen(router, subject_prefix=f"self-lint {shape}: ")
        )
    return diagnostics


def self_lint(engine_names: Optional[List[str]] = None) -> AnalysisReport:
    """The CI self-check: lint every built-in plugin (hot-path and
    shard-safety passes), sweep the shard/batch layers themselves, warm
    and audit every generated loop shape, then build a small seeded
    filter table per BMP engine and verify compiled/interpreted
    equivalence for the DAG and the engines."""
    from ..aiu.dag import DagFilterTable
    from ..aiu.matchers import AmbiguousFilterError
    from ..aiu.records import FilterRecord
    from ..bmp import ENGINES, make_engine
    from ..net.addresses import IPV4_WIDTH
    from ..workloads.filtersets import random_filters
    from .equivalence import verify_table

    report = AnalysisReport()
    report.extend(lint_builtin_plugins())
    report.extend(lint_builtin_concurrency())
    report.extend(lint_shard_dispatch())
    report.extend(lint_shard_concurrency())
    report.extend(_self_codegen_audit())
    names = engine_names or sorted(set(ENGINES))
    filters = random_filters(64, seed=7, host_fraction=0.5)
    for name in names:
        table = DagFilterTable(width=IPV4_WIDTH, bmp_engine=name)
        for flt in filters:
            try:
                table.install(FilterRecord(flt, gate="check"))
            except AmbiguousFilterError:
                continue
        report.extend(
            verify_table(table, IPV4_WIDTH, subject=f"self-lint DAG ({name})")
        )
        engine = make_engine(name, IPV4_WIDTH)
        for index, flt in enumerate(filters):
            if not flt.src.is_wildcard:
                engine.insert(flt.src, index)
        report.extend(verify_engine(engine, subject=f"self-lint {name}"))
    return report
