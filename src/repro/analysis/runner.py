"""Analysis entry points: whole-router, pmgr-script, and self-lint runs.

``analyze_router`` is what ``pmgr analyze`` and ``scripts/analyze.py``
call: the filter-set semantic analysis over the AIU, the hot-path lint
over every loaded plugin, and the compiled/interpreted equivalence
verification over every filter table and BMP-backed routing engine.
Everything runs from the control path and charges zero modelled cost.
"""

from __future__ import annotations

from typing import List, Optional

from .diagnostics import AnalysisReport
from .equivalence import verify_aiu, verify_engine
from .filterset import analyze_filterset
from .hotpath import lint_builtin_plugins, lint_plugins, lint_shard_dispatch


def analyze_router(router, include_plugins: bool = True) -> AnalysisReport:
    """Run all three analyzers against one live router."""
    report = AnalysisReport()
    report.extend(analyze_filterset(router.aiu))
    if include_plugins:
        report.extend(lint_plugins(router.pcu.plugins()))
    report.extend(verify_aiu(router.aiu))
    for width, engine in sorted(getattr(router.routing_table, "_engines", {}).items()):
        if hasattr(engine, "entries") and hasattr(engine, "lookup_entry_fast"):
            report.extend(
                verify_engine(engine, subject=f"routing/{width}-bit engine")
            )
    return report


def analyze_script(text: str, router=None) -> AnalysisReport:
    """Run a pmgr configuration script on a scratch router (or the given
    one), then analyze the state it built.  Script errors are collected
    rather than raised, so a broken script still gets its filters (the
    ones that installed) analyzed."""
    from ..core.router import Router
    from ..mgr.pmgr import PluginManager

    if router is None:
        router = Router(name="analyze-router")
        router.add_interface("atm0", prefix="0.0.0.0/0")
    manager = PluginManager(router)
    manager.run_script(text, continue_on_error=True)
    report = analyze_router(router)
    for error in manager.script_errors:
        report.add(_script_diagnostic(error))
    return report


def _script_diagnostic(error):
    from .diagnostics import Diagnostic

    return Diagnostic(
        "RP107",
        f"script line {error.lineno} failed: {error.cause}",
        subject=f"line {error.lineno}: {error.command}",
        hint="fix the command; the remaining lines were still analyzed",
    )


def self_lint(engine_names: Optional[List[str]] = None) -> AnalysisReport:
    """The CI self-check: lint every built-in plugin, then build a small
    seeded filter table per BMP engine and verify compiled/interpreted
    equivalence for the DAG and the engines themselves."""
    from ..aiu.dag import DagFilterTable
    from ..aiu.matchers import AmbiguousFilterError
    from ..aiu.records import FilterRecord
    from ..bmp import ENGINES, make_engine
    from ..net.addresses import IPV4_WIDTH
    from ..workloads.filtersets import random_filters
    from .equivalence import verify_table

    report = AnalysisReport()
    report.extend(lint_builtin_plugins())
    report.extend(lint_shard_dispatch())
    names = engine_names or sorted(set(ENGINES))
    filters = random_filters(64, seed=7, host_fraction=0.5)
    for name in names:
        table = DagFilterTable(width=IPV4_WIDTH, bmp_engine=name)
        for flt in filters:
            try:
                table.install(FilterRecord(flt, gate="check"))
            except AmbiguousFilterError:
                continue
        report.extend(
            verify_table(table, IPV4_WIDTH, subject=f"self-lint DAG ({name})")
        )
        engine = make_engine(name, IPV4_WIDTH)
        for index, flt in enumerate(filters):
            if not flt.src.is_wildcard:
                engine.insert(flt.src, index)
        report.extend(verify_engine(engine, subject=f"self-lint {name}"))
    return report
