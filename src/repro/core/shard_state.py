"""Shard-local classification state — the unit a sharded router replicates.

The ROADMAP's sharding direction starts with an enabling refactor: all
mutable classification state of one forwarding engine must live behind a
single object so N workers can each own a shared-nothing replica.  That
object is :class:`ShardLocalState`.  It owns:

* the AIU (filter tables, flow table, gate bindings, plan epoch),
* the disposition counters,
* the live quarantine map and the per-plugin fault manager,
* the attached telemetry / lifecycle-tracer / overload handles.

A :class:`~repro.core.router.Router` is exactly one ``ShardLocalState``
plus immutable gate geometry, interfaces, and the routing tables (which
are configuration, replicated identically across shards by the control
fanout, not per-flow mutable state).  The router binds plain attribute
aliases to the state's containers — ``router.aiu is state.aiu`` — so the
hot path keeps its one-attribute-load idiom; no property indirection is
introduced.  Rebindable seams (telemetry, overload, lifecycle) are
mirrored into the state by the router's attach/detach methods so the
state object is always the complete description of one shard.

``repro.shard`` builds on this: each worker constructs its own Router
(hence its own ``ShardLocalState``), and cross-shard aggregation reads
``summary()`` per shard.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Optional, Sequence, Tuple

from ..aiu import AIU


class ShardLocalState:
    """All mutable classification state of one forwarding engine."""

    __slots__ = (
        "gates",
        "aiu",
        "counters",
        "quarantined",
        "faults",
        "telemetry",
        "lifecycle",
        "overload",
    )

    def __init__(
        self,
        gates: Sequence[str],
        *,
        table_kind: str = "dag",
        bmp_engine: str = "patricia",
        flow_buckets: int = 32768,
        max_records: Optional[int] = None,
        use_flow_cache: bool = True,
        evict_policy: str = "lru",
    ):
        self.gates: Tuple[str, ...] = tuple(gates)
        self.aiu = AIU(
            self.gates,
            table_kind=table_kind,
            bmp_engine=bmp_engine,
            flow_buckets=flow_buckets,
            max_records=max_records,
            use_flow_cache=use_flow_cache,
            evict_policy=evict_policy,
        )
        self.counters: Counter = Counter()
        self.quarantined: Dict[object, object] = {}
        # Bound by the owning Router (the FaultManager needs the router
        # for ICMP/tracer plumbing); None only between construction and
        # Router.__init__ finishing.
        self.faults = None
        self.telemetry = None
        self.lifecycle = None
        self.overload = None

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """One shard's row in the cross-shard breakdown (`show shards`)."""
        table = self.aiu.flow_table
        counters = self.counters
        gov = self.overload
        return {
            "rx": counters.get("rx", 0),
            "forwarded": counters.get("forwarded", 0),
            "dropped": sum(
                v for k, v in counters.items()
                if isinstance(k, str) and k.startswith("dropped")
            ),
            "flows_active": table.active,
            "flow_hits": table.hits,
            "flow_misses": table.misses,
            "evictions": table.evictions,
            "filters": self.aiu.filter_count(),
            "quarantined": sorted(
                {d.plugin for d in self.quarantined.values()}
            ),
            "overload_tier": "normal" if gov is None else gov.brief()["tier"],
        }
