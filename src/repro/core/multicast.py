"""Multicast forwarding state — the intro's "enhanced routing
functionality (level 3 and level 4 routing and switching, QoS routing,
**multicast**)".

A :class:`MulticastTable` maps (source, group) — with (*, G) wildcards —
to an output-interface list plus an optional expected upstream interface
(the RPF check).  The router replicates matching packets to every
downstream interface except the arrival one; each copy runs the
scheduling gate independently, so per-flow QoS applies per branch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..net.addresses import IPAddress, Prefix


@dataclass
class MulticastRoute:
    """One (S, G) or (*, G) entry."""

    group: IPAddress
    out_interfaces: List[str]
    source: Optional[Prefix] = None     # None = (*, G)
    expected_iif: Optional[str] = None  # RPF: where this group must arrive

    def matches_source(self, src: IPAddress) -> bool:
        if self.source is None:
            return True
        return self.source.width == src.width and self.source.matches(src)

    @property
    def specificity(self) -> int:
        return -1 if self.source is None else self.source.length

    def __repr__(self) -> str:
        src = "*" if self.source is None else str(self.source)
        return f"MulticastRoute(({src}, {self.group}) -> {self.out_interfaces})"


class MulticastTable:
    """Longest-source-match (S, G) lookup over per-group entry lists."""

    def __init__(self):
        self._groups: Dict[IPAddress, List[MulticastRoute]] = {}

    def add(
        self,
        group,
        out_interfaces: List[str],
        source=None,
        expected_iif: Optional[str] = None,
    ) -> MulticastRoute:
        if isinstance(group, str):
            group = IPAddress.parse(group)
        if not group.is_multicast:
            raise ValueError(f"{group} is not a multicast group address")
        if isinstance(source, str):
            source = Prefix.parse(source)
        route = MulticastRoute(
            group=group,
            out_interfaces=list(out_interfaces),
            source=source,
            expected_iif=expected_iif,
        )
        entries = self._groups.setdefault(group, [])
        entries.append(route)
        entries.sort(key=lambda r: -r.specificity)
        return route

    def remove(self, route: MulticastRoute) -> bool:
        entries = self._groups.get(route.group, [])
        if route in entries:
            entries.remove(route)
            if not entries:
                del self._groups[route.group]
            return True
        return False

    def lookup(self, src: IPAddress, group: IPAddress) -> Optional[MulticastRoute]:
        """Most source-specific entry for (src, group)."""
        for route in self._groups.get(group, []):
            if route.matches_source(src):
                return route
        return None

    def groups(self) -> List[IPAddress]:
        return list(self._groups)

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._groups.values())
