"""Gate definitions (§3.2).

"A gate is a point in the IP core where the flow of execution branches
off to an instance of a plugin. ... In our current implementation, we use
gates for IPv6 option processing, IP security, packet scheduling, and for
the packet filter's best-matching prefix algorithm."

Gate names double as AIU gate identifiers and match the plugin type
names, preserving the paper's "direct correspondence between a gate ...
and the plugin type".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .plugin import (
    TYPE_IP_OPTIONS,
    TYPE_IP_SECURITY,
    TYPE_PACKET_SCHEDULING,
    TYPE_ROUTING,
)

GATE_IP_OPTIONS = "ip_options"
GATE_IP_SECURITY = "ip_security"
GATE_PACKET_SCHEDULING = "packet_scheduling"
GATE_ROUTING = "routing"

#: The gates of the paper's measured configuration (Table 3 uses "three
#: gates which called empty plugins").
DEFAULT_GATES: Tuple[str, ...] = (
    GATE_IP_OPTIONS,
    GATE_IP_SECURITY,
    GATE_PACKET_SCHEDULING,
)

#: With the §8 future-work "routing integrated into the packet
#: classifier" enabled (L4 switching), a routing gate joins the path.
GATES_WITH_L4_ROUTING: Tuple[str, ...] = (
    GATE_IP_OPTIONS,
    GATE_IP_SECURITY,
    GATE_ROUTING,
    GATE_PACKET_SCHEDULING,
)

GATE_PLUGIN_TYPES = {
    GATE_IP_OPTIONS: TYPE_IP_OPTIONS,
    GATE_IP_SECURITY: TYPE_IP_SECURITY,
    GATE_PACKET_SCHEDULING: TYPE_PACKET_SCHEDULING,
    GATE_ROUTING: TYPE_ROUTING,
}


@dataclass(frozen=True)
class GateSpec:
    """Static description of one gate in the IP core."""

    name: str
    plugin_type: int
    position: int

    def __str__(self) -> str:
        return self.name


def gate_specs(gates) -> Tuple[GateSpec, ...]:
    """Build GateSpec descriptors for an ordered gate-name sequence."""
    return tuple(
        GateSpec(name=g, plugin_type=GATE_PLUGIN_TYPES.get(g, 0), position=i)
        for i, g in enumerate(gates)
    )
