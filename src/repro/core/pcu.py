"""The Plugin Control Unit (§4).

"The PCU itself is a very simple component ... managing a table for each
plugin type to store the plugin's names and callback functions.  Once
loaded into the kernel, plugins register their callback function through
a function call to the PCU.  All control path communication to the
plugins goes through the PCU."

``load``/``unload`` stand in for NetBSD's ``modload``/``modunload``; the
user-space "plugin socket" is simply :meth:`send`, which the Router
Plugin Library (:mod:`repro.mgr`) calls.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .errors import PluginError, UnknownPluginError
from .messages import Message
from .plugin import Plugin, plugin_code, plugin_type_of


class PluginControlUnit:
    """Per-type plugin tables, code assignment, and message dispatch."""

    def __init__(self, aiu=None, router=None):
        self.aiu = aiu
        self.router = router
        # type -> id -> plugin; plus a flat name index.
        self._by_type: Dict[int, Dict[int, Plugin]] = {}
        self._by_name: Dict[str, Plugin] = {}
        self._next_id: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Loading / unloading (modload / modunload)
    # ------------------------------------------------------------------
    def load(self, plugin: Plugin, strict: bool = False) -> int:
        """Register a plugin's callback; returns its 32-bit plugin code.

        With ``strict=True`` the plugin's data-path methods are run
        through the hot-path lint (:mod:`repro.analysis.hotpath`) and
        the shard-safety lint (:mod:`repro.analysis.concurrency`) first,
        and any error-severity finding refuses the load *before* the
        PCU tables are touched — a misbehaving module never becomes
        reachable from the fast path or replicated into a shard.
        """
        if plugin.name in self._by_name:
            raise PluginError(f"plugin {plugin.name!r} is already loaded")
        if plugin.plugin_type <= 0:
            raise PluginError(f"plugin {plugin.name!r} has no plugin_type")
        if strict:
            from ..analysis.concurrency import lint_plugin_concurrency
            from ..analysis.hotpath import lint_plugin

            findings = [
                d
                for d in (*lint_plugin(plugin), *lint_plugin_concurrency(plugin))
                if d.severity == "error"
            ]
            if findings:
                detail = "; ".join(
                    f"{d.code} at {d.location()}" for d in findings[:4]
                )
                raise PluginError(
                    f"plugin {plugin.name!r} failed strict hot-path/"
                    f"shard-safety lint ({len(findings)} errors: {detail})"
                )
        next_id = self._next_id.get(plugin.plugin_type, 1)
        code = plugin_code(plugin.plugin_type, next_id)
        self._next_id[plugin.plugin_type] = next_id + 1
        self._by_type.setdefault(plugin.plugin_type, {})[next_id] = plugin
        self._by_name[plugin.name] = plugin
        plugin.attach(self, code)
        return code

    def unload(self, plugin_or_name) -> None:
        """Unload a plugin, freeing its instances and AIU bindings.

        ``detach`` frees every *tracked* instance (which purges its
        filters and flow-table slots); the sweep below additionally
        catches instances the plugin never registered in
        ``plugin.instances`` — without it, an unload mid-traffic could
        leave a cached flow whose gate slot resurrects the unloaded
        code on the next packet.
        """
        plugin = self._resolve(plugin_or_name)
        code = plugin_code_of(plugin)
        plugin.detach()
        if self.aiu is not None:
            strays = {
                id(record.instance): record.instance
                for record in self.aiu.filters()
                if getattr(record.instance, "plugin", None) is plugin
            }
            for flow in self.aiu.flow_table:
                for slot in flow.slots:
                    if slot is not None and getattr(slot.instance, "plugin", None) is plugin:
                        strays.setdefault(id(slot.instance), slot.instance)
            for stray in strays.values():
                self.aiu.purge_instance(stray)
        if self.router is not None:
            for iface, scheduler in list(self.router._schedulers.items()):
                if getattr(scheduler, "plugin", None) is plugin:
                    del self.router._schedulers[iface]
            self.router.faults.forget_plugin(plugin)
        del self._by_name[plugin.name]
        type_table = self._by_type.get(plugin_type_of(code), {})
        for plugin_id, registered in list(type_table.items()):
            if registered is plugin:
                del type_table[plugin_id]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _resolve(self, target) -> Plugin:
        if isinstance(target, Plugin):
            if target.name not in self._by_name:
                raise UnknownPluginError(f"plugin {target.name!r} is not loaded")
            return target
        if isinstance(target, int):
            plugin = self._by_type.get(target >> 16, {}).get(target & 0xFFFF)
            if plugin is None:
                raise UnknownPluginError(f"no plugin with code 0x{target:08x}")
            return plugin
        plugin = self._by_name.get(target)
        if plugin is None:
            raise UnknownPluginError(f"no plugin named {target!r}")
        return plugin

    def get(self, target) -> Plugin:
        """Resolve a plugin by name, code, or identity."""
        return self._resolve(target)

    def plugins(self, plugin_type: Optional[int] = None) -> List[Plugin]:
        if plugin_type is None:
            return list(self._by_name.values())
        return list(self._by_type.get(plugin_type, {}).values())

    def is_loaded(self, name: str) -> bool:
        return name in self._by_name

    # ------------------------------------------------------------------
    # Message dispatch (the "plugin socket")
    # ------------------------------------------------------------------
    def send(self, target, message: Message):
        """Forward a control message to a plugin's registered callback.

        This is the single control-path entry point used by the Plugin
        Manager and the daemons (§4: "The PCU is responsible for
        dispatching these messages to the target plugin, and for handling
        exceptions").
        """
        plugin = self._resolve(target)
        return plugin.callback(message)

    def __len__(self) -> int:
        return len(self._by_name)

    def __repr__(self) -> str:
        return f"PluginControlUnit({sorted(self._by_name)})"


def plugin_code_of(plugin: Plugin) -> int:
    if plugin.code is None:
        raise UnknownPluginError(f"plugin {plugin.name!r} has no code (not loaded)")
    return plugin.code
